"""Design-time tooling and self-tuning (sections 4.1 and 9).

Shows the two compiler personalities and the observed-cost optimizer:

* **design mode** — the mode behind ALDSP's graphical XQuery editor:
  deploying a data-service file with broken functions collects *all* the
  errors in one pass, keeps the error-free functions callable, and keeps
  even the broken function's signature usable by its callers;
* **observed cost-based tuning** — the paper's section-9 roadmap item:
  the platform instruments every source roundtrip and derives the PP-k
  block size from measured behaviour instead of a static cost model.

Run with:  python examples/design_time_and_tuning.py
"""

from repro import Platform, serialize
from repro.clock import VirtualClock
from repro.demo import build_ccdb, build_custdb
from repro.relational import LatencyModel

WORK_IN_PROGRESS = '''
declare namespace tns="urn:wip";

(::pragma function kind="read" ::)
declare function tns:goodCustomers() as element(CUSTOMER)* {
  for $c in CUSTOMER() return $c
};

(::pragma function kind="read" ::)
declare function tns:oops() as element(X)* {
  for $c in   (: the developer stopped typing here :)
};

(::pragma function kind="read" ::)
declare function tns:alsoBroken() as element(X)* {
  for $c in CUSTOMER() return $notBoundYet
};

(::pragma function kind="read" ::)
declare function tns:reuser() as element(CUSTOMER)* {
  tns:goodCustomers()[CID eq "C1"]
};
'''

# -- 1. design mode: recover, report, keep working ------------------------------

clock = VirtualClock()
platform = Platform(clock=clock, mode="design")
platform.register_database(build_custdb(clock, customers=3))
platform.register_database(build_ccdb(clock, customers=3))

platform.deploy(WORK_IN_PROGRESS, name="WorkInProgress")

print("== design-time analysis of a half-finished data service ==")
print("prolog-level errors recovered from:")
for error in platform.module.errors:
    print(f"  - {error}")
for name in ("goodCustomers", "alsoBroken", "reuser"):
    decl = platform.module.function(name, 0)
    status = "; ".join(decl.errors) if decl and decl.errors else "ok"
    print(f"  {name}: {status}")

print("\nerror-free functions remain fully usable:")
print(" ", serialize(platform.call("reuser"))[:120], "...")

# -- 2. observed cost-based PP-k tuning -------------------------------------------

print("\n== observed cost-based tuning (section 9) ==")
for db in platform.ctx.databases.values():
    db.latency = LatencyModel(roundtrip_ms=60.0, per_row_ms=0.2)
platform.observed.clear()  # the latency regime just changed

# ordinary traffic doubles as instrumentation
platform.execute("for $c in CUSTOMER() return $c/CID")
platform.execute('for $c in CUSTOMER() where $c/CID eq "C1" return $c')
platform.execute("for $cc in CREDIT_CARD() return $cc/CID")
platform.execute('for $cc in CREDIT_CARD() where $cc/CID eq "C2" return $cc')

for name in platform.observed.sources():
    estimate = platform.observed.estimate(name)
    print(f"  {name}: fitted roundtrip={estimate.roundtrip_ms:.1f}ms "
          f"per-row={estimate.per_row_ms:.2f}ms "
          f"-> recommended k={platform.recommended_ppk(name)}")

before = platform.options.push.ppk_block_size
chosen = platform.adapt_ppk()
print(f"  PP-k block size adapted: {before} -> {chosen} "
      "(derived from observations, not a cost model)")
