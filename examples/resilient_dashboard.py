"""A resilient dashboard: async source access, timeouts, failover, and
the function cache (sections 5.4–5.6).

A dashboard page needs data from several slow or unreliable services.
The query uses ALDSP's service-quality extensions so that:

* independent service calls overlap (``fn-bea:async``),
* a slow source is cut off after a latency budget (``fn-bea:timeout``),
* an unavailable source degrades to a fallback (``fn-bea:fail-over``),
* repeated calls hit the mid-tier function cache.

Run with:  python examples/resilient_dashboard.py
"""

from repro import serialize
from repro.demo import build_demo_platform
from repro.schema import leaf, shape
from repro.sources import WebServiceDescriptor, WebServiceOperation
from repro.xml import element

platform = build_demo_platform(customers=2, ws_latency_ms=40.0, deploy_profile=False)

# a second, slower service: shipping status
STATUS_OUT = shape("statusResponse", [leaf("state", "xs:string")])
platform.register_web_service(WebServiceDescriptor("ShippingService", [
    WebServiceOperation(
        "getShippingStatus", None, STATUS_OUT,
        lambda cid: element("statusResponse", element("state", f"in-transit:{cid}")),
        style="rpc", latency_ms=150.0,
    ),
]))

DASHBOARD = '''
for $c in CUSTOMER() where $c/CID eq "C1"
return <DASHBOARD>
  <NAME>{ data($c/LAST_NAME) }</NAME>
  <RATING>{
    fn-bea:async(data(getRating(
        <getRating><lName>{data($c/LAST_NAME)}</lName>
                   <ssn>{data($c/SSN)}</ssn></getRating>)/getRatingResult))
  }</RATING>
  <SHIPPING>{
    fn-bea:async(fn-bea:timeout(
        data(getShippingStatus(data($c/CID))/state),
        60, "status-unavailable"))
  }</SHIPPING>
  <CARDS>{
    fn-bea:fail-over(
        for $cc in CREDIT_CARD() where $cc/CID eq $c/CID return $cc/NUMBER,
        <NUMBER>cached-offline-copy</NUMBER>)
  }</CARDS>
</DASHBOARD>
'''

print("== 1. healthy sources, async overlap ==")
start = platform.clock.now_ms()
[page] = platform.execute(DASHBOARD)
elapsed = platform.clock.now_ms() - start
print(" ", serialize(page))
print(f"  elapsed {elapsed:.1f}ms — the 40ms rating call overlapped the "
      f"shipping call, which was cut off at its 60ms budget")

print("\n== 2. credit-card database goes down: fail-over ==")
platform.ctx.databases["ccdb"].available = False
[page] = platform.execute(DASHBOARD)
assert "cached-offline-copy" in serialize(page)
print(" ", serialize(page))
platform.ctx.databases["ccdb"].available = True

print("\n== 3. enable the function cache for the rating service ==")
platform.enable_function_cache("getRating", ttl_ms=60_000, arity=1)
platform.execute(DASHBOARD)
calls_before = platform.ctx.stats.service_calls
start = platform.clock.now_ms()
platform.execute(DASHBOARD)
elapsed = platform.clock.now_ms() - start
rating_calls = platform.ctx.stats.service_calls - calls_before
print(f"  second render: {rating_calls - 1} extra rating calls "
      f"(cache hit), {elapsed:.1f}ms")
print(f"  cache stats: hits={platform.cache.stats.hits} "
      f"misses={platform.cache.stats.misses}")
