"""Quickstart: build a data-services layer over a relational source.

Covers the minimal workflow:

1. create (or connect to) a relational source and register it — ALDSP
   introspects the SQL metadata into physical data services (one function
   per table, navigation functions from foreign keys);
2. deploy a logical data service written in XQuery;
3. call its methods and run ad hoc queries — watching the compiler push
   SQL down to the source.

Run with:  python examples/quickstart.py
"""

from repro import Database, Platform, serialize
from repro.compiler import PushedSQL

# -- 1. a relational source ---------------------------------------------------

platform = Platform()

db = Database("bookstore", vendor="oracle", clock=platform.clock)
db.create_table(
    "BOOK",
    [("ISBN", "VARCHAR", False), ("TITLE", "VARCHAR"),
     ("AUTHOR", "VARCHAR"), ("PRICE", "INTEGER")],
    primary_key=["ISBN"],
)
db.load("BOOK", [
    {"ISBN": "1", "TITLE": "A Relational Model", "AUTHOR": "Codd", "PRICE": 30},
    {"ISBN": "2", "TITLE": "Transaction Processing", "AUTHOR": "Gray", "PRICE": 60},
    {"ISBN": "3", "TITLE": "The Art of Computer Programming", "AUTHOR": "Knuth", "PRICE": 90},
])
platform.register_database(db)

# -- 2. a logical data service -----------------------------------------------

platform.deploy('''
    (::pragma function kind="read" ::)
    declare function getCatalog() as element(ITEM)* {
      for $b in BOOK()
      return <ITEM>
        <TITLE>{data($b/TITLE)}</TITLE>
        <BY>{data($b/AUTHOR)}</BY>
        <PRICE>{data($b/PRICE)}</PRICE>
      </ITEM>
    };

    (::pragma function kind="read" ::)
    declare function getAffordable($limit as xs:integer) as element(ITEM)* {
      getCatalog()[PRICE le $limit]
    };
''', name="CatalogService")

# -- 3. call methods and run queries -------------------------------------------

print("== getCatalog() ==")
for item in platform.call("getCatalog"):
    print(" ", serialize(item))

print("\n== getAffordable(60) — the view unfolds and the predicate pushes ==")
plan = platform.plan_cache  # the compiled plan is cached after first use
for item in platform.call_python("getAffordable", 60):
    print(" ", serialize(item))

print("\n== ad hoc query with grouping ==")
results = platform.execute('''
    for $b in BOOK()
    group $b as $books by $b/AUTHOR as $author
    return <AUTHOR name="{$author}">{ count($books) }</AUTHOR>
''')
for item in results:
    print(" ", serialize(item))

# -- what was pushed? ----------------------------------------------------------

print("\n== SQL shipped to the source ==")
for statement in db.stats.statements:
    print(" ", statement)

plan = platform.prepare("for $b in BOOK() where $b/PRICE gt 50 return $b/TITLE")
assert isinstance(plan.expr, PushedSQL), "expected a fully pushed plan"
print("\nfully pushed plan for the price filter:")
print(" ", platform.ctx.renderer("oracle").render(plan.expr.select))
