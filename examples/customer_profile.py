"""The paper's running example, end to end (sections 3.4, 6, Figure 5).

Integrates a customer profile from three sources — two relational
databases and a credit-rating Web service — through the ``getProfile``
data service, then updates a profile through the SDO mediator API:
change tracking, lineage analysis, and update propagation that touches
only the affected source.

Run with:  python examples/customer_profile.py
"""

from repro import serialize
from repro.demo import build_demo_platform
from repro.sdo import ConcurrencyPolicy
from repro.services import Mediator, RequestConfig

platform = build_demo_platform(customers=3, orders_per_customer=2)
custdb = platform.ctx.databases["custdb"]
ccdb = platform.ctx.databases["ccdb"]

# -- reads: the integrated profile ---------------------------------------------

print("== getProfile(): one view over custdb + ccdb + RatingService ==")
profiles = platform.call("getProfile")
for profile in profiles:
    print(" ", serialize(profile))

print("\ndistributed plan statistics:")
print(f"  pushed SQL queries : {platform.ctx.stats.pushed_queries}")
print(f"  PP-k blocks        : {platform.ctx.stats.ppk_blocks}")
print(f"  web service calls  : {platform.ctx.stats.service_calls}")
print(f"  custdb roundtrips  : {custdb.stats.roundtrips}")
print(f"  ccdb roundtrips    : {ccdb.stats.roundtrips}")
print(f"  simulated time     : {platform.clock.now_ms():.1f} ms")

# -- the mediator API with client-side criteria ----------------------------------

print("\n== mediator call with filtering criteria (section 2.2) ==")
mediator = Mediator(platform)
config = RequestConfig().where("RATING", "gt", 701).sort("RATING", descending=True)
for sdo in mediator.invoke("ProfileService", "getProfile", config=config):
    print(f"  {sdo.get('CID')}: rating={sdo.get('RATING')}")

# -- updates through SDO (Figure 5) ----------------------------------------------

print("\n== SDO update: setLAST_NAME + submit ==")
[sdo] = platform.read_for_update("ProfileService", "getProfileByID", "C1")
print(f"  before: LAST_NAME={sdo.getLAST_NAME()!r}")
sdo.setLAST_NAME("Smith")
print(f"  change log: {sdo.change_log().serialize()}")

result = platform.submit(sdo, policy=ConcurrencyPolicy.values_updated())
print(f"  affected sources: {result.affected_databases}   (ccdb untouched)")
for statement in result.statements:
    print(f"  SQL: {statement}")
print(f"  stored value is now: "
      f"{custdb.table('CUSTOMER').lookup_pk(('C1',))['LAST_NAME']!r}")

# -- lineage: where every piece of the shape comes from ----------------------------

print("\n== computed lineage of the PROFILE shape (section 6) ==")
lineage = platform.lineage("ProfileService")
for path, entry in sorted(lineage.entries.items()):
    origin = f"{entry.database}.{entry.table}.{entry.column}"
    note = f"  (via {entry.transform})" if entry.transform else ""
    print(f"  {'/'.join(path):45s} <- {origin}{note}")
print("  PROFILE/RATING has no lineage entry: it is service-sourced and"
      " therefore not updatable.")
