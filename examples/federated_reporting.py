"""Federated reporting: aggregation, grouping, pagination, and the value
of SQL pushdown (sections 4.2–4.4).

A reporting workload over the demo federation: top-spenders reports with
group-by and order-by+subsequence pagination, executed twice — once with
SQL pushdown enabled (the default) and once with the optimizer restricted
to middleware evaluation — to show the rows-shipped/roundtrip difference
the pushdown framework exists for.

Run with:  python examples/federated_reporting.py
"""

from repro import serialize
from repro.demo import build_demo_platform
from repro.relational import LatencyModel

TOP_SPENDERS = '''
let $report :=
  for $c in CUSTOMER()
  let $total := sum(for $o in ORDER() where $o/CID eq $c/CID return $o/AMOUNT)
  order by $total descending
  return <SPENDER>
    <NAME>{data($c/LAST_NAME)}</NAME>
    <TOTAL>{$total}</TOTAL>
  </SPENDER>
return subsequence($report, 1, 5)
'''

ORDERS_BY_SURNAME = '''
for $c in CUSTOMER()
group $c as $group by $c/LAST_NAME as $surname
order by $surname
return <FAMILY name="{$surname}">{ count($group) }</FAMILY>
'''

ORDER_SIZES = '''
for $c in CUSTOMER()
return <CUSTOMER>{
    $c/CID,
    <ORDERS>{ count(for $o in ORDER() where $o/CID eq $c/CID return $o) }</ORDERS>
}</CUSTOMER>
'''


def run_workload(pushdown: bool):
    platform = build_demo_platform(
        customers=60, orders_per_customer=4, deploy_profile=False,
        db_latency=LatencyModel(roundtrip_ms=5.0, per_row_ms=0.05),
    )
    platform.set_pushdown_enabled(pushdown)
    custdb = platform.ctx.databases["custdb"]
    start = platform.clock.now_ms()
    outputs = {
        "top spenders": platform.execute(TOP_SPENDERS),
        "families": platform.execute(ORDERS_BY_SURNAME),
        "order sizes": platform.execute(ORDER_SIZES),
    }
    elapsed = platform.clock.now_ms() - start
    return outputs, custdb.stats.roundtrips, custdb.stats.rows_shipped, elapsed


pushed_out, pushed_trips, pushed_rows, pushed_ms = run_workload(pushdown=True)
naive_out, naive_trips, naive_rows, naive_ms = run_workload(pushdown=False)

print("== top 5 spenders (pushed: Oracle ROWNUM pagination) ==")
for item in pushed_out["top spenders"]:
    print(" ", serialize(item))

print("\n== customers per surname (pushed: GROUP BY) ==")
for item in pushed_out["families"]:
    print(" ", serialize(item))

print("\n== pushdown vs middleware evaluation ==")
print(f"  {'':16s}{'roundtrips':>12s}{'rows shipped':>14s}{'sim. time':>12s}")
print(f"  {'pushed':16s}{pushed_trips:>12d}{pushed_rows:>14d}{pushed_ms:>10.1f}ms")
print(f"  {'middleware':16s}{naive_trips:>12d}{naive_rows:>14d}{naive_ms:>10.1f}ms")
assert pushed_rows < naive_rows, "pushdown should ship fewer rows"

for key in pushed_out:
    assert serialize(pushed_out[key]) == serialize(naive_out[key]), \
        f"{key}: pushed and middleware plans disagree"
print("\nboth plans produced identical results — pushdown is a pure "
      "performance transformation.")
