"""Optimizer tests: view unfolding, source-access elimination, unnesting,
let pruning, the view-plan cache (section 4.2)."""


from repro.compiler import Optimizer, SourceCall, TableMeta
from repro.compiler.views import ViewPlanCache
from repro.schema import leaf, shape, shape_sequence
from repro.services.metadata import MetadataRegistry, SourceFunctionDef
from repro.xquery import ast, parse_expression, parse_module
from repro.xquery.normalize import normalize, normalize_module
from repro.xquery.typecheck import FunctionSignature


def make_registry():
    registry = MetadataRegistry()
    columns = [("CID", "xs:string"), ("LAST_NAME", "xs:string"), ("SINCE", "xs:integer")]
    meta = TableMeta("db", "CUSTOMER", "CUSTOMER", columns, ("CID",), "oracle")
    sig = FunctionSignature(
        "CUSTOMER", [], shape_sequence(shape("CUSTOMER", [leaf(n, t) for n, t in columns]))
    )
    registry.register(SourceFunctionDef("CUSTOMER", sig, "table", table_meta=meta))
    return registry


def optimize(text, module_text=None, view_cache=None):
    registry = make_registry()
    module = None
    if module_text is not None:
        module = parse_module(module_text)
        normalize_module(module)
    optimizer = Optimizer(registry, module, view_cache=view_cache)
    return optimizer.optimize(normalize(parse_expression(text)))


class TestSourceResolution:
    def test_table_call_becomes_source_call(self):
        expr = optimize("for $c in CUSTOMER() return $c")
        assert isinstance(expr.clauses[0].expr, SourceCall)
        assert expr.clauses[0].expr.table_meta.table == "CUSTOMER"

    def test_unknown_functions_untouched(self):
        expr = optimize("unknownFn()", module_text="declare function other() { 1 };")
        assert isinstance(expr, ast.FunctionCall)


class TestViewUnfolding:
    MODULE = '''
        declare function getAll() { for $c in CUSTOMER() return
            <P><CID>{data($c/CID)}</CID><NAME>{data($c/LAST_NAME)}</NAME></P> };
        declare function byId($id as xs:string) { getAll()[CID eq $id] };
    '''

    def test_zero_arg_function_inlined(self):
        expr = optimize("getAll()", module_text=self.MODULE)
        assert isinstance(expr, ast.FLWOR)
        assert isinstance(expr.clauses[0].expr, SourceCall)

    def test_nested_views_unfold_transitively(self):
        expr = optimize('byId("C1")', module_text=self.MODULE)
        assert isinstance(expr, ast.FLWOR)
        # predicate pushed into the unfolded body as a where clause
        wheres = [c for c in expr.clauses if isinstance(c, ast.WhereClause)]
        assert wheres

    def test_parameter_binding_avoids_capture(self):
        module = '''
            declare function shadow($c as xs:string) {
                for $c2 in CUSTOMER() where $c2/CID eq $c return $c2/LAST_NAME };
        '''
        expr = optimize('for $c in CUSTOMER() return shadow(data($c/CID))',
                        module_text=module)
        # every binder in the inlined copy was alpha-renamed
        binders = [c.var for c in expr.walk() if isinstance(c, ast.ForClause)]
        assert len(binders) == len(set(binders))

    def test_two_inlinings_do_not_collide(self):
        module = '''
            declare function names() { for $x in CUSTOMER() return $x/LAST_NAME };
        '''
        expr = optimize("(names(), names())", module_text=module)
        binders = [c.var for c in expr.walk() if isinstance(c, ast.ForClause)]
        assert len(binders) == 2 and binders[0] != binders[1]

    def test_erroneous_function_not_inlined(self):
        module = parse_module(
            "declare function broken() { $missing };", mode="design")
        normalize_module(module)
        module.function("broken", 0).errors.append("undefined variable")
        optimizer = Optimizer(make_registry(), module)
        expr = optimizer.optimize(normalize(parse_expression("broken()")))
        assert isinstance(expr, ast.FunctionCall)

    def test_no_inline_respected(self):
        registry = make_registry()
        module = parse_module("declare function pinned() { 1 };")
        normalize_module(module)
        optimizer = Optimizer(registry, module, no_inline={("pinned", 0)})
        expr = optimizer.optimize(normalize(parse_expression("pinned()")))
        assert isinstance(expr, ast.FunctionCall)


class TestSourceAccessElimination:
    def test_constructor_navigation_selects_content(self):
        # The paper's example: navigating LAST_NAME must not require ORDERS.
        expr = optimize('''
            let $x := <CUSTOMER>
                <LAST_NAME>{$name}</LAST_NAME>
                <ORDERS>{ for $c in CUSTOMER() return $c }</ORDERS>
            </CUSTOMER>
            return fn:data($x/LAST_NAME)
        ''')
        # the whole CUSTOMER() access disappeared
        assert not any(isinstance(n, SourceCall) for n in expr.walk())

    def test_nonmatching_child_becomes_empty(self):
        expr = optimize('(<A><B>{1}</B></A>)/NOPE')
        assert isinstance(expr, ast.EmptySequence)

    def test_data_over_constructor_unwraps(self):
        expr = optimize('fn:data(<CID>{data($c/CID)}</CID>)')
        assert isinstance(expr, ast.FunctionCall) and expr.name == "fn:data"
        assert isinstance(expr.args[0], ast.PathExpr)


class TestFLWORRules:
    def test_unnesting(self):
        expr = optimize('''
            for $x in (for $c in CUSTOMER() return $c/CID) return $x
        ''')
        fors = [c for c in expr.clauses if isinstance(c, ast.ForClause)]
        assert len(fors) == 2  # spliced into one clause list

    def test_unused_let_removed(self):
        expr = optimize('''
            for $c in CUSTOMER()
            let $unused := $c/SINCE
            return $c/CID
        ''')
        assert not any(isinstance(c, ast.LetClause) for c in expr.clauses)

    def test_cheap_let_inlined(self):
        expr = optimize('''
            for $c in CUSTOMER() let $n := $c/LAST_NAME where $n eq "x" return $n
        ''')
        assert not any(isinstance(c, ast.LetClause) for c in expr.clauses)

    def test_for_over_empty_collapses(self):
        expr = optimize("for $x in () return $x")
        assert isinstance(expr, ast.EmptySequence)

    def test_constant_if_folded(self):
        expr = optimize("if (true()) then 1 else 2")
        assert isinstance(expr, ast.Literal) and expr.value.value == 1
        expr = optimize("if (false()) then 1 else 2")
        assert expr.value.value == 2

    def test_sequence_flattening(self):
        expr = optimize("(1, (2, 3), ())")
        assert isinstance(expr, ast.SequenceExpr)
        assert len(expr.items) == 3


class TestViewPlanCache:
    def test_cache_hit_on_second_compile(self):
        cache = ViewPlanCache()
        module_text = '''
            declare function v() { for $c in CUSTOMER() return $c/CID };
        '''
        optimize("v()", module_text=module_text, view_cache=cache)
        misses_after_first = cache.misses
        optimize("v()", module_text=module_text, view_cache=cache)
        assert cache.hits >= 1
        assert cache.misses == misses_after_first + 0 or cache.misses >= misses_after_first

    def test_eviction_bounds_memory(self):
        cache = ViewPlanCache(capacity=2)
        for i in range(4):
            cache.put(f"f{i}", 0, parse_expression("1"))
        assert len(cache) == 2
        assert cache.evictions == 2

    def test_invalidate(self):
        cache = ViewPlanCache()
        cache.put("f", 0, parse_expression("1"))
        cache.invalidate("f", 0)
        assert cache.get("f", 0) is None
