"""Dialect round-trip property: for randomized SQL ASTs, executing the
original AST and executing ``parse(render(AST))`` must agree — for every
dialect.  This is the property that lets the engine double as a validator
for the SQL the pushdown framework generates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational import Database, Executor, parse_sql
from repro.sql import (
    AggCall,
    BinOp,
    CaseExpr,
    ColumnRef,
    FuncCall,
    Join,
    NotExpr,
    OrderItem,
    Select,
    SelectItem,
    SqlLiteral,
    TableRef,
    render_sql,
)


def make_db():
    db = Database("p")
    db.create_table(
        "T",
        [("ID", "INTEGER", False), ("NAME", "VARCHAR"), ("V", "INTEGER")],
        primary_key=["ID"],
    )
    db.load("T", [
        {"ID": 1, "NAME": "ann", "V": 10},
        {"ID": 2, "NAME": "bob", "V": None},
        {"ID": 3, "NAME": None, "V": 30},
        {"ID": 4, "NAME": "ann", "V": 40},
    ])
    db.create_table("U", [("UID", "INTEGER", False), ("TID", "INTEGER")],
                    primary_key=["UID"])
    db.load("U", [{"UID": 1, "TID": 1}, {"UID": 2, "TID": 1}, {"UID": 3, "TID": 3}])
    return db


_COLUMNS = [ColumnRef("t1", "ID"), ColumnRef("t1", "V")]
_scalar = st.one_of(
    st.sampled_from(_COLUMNS),
    st.integers(-5, 50).map(SqlLiteral),
)


@st.composite
def predicates(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
        return BinOp(op, draw(_scalar), draw(_scalar))
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return BinOp(draw(st.sampled_from(["AND", "OR"])),
                     draw(predicates(depth=depth - 1)),
                     draw(predicates(depth=depth - 1)))
    if kind == 1:
        return NotExpr(draw(predicates(depth=depth - 1)))
    return CaseExpr([(draw(predicates(depth=depth - 1)), SqlLiteral(1))], SqlLiteral(0))


@st.composite
def selects(draw):
    items = [
        SelectItem(ColumnRef("t1", "ID"), "c1"),
        SelectItem(draw(st.one_of(
            _scalar,
            st.builds(lambda a, b: BinOp("+", a, b), _scalar, _scalar),
        )), "c2"),
    ]
    stmt = Select(items=items, from_items=[TableRef("T", "t1")])
    if draw(st.booleans()):
        stmt.where = draw(predicates())
    if draw(st.booleans()):
        stmt.order_by = [OrderItem(ColumnRef("t1", "ID"), draw(st.booleans()))]
    return stmt


@settings(max_examples=40, deadline=None)
@given(stmt=selects(), vendor=st.sampled_from(["oracle", "db2", "sqlserver", "sybase", "sql92"]))
def test_property_render_parse_execute_roundtrip(stmt, vendor):
    db = make_db()
    direct = Executor(db).execute(stmt)
    text = render_sql(stmt, vendor)
    reparsed = Executor(db).execute(parse_sql(text))
    assert reparsed == direct


@pytest.mark.parametrize("vendor", ["oracle", "db2", "sqlserver"])
def test_aggregate_join_roundtrip(vendor):
    db = make_db()
    stmt = Select(
        items=[SelectItem(ColumnRef("t1", "ID"), "c1"),
               SelectItem(AggCall("COUNT", ColumnRef("t2", "UID")), "c2")],
        from_items=[Join("left", TableRef("T", "t1"), TableRef("U", "t2"),
                         BinOp("=", ColumnRef("t1", "ID"), ColumnRef("t2", "TID")))],
        group_by=[ColumnRef("t1", "ID")],
    )
    direct = Executor(db).execute(stmt)
    reparsed = Executor(db).execute(parse_sql(render_sql(stmt, vendor)))
    assert reparsed == direct
    assert {row["c1"]: row["c2"] for row in direct} == {1: 2, 2: 0, 3: 1, 4: 0}


@pytest.mark.parametrize("vendor", ["oracle", "sqlserver"])
def test_function_mapping_roundtrip(vendor):
    db = make_db()
    stmt = Select(
        items=[SelectItem(FuncCall("SUBSTR", [ColumnRef("t1", "NAME"),
                                              SqlLiteral(1), SqlLiteral(2)]), "c1")],
        from_items=[TableRef("T", "t1")],
        where=BinOp("=", ColumnRef("t1", "ID"), SqlLiteral(1)),
    )
    text = render_sql(stmt, vendor)
    if vendor == "sqlserver":
        assert "SUBSTRING(" in text
    rows = Executor(db).execute(parse_sql(text))
    assert rows == [{"c1": "an"}]
