"""Continuous production observability (O-CONT): sampler, windowed
metrics, tail retention, flight recorder and the plan-stats store.

Covers the tentpole contracts — always-on sampled tracing whose retained
trace set is byte-deterministic under the virtual clock, windowed rates
that forget, a flight ledger that reconciles exactly with the admission
counters — and the satellites: the one shared nearest-rank percentile
(edge cases included), bucket rotation at window boundaries, and the
stable ``ALDSP-E501`` gate over every tracing surface.
"""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.demo import build_demo_platform
from repro.errors import AdmissionError, ObservabilityError
from repro.observability import (
    NOOP_SPAN,
    ContinuousConfig,
    ContinuousTracer,
    FlightRecord,
    FlightRecorder,
    Histogram,
    PlanOperatorStats,
    PlanStatsStore,
    TraceSampler,
    WindowedCounter,
    WindowedHistogram,
    WindowedMetrics,
    chrome_trace_json,
    nearest_rank,
    plan_fingerprint,
)
from repro.observability.continuous import EWMA_ALPHA
from repro.server import AdmissionController, DataServer, TenantQuota
from repro.xml.items import AtomicValue

LOOKUP = "for $c in CUSTOMER() where $c/CID eq $id return $c/LAST_NAME"
SCAN = "getProfile()"


def _cid(value: str) -> dict:
    return {"id": [AtomicValue(value, "xs:string")]}


# ---------------------------------------------------------------------------
# the one shared percentile (satellite: dedupe)
# ---------------------------------------------------------------------------


class TestNearestRank:
    def test_empty_returns_none(self):
        assert nearest_rank([], 50) is None

    def test_single_sample_every_quantile(self):
        assert nearest_rank([7.0], 0.0) == 7.0
        assert nearest_rank([7.0], 50) == 7.0
        assert nearest_rank([7.0], 100.0) == 7.0

    def test_extremes_hit_min_and_max(self):
        ordered = [1.0, 2.0, 3.0, 4.0]
        assert nearest_rank(ordered, 0.0) == 1.0
        assert nearest_rank(ordered, 100.0) == 4.0

    @pytest.mark.parametrize("q", [-0.1, 100.1, 1000])
    def test_out_of_range_raises_even_on_empty(self, q):
        with pytest.raises(ValueError):
            nearest_rank([1.0], q)
        with pytest.raises(ValueError):
            nearest_rank([], q)


class TestHistogramPercentileEdges:
    def test_empty_histogram_is_none(self):
        assert Histogram().percentile(50) is None

    def test_single_sample(self):
        hist = Histogram()
        hist.observe(42.0)
        assert hist.percentile(0.0) == 42.0
        assert hist.percentile(100.0) == 42.0

    def test_out_of_range_raises(self):
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.percentile(-1)
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_driver_percentile_is_the_same_function(self):
        from repro.server.driver import percentile

        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        for q in (0.0, 25, 50, 75, 99, 100.0):
            assert percentile(samples, q) == nearest_rank(sorted(samples), q)


# ---------------------------------------------------------------------------
# windowed metrics: rotation at bucket boundaries
# ---------------------------------------------------------------------------


class TestWindowedCounter:
    def make(self):
        clock = VirtualClock()
        # 4 buckets x 100ms = one 400ms window
        return clock, WindowedCounter(clock, bucket_ms=100.0, nbuckets=4)

    def test_counts_inside_the_window(self):
        clock, counter = self.make()
        counter.inc()
        clock.set_ms(150.0)
        counter.inc(2)
        assert counter.total() == 3.0

    def test_forgets_past_the_window(self):
        clock, counter = self.make()
        counter.inc(5)
        # bucket epoch 0 stays live while now is in epochs 1..3 ...
        clock.set_ms(399.0)
        assert counter.total() == 5.0
        # ... and falls out exactly at the window boundary (epoch 4)
        clock.set_ms(400.0)
        assert counter.total() == 0.0

    def test_lazy_rotation_reclaims_a_stale_slot(self):
        clock, counter = self.make()
        counter.inc(5)          # epoch 0, slot 0
        clock.set_ms(401.0)     # epoch 4 maps onto slot 0 again
        counter.inc(1)
        assert counter.total() == 1.0

    def test_reset_clears_everything(self):
        clock, counter = self.make()
        counter.inc(9)
        counter.reset()
        assert counter.total() == 0.0

    def test_snapshot_rate_uses_window_seconds(self):
        clock, counter = self.make()
        counter.inc(8)
        snap = counter.snapshot()
        assert snap["window_total"] == 8.0
        assert snap["rate_per_s"] == pytest.approx(8.0 / 0.4)


class TestWindowedHistogram:
    def make(self):
        clock = VirtualClock()
        return clock, WindowedHistogram(clock, bucket_ms=100.0, nbuckets=4)

    def test_merges_live_buckets(self):
        clock, hist = self.make()
        hist.observe(10.0)
        clock.set_ms(150.0)
        hist.observe(30.0)
        snap = hist.snapshot()
        assert snap["count"] == 2
        assert snap["min"] == 10.0 and snap["max"] == 30.0
        assert snap["p50"] == 10.0 and snap["p99"] == 30.0

    def test_rotation_drops_old_samples(self):
        clock, hist = self.make()
        hist.observe(10.0)
        clock.set_ms(400.0)
        assert hist.snapshot()["count"] == 0
        assert hist.percentile(50) is None

    def test_stale_bucket_reset_on_write(self):
        clock, hist = self.make()
        hist.observe(10.0)      # epoch 0, slot 0
        clock.set_ms(450.0)     # epoch 4 reuses slot 0
        hist.observe(99.0)
        snap = hist.snapshot()
        assert snap["count"] == 1 and snap["max"] == 99.0


class TestWindowedMetrics:
    def test_same_series_same_instrument(self):
        window = WindowedMetrics(VirtualClock(), window_s=1.0, nbuckets=4)
        a = window.counter("server.shed", reason="quota")
        b = window.counter("server.shed", reason="quota")
        c = window.counter("server.shed", reason="cost")
        assert a is b and a is not c

    def test_snapshot_is_sorted_and_typed(self):
        window = WindowedMetrics(VirtualClock(), window_s=1.0, nbuckets=4)
        window.histogram("b.latency").observe(5.0)
        window.counter("a.requests").inc()
        snap = window.snapshot()
        assert list(snap) == sorted(snap)
        assert "window_total" in snap["a.requests"]
        assert snap["b.latency"]["count"] == 1

    def test_validates_shape(self):
        with pytest.raises(ValueError):
            WindowedMetrics(VirtualClock(), window_s=0.0)
        with pytest.raises(ValueError):
            WindowedMetrics(VirtualClock(), window_s=1.0, nbuckets=0)


# ---------------------------------------------------------------------------
# sampler determinism
# ---------------------------------------------------------------------------


class TestTraceSampler:
    def test_same_seed_same_decision_stream(self):
        a = TraceSampler(rate=0.5, seed=11)
        b = TraceSampler(rate=0.5, seed=11)
        assert [a.decide() for _ in range(64)] == \
            [b.decide() for _ in range(64)]

    def test_counts_and_extremes(self):
        always = TraceSampler(rate=1.0, seed=0)
        never = TraceSampler(rate=0.0, seed=0)
        assert all(always.decide() for _ in range(8))
        assert not any(never.decide() for _ in range(8))
        assert always.snapshot()["sampled"] == 8
        assert never.snapshot() == {
            "rate": 0.0, "seed": 0, "decisions": 8, "sampled": 0}

    def test_validates_rate(self):
        with pytest.raises(ValueError):
            TraceSampler(rate=1.5)
        with pytest.raises(ValueError):
            ContinuousConfig(sample_rate=-0.1)
        with pytest.raises(ValueError):
            ContinuousConfig(retain_capacity=0)


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------


def _record(tenant="acme", outcome="completed", **kwargs) -> FlightRecord:
    kwargs.setdefault("session_id", "s-1")
    kwargs.setdefault("fingerprint", "abc123")
    kwargs.setdefault("cost", 1.0)
    kwargs.setdefault("admission", "admitted")
    kwargs.setdefault("elapsed_ms", 1.0)
    kwargs.setdefault("ts_ms", 0.0)
    return FlightRecord(tenant=tenant, outcome=outcome, **kwargs)


class TestFlightRecorder:
    def test_seq_is_assigned_in_record_order(self):
        recorder = FlightRecorder(capacity=4)
        seqs = [recorder.record(_record()).seq for _ in range(3)]
        assert seqs == [1, 2, 3]

    def test_ring_evicts_but_ledger_remembers(self):
        recorder = FlightRecorder(capacity=2)
        recorder.record(_record(outcome="shed"))
        recorder.record(_record())
        recorder.record(_record())
        snap = recorder.snapshot()
        assert snap["recorded"] == 3 and snap["retained"] == 2
        assert snap["dropped"] == 1
        # the shed fell out of the ring but not out of the ledger
        assert snap["outcomes"] == {"completed": 2, "shed": 1}
        assert [r.outcome for r in recorder.records()] == \
            ["completed", "completed"]

    def test_filters_and_limit(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record(_record(tenant="acme"))
        recorder.record(_record(tenant="globex", outcome="shed"))
        recorder.record(_record(tenant="acme", outcome="error"))
        assert len(recorder.records(tenant="acme")) == 2
        assert [r.tenant for r in recorder.records(outcome="shed")] == \
            ["globex"]
        # limit keeps the most recent
        assert [r.seq for r in recorder.records(limit=2)] == [2, 3]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_to_dict_rounds_and_sorts_phases(self):
        record = _record(phases={"execute_ms": 1.23456, "admit_ms": 0.1})
        record.seq = 7
        as_dict = record.to_dict()
        assert list(as_dict["phases"]) == ["admit_ms", "execute_ms"]
        assert as_dict["phases"]["execute_ms"] == 1.235
        assert as_dict["seq"] == 7


# ---------------------------------------------------------------------------
# plan-stats feedback store
# ---------------------------------------------------------------------------


class TestPlanStats:
    def test_first_observation_seeds_then_ewma(self):
        stats = PlanOperatorStats()
        stats.update(rows=10, elapsed_ms=100.0, roundtrips=2)
        assert stats.ewma_rows == 10.0
        stats.update(rows=20, elapsed_ms=100.0, roundtrips=2)
        assert stats.ewma_rows == pytest.approx(10 + EWMA_ALPHA * 10)
        assert stats.ewma_elapsed_ms == pytest.approx(100.0)

    def test_store_keys_by_fingerprint_and_operator(self):
        store = PlanStatsStore()

        class Actuals:
            rows = 5
            elapsed_ms = 50.0
            roundtrips = 1

        store.observe("aaa", {1: Actuals(), 2: Actuals()})
        store.observe("bbb", {1: Actuals()})
        store.set_estimate("aaa", 25.0)
        assert set(store.operators("aaa")) == {1, 2}
        snap = store.snapshot()
        assert snap["traces_observed"] == 2
        assert snap["plans"]["aaa"]["estimate"] == 25.0
        assert snap["plans"]["bbb"]["estimate"] is None
        assert snap["plans"]["aaa"]["operators"][1]["observations"] == 1

    def test_empty_aggregates_are_not_an_observation(self):
        store = PlanStatsStore()
        store.observe("aaa", {})
        assert store.snapshot()["traces_observed"] == 0

    def test_fingerprint_is_stable_and_short(self):
        assert plan_fingerprint("q") == plan_fingerprint("q")
        assert plan_fingerprint("q") != plan_fingerprint("q2")
        assert len(plan_fingerprint("q")) == 12


# ---------------------------------------------------------------------------
# the continuous tracer: sampling, retention, determinism
# ---------------------------------------------------------------------------


def make_tracer(sample_rate=1.0, seed=0, slow_ms=250.0, retain_capacity=8,
                window=None):
    clock = VirtualClock()
    config = ContinuousConfig(sample_rate=sample_rate, seed=seed,
                              slow_ms=slow_ms, retain_capacity=retain_capacity)
    tracer = ContinuousTracer(
        clock, TraceSampler(config.sample_rate, config.seed), config,
        PlanStatsStore(), window=window)
    return clock, tracer


class TestContinuousTracer:
    def test_unsampled_requests_allocate_nothing(self):
        clock, tracer = make_tracer(sample_rate=0.0)
        handle = tracer.begin_request("fp")
        assert handle is not None and not handle.sampled
        assert tracer.start("query", "q") is NOOP_SPAN
        assert tracer.instant("mark") is NOOP_SPAN
        assert tracer.current() is None
        assert tracer.end_request(handle) is False
        snap = tracer.snapshot()
        assert snap["spans_allocated"] == 0
        assert snap["unsampled_calls"] == 2
        assert snap["traces_retained"] == 0

    def test_fast_healthy_is_summarized_not_retained(self):
        clock, tracer = make_tracer(slow_ms=1000.0)
        handle = tracer.begin_request("fp")
        with tracer.start("query", "q"):
            clock.charge_ms(5.0)
        assert tracer.end_request(handle) is False
        snap = tracer.snapshot()
        assert snap["traces_summarized"] == 1
        assert snap["traces_retained"] == 0
        assert tracer.retained_roots() == []

    def test_slow_request_is_retained(self):
        clock, tracer = make_tracer(slow_ms=10.0)
        handle = tracer.begin_request("fp")
        with tracer.start("query", "q"):
            clock.charge_ms(50.0)
        assert tracer.end_request(handle) is True
        roots = tracer.retained_roots()
        assert len(roots) == 1 and roots[0].name == "q"
        assert tracer.last_root is roots[0]

    @pytest.mark.parametrize("kwargs", [
        {"outcome": "error"},
        {"outcome": "deadline"},
        {"degraded": 2},
        {"force_retain": True},
    ])
    def test_unhealthy_requests_always_retained(self, kwargs):
        clock, tracer = make_tracer(slow_ms=1e9)
        handle = tracer.begin_request("fp")
        with tracer.start("query", "q"):
            clock.charge_ms(1.0)
        assert tracer.end_request(handle, **kwargs) is True

    def test_retention_needs_a_span_tree(self):
        # a sampled request that never opened a span has nothing to keep
        clock, tracer = make_tracer(slow_ms=0.0)
        handle = tracer.begin_request("fp")
        assert tracer.end_request(handle, outcome="error") is False
        assert tracer.snapshot()["traces_summarized"] == 1

    def test_retained_ring_is_bounded(self):
        clock, tracer = make_tracer(slow_ms=0.0, retain_capacity=2)
        for i in range(5):
            handle = tracer.begin_request("fp")
            with tracer.start("query", f"q{i}"):
                clock.charge_ms(1.0)
            tracer.end_request(handle)
        assert tracer.snapshot()["traces_retained"] == 5
        assert [root.name for root in tracer.retained_roots()] == ["q3", "q4"]

    def test_nested_begin_request_is_a_noop(self):
        clock, tracer = make_tracer()
        outer = tracer.begin_request("fp")
        assert tracer.begin_request("fp2") is None
        assert tracer.end_request(None) is False
        with tracer.start("query", "q"):
            clock.charge_ms(1.0)
        tracer.end_request(outer, outcome="error")
        assert tracer.snapshot()["requests"] == 1

    def test_window_fed_for_every_request_sampled_or_not(self):
        clock = VirtualClock()
        window = WindowedMetrics(clock, window_s=60.0)
        config = ContinuousConfig(sample_rate=0.0)
        tracer = ContinuousTracer(clock, TraceSampler(0.0), config,
                                  PlanStatsStore(), window=window)
        handle = tracer.begin_request("fp")
        clock.charge_ms(3.0)
        tracer.end_request(handle, outcome="shed")
        snap = window.snapshot()
        assert snap["trace.requests"]["window_total"] == 1
        assert snap["trace.latency_ms"]["count"] == 1
        assert snap["trace.failed{outcome=shed}"]["window_total"] == 1


class TestRetainedTraceDeterminism:
    QUERIES = [SCAN, LOOKUP, SCAN, LOOKUP, SCAN, SCAN]

    def run_once(self) -> tuple[str, dict]:
        platform = build_demo_platform(customers=2, clock=VirtualClock())
        tracer = platform.set_continuous(sample_rate=0.5, seed=13,
                                         slow_ms=0.0)
        for i, query in enumerate(self.QUERIES):
            variables = _cid(f"C{1 + i % 2}") if query is LOOKUP else None
            platform.execute(query, variables)
        trace_json = chrome_trace_json(tracer.retained_roots())
        return trace_json, tracer.snapshot()

    def test_same_seed_byte_identical_retained_traces(self):
        first_json, first_snap = self.run_once()
        second_json, second_snap = self.run_once()
        assert first_json == second_json
        assert first_snap == second_snap
        # rate 0.5 over 6 requests with this seed samples some, not all
        assert 0 < first_snap["requests_sampled"] < len(self.QUERIES)
        assert first_snap["traces_retained"] == first_snap["requests_sampled"]


# ---------------------------------------------------------------------------
# the platform surface: gates, plan stats, windows
# ---------------------------------------------------------------------------


class TestPlatformContinuous:
    def test_aldsp_e501_gates_every_tracing_surface(self):
        platform = build_demo_platform(customers=1, clock=VirtualClock())
        platform.set_tracing_allowed(False)
        for attempt in (lambda: platform.set_tracing(True),
                        lambda: platform.set_continuous(),
                        lambda: platform.profile(SCAN)):
            with pytest.raises(ObservabilityError, match="ALDSP-E501"):
                attempt()
        # execution itself is not gated, and re-allowing recovers
        platform.execute(SCAN)
        platform.set_tracing_allowed(True)
        assert platform.set_continuous() is not None

    def test_error_carries_stable_code(self):
        error = ObservabilityError("nope")
        assert error.code == "ALDSP-E501"
        assert "ALDSP-E501" in str(error)

    def test_plan_stats_fed_from_sampled_queries(self):
        platform = build_demo_platform(customers=2, clock=VirtualClock())
        platform.set_continuous(sample_rate=1.0)
        platform.call("getProfile")
        stats = platform.plan_stats()
        assert stats["traces_observed"] == 1
        [(fingerprint, entry)] = stats["plans"].items()
        assert fingerprint == plan_fingerprint(platform.plan_key(SCAN, None))
        assert entry["operators"]  # per-operator EWMAs exist

    def test_profile_feeds_plan_stats_too(self):
        platform = build_demo_platform(customers=1, clock=VirtualClock())
        platform.profile(SCAN)
        assert platform.plan_stats()["traces_observed"] == 1

    def test_window_always_on_and_resized(self):
        platform = build_demo_platform(customers=1, clock=VirtualClock())
        platform.set_continuous(sample_rate=1.0)
        platform.call("getProfile")
        assert platform.window_snapshot()["trace.requests"][
            "window_total"] == 1
        platform.set_metrics_window(10.0, nbuckets=5)
        # the replacement window starts empty and feeds the tracer
        assert platform.window_snapshot() == {}
        platform.call("getProfile")
        assert platform.window_snapshot()["trace.requests"][
            "window_total"] == 1
        assert platform.window.bucket_ms == pytest.approx(2000.0)

    def test_reset_stats_clears_the_window(self):
        platform = build_demo_platform(customers=1, clock=VirtualClock())
        platform.set_continuous(sample_rate=1.0)
        platform.call("getProfile")
        platform.reset_stats()
        assert platform.window_snapshot()["trace.requests"][
            "window_total"] == 0

    def test_set_continuous_off_restores_noop(self):
        platform = build_demo_platform(customers=1, clock=VirtualClock())
        platform.set_continuous(sample_rate=1.0)
        assert platform.continuous is not None
        assert platform.set_continuous(enabled=False) is None
        assert platform.continuous is None
        platform.execute(SCAN)  # runs untraced


# ---------------------------------------------------------------------------
# the serving surface: flight records reconcile with admission
# ---------------------------------------------------------------------------


def build_server(quota: TenantQuota | None = None, flight_capacity: int = 64):
    platform = build_demo_platform(customers=2, clock=VirtualClock())
    admission = AdmissionController(platform.clock, max_concurrent=2,
                                    queue_soft=3, queue_hard=5)
    server = DataServer(platform, admission=admission,
                        flight_capacity=flight_capacity)
    server.register_tenant("acme", "pw", roles=("analyst",), quota=quota)
    return platform, server


class TestServerFlight:
    def test_completed_request_record_has_phases_and_fingerprint(self):
        platform, server = build_server()
        platform.set_continuous(sample_rate=1.0, slow_ms=0.0)
        session = server.open_session("acme", "pw")
        response = server.execute(session.session_id, LOOKUP, _cid("C1"))
        [record] = server.flight()
        assert record.outcome == "completed"
        assert record.admission == "admitted"
        assert record.fingerprint == response.fingerprint != ""
        assert set(record.phases) == {"prepare_ms", "admit_ms", "execute_ms"}
        assert response.phases == record.phases
        assert record.sampled and record.retained
        assert record.items == 1 and record.error is None

    def test_ledger_reconciles_with_admission_counters(self):
        platform, server = build_server(
            quota=TenantQuota(capacity=2, refill_per_s=0.0))
        platform.set_continuous(sample_rate=1.0, slow_ms=0.0)
        session = server.open_session("acme", "pw")
        outcomes = []
        for _ in range(4):  # 2 admitted, then the quota sheds 2
            try:
                server.execute(session.session_id, LOOKUP, _cid("C1"))
                outcomes.append("completed")
            except AdmissionError:
                outcomes.append("shed")
        # one admitted request that errors during execution
        platform.ctx.databases["custdb"].available = False
        # the quota is empty: restock it so the request reaches execution
        server.admission.set_quota("acme", 10, 10_000)
        with pytest.raises(Exception):
            server.execute(session.session_id, LOOKUP, _cid("C1"))
        # and one that dies before admission (unknown function)
        with pytest.raises(Exception):
            server.execute(session.session_id, "NO_SUCH()")
        ledger = server.flight_recorder.snapshot()["outcomes"]
        admission = server.admission.snapshot()
        assert ledger["completed"] + ledger.get("deadline", 0) + \
            ledger["error"] == admission["admitted"]
        assert ledger["shed"] == admission["shed_quota"] + \
            admission["shed_overload"] + admission["shed_cost"]
        assert ledger["invalid"] == 1
        assert admission["tenants"]["acme"]["shed"] == ledger["shed"]
        assert len(admission["recent_sheds"]) == ledger["shed"]
        assert admission["recent_sheds"][0]["reason"] == "quota"

    def test_shed_requests_are_flight_recorded_and_trace_retained(self):
        platform, server = build_server(
            quota=TenantQuota(capacity=1, refill_per_s=0.0))
        tracer = platform.set_continuous(sample_rate=1.0, slow_ms=1e9)
        session = server.open_session("acme", "pw")
        server.execute(session.session_id, LOOKUP, _cid("C1"))
        with pytest.raises(AdmissionError):
            server.execute(session.session_id, LOOKUP, _cid("C2"))
        shed = server.flight(outcome="shed")
        assert len(shed) == 1
        assert shed[0].admission == "shed:quota"
        assert shed[0].error is not None
        # tail retention: the shed kept its tree, the fast-healthy did not
        assert shed[0].retained
        assert tracer.snapshot()["traces_retained"] == 1
        assert tracer.snapshot()["traces_summarized"] == 1

    def test_every_request_recorded_even_unsampled(self):
        platform, server = build_server()
        platform.set_continuous(sample_rate=0.0)
        session = server.open_session("acme", "pw")
        server.execute(session.session_id, LOOKUP, _cid("C1"))
        [record] = server.flight()
        assert not record.sampled and not record.retained
        assert record.outcome == "completed"

    def test_flight_works_without_continuous_tracing(self):
        platform, server = build_server()
        session = server.open_session("acme", "pw")
        server.execute(session.session_id, LOOKUP, _cid("C1"))
        [record] = server.flight()
        assert record.outcome == "completed" and not record.sampled

    def test_server_window_series_roll(self):
        platform, server = build_server()
        session = server.open_session("acme", "pw")
        server.execute(session.session_id, LOOKUP, _cid("C1"))
        snap = server.window.snapshot()
        assert snap["server.requests"]["window_total"] == 1
        assert snap["server.completed"]["window_total"] == 1
        assert snap["server.latency_ms{kind=lookup}"]["count"] == 1
        # past the window everything is forgotten, unlike the registry
        platform.clock.set_ms(platform.clock.now_ms() + 61_000.0)
        assert server.window.snapshot()["server.requests"][
            "window_total"] == 0
        assert server.metrics.counter("server.requests").value == 1

    def test_snapshot_includes_flight_ledger(self):
        platform, server = build_server()
        session = server.open_session("acme", "pw")
        server.execute(session.session_id, LOOKUP, _cid("C1"))
        snap = server.snapshot()
        assert snap["flight"]["recorded"] == 1
        assert snap["flight"]["outcomes"] == {"completed": 1}
