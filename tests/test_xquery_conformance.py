"""Table-driven XQuery conformance suite.

Each case is (query, expected serialization) evaluated through the full
pipeline (parse → normalize → typecheck → optimize → evaluate) with no
data sources involved.  Broad, shallow coverage of expression semantics —
the depth lives in the per-module test files.
"""

import pytest

from repro.xml import serialize

from tests.test_runtime_evaluate import run

CASES = [
    # literals and arithmetic
    ("42", "42"),
    ("1.5", "1.5"),
    ('"hi"', "hi"),
    ("2 + 3 * 4", "14"),
    ("(2 + 3) * 4", "20"),
    ("-(2 + 3)", "-5"),
    ("10 div 4", "2.5"),
    ("10 idiv 4", "2"),
    ("10 mod 4", "2"),
    ("1 to 5", "1 2 3 4 5"),
    ("()", ""),
    ("(1, (), 2)", "1 2"),
    # comparisons
    ("1 eq 1", "true"),
    ("1 ne 2", "true"),
    ('"a" lt "b"', "true"),
    ("2 ge 3", "false"),
    ("(1, 2) = (2, 3)", "true"),
    ("(1, 2) != (1, 2)", "true"),  # existential: 1 != 2
    ("() = 1", "false"),
    # logic
    ("true() and false()", "false"),
    ("true() or false()", "true"),
    ("not(0)", "true"),
    ("boolean((1))", "true"),
    # conditionals
    ('if (2 gt 1) then "y" else "n"', "y"),
    ('if (()) then "y" else "n"', "n"),
    # FLWOR
    ("for $i in (1, 2, 3) return $i * $i", "1 4 9"),
    ("for $i in 1 to 6 where $i mod 2 eq 0 return $i", "2 4 6"),
    ("let $x := 5 return $x + $x", "10"),
    ("for $i in (3, 1, 2) order by $i return $i", "1 2 3"),
    ("for $i in (3, 1, 2) order by $i descending return $i", "3 2 1"),
    ('for $w at $p in ("a", "b") return concat($p, $w)', "1a 2b"),
    ("for $i in 1 to 3, $j in 1 to 2 return 10 * $i + $j",
     "11 12 21 22 31 32"),
    # FLWGOR grouping
    ("for $i in 1 to 6 group $i as $g by $i mod 2 as $k order by $k "
     "return count($g)", "3 3"),
    ("for $i in (1, 1, 2) group by $i as $v order by $v return $v", "1 2"),
    # quantified
    ("some $x in (1, 2) satisfies $x eq 2", "true"),
    ("every $x in (1, 2) satisfies $x lt 3", "true"),
    ("some $x in () satisfies $x", "false"),
    ("every $x in () satisfies $x", "true"),
    # constructors
    ("<a/>", "<a/>"),
    ("<a>text</a>", "<a>text</a>"),
    ("<a>{1 + 1}</a>", "<a>2</a>"),
    ('<a b="{2 * 2}"/>', '<a b="4"/>'),
    ("<a>{1, 2}</a>", "<a>1 2</a>"),
    ("<a><b>{1}</b><c>{2}</c></a>", "<a><b>1</b><c>2</c></a>"),
    ("element z { 9 }", "<z>9</z>"),
    ("<a>{ attribute k { 1 } }</a>", '<a k="1"/>'),
    ('<F?>{ () }</F>', ""),
    ('<F?>{ 1 }</F>', "<F>1</F>"),
    ('<a k?="{()}"/>', "<a/>"),
    # paths
    ("(<a><b>1</b><b>2</b></a>)/b", "<b>1</b><b>2</b>"),
    ("(<a><b>1</b></a>)/c", ""),
    ("(<a><b><c>x</c></b></a>)//c", "<c>x</c>"),
    ('string(((<a k="v"/>)/@k))', "v"),
    ("(<a><b>1</b><b>2</b><b>3</b></a>)/b[2]", "<b>2</b>"),
    ("(<a><b>1</b><b>2</b><b>3</b></a>)/b[position() ge 2]", "<b>2</b><b>3</b>"),
    ("(<a><b>1</b><b>2</b><b>3</b></a>)/b[last()]", "<b>3</b>"),
    ("data((<a><b>5</b></a>)/b)", "5"),
    # sequences
    ("count((1, 2, 3))", "3"),
    ("count(())", "0"),
    ("exists((1))", "true"),
    ("empty(())", "true"),
    ("subsequence((1, 2, 3, 4), 2, 2)", "2 3"),
    ("reverse((1, 2))", "2 1"),
    ("distinct-values((1, 2, 1))", "1 2"),
    ("insert-before((1, 3), 2, 2)", "1 2 3"),
    ("remove((1, 2, 3), 2)", "1 3"),
    # aggregates
    ("sum((1, 2, 3))", "6"),
    ("sum(())", "0"),
    ("avg((2, 4))", "3.0"),
    ("min((3, 1, 2))", "1"),
    ("max((3, 1, 2))", "3"),
    # strings
    ('concat("a", "b", "c")', "abc"),
    ('string-join(("x", "y"), "-")', "x-y"),
    ('substring("hello", 2, 3)', "ell"),
    ('string-length("four")', "4"),
    ('upper-case("aB")', "AB"),
    ('lower-case("Ab")', "ab"),
    ('contains("hello", "ll")', "true"),
    ('starts-with("hello", "he")', "true"),
    ('ends-with("hello", "lo")', "true"),
    ('substring-before("k=v", "=")', "k"),
    ('substring-after("k=v", "=")', "v"),
    ('normalize-space("  a  b ")', "a b"),
    ('matches("a1", "[a-z]\\d")', "true"),
    ('replace("2026-07-07", "-", "/")', "2026/07/07"),
    ('tokenize("a b c", " ")', "a b c"),
    # numerics
    ("abs(-2)", "2"),
    ("floor(2.9)", "2"),
    ("ceiling(2.1)", "3"),
    ("round(2.5)", "3"),
    # casts and type tests
    ('"7" cast as xs:integer', "7"),
    ("7 cast as xs:string", "7"),
    ("3.0 instance of xs:decimal", "true"),
    ('"x" castable as xs:integer', "false"),
    ("5 treat as xs:integer", "5"),
    # typeswitch
    ('typeswitch (1) case xs:integer return "i" default return "d"', "i"),
    ('typeswitch ("s") case xs:integer return "i" default return "d"', "d"),
    # cardinality guards
    ("zero-or-one(())", ""),
    ("exactly-one(5)", "5"),
]


@pytest.mark.parametrize("query,expected", CASES, ids=[c[0][:48] for c in CASES])
def test_conformance_case(query, expected):
    assert serialize(run(query)) == expected
