"""Built-in function library tests."""

import math

import pytest

from repro.errors import DynamicError
from repro.xml import AtomicValue, element
from repro.xquery.functions import (
    all_builtins,
    atomize,
    builtin,
    compare_atomics,
    effective_boolean_value,
    is_builtin,
    numeric_value,
)


def call(name, *args):
    return builtin(name).evaluator(*args)


def atoms(*values):
    result = []
    for v in values:
        if isinstance(v, bool):
            result.append(AtomicValue(v, "xs:boolean"))
        elif isinstance(v, int):
            result.append(AtomicValue(v, "xs:integer"))
        elif isinstance(v, float):
            result.append(AtomicValue(v, "xs:double"))
        else:
            result.append(AtomicValue(v, "xs:string"))
    return result


class TestSequenceFunctions:
    def test_count(self):
        assert call("fn:count", atoms(1, 2, 3))[0].value == 3
        assert call("fn:count", [])[0].value == 0

    def test_exists_empty_not(self):
        assert call("fn:exists", atoms(1))[0].value is True
        assert call("fn:empty", [])[0].value is True
        assert call("fn:not", atoms(True))[0].value is False

    def test_sum_avg_min_max(self):
        seq = atoms(1, 2, 3)
        assert call("fn:sum", seq)[0].value == 6
        assert call("fn:avg", seq)[0].value == 2.0
        assert call("fn:min", seq)[0].value == 1
        assert call("fn:max", seq)[0].value == 3

    def test_sum_empty_is_zero(self):
        assert call("fn:sum", [])[0].value == 0

    def test_avg_min_max_empty_is_empty(self):
        assert call("fn:avg", []) == []
        assert call("fn:min", []) == []

    def test_distinct_values(self):
        result = call("fn:distinct-values", atoms(1, 2, 1, 3, 2))
        assert [a.value for a in result] == [1, 2, 3]

    def test_subsequence(self):
        seq = atoms(1, 2, 3, 4, 5)
        assert [a.value for a in call("fn:subsequence", seq, atoms(2), atoms(2))] == [2, 3]
        assert [a.value for a in call("fn:subsequence", seq, atoms(4))] == [4, 5]

    def test_reverse_insert_remove(self):
        seq = atoms(1, 2, 3)
        assert [a.value for a in call("fn:reverse", seq)] == [3, 2, 1]
        assert [a.value for a in call("fn:insert-before", seq, atoms(2), atoms(9))] == [1, 9, 2, 3]
        assert [a.value for a in call("fn:remove", seq, atoms(2))] == [1, 3]

    def test_cardinality_checks(self):
        assert call("fn:exactly-one", atoms(1))[0].value == 1
        with pytest.raises(DynamicError):
            call("fn:exactly-one", atoms(1, 2))
        with pytest.raises(DynamicError):
            call("fn:zero-or-one", atoms(1, 2))


class TestStringFunctions:
    def test_concat_and_join(self):
        assert call("fn:concat", atoms("a"), atoms("b"), atoms("c"))[0].value == "abc"
        assert call("fn:string-join", atoms("a", "b"), atoms("-"))[0].value == "a-b"

    def test_substring(self):
        assert call("fn:substring", atoms("hello"), atoms(2))[0].value == "ello"
        assert call("fn:substring", atoms("hello"), atoms(2), atoms(3))[0].value == "ell"

    def test_contains_family(self):
        assert call("fn:contains", atoms("hello"), atoms("ell"))[0].value is True
        assert call("fn:starts-with", atoms("hello"), atoms("he"))[0].value is True
        assert call("fn:ends-with", atoms("hello"), atoms("lo"))[0].value is True

    def test_case_and_length(self):
        assert call("fn:upper-case", atoms("abc"))[0].value == "ABC"
        assert call("fn:lower-case", atoms("ABC"))[0].value == "abc"
        assert call("fn:string-length", atoms("abcd"))[0].value == 4

    def test_substring_before_after(self):
        assert call("fn:substring-before", atoms("a=b"), atoms("="))[0].value == "a"
        assert call("fn:substring-after", atoms("a=b"), atoms("="))[0].value == "b"

    def test_normalize_space(self):
        assert call("fn:normalize-space", atoms("  a   b "))[0].value == "a b"


class TestNumericFunctions:
    def test_rounding(self):
        assert call("fn:floor", atoms(2.7))[0].value == 2
        assert call("fn:ceiling", atoms(2.1))[0].value == 3
        assert call("fn:round", atoms(2.5))[0].value == 3
        assert call("fn:abs", atoms(-4))[0].value == 4

    def test_number_of_bad_input_is_nan(self):
        assert math.isnan(call("fn:number", atoms("abc"))[0].value)


class TestValueHelpers:
    def test_effective_boolean_value(self):
        assert effective_boolean_value(atoms(True)) is True
        assert effective_boolean_value([]) is False
        assert effective_boolean_value(atoms("")) is False
        assert effective_boolean_value(atoms("x")) is True
        assert effective_boolean_value(atoms(0)) is False
        assert effective_boolean_value([element("a")]) is True

    def test_ebv_of_multi_atom_errors(self):
        with pytest.raises(DynamicError):
            effective_boolean_value(atoms(1, 2))

    def test_atomize_elements(self):
        e = element("A", 5, type_annotation="xs:integer")
        assert atomize([e]) == [AtomicValue(5, "xs:integer")]

    def test_compare_atomics_untyped_numeric_coercion(self):
        untyped = AtomicValue("10", "xs:untypedAtomic")
        assert compare_atomics("eq", untyped, AtomicValue(10, "xs:integer"))

    def test_compare_incompatible_raises(self):
        with pytest.raises(DynamicError):
            compare_atomics("eq", AtomicValue("x", "xs:string"), AtomicValue(1, "xs:integer"))

    def test_numeric_value_coercions(self):
        assert numeric_value(AtomicValue("7", "xs:untypedAtomic")) == 7
        with pytest.raises(DynamicError):
            numeric_value(AtomicValue("abc", "xs:string"))


class TestRegistry:
    def test_lazy_service_functions_registered(self):
        for name in ("fn-bea:async", "fn-bea:fail-over", "fn-bea:timeout"):
            assert is_builtin(name)
            assert all_builtins()[name].lazy

    def test_sql_pushdown_annotations(self):
        assert all_builtins()["fn:count"].sql == ("agg", "COUNT")
        assert all_builtins()["fn:upper-case"].sql == ("func", "UPPER")
        assert all_builtins()["fn:string-join"].sql is None

    def test_unknown_function_raises(self):
        with pytest.raises(DynamicError):
            builtin("fn:does-not-exist")
