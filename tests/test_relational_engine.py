"""Simulated relational engine: tables, constraints, latency accounting."""

import pytest

from repro.clock import VirtualClock
from repro.errors import SourceError, SQLError
from repro.relational import Column, Connection, Database, ForeignKey, LatencyModel, Table


def make_table():
    return Table(
        "T",
        [Column("ID", "INTEGER", nullable=False), Column("NAME", "VARCHAR")],
        primary_key=["ID"],
    )


class TestTable:
    def test_insert_and_lookup(self):
        t = make_table()
        t.insert({"ID": 1, "NAME": "a"})
        assert t.lookup_pk((1,)) == {"ID": 1, "NAME": "a"}
        assert len(t) == 1

    def test_missing_column_defaults_to_null(self):
        t = make_table()
        t.insert({"ID": 1})
        assert t.rows[0]["NAME"] is None

    def test_not_null_enforced(self):
        t = make_table()
        with pytest.raises(SQLError):
            t.insert({"ID": None, "NAME": "a"})

    def test_type_checked(self):
        t = make_table()
        with pytest.raises(SQLError):
            t.insert({"ID": "not-an-int"})

    def test_duplicate_pk_rejected(self):
        t = make_table()
        t.insert({"ID": 1})
        with pytest.raises(SQLError):
            t.insert({"ID": 1})

    def test_unknown_column_rejected(self):
        t = make_table()
        with pytest.raises(SQLError):
            t.insert({"ID": 1, "NOPE": 2})

    def test_update_at_rechecks_pk(self):
        t = make_table()
        t.insert({"ID": 1})
        t.insert({"ID": 2})
        with pytest.raises(SQLError):
            t.update_at(1, {"ID": 1})
        t.update_at(1, {"NAME": "x"})
        assert t.rows[1]["NAME"] == "x"

    def test_snapshot_restore(self):
        t = make_table()
        t.insert({"ID": 1, "NAME": "a"})
        snap = t.snapshot()
        t.update_at(0, {"NAME": "b"})
        t.restore(snap)
        assert t.rows[0]["NAME"] == "a"
        assert t.lookup_pk((1,)) is not None

    def test_xs_type_mapping(self):
        assert Column("X", "INTEGER").xs_type == "xs:int"
        assert Column("X", "VARCHAR").xs_type == "xs:string"
        assert Column("X", "DOUBLE").xs_type == "xs:double"


class TestDatabase:
    def test_create_and_load(self):
        db = Database("d")
        db.create_table("T", [("ID", "INTEGER", False)], primary_key=["ID"])
        db.load("T", [{"ID": 1}, {"ID": 2}])
        assert len(db.table("T")) == 2

    def test_duplicate_table_rejected(self):
        db = Database("d")
        db.create_table("T", [("ID", "INTEGER")])
        with pytest.raises(SQLError):
            db.create_table("T", [("ID", "INTEGER")])

    def test_unknown_table_rejected(self):
        with pytest.raises(SQLError):
            Database("d").table("NOPE")

    def test_foreign_keys_recorded(self):
        db = Database("d")
        db.create_table("P", [("ID", "INTEGER", False)], primary_key=["ID"])
        db.create_table(
            "C", [("ID", "INTEGER", False), ("PID", "INTEGER")],
            primary_key=["ID"],
            foreign_keys=[ForeignKey(("PID",), "P", ("ID",))],
        )
        [fk] = db.table("C").foreign_keys
        assert fk.ref_table == "P"


class TestConnectionAndLatency:
    def setup_method(self):
        self.clock = VirtualClock()
        self.db = Database("d", clock=self.clock,
                           latency=LatencyModel(roundtrip_ms=10.0, per_row_ms=1.0))
        self.db.create_table("T", [("ID", "INTEGER", False), ("V", "VARCHAR")],
                             primary_key=["ID"])
        self.db.load("T", [{"ID": i, "V": f"v{i}"} for i in range(5)])
        self.conn = Connection(self.db)

    def test_query_charges_roundtrip_and_rows(self):
        rows = self.conn.execute_query('SELECT t1."ID" AS c1 FROM "T" t1')
        assert len(rows) == 5
        assert self.clock.now_ms() == pytest.approx(10.0 + 5 * 1.0)
        assert self.db.stats.roundtrips == 1
        assert self.db.stats.rows_shipped == 5

    def test_statement_log(self):
        self.conn.execute_query('SELECT t1."ID" AS c1 FROM "T" t1')
        assert "SELECT" in self.db.stats.statements[0]

    def test_unavailable_database_raises_source_error(self):
        self.db.available = False
        with pytest.raises(SourceError):
            self.conn.execute_query('SELECT t1."ID" AS c1 FROM "T" t1')

    def test_update_through_connection(self):
        count = self.conn.execute_update(
            'UPDATE "T" SET "V" = ? WHERE "ID" = ?', ["new", 3]
        )
        assert count == 1
        assert self.db.table("T").lookup_pk((3,))["V"] == "new"

    def test_query_vs_update_shape_mismatch(self):
        with pytest.raises(SourceError):
            self.conn.execute_update('SELECT t1."ID" AS c1 FROM "T" t1')
        with pytest.raises(SourceError):
            self.conn.execute_query('DELETE FROM "T"')
