"""Transaction and XA two-phase commit tests (section 6)."""

import pytest

from repro.errors import TransactionError
from repro.relational import Database, TwoPhaseCommit, parse_sql
from repro.relational.txn import Transaction


def make_db(name="d"):
    db = Database(name)
    db.create_table("T", [("ID", "INTEGER", False), ("V", "VARCHAR")], primary_key=["ID"])
    db.load("T", [{"ID": 1, "V": "a"}, {"ID": 2, "V": "b"}])
    return db


UPDATE = parse_sql('UPDATE "T" SET "V" = \'x\' WHERE "ID" = 1')


class TestTransaction:
    def test_commit_keeps_changes(self):
        db = make_db()
        txn = Transaction(db)
        txn.execute(UPDATE)
        txn.commit()
        assert db.table("T").lookup_pk((1,))["V"] == "x"

    def test_rollback_restores(self):
        db = make_db()
        txn = Transaction(db)
        txn.execute(UPDATE)
        txn.rollback()
        assert db.table("T").lookup_pk((1,))["V"] == "a"

    def test_prepare_then_commit(self):
        db = make_db()
        txn = Transaction(db)
        txn.execute(UPDATE)
        assert txn.prepare() is True
        txn.commit()
        assert txn.state == "committed"

    def test_unavailable_db_votes_no(self):
        db = make_db()
        txn = Transaction(db)
        txn.execute(UPDATE)
        db.available = False
        assert txn.prepare() is False

    def test_cannot_execute_after_commit(self):
        db = make_db()
        txn = Transaction(db)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.execute(UPDATE)

    def test_cannot_rollback_committed(self):
        db = make_db()
        txn = Transaction(db)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.rollback()


class TestTwoPhaseCommit:
    def test_atomic_commit_across_databases(self):
        db1, db2 = make_db("one"), make_db("two")
        xa = TwoPhaseCommit()
        xa.branch(db1).execute(UPDATE)
        xa.branch(db2).execute(UPDATE)
        xa.commit()
        assert db1.table("T").lookup_pk((1,))["V"] == "x"
        assert db2.table("T").lookup_pk((1,))["V"] == "x"

    def test_one_no_vote_rolls_back_everything(self):
        db1, db2 = make_db("one"), make_db("two")
        xa = TwoPhaseCommit()
        xa.branch(db1).execute(UPDATE)
        xa.branch(db2).execute(UPDATE)
        db2.available = False
        with pytest.raises(TransactionError) as err:
            xa.commit()
        assert "two" in str(err.value)
        # both sides rolled back
        assert db1.table("T").lookup_pk((1,))["V"] == "a"
        assert db2.table("T").lookup_pk((1,))["V"] == "a"

    def test_branch_reuse_per_database(self):
        db = make_db()
        xa = TwoPhaseCommit()
        assert xa.branch(db) is xa.branch(db)

    def test_explicit_rollback(self):
        db = make_db()
        xa = TwoPhaseCommit()
        xa.branch(db).execute(UPDATE)
        xa.rollback()
        assert db.table("T").lookup_pk((1,))["V"] == "a"
