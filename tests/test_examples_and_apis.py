"""Examples run green, and the remaining client-API surface works
(streaming to file, demo module, package exports)."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.demo import build_demo_platform

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=120
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


class TestServerSideAPIs:
    def test_execute_to_file_streams(self, tmp_path):
        platform = build_demo_platform(customers=3, deploy_profile=False)
        target = tmp_path / "out.xml"
        count = platform.execute_to_file(
            "for $c in CUSTOMER() return <ROW>{ $c/CID }</ROW>", target
        )
        assert count == 3
        text = target.read_text()
        assert text.count("<ROW>") == 3
        assert "<CID>C1</CID>" in text

    def test_execute_to_file_pretty(self, tmp_path):
        platform = build_demo_platform(customers=1, deploy_profile=False)
        target = tmp_path / "pretty.xml"
        platform.execute_to_file("CUSTOMER()", target, indent=2)
        assert "\n  " in target.read_text()

    def test_stream_supports_early_termination(self):
        platform = build_demo_platform(customers=10, deploy_profile=False)
        stream = platform.stream("for $c in CUSTOMER() return $c/CID")
        first_two = [next(stream), next(stream)]
        assert [i.string_value() for i in first_two] == ["C1", "C2"]
        stream.close()  # generator cleanup must not raise


class TestDemoModule:
    def test_default_demo_platform_profile_works(self):
        platform = build_demo_platform()
        out = platform.call("getProfile")
        assert len(out) == 4

    def test_ws_call_log(self):
        log = []
        platform = build_demo_platform(customers=2, ws_call_log=log)
        platform.call("getProfile")
        assert len(log) == 2


def test_public_package_exports():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name
