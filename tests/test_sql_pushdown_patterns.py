"""The pushdown patterns of Tables 1 and 2 (section 4.4).

Each test compiles the paper's XQuery snippet, asserts the plan collapsed
into a single pushed region whose generated SQL has the paper's shape, and
executes it against the simulated Oracle database to check the results.
"""

import pytest

from repro.clock import VirtualClock
from repro.compiler import Compiler, PushedSQL, TableMeta
from repro.runtime import DynamicContext, Evaluator
from repro.schema import leaf, shape, shape_sequence
from repro.services.metadata import MetadataRegistry, SourceFunctionDef
from repro.relational import Database
from repro.xml import serialize
from repro.xquery.typecheck import FunctionSignature


@pytest.fixture
def env():
    clock = VirtualClock()
    db = Database("custdb", vendor="oracle", clock=clock)
    db.create_table(
        "CUSTOMER",
        [("CID", "VARCHAR", False), ("FIRST_NAME", "VARCHAR"),
         ("LAST_NAME", "VARCHAR"), ("SINCE", "INTEGER")],
        primary_key=["CID"],
    )
    db.create_table(
        "ORDER",
        [("OID", "VARCHAR", False), ("CID", "VARCHAR"), ("AMOUNT", "INTEGER")],
        primary_key=["OID"],
    )
    db.load("CUSTOMER", [
        {"CID": "C1", "FIRST_NAME": "Al", "LAST_NAME": "Jones", "SINCE": 100},
        {"CID": "C2", "FIRST_NAME": "Bo", "LAST_NAME": "Smith", "SINCE": 200},
        {"CID": "C3", "FIRST_NAME": "Cy", "LAST_NAME": "Jones", "SINCE": 300},
    ])
    db.load("ORDER", [
        {"OID": "O1", "CID": "C1", "AMOUNT": 10},
        {"OID": "O2", "CID": "C1", "AMOUNT": 20},
        {"OID": "O3", "CID": "C3", "AMOUNT": 30},
    ])
    registry = MetadataRegistry()
    for table, pk in (("CUSTOMER", ("CID",)), ("ORDER", ("OID",))):
        columns = [(c.name, c.xs_type) for c in db.table(table).columns]
        meta = TableMeta("custdb", table, table, columns, pk, "oracle")
        sig = FunctionSignature(
            table, [], shape_sequence(shape(table, [leaf(n, t, "?") for n, t in columns]))
        )
        registry.register(SourceFunctionDef(table, sig, "table", table_meta=meta))
    compiler = Compiler(registry=registry)
    ctx = DynamicContext(registry, clock=clock)
    ctx.attach_database(db)
    return compiler, Evaluator(ctx), ctx, db


def compile_and_run(env, query):
    compiler, evaluator, ctx, db = env
    plan = compiler.compile_expression(query)
    assert isinstance(plan.expr, PushedSQL), f"not fully pushed: {type(plan.expr)}"
    sql = ctx.renderer(plan.expr.vendor).render(plan.expr.select)
    result = evaluator.eval(plan.expr, {})
    return sql, serialize(result), db


class TestTable1:
    def test_a_simple_select_project(self, env):
        sql, out, db = compile_and_run(env, '''
            for $c in CUSTOMER()
            where $c/CID eq "C1"
            return $c/FIRST_NAME
        ''')
        assert sql == ('SELECT t1."FIRST_NAME" AS c1 FROM "CUSTOMER" t1 '
                       "WHERE t1.\"CID\" = 'C1'")
        assert out == "<FIRST_NAME>Al</FIRST_NAME>"

    def test_b_inner_join(self, env):
        sql, out, _ = compile_and_run(env, '''
            for $c in CUSTOMER(), $o in ORDER()
            where $c/CID eq $o/CID
            return <CUSTOMER_ORDER>{ $c/CID, $o/OID }</CUSTOMER_ORDER>
        ''')
        assert 'JOIN "ORDER" t2 ON t1."CID" = t2."CID"' in sql
        assert "LEFT OUTER" not in sql
        assert out.count("<CUSTOMER_ORDER>") == 3

    def test_c_outer_join_with_nesting(self, env):
        sql, out, _ = compile_and_run(env, '''
            for $c in CUSTOMER()
            return <CUSTOMER>{
                $c/CID,
                for $o in ORDER() where $c/CID eq $o/CID return $o/OID
            }</CUSTOMER>
        ''')
        assert 'LEFT OUTER JOIN "ORDER" t2' in sql
        # every customer appears, childless ones without OIDs
        assert out.count("<CUSTOMER>") == 3
        assert "<CID>C2</CID></CUSTOMER>" in out
        assert "<OID>O1</OID><OID>O2</OID>" in out

    def test_d_if_then_else_case(self, env):
        sql, out, _ = compile_and_run(env, '''
            for $c in CUSTOMER()
            return <CUSTOMER>{
                if ($c/CID eq "C1") then $c/FIRST_NAME else $c/LAST_NAME
            }</CUSTOMER>
        ''')
        assert "CASE WHEN t1.\"CID\" = 'C1' THEN" in sql
        assert "<CUSTOMER>Al</CUSTOMER>" in out
        assert "<CUSTOMER>Smith</CUSTOMER>" in out

    def test_e_group_by_with_aggregation(self, env):
        sql, out, _ = compile_and_run(env, '''
            for $c in CUSTOMER()
            group $c as $p by $c/LAST_NAME as $l
            return <CUSTOMER>{ $l, count($p) }</CUSTOMER>
        ''')
        assert 'COUNT(*)' in sql
        assert 'GROUP BY t1."LAST_NAME"' in sql
        assert "<CUSTOMER>Jones 2</CUSTOMER>" in out

    def test_f_group_by_as_distinct(self, env):
        sql, out, _ = compile_and_run(env, '''
            for $c in CUSTOMER()
            group by $c/LAST_NAME as $l
            return $l
        ''')
        assert sql.startswith("SELECT DISTINCT")
        assert "GROUP BY" not in sql
        assert out == "Jones Smith"


class TestTable2:
    def test_g_outer_join_with_aggregation(self, env):
        sql, out, _ = compile_and_run(env, '''
            for $c in CUSTOMER()
            return <CUSTOMER>{
                $c/CID,
                <ORDERS>{ count(for $o in ORDER() where $o/CID eq $c/CID return $o) }</ORDERS>
            }</CUSTOMER>
        ''')
        assert 'LEFT OUTER JOIN "ORDER" t2' in sql
        assert 'COUNT(t2."OID")' in sql
        assert 'GROUP BY t1."CID"' in sql
        assert "<CID>C2</CID><ORDERS>0</ORDERS>" in out

    def test_h_exists_semi_join(self, env):
        sql, out, _ = compile_and_run(env, '''
            for $c in CUSTOMER()
            where some $o in ORDER() satisfies $c/CID eq $o/CID
            return $c/CID
        ''')
        assert "WHERE EXISTS(SELECT 1 FROM \"ORDER\" t2" in sql
        assert out == "<CID>C1</CID><CID>C3</CID>"

    def test_h_every_becomes_not_exists(self, env):
        sql, out, _ = compile_and_run(env, '''
            for $c in CUSTOMER()
            where every $o in ORDER() satisfies $o/AMOUNT gt 0
            return $c/CID
        ''')
        assert "NOT EXISTS(" in sql
        assert out.count("<CID>") == 3

    def test_i_subsequence_rownum(self, env):
        sql, out, _ = compile_and_run(env, '''
            let $cs :=
              for $c in CUSTOMER()
              let $oc := count(for $o in ORDER() where $c/CID eq $o/CID return $o)
              order by $oc descending
              return <CUSTOMER>{ data($c/CID), $oc }</CUSTOMER>
            return subsequence($cs, 1, 2)
        ''')
        assert "ROWNUM" in sql
        assert "ORDER BY COUNT" in sql
        assert out == "<CUSTOMER>C1 2</CUSTOMER><CUSTOMER>C3 1</CUSTOMER>"


class TestMorePushables:
    def test_let_bound_scalar(self, env):
        sql, out, _ = compile_and_run(env, '''
            for $o in ORDER()
            let $double := $o/AMOUNT * 2
            where $double gt 30
            return $double
        ''')
        assert 'WHERE t1."AMOUNT" * 2 > 30' in sql
        assert out == "40 60"

    def test_string_function_pushed(self, env):
        sql, out, _ = compile_and_run(env, '''
            for $c in CUSTOMER()
            where upper-case($c/LAST_NAME) eq "SMITH"
            return $c/CID
        ''')
        assert 'UPPER(t1."LAST_NAME")' in sql
        assert out == "<CID>C2</CID>"

    def test_contains_becomes_like(self, env):
        sql, out, _ = compile_and_run(env, '''
            for $c in CUSTOMER()
            where contains($c/LAST_NAME, "one")
            return $c/CID
        ''')
        assert "LIKE '%one%'" in sql
        assert out == "<CID>C1</CID><CID>C3</CID>"

    def test_order_by_pushed(self, env):
        sql, out, _ = compile_and_run(env, '''
            for $o in ORDER()
            order by $o/AMOUNT descending
            return $o/OID
        ''')
        assert 'ORDER BY t1."AMOUNT" DESC' in sql
        assert out == "<OID>O3</OID><OID>O2</OID><OID>O1</OID>"

    def test_whole_row_scan(self, env):
        compiler, evaluator, ctx, _ = env
        plan = compiler.compile_expression("CUSTOMER()")
        assert isinstance(plan.expr, PushedSQL)
        out = serialize(evaluator.eval(plan.expr, {}))
        assert out.count("<CUSTOMER>") == 3
        assert "<SINCE>100</SINCE>" in out

    def test_grouped_variable_emitted_raw_clusters_midtier(self, env):
        compiler, evaluator, ctx, _ = env
        plan = compiler.compile_expression('''
            for $c in CUSTOMER()
            let $cid := $c/CID
            group $cid as $ids by $c/LAST_NAME as $name
            return <CUSTOMER_IDS name="{$name}">{ $ids }</CUSTOMER_IDS>
        ''')
        assert isinstance(plan.expr, PushedSQL)
        assert plan.expr.regroup  # clustered-scan mode
        out = serialize(evaluator.eval(plan.expr, {}))
        assert '<CUSTOMER_IDS name="Jones">C1 C3</CUSTOMER_IDS>' in out
        assert '<CUSTOMER_IDS name="Smith">C2</CUSTOMER_IDS>' in out

    def test_parameters_from_external_variables(self, env):
        from repro.schema import atomic

        compiler, evaluator, ctx, _ = env
        plan = compiler.compile_expression('''
            for $c in CUSTOMER() where $c/SINCE gt $threshold return $c/CID
        ''', externals={"threshold": atomic("xs:integer")})
        from repro.xml import AtomicValue

        ctx.external_variables = {"threshold": [AtomicValue(150, "xs:integer")]}
        assert isinstance(plan.expr, PushedSQL)
        assert len(plan.expr.param_exprs) == 1
        out = serialize(evaluator.eval(plan.expr, {}))
        assert out == "<CID>C2</CID><CID>C3</CID>"


class TestNonPushable:
    def test_constructor_never_pushed_but_wrapped(self, env):
        compiler, _, _, _ = env
        plan = compiler.compile_expression(
            'for $c in CUSTOMER() return <X>{ $c/CID }</X>'
        )
        # the region pushes; the constructor lives in the template
        assert isinstance(plan.expr, PushedSQL)
        from repro.xquery import ast

        assert isinstance(plan.expr.template, ast.ElementCtor)

    def test_sybase_pagination_falls_back_midtier(self, env):
        compiler, evaluator, ctx, db = env
        db.vendor = "sybase"
        # re-register metadata with the sybase vendor
        for definition in ctx.registry.functions():
            if definition.table_meta is not None:
                definition.table_meta.vendor = "sybase"
        plan = compiler.compile_expression('''
            let $cs := for $o in ORDER() order by $o/AMOUNT descending return $o/OID
            return subsequence($cs, 1, 2)
        ''')
        from repro.xquery import ast

        assert isinstance(plan.expr, ast.FunctionCall)
        assert plan.expr.name == "fn:subsequence"
        assert isinstance(plan.expr.args[0], PushedSQL)
        out = serialize(evaluator.eval(plan.expr, {}))
        assert out == "<OID>O3</OID><OID>O2</OID>"
