"""Grouping operator tests (sections 4.2, 5.2): the clustered streaming
implementation and the sort fallback."""

from hypothesis import given, strategies as st

from repro.runtime.operators.group import GroupStats, clustered_groups, sorted_groups


class TestClusteredGroups:
    def test_forms_groups_on_key_change(self):
        data = [("a", 1), ("a", 2), ("b", 3), ("a", 4)]
        groups = list(clustered_groups(data, lambda t: (t[0],)))
        assert [(k, len(g)) for k, g in groups] == [(("a",), 2), (("b",), 1), (("a",), 1)]

    def test_empty_input(self):
        assert list(clustered_groups([], lambda t: (t,))) == []

    def test_single_group(self):
        groups = list(clustered_groups([1, 1, 1], lambda t: ("k",)))
        assert len(groups) == 1
        assert groups[0][1] == [1, 1, 1]

    def test_streaming_is_lazy(self):
        consumed = []

        def source():
            for i in range(100):
                consumed.append(i)
                yield i

        stream = clustered_groups(source(), lambda i: (i // 10,))
        next(stream)
        # only the first group plus one lookahead item were pulled
        assert len(consumed) <= 11

    def test_peak_resident_is_group_size(self):
        stats = GroupStats()
        data = [(i // 3, i) for i in range(30)]  # groups of 3
        list(clustered_groups(data, lambda t: (t[0],), stats))
        assert stats.peak_resident == 3
        assert stats.groups_emitted == 10


class TestSortedGroups:
    def test_clusters_unordered_input(self):
        data = ["b", "a", "b", "a", "c"]
        groups = list(sorted_groups(data, lambda s: (s,)))
        assert [k for k, _g in groups] == [("a",), ("b",), ("c",)]
        assert [len(g) for _k, g in groups] == [2, 2, 1]

    def test_sort_materializes_full_input(self):
        stats = GroupStats()
        data = [(i % 5, i) for i in range(50)]
        list(sorted_groups(data, lambda t: (t[0],), stats))
        assert stats.peak_resident == 50  # the memory cost of the fallback

    def test_handles_none_and_mixed_keys(self):
        data = [(None, 1), (2, 2), ("x", 3), (None, 4)]
        groups = list(sorted_groups(data, lambda t: (t[0],)))
        assert groups[0][0] == (None,)
        assert len(groups) == 3


class TestMemoryContrast:
    def test_clustered_constant_memory_vs_sort_linear(self):
        # The paper's claim: pre-clustered grouping runs in memory bounded
        # by one group; the sort fallback is linear in the input.
        for n in (100, 1000):
            clustered_stats = GroupStats()
            list(clustered_groups(
                ((i // 2, i) for i in range(n)), lambda t: (t[0],), clustered_stats))
            sorted_stats = GroupStats()
            list(sorted_groups(
                ((i % (n // 2), i) for i in range(n)), lambda t: (t[0],), sorted_stats))
            assert clustered_stats.peak_resident == 2
            assert sorted_stats.peak_resident == n


@given(st.lists(st.tuples(st.integers(0, 5), st.integers()), max_size=60))
def test_property_sorted_groups_partition_input(data):
    groups = list(sorted_groups(data, lambda t: (t[0],)))
    regathered = sorted(item for _k, members in groups for item in members)
    assert regathered == sorted(data)
    keys = [k for k, _m in groups]
    assert keys == sorted(keys)
    assert len(set(keys)) == len(keys)  # each key appears exactly once


@given(st.lists(st.integers(0, 4), max_size=60))
def test_property_clustered_groups_concatenate_to_input(data):
    groups = list(clustered_groups(data, lambda i: (i,)))
    flattened = [item for _k, members in groups for item in members]
    assert flattened == data
    # adjacent groups never share a key
    keys = [k for k, _m in groups]
    assert all(a != b for a, b in zip(keys, keys[1:]))
