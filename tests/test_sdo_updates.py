"""SDO / lineage / update-decomposition / submit tests (section 6)."""

import pytest

from repro.errors import ConcurrencyError, LineageError, UpdateError
from repro.sdo import ConcurrencyPolicy, DataGraph, DataObject
from repro.xml import parse_element_text



def profile_element():
    return parse_element_text(
        "<PROFILE><CID>C1</CID><LAST_NAME>Jones</LAST_NAME>"
        "<ORDERS>"
        "<ORDER><OID>O1</OID><CID>C1</CID><AMOUNT>10</AMOUNT></ORDER>"
        "<ORDER><OID>O2</OID><CID>C1</CID><AMOUNT>20</AMOUNT></ORDER>"
        "</ORDERS></PROFILE>"
    )


class TestDataObject:
    def test_get_set_and_change_log(self):
        obj = DataObject(profile_element())
        assert obj.get("LAST_NAME") == "Jones"
        obj.set("LAST_NAME", "Smith")
        assert obj.get("LAST_NAME") == "Smith"
        log = obj.change_log()
        assert len(log.changes) == 1
        change = log.changes[0]
        assert change.path == ("PROFILE", "LAST_NAME")
        assert (change.old, change.new) == ("Jones", "Smith")

    def test_typed_accessors(self):
        obj = DataObject(profile_element())
        assert obj.getLAST_NAME() == "Jones"
        obj.setLAST_NAME("Smith")
        assert obj.is_changed()

    def test_indexed_paths(self):
        obj = DataObject(profile_element())
        assert obj.get("ORDERS/ORDER[2]/AMOUNT") == "20"
        obj.set("ORDERS/ORDER[2]/AMOUNT", "25")
        [change] = obj.change_log().changes
        assert change.path == ("PROFILE", "ORDERS", "ORDER[2]", "AMOUNT")

    def test_noop_set_not_recorded(self):
        obj = DataObject(profile_element())
        obj.set("LAST_NAME", "Jones")
        assert not obj.is_changed()

    def test_original_values_snapshot(self):
        obj = DataObject(profile_element())
        log = obj.change_log()
        assert log.original_values[("PROFILE", "LAST_NAME")] == "Jones"
        assert log.original_values[("PROFILE", "ORDERS", "ORDER[1]", "AMOUNT")] == "10"

    def test_bad_path_rejected(self):
        obj = DataObject(profile_element())
        with pytest.raises(UpdateError):
            obj.get("NOPE")
        with pytest.raises(UpdateError):
            obj.set("ORDERS", "x")  # not a leaf

    def test_changelog_serialization_roundtrip(self):
        from repro.sdo import ChangeLog

        obj = DataObject(profile_element())
        obj.set("LAST_NAME", "Smith")
        wire = obj.change_log().serialize()
        rebuilt = ChangeLog.deserialize("PROFILE", wire)
        assert rebuilt.changes[0].new == "Smith"


class TestLineage:
    def test_lineage_of_profile_service(self, platform):
        lineage = platform.lineage("ProfileService")
        assert lineage.root_name == "PROFILE"
        entry = lineage.entry_for(("PROFILE", "LAST_NAME"))
        assert (entry.database, entry.table, entry.column) == (
            "custdb", "CUSTOMER", "LAST_NAME")
        assert entry.key_paths["CID"] == ("PROFILE", "CID")

    def test_nested_order_lineage(self, platform):
        lineage = platform.lineage("ProfileService")
        entry = lineage.entry_for(("PROFILE", "ORDERS", "ORDER", "AMOUNT"))
        assert (entry.table, entry.column) == ("ORDER", "AMOUNT")
        assert entry.key_paths["OID"] == ("PROFILE", "ORDERS", "ORDER", "OID")

    def test_cross_database_lineage(self, platform):
        lineage = platform.lineage("ProfileService")
        entry = lineage.entry_for(("PROFILE", "CREDIT_CARDS", "CREDIT_CARD", "NUMBER"))
        assert entry.database == "ccdb"

    def test_service_sourced_path_has_no_lineage(self, platform):
        lineage = platform.lineage("ProfileService")
        with pytest.raises(LineageError):
            lineage.entry_for(("PROFILE", "RATING"))


class TestSubmit:
    def test_update_touches_only_affected_source(self, platform):
        [obj] = platform.read_for_update("ProfileService", "getProfileByID", "C1")
        obj.setLAST_NAME("Smith")
        ccdb_before = platform.ctx.databases["ccdb"].stats.roundtrips
        result = platform.submit(obj)
        assert result.affected_databases == ["custdb"]
        assert platform.ctx.databases["ccdb"].stats.roundtrips == ccdb_before
        assert platform.ctx.databases["custdb"].table("CUSTOMER") \
            .lookup_pk(("C1",))["LAST_NAME"] == "Smith"

    def test_nested_row_update_targets_right_row(self, platform):
        [obj] = platform.read_for_update("ProfileService", "getProfileByID", "C1")
        obj.set("ORDERS/ORDER[2]/AMOUNT", 99)
        result = platform.submit(obj)
        orders = platform.ctx.databases["custdb"].table("ORDER")
        assert orders.lookup_pk(("O2",))["AMOUNT"] == 99
        assert orders.lookup_pk(("O1",))["AMOUNT"] == 10
        assert result.rows_updated == 1

    def test_multi_source_update_is_atomic(self, platform):
        [obj] = platform.read_for_update("ProfileService", "getProfileByID", "C1")
        obj.setLAST_NAME("Smith")
        obj.set("CREDIT_CARDS/CREDIT_CARD/NUMBER", "9999")
        result = platform.submit(obj)
        assert result.affected_databases == ["ccdb", "custdb"]
        assert platform.ctx.databases["ccdb"].table("CREDIT_CARD") \
            .lookup_pk(("CC1",))["NUMBER"] == "9999"

    def test_failed_branch_rolls_back_everything(self, platform):
        [obj] = platform.read_for_update("ProfileService", "getProfileByID", "C1")
        obj.setLAST_NAME("Smith")
        obj.set("CREDIT_CARDS/CREDIT_CARD/NUMBER", "9999")
        platform.ctx.databases["ccdb"].available = False
        from repro.errors import TransactionError

        with pytest.raises(TransactionError):
            platform.submit(obj)
        # custdb change rolled back
        assert platform.ctx.databases["custdb"].table("CUSTOMER") \
            .lookup_pk(("C1",))["LAST_NAME"] == "Jones"

    def test_optimistic_values_updated_detects_conflict(self, platform):
        [obj] = platform.read_for_update("ProfileService", "getProfileByID", "C1")
        # concurrent writer changes the same column
        platform.ctx.databases["custdb"].table("CUSTOMER").update_at(0, {"LAST_NAME": "Hacked"})
        obj.setLAST_NAME("Smith")
        with pytest.raises(ConcurrencyError):
            platform.submit(obj, policy=ConcurrencyPolicy.values_updated())

    def test_values_read_policy_detects_sibling_conflict(self, platform):
        [obj] = platform.read_for_update("ProfileService", "getProfileByID", "C1")
        # concurrent writer changes a *different* column the client read
        platform.ctx.databases["custdb"].table("CUSTOMER").update_at(0, {"LAST_NAME": "Other"})
        obj.set("CID", "C1")  # no-op; change something else instead
        obj.setLAST_NAME("Smith")  # this *would* conflict under both policies
        with pytest.raises(ConcurrencyError):
            platform.submit(obj, policy=ConcurrencyPolicy.values_read())

    def test_none_policy_last_writer_wins(self, platform):
        [obj] = platform.read_for_update("ProfileService", "getProfileByID", "C1")
        platform.ctx.databases["custdb"].table("CUSTOMER").update_at(0, {"LAST_NAME": "Other"})
        obj.setLAST_NAME("Smith")
        result = platform.submit(obj, policy=ConcurrencyPolicy.none())
        assert result.rows_updated == 1

    def test_changes_discarded_after_successful_submit(self, platform):
        [obj] = platform.read_for_update("ProfileService", "getProfileByID", "C1")
        obj.setLAST_NAME("Smith")
        platform.submit(obj)
        assert not obj.is_changed()

    def test_empty_submit_is_noop(self, platform):
        [obj] = platform.read_for_update("ProfileService", "getProfileByID", "C1")
        result = platform.submit(obj)
        assert result.rows_updated == 0
        assert result.affected_databases == []

    def test_datagraph_submits_multiple_objects(self, platform):
        objects = platform.read_for_update("ProfileService", "getProfile")
        for i, obj in enumerate(objects):
            obj.setLAST_NAME(f"Renamed{i}")
        result = platform.submit(DataGraph(objects))
        assert result.rows_updated == 2

    def test_update_override_replaces_default(self, platform):
        handled = []

        def override(obj, updates):
            handled.append((obj.root_name, len(updates)))
            return True

        platform.register_update_override("ProfileService", override)
        [obj] = platform.read_for_update("ProfileService", "getProfileByID", "C1")
        obj.setLAST_NAME("Smith")
        result = platform.submit(obj)
        assert handled == [("PROFILE", 1)]
        assert result.rows_updated == 0  # default handling skipped
        assert platform.ctx.databases["custdb"].table("CUSTOMER") \
            .lookup_pk(("C1",))["LAST_NAME"] == "Jones"

    def test_update_of_service_backed_value_rejected(self, platform):
        [obj] = platform.read_for_update("ProfileService", "getProfileByID", "C1")
        obj.set("RATING", 999)
        with pytest.raises(LineageError):
            platform.submit(obj)
