"""Prepared-statement caching and pipelined PP-k (roundtrip-path perf).

Covers the per-database LRU statement cache (hit/miss/eviction order, DDL
invalidation, parse-latency accounting), PP-k bucket padding (NULL pads
must not match rows, and padding is what lets varying block sizes share
one cached statement), and the pipelined PP-k prefetch (strictly lower
virtual-clock elapsed, identical results under wall and virtual clocks).
"""

from __future__ import annotations

import threading

import pytest

from repro.clock import VirtualClock, WallClock
from repro.demo import build_demo_platform
from repro.errors import DynamicError, SQLError
from repro.relational import Connection, Database, LatencyModel
from repro.xml.serialize import serialize_item

POINT_QUERY = 'SELECT t1."NAME" AS c1 FROM "T" t1 WHERE t1."ID" = ?'

PPK_QUERY = """
for $c in CUSTOMER()
return <OUT>{ $c/CID,
    <CARDS>{ for $cc in CREDIT_CARD() where $cc/CID eq $c/CID
             return $cc/NUMBER }</CARDS> }</OUT>
"""


def make_db(**kwargs) -> Database:
    db = Database("d", **kwargs)
    db.create_table(
        "T", [("ID", "INTEGER", False), ("NAME", "VARCHAR")], primary_key=["ID"]
    )
    db.load("T", [{"ID": 1, "NAME": "a"}, {"ID": 2, "NAME": "b"}])
    return db


def run_profile(customers: int, k: int, pipelined: bool = True,
                cache: bool = True, clock=None, db_latency=None):
    platform = build_demo_platform(
        customers=customers, orders_per_customer=0, deploy_profile=False,
        clock=clock,
        db_latency=db_latency or LatencyModel(roundtrip_ms=5.0, per_row_ms=0.05),
    )
    platform.set_ppk_block_size(k)
    platform.set_ppk_pipelining(pipelined)
    platform.set_statement_cache_enabled(cache)
    start = platform.clock.now_ms()
    result = [serialize_item(item) for item in platform.execute(PPK_QUERY)]
    elapsed = platform.clock.now_ms() - start
    return platform, result, elapsed


# ---------------------------------------------------------------------------
# Statement cache: connection-level behaviour
# ---------------------------------------------------------------------------


class TestStatementCache:
    def test_repeated_statement_parses_once(self):
        db = make_db()
        conn = Connection(db)
        for key in (1, 2, 1):
            conn.execute_query(POINT_QUERY, [key])
        assert db.stats.parses == 1
        assert db.stats.stmt_cache_misses == 1
        assert db.stats.stmt_cache_hits == 2
        assert conn.prepare(POINT_QUERY) is conn.prepare(POINT_QUERY)

    def test_lru_eviction_order(self):
        db = make_db(statement_cache_capacity=2)
        conn = Connection(db)
        s1 = 'SELECT t1."ID" AS c1 FROM "T" t1'
        s2 = 'SELECT t1."NAME" AS c1 FROM "T" t1'
        s3 = 'SELECT t1."ID" AS c1, t1."NAME" AS c2 FROM "T" t1'
        conn.prepare(s1)
        conn.prepare(s2)
        conn.prepare(s1)  # touch: s2 becomes the LRU entry
        conn.prepare(s3)  # evicts s2, not s1
        assert db.statements.cached_sql() == [s1, s3]
        assert db.stats.stmt_cache_evictions == 1
        conn.prepare(s2)  # re-prepare the evicted text: a fresh miss
        assert db.stats.parses == 4

    def test_ddl_invalidates_cache(self):
        db = make_db()
        conn = Connection(db)
        conn.prepare(POINT_QUERY)
        assert len(db.statements) == 1
        db.create_table("U", [("ID", "INTEGER", False)])
        assert len(db.statements) == 0
        assert db.statements.invalidations == 1
        conn.prepare(POINT_QUERY)
        assert db.stats.parses == 2
        db.drop_table("U")
        assert len(db.statements) == 0
        assert db.statements.invalidations == 2

    def test_prepare_resolves_tables_early(self):
        db = make_db()
        conn = Connection(db)
        with pytest.raises(SQLError, match="no table NOPE"):
            conn.prepare('SELECT t1."X" AS c1 FROM "NOPE" t1')
        prepared = conn.prepare(POINT_QUERY)
        assert set(prepared.tables) == {"T"}
        assert prepared.is_query

    def test_prepare_dml_statement(self):
        db = make_db()
        prepared = db.statements.prepare(
            "UPDATE \"T\" SET \"NAME\" = 'z' WHERE \"ID\" = 1"
        )
        assert not prepared.is_query
        assert set(prepared.tables) == {"T"}
        conn = Connection(db)
        assert conn.execute_update(prepared) == 1
        assert db.table("T").lookup_pk((1,))["NAME"] == "z"

    def test_disabled_cache_parses_every_time(self):
        db = make_db()
        db.statements.enabled = False
        conn = Connection(db)
        conn.execute_query(POINT_QUERY, [1])
        conn.execute_query(POINT_QUERY, [2])
        assert db.stats.parses == 2
        assert db.stats.stmt_cache_hits == 0

    def test_parse_latency_charged_on_hard_parse_only(self):
        clock = VirtualClock()
        db = make_db(
            latency=LatencyModel(roundtrip_ms=0.0, per_row_ms=0.0, parse_ms=2.0),
            clock=clock,
        )
        conn = Connection(db)
        for key in (1, 2, 1):
            conn.execute_query(POINT_QUERY, [key])
        assert clock.now_ms() == pytest.approx(2.0)  # one hard parse, two hits


# ---------------------------------------------------------------------------
# PP-k: bucketed statements, padding, pipelining
# ---------------------------------------------------------------------------


class TestPPkRoundtripPath:
    def test_parse_count_one_per_region_bucket(self):
        # 100 customers / k=20 -> 5 full blocks, all in the same bucket:
        # the disjunctive statement is hard-parsed exactly once.
        platform, result, _ = run_profile(customers=100, k=20)
        ccdb = platform.ctx.databases["ccdb"]
        assert len(result) == 100
        assert platform.ctx.stats.ppk_blocks == 5
        assert ccdb.stats.roundtrips == 5
        assert ccdb.stats.parses == 1
        assert ccdb.stats.stmt_cache_hits == 4
        # cache off: every block pays the parse again
        platform_off, result_off, _ = run_profile(customers=100, k=20, cache=False)
        assert result_off == result
        assert platform_off.ctx.databases["ccdb"].stats.parses == 5

    def test_bucket_padding_shares_statement_and_never_matches(self):
        # 11 customers / k=4 -> blocks of 4, 4, 3; the 3-key tail block is
        # padded to the 4-ary bucket with a NULL, so all three blocks share
        # one statement — and the NULL pad must not match any row, not even
        # a CREDIT_CARD row whose CID is NULL.
        platform = build_demo_platform(customers=11, orders_per_customer=0,
                                       deploy_profile=False)
        ccdb = platform.ctx.databases["ccdb"]
        ccdb.table("CREDIT_CARD").insert(
            {"CCID": "CCX", "CID": None, "NUMBER": "NEVER"}
        )
        platform.set_ppk_block_size(4)
        result = [serialize_item(i) for i in platform.execute(PPK_QUERY)]
        assert len(result) == 11
        assert all("NEVER" not in item for item in result)
        assert ccdb.stats.rows_shipped == 11  # padding fetched no extra rows
        assert ccdb.stats.parses == 1  # one (region, bucket) pair
        # identical to the unpipelined, uncached execution
        platform2 = build_demo_platform(customers=11, orders_per_customer=0,
                                        deploy_profile=False)
        platform2.ctx.databases["ccdb"].table("CREDIT_CARD").insert(
            {"CCID": "CCX", "CID": None, "NUMBER": "NEVER"}
        )
        platform2.set_ppk_block_size(4)
        platform2.set_ppk_pipelining(False)
        platform2.set_statement_cache_enabled(False)
        baseline = [serialize_item(i) for i in platform2.execute(PPK_QUERY)]
        assert result == baseline

    def test_pipelined_strictly_faster_than_serial_same_results(self):
        _, serial_result, serial_ms = run_profile(customers=60, k=10,
                                                  pipelined=False)
        _, piped_result, piped_ms = run_profile(customers=60, k=10,
                                                pipelined=True)
        assert piped_result == serial_result
        assert piped_ms < serial_ms

    def test_wall_clock_matches_virtual_clock_results(self):
        _, virtual_result, _ = run_profile(customers=12, k=4)
        fast = LatencyModel(roundtrip_ms=1.0, per_row_ms=0.01)
        before = set(threading.enumerate())
        platform, wall_result, _ = run_profile(customers=12, k=4,
                                               clock=WallClock(),
                                               db_latency=fast)
        assert wall_result == virtual_result
        platform.close()
        assert platform.ctx.async_exec._pool is None
        # close() joins the prefetch workers: no thread this run spawned
        # survives it (shutdown(wait=True), the Platform-reset leak fix)
        assert set(threading.enumerate()) <= before

    def test_missing_correlation_alias_raises_dynamic_error(self, monkeypatch):
        platform = build_demo_platform(customers=4, orders_per_customer=0,
                                       deploy_profile=False)
        platform.set_ppk_block_size(2)
        original = Connection.execute_query

        def broken(self, sql, params=None):
            rows = original(self, sql, params)
            if self.db.name == "ccdb":
                rows = [{"bogus": row.get("c1")} for row in rows]
            return rows

        monkeypatch.setattr(Connection, "execute_query", broken)
        with pytest.raises(DynamicError, match="correlation alias"):
            platform.execute(PPK_QUERY)

    def test_platform_statement_cache_introspection(self):
        platform, _, _ = run_profile(customers=20, k=5)
        stats = platform.statement_cache_stats()
        assert set(stats) == {"custdb", "ccdb"}
        ccdb = stats["ccdb"]
        assert ccdb["enabled"] and ccdb["size"] >= 1
        assert ccdb["hits"] + ccdb["misses"] == ccdb["hits"] + ccdb["parses"]
        platform.set_statement_cache_enabled(False)
        assert not platform.statement_cache_stats()["ccdb"]["enabled"]
        assert platform.statement_cache_stats()["ccdb"]["size"] == 0
