"""Inverse-function tests (section 4.5): the int2date/date2int scenario.

The paper's derivation: registering ``date2int`` as the inverse of
``int2date`` plus the rule ``(gt, int2date) -> gt-intfromdate`` lets the
optimizer turn ``int2date($c/SINCE) gt $start`` into a pushable predicate
``$c/SINCE gt date2int($start)`` — shipped as
``WHERE t1."SINCE" > ?``.
"""

import pytest

from repro.compiler import PushedSQL
from repro.errors import StaticError
from repro.compiler.inverse import InverseRegistry
from repro.xquery import ast, parse_expression
from repro.xquery.normalize import normalize

from tests.conftest import build_platform

_EPOCH_DAY = 86400

# A toy int2date: seconds-since-epoch -> "day-N" strings that order the
# same way (enough to exercise the machinery without a datetime library).


def int2date(seconds):
    return f"day-{seconds // _EPOCH_DAY:010d}"


def date2int(day):
    return int(day.split("-")[1]) * _EPOCH_DAY


GT_RULE_BODY = '''
declare function gt-intfromdate($x1, $x2) as xs:boolean? {
  date2int($x1) gt date2int($x2)
};
'''


def platform_with_inverses():
    platform = build_platform(customers=3, deploy_profile=False)
    platform.register_java_function("int2date", int2date, ["xs:integer"], "xs:string")
    platform.register_java_function("date2int", date2int, ["xs:string"], "xs:integer")
    platform.register_inverse("int2date", "date2int")
    platform.register_transform_rule("gt", "int2date", "gt-intfromdate")
    platform.deploy(GT_RULE_BODY, name="inverse-rules")
    platform.deploy('''
        (::pragma function kind="read" ::)
        declare function getSince() as element(SINCE_VIEW)* {
          for $c in CUSTOMER()
          return <SINCE_VIEW>
            <CID>{data($c/CID)}</CID>
            <SINCE>{int2date($c/SINCE)}</SINCE>
          </SINCE_VIEW>
        };
    ''', name="SinceService")
    return platform


class TestRegistry:
    def test_inverse_declaration(self):
        registry = InverseRegistry()
        registry.declare_inverse("f", "g")
        assert registry.inverse_of("f") == "g"
        assert registry.is_inverse_pair("g", "f")
        assert registry.is_inverse_pair("f", "g")

    def test_rule_requires_value_comparison(self):
        registry = InverseRegistry()
        with pytest.raises(StaticError):
            registry.register_rule("contains", "f", "g")

    def test_cancellation_rewrite(self):
        registry = InverseRegistry()
        registry.declare_inverse("int2date", "date2int")
        expr = normalize(parse_expression("date2int(int2date($x))"))
        result = registry.cancel_inverses(expr)
        assert isinstance(result, ast.VarRef)

    def test_cancellation_through_data_wrapper(self):
        registry = InverseRegistry()
        registry.declare_inverse("f", "g")
        expr = normalize(parse_expression("g(data(f($x)))"))
        assert isinstance(registry.cancel_inverses(expr), ast.VarRef)

    def test_transform_rule_rewrites_comparison(self):
        registry = InverseRegistry()
        registry.register_rule("gt", "int2date", "gt-intfromdate")
        expr = normalize(parse_expression("int2date($x) gt $start"))
        rewritten = registry.apply_transforms(expr)
        assert isinstance(rewritten, ast.FunctionCall)
        assert rewritten.name == "gt-intfromdate"

    def test_mirrored_rule(self):
        registry = InverseRegistry()
        registry.register_rule("lt", "f", "repl")
        # f($x) on the right of gt == f($x) lt ... mirrored
        expr = normalize(parse_expression("$start gt f($x)"))
        rewritten = registry.apply_transforms(expr)
        assert isinstance(rewritten, ast.FunctionCall)
        assert rewritten.name == "repl"

    def test_no_rule_no_rewrite(self):
        registry = InverseRegistry()
        expr = normalize(parse_expression("f($x) gt $y"))
        assert isinstance(registry.apply_transforms(expr), ast.Comparison)


class TestEndToEnd:
    def test_predicate_becomes_pushable(self):
        platform = platform_with_inverses()
        plan = platform.prepare('''
            for $v in getSince()
            where $v/SINCE gt int2date(2500000)
            return $v/CID
        ''')
        assert isinstance(plan.expr, PushedSQL)
        sql = platform.ctx.renderer("oracle").render(plan.expr.select)
        assert 't1."SINCE" >' in sql
        assert "int2date" not in sql

    def test_results_correct_through_rewrite(self):
        platform = platform_with_inverses()
        out = platform.execute('''
            for $v in getSince()
            where $v/SINCE gt int2date(2500000)
            return $v/CID
        ''')
        # SINCE values are 1e6, 2e6, 3e6; int2date floors to days:
        # day(2500000)=28; customers with day(SINCE) > 28: C3 (day 34).
        from repro.xml import serialize

        assert serialize(out) == "<CID>C3</CID>"

    def test_without_rule_predicate_not_pushed(self):
        platform = build_platform(customers=3, deploy_profile=False)
        platform.register_java_function("int2date", int2date, ["xs:integer"], "xs:string")
        platform.register_java_function("date2int", date2int, ["xs:string"], "xs:integer")
        plan = platform.prepare('''
            for $c in CUSTOMER()
            where int2date($c/SINCE) gt int2date(2500000)
            return $c/CID
        ''')
        # the black-box Java function blocks full pushdown (section 4.5)
        assert not isinstance(plan.expr, PushedSQL)

    def test_update_through_transform_uses_inverse(self):
        platform = platform_with_inverses()
        [obj] = platform.read_for_update("SinceService", "getSince")[:1]
        assert obj.get("SINCE") == int2date(864000)
        obj.set("SINCE", int2date(40 * _EPOCH_DAY))
        result = platform.submit(obj)
        assert result.rows_updated == 1
        stored = platform.ctx.databases["custdb"].table("CUSTOMER").lookup_pk(("C1",))
        assert stored["SINCE"] == 40 * _EPOCH_DAY

    def test_update_without_inverse_fails_cleanly(self):
        from repro.errors import LineageError

        platform = build_platform(customers=1, deploy_profile=False)
        platform.register_java_function("int2date", int2date, ["xs:integer"], "xs:string")
        platform.deploy('''
            (::pragma function kind="read" ::)
            declare function getSince() as element(SINCE_VIEW)* {
              for $c in CUSTOMER()
              return <SINCE_VIEW><CID>{data($c/CID)}</CID>
                     <SINCE>{int2date($c/SINCE)}</SINCE></SINCE_VIEW>
            };
        ''', name="SinceService")
        [obj] = platform.read_for_update("SinceService", "getSince")
        obj.set("SINCE", "day-0000000099")
        with pytest.raises(LineageError):
            platform.submit(obj)
