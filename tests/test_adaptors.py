"""Adaptor framework tests (section 5.3): Web service, Java function,
XML/CSV file sources."""

import pytest

from repro.clock import VirtualClock
from repro.errors import SchemaError, SourceError
from repro.schema import leaf, shape
from repro.sources import (
    Adaptor,
    CSVFileAdaptor,
    JavaFunctionAdaptor,
    WebServiceAdaptor,
    WebServiceDescriptor,
    WebServiceOperation,
    XMLFileAdaptor,
    from_python,
    to_python,
)
from repro.xml import AtomicValue, element, serialize


class TestBaseProtocol:
    def test_unavailable_source_raises(self):
        adaptor = Adaptor("x")
        adaptor.available = False
        with pytest.raises(SourceError):
            adaptor.invoke([])

    def test_extra_latency_charged(self):
        clock = VirtualClock()

        class Echo(Adaptor):
            def call(self, connection, params):
                return None

            def translate_result(self, result):
                return [AtomicValue(1, "xs:integer")]

        adaptor = Echo("x", clock)
        adaptor.extra_latency_ms = 25.0
        adaptor.invoke([])
        assert clock.now_ms() == 25.0
        assert adaptor.invocations == 1


RATING_IN = shape("req", [leaf("name", "xs:string")])
RATING_OUT = shape("resp", [leaf("score", "xs:integer")])


def doc_service(handler, latency=5.0):
    op = WebServiceOperation("op", RATING_IN, RATING_OUT, handler, latency_ms=latency)
    return WebServiceAdaptor(WebServiceDescriptor("S", [op]), op, VirtualClock())


class TestWebServiceAdaptor:
    def test_document_style_roundtrip(self):
        def handler(doc):
            name = doc.child_elements()[0].string_value()
            return element("resp", element("score", len(name)))

        adaptor = doc_service(handler)
        [result] = adaptor.invoke([[element("req", element("name", "Jones"))]])
        assert serialize(result) == "<resp><score>5</score></resp>"
        # result came through schema validation -> typed token stream
        assert result.child_elements()[0].type_annotation == "xs:integer"

    def test_latency_charged(self):
        adaptor = doc_service(lambda doc: element("resp", element("score", 1)),
                              latency=30.0)
        adaptor.invoke([[element("req", element("name", "x"))]])
        assert adaptor.clock.now_ms() == 30.0

    def test_input_validated(self):
        adaptor = doc_service(lambda doc: element("resp", element("score", 1)))
        with pytest.raises(SchemaError):
            adaptor.invoke([[element("req", element("WRONG", "x"))]])

    def test_output_validated(self):
        adaptor = doc_service(lambda doc: element("resp", element("bogus", 1)))
        with pytest.raises(SchemaError):
            adaptor.invoke([[element("req", element("name", "x"))]])

    def test_rpc_style(self):
        op = WebServiceOperation("add", None, shape("sum", [leaf("v", "xs:integer")]),
                                 lambda a, b: element("sum", element("v", a + b)),
                                 style="rpc")
        adaptor = WebServiceAdaptor(WebServiceDescriptor("S", [op]), op, VirtualClock())
        [result] = adaptor.invoke([[AtomicValue(2, "xs:integer")],
                                   [AtomicValue(3, "xs:integer")]])
        assert result.string_value() == "5"

    def test_document_style_requires_one_element(self):
        adaptor = doc_service(lambda doc: element("resp", element("score", 1)))
        with pytest.raises(SourceError):
            adaptor.invoke([[AtomicValue("not-an-element", "xs:string")]])


class TestJavaFunctionAdaptor:
    def test_scalar_roundtrip(self):
        adaptor = JavaFunctionAdaptor("triple", lambda x: x * 3)
        [result] = adaptor.invoke([[AtomicValue(4, "xs:integer")]])
        assert result == AtomicValue(12, "xs:integer")

    def test_none_is_empty_sequence(self):
        adaptor = JavaFunctionAdaptor("nothing", lambda x: None)
        assert adaptor.invoke([[AtomicValue(1, "xs:integer")]]) == []

    def test_array_support(self):
        adaptor = JavaFunctionAdaptor("spread", lambda xs: [x + 1 for x in xs])
        out = adaptor.invoke([[AtomicValue(1, "xs:integer"), AtomicValue(2, "xs:integer")]])
        assert [a.value for a in out] == [2, 3]

    def test_element_argument_atomized(self):
        adaptor = JavaFunctionAdaptor("echo", lambda x: x)
        [result] = adaptor.invoke([[element("X", 9, type_annotation="xs:integer")]])
        assert result.value == 9

    def test_unmappable_result_rejected(self):
        adaptor = JavaFunctionAdaptor("bad", lambda x: object())
        with pytest.raises(SourceError):
            adaptor.invoke([[AtomicValue(1, "xs:integer")]])

    def test_conversion_helpers(self):
        assert to_python([AtomicValue(5, "xs:integer")]) == 5
        assert to_python([]) is None
        assert [a.value for a in from_python([1, 2])] == [1, 2]
        assert from_python(True)[0].type_name == "xs:boolean"


RECORD = shape("ROW", [leaf("ID", "xs:integer"), leaf("NAME", "xs:string", "?")])


class TestFileAdaptors:
    def test_xml_file(self, tmp_path):
        path = tmp_path / "data.xml"
        path.write_text("<ROWS><ROW><ID>1</ID><NAME>a</NAME></ROW>"
                        "<ROW><ID>2</ID></ROW></ROWS>")
        adaptor = XMLFileAdaptor("rows", path, RECORD, VirtualClock())
        out = adaptor.invoke([])
        assert len(out) == 2
        assert out[0].child_elements()[0].typed_value()[0].value == 1

    def test_xml_file_validation_failure(self, tmp_path):
        path = tmp_path / "bad.xml"
        path.write_text("<ROWS><ROW><WRONG>1</WRONG></ROW></ROWS>")
        adaptor = XMLFileAdaptor("rows", path, RECORD, VirtualClock())
        with pytest.raises(SchemaError):
            adaptor.invoke([])

    def test_missing_file_is_source_error(self, tmp_path):
        adaptor = XMLFileAdaptor("rows", tmp_path / "nope.xml", RECORD, VirtualClock())
        with pytest.raises(SourceError):
            adaptor.invoke([])

    def test_csv_file_with_header(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("ID,NAME\n1,alpha\n2,beta\n")
        adaptor = CSVFileAdaptor("rows", path, RECORD, clock=VirtualClock())
        out = adaptor.invoke([])
        assert serialize(out[1]) == "<ROW><ID>2</ID><NAME>beta</NAME></ROW>"

    def test_csv_missing_value_is_missing_element(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("ID,NAME\n1,\n")
        adaptor = CSVFileAdaptor("rows", path, RECORD, clock=VirtualClock())
        [row] = adaptor.invoke([])
        assert serialize(row) == "<ROW><ID>1</ID></ROW>"

    def test_csv_wrong_field_count_rejected(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("ID,NAME\n1,a,EXTRA\n")
        adaptor = CSVFileAdaptor("rows", path, RECORD, clock=VirtualClock())
        with pytest.raises(SourceError):
            adaptor.invoke([])

    def test_csv_shape_must_be_flat(self, tmp_path):
        from repro.schema import group

        nested = shape("ROW", [group("INNER", [leaf("X", "xs:string")])])
        with pytest.raises(SourceError):
            CSVFileAdaptor("rows", tmp_path / "x.csv", nested)
