"""Parser tests: FLWGOR, constructors, paths, prolog, ALDSP extensions."""

import pytest

from repro.errors import ParseError
from repro.xquery import ast, parse_expression, parse_module


class TestExpressions:
    def test_literals(self):
        assert parse_expression("42").value.value == 42
        assert parse_expression('"hi"').value.value == "hi"
        assert parse_expression("3.5").value.type_name == "xs:decimal"

    def test_sequence_expression(self):
        e = parse_expression("1, 2, 3")
        assert isinstance(e, ast.SequenceExpr)
        assert len(e.items) == 3

    def test_empty_sequence(self):
        assert isinstance(parse_expression("()"), ast.EmptySequence)

    def test_arithmetic_precedence(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, ast.Arithmetic) and e.op == "+"
        assert isinstance(e.right, ast.Arithmetic) and e.right.op == "*"

    def test_value_vs_general_comparison(self):
        value = parse_expression("$a eq $b")
        general = parse_expression("$a = $b")
        assert not value.general
        assert general.general
        assert value.op == general.op == "eq"

    def test_logical_operators(self):
        e = parse_expression("$a and $b or $c")
        assert isinstance(e, ast.OrExpr)
        assert isinstance(e.left, ast.AndExpr)

    def test_if_then_else(self):
        e = parse_expression('if ($x) then 1 else 2')
        assert isinstance(e, ast.IfExpr)

    def test_quantified(self):
        e = parse_expression("some $o in ORDERS() satisfies $o/CID eq $c/CID")
        assert isinstance(e, ast.Quantified)
        assert e.kind == "some"
        assert e.bindings[0][0] == "o"

    def test_instance_of(self):
        e = parse_expression("$x instance of xs:integer")
        assert isinstance(e, ast.CastExpr) and e.kind == "instance"

    def test_cast_as(self):
        e = parse_expression('"5" cast as xs:integer')
        assert e.kind == "cast"
        assert e.target.show() == "xs:integer"

    def test_range(self):
        assert isinstance(parse_expression("1 to 5"), ast.RangeTo)

    def test_unary_minus(self):
        assert isinstance(parse_expression("-$x"), ast.UnaryMinus)


class TestPaths:
    def test_relative_path_on_variable(self):
        e = parse_expression("$c/CID")
        assert isinstance(e, ast.PathExpr)
        assert e.steps[0].test.name == "CID"

    def test_bare_name_is_context_path(self):
        e = parse_expression("CID")
        assert isinstance(e, ast.PathExpr)
        assert isinstance(e.base, ast.ContextItem)

    def test_attribute_step(self):
        e = parse_expression("$c/@id")
        assert e.steps[0].axis == "attribute"

    def test_descendant_step(self):
        e = parse_expression("$c//OID")
        assert e.steps[0].axis == "descendant"

    def test_predicates_on_step(self):
        e = parse_expression("$c/ORDER[AMOUNT gt 5][1]")
        assert len(e.steps[0].predicates) == 2

    def test_filter_on_function_call(self):
        e = parse_expression('getProfile()[CID eq $id]')
        assert isinstance(e, ast.FilterExpr)
        assert isinstance(e.base, ast.FunctionCall)

    def test_text_kind_test(self):
        e = parse_expression("$c/text()")
        assert isinstance(e.steps[0].test, ast.KindTest)

    def test_wildcard(self):
        e = parse_expression("$c/*")
        assert e.steps[0].test.name == "*"


class TestFLWGOR:
    def test_clause_order(self):
        e = parse_expression(
            "for $c in CUSTOMER() let $n := $c/LAST_NAME where $n eq 'J' "
            "order by $n descending return $n"
        )
        kinds = [type(c).__name__ for c in e.clauses]
        assert kinds == ["ForClause", "LetClause", "WhereClause", "OrderByClause"]
        assert e.clauses[3].specs[0].descending

    def test_multiple_for_bindings(self):
        e = parse_expression("for $a in X(), $b in Y() return 1")
        assert [c.var for c in e.clauses] == ["a", "b"]

    def test_positional_variable(self):
        e = parse_expression("for $x at $i in X() return $i")
        assert e.clauses[0].pos_var == "i"

    def test_group_clause_full_form(self):
        e = parse_expression(
            "for $c in CUSTOMER() let $cid := $c/CID "
            "group $cid as $ids by $c/LAST_NAME as $name "
            "return $ids"
        )
        group = e.clauses[2]
        assert isinstance(group, ast.GroupByClause)
        assert group.grouped == [("cid", "ids")]
        assert group.keys[0][1] == "name"

    def test_group_clause_keys_only(self):
        e = parse_expression("for $c in C() group by $c/L as $l return $l")
        group = e.clauses[1]
        assert group.grouped == []

    def test_group_key_without_as_gets_fresh_var(self):
        e = parse_expression("for $c in C() group $c as $g by $c/L return count($g)")
        assert e.clauses[1].keys[0][1].startswith("#")

    def test_order_by_empty_greatest(self):
        e = parse_expression("for $x in X() order by $x empty greatest return $x")
        assert e.clauses[1].specs[0].empty_greatest

    def test_declared_type_on_for(self):
        e = parse_expression("for $c as element(CUSTOMER) in CUSTOMER() return $c")
        assert e.clauses[0].declared_type.show() == "element(CUSTOMER)"


class TestConstructors:
    def test_direct_element(self):
        e = parse_expression("<OUT><A>1</A></OUT>")
        assert isinstance(e, ast.ElementCtor)
        assert e.name == "OUT"
        inner = e.content[0]
        assert isinstance(inner, ast.ElementCtor) and inner.name == "A"

    def test_enclosed_expressions(self):
        e = parse_expression("<OUT>{$x}</OUT>")
        assert isinstance(e.content[0], ast.VarRef)

    def test_mixed_text_and_expr(self):
        e = parse_expression("<OUT>id: {$x}!</OUT>")
        assert [type(c).__name__ for c in e.content] == ["Literal", "VarRef", "Literal"]

    def test_attribute_with_enclosed_expr(self):
        e = parse_expression('<OUT name="{$n}" fixed="x"/>')
        assert isinstance(e.attributes[0].value, ast.VarRef)
        assert e.attributes[1].value.value.value == "x"

    def test_optional_element_marker(self):
        e = parse_expression("<FIRST_NAME?>{$f}</FIRST_NAME>")
        assert e.optional

    def test_optional_attribute_marker(self):
        e = parse_expression('<OUT rating?="{$r}"/>')
        assert e.attributes[0].optional

    def test_brace_escapes(self):
        e = parse_expression("<OUT>{{literal}}</OUT>")
        assert e.content[0].value.value == "{literal}"

    def test_entities_in_content(self):
        e = parse_expression("<OUT>&amp;</OUT>")
        assert e.content[0].value.value == "&"

    def test_namespace_prefix_stripped(self):
        e = parse_expression("<tns:PROFILE/>")
        assert e.name == "PROFILE"

    def test_boundary_whitespace_stripped(self):
        e = parse_expression("<OUT>\n  <A>1</A>\n</OUT>")
        assert all(isinstance(c, ast.ElementCtor) for c in e.content)

    def test_computed_element(self):
        e = parse_expression("element OUT { $x }")
        assert isinstance(e, ast.ElementCtor)
        assert e.name == "OUT"

    def test_nested_constructor_in_function_arg(self):
        e = parse_expression("getRating(<getRating><ssn>{$s}</ssn></getRating>)")
        assert isinstance(e, ast.FunctionCall)
        assert isinstance(e.args[0], ast.ElementCtor)

    def test_mismatched_tags_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("<A></B>")


class TestProlog:
    def test_module_with_functions(self):
        module = parse_module(
            'xquery version "1.0";\n'
            'declare namespace tns="urn:x";\n'
            "declare function tns:one() as xs:integer { 1 };\n"
            "declare function tns:two($a as xs:string) as xs:string { $a };\n"
        )
        assert set(module.functions) == {("one", 0), ("two", 1)}
        assert module.namespaces["tns"] == "urn:x"

    def test_pragma_attached_to_function(self):
        module = parse_module(
            '(::pragma function kind="read" ::)\n'
            "declare function f() as xs:integer { 1 };"
        )
        assert module.function("f", 0).kind == "read"

    def test_external_function(self):
        module = parse_module("declare function ext($x as xs:string) as xs:string external;")
        assert module.function("ext", 1).external

    def test_variable_declaration(self):
        module = parse_module('declare variable $limit as xs:integer := 10;')
        assert module.variables["limit"].value.value.value == 10

    def test_schema_import(self):
        module = parse_module('import schema namespace ns0="urn:shapes";')
        assert module.schema_imports == ["urn:shapes"]

    def test_query_body_after_prolog(self):
        module = parse_module('declare namespace a="urn:a";\n1 + 1')
        assert isinstance(module.query_body, ast.Arithmetic)

    def test_runtime_mode_fails_fast(self):
        with pytest.raises(ParseError):
            parse_module("declare function broken( { 1 };", mode="runtime")


class TestDesignModeRecovery:
    def test_bad_declaration_skipped_good_ones_kept(self):
        module = parse_module(
            "declare function broken(%%% ;\n"
            "declare function good() as xs:integer { 1 };",
            mode="design",
        )
        assert module.errors
        assert module.function("good", 0) is not None

    def test_multiple_errors_collected(self):
        module = parse_module(
            "declare function bad1( ;\n"
            "declare function bad2) ;\n"
            "declare function ok() { 3 };",
            mode="design",
        )
        assert len(module.errors) >= 2
        assert module.function("ok", 0) is not None


def test_ast_walk_and_transform():
    e = parse_expression("for $c in X() return <O>{$c/A}</O>")
    names = [type(n).__name__ for n in e.walk()]
    assert "ElementCtor" in names and "ForClause" in names
    count = sum(1 for n in e.walk() if isinstance(n, ast.VarRef))
    assert count == 1
