"""Thread-safety regression tests (A-CONC): the shared engine objects the
stress harness surfaced races in — hammered by real threads with the
lockset detector on — plus the AsyncExecutor thread-ownership contract."""

from __future__ import annotations

import sys
import threading

import pytest

from repro.analysis import LocksetDetector
from repro.clock import WallClock
from repro.concurrency import set_race_detector
from repro.relational.database import Database, LatencyModel, SourceStats
from repro.runtime.asyncexec import AsyncExecutor
from repro.runtime.cache import FunctionCache
from repro.runtime.observed import ObservedCostModel

FAST_LATENCY = LatencyModel(roundtrip_ms=0.0, per_row_ms=0.0, parse_ms=0.0,
                            connect_timeout_ms=0.0)


@pytest.fixture
def detector():
    """Lockset detector on (stackless, for speed) with a tight GIL switch
    interval so threads interleave aggressively; everything restored."""
    installed = LocksetDetector(capture_stacks=False)
    previous = set_race_detector(installed)
    interval = sys.getswitchinterval()
    sys.setswitchinterval(5e-6)
    try:
        yield installed
    finally:
        sys.setswitchinterval(interval)
        set_race_detector(previous)


def run_threads(worker, count: int = 6):
    """Run ``worker(index)`` on ``count`` threads; re-raise the first error."""
    errors = []

    def wrapped(index):
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - reported to the test
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,), name=f"hammer-{i}")
               for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


def _fast_db(name: str = "db") -> Database:
    db = Database(name, clock=WallClock(), latency=FAST_LATENCY)
    db.create_table("T", [("ID", "VARCHAR", False), ("N", "INTEGER")],
                    primary_key=["ID"])
    return db


class TestFunctionCache:
    def test_concurrent_get_put_is_race_free_and_consistent(self, detector):
        cache = FunctionCache(clock=WallClock(), max_entries=8)
        cache.enable("f", ttl_ms=60_000.0)
        gets_per_thread = 40

        def worker(index):
            for i in range(gets_per_thread):
                key = f"k{(index + i) % 12}"
                if cache.get("f", key) is None:
                    cache.put("f", key, [])

        run_threads(worker)
        assert detector.races == [], detector.report_text()
        stats = cache.stats
        assert stats.hits + stats.misses == 6 * gets_per_thread
        assert len(cache._entries) <= 8  # capacity honored under contention

    def test_concurrent_resize_and_clear(self, detector):
        cache = FunctionCache(clock=WallClock(), max_entries=64)
        cache.enable("f", ttl_ms=60_000.0)

        def worker(index):
            for i in range(30):
                if index == 0 and i % 10 == 0:
                    cache.set_capacity(4 + i)
                elif index == 1 and i % 10 == 5:
                    cache.clear()
                else:
                    cache.put("f", f"k{i}", [])
                    cache.get("f", f"k{i}")

        run_threads(worker)
        assert detector.races == [], detector.report_text()


class TestStatementCache:
    def test_concurrent_prepare_is_race_free(self, detector):
        db = _fast_db()
        statements = [f"SELECT ID, N FROM T WHERE N = {i}" for i in range(10)]

        def worker(index):
            for i in range(30):
                prepared = db.statements.prepare(statements[(index + i) % 10])
                assert prepared.is_query

        run_threads(worker)
        assert detector.races == [], detector.report_text()
        stats = db.stats
        assert stats.stmt_cache_hits + stats.stmt_cache_misses == 6 * 30
        # double-parse on a concurrent miss is allowed; losing an insert
        # or a counter update is not
        assert stats.parses >= 10
        assert len(db.statements) == 10

    def test_prepare_races_invalidate(self, detector):
        db = _fast_db()

        def worker(index):
            for i in range(20):
                if index == 0:
                    db.statements.invalidate()
                else:
                    db.statements.prepare("SELECT ID FROM T")

        run_threads(worker, count=4)
        assert detector.races == [], detector.report_text()


class TestSourceStats:
    def test_bump_has_no_lost_updates(self, detector):
        stats = SourceStats()
        bumps = 200

        def worker(index):
            for _ in range(bumps):
                stats.bump(roundtrips=1, rows_shipped=2)

        run_threads(worker)
        assert detector.races == [], detector.report_text()
        assert stats.roundtrips == 6 * bumps
        assert stats.rows_shipped == 12 * bumps

    def test_note_statement_is_synchronized(self, detector):
        stats = SourceStats()

        def worker(index):
            for i in range(100):
                stats.note_statement(f"S{index}-{i}")

        run_threads(worker)
        assert detector.races == [], detector.report_text()
        assert len(stats.statements) == 600

    def test_misspelled_counter_raises(self):
        stats = SourceStats()
        with pytest.raises(AttributeError):
            stats.bump(roundtrip=1)  # typo must not mint a new counter


class TestObservedCostModel:
    def test_concurrent_record_and_estimate(self, detector):
        model = ObservedCostModel(max_samples=64)

        def worker(index):
            source = f"src{index % 2}"
            for i in range(50):
                model.record(source, rows=i % 7, elapsed_ms=1.0 + i % 3)
                model.estimate(source)
                model.recommend_ppk(source)

        run_threads(worker)
        assert detector.races == [], detector.report_text()
        assert model.sources() == ["src0", "src1"]


class TestAsyncExecutorContract:
    def test_in_branch_is_false_on_the_owning_thread(self):
        assert AsyncExecutor.in_branch() is False
        AsyncExecutor.assert_owner("test")  # must not raise

    def test_in_branch_is_true_inside_a_branch(self):
        executor = AsyncExecutor(WallClock(), max_workers=2)
        try:
            seen = executor.run_parallel(
                [AsyncExecutor.in_branch, AsyncExecutor.in_branch])
            assert seen == [True, True]
            assert AsyncExecutor.in_branch() is False
        finally:
            executor.shutdown()

    def test_assert_owner_raises_from_a_branch(self):
        executor = AsyncExecutor(WallClock(), max_workers=2)
        try:
            with pytest.raises(RuntimeError, match="thread-ownership"):
                executor.run_parallel(
                    [lambda: AsyncExecutor.assert_owner("topology-mutation"),
                     lambda: None])
        finally:
            executor.shutdown()

    def test_context_topology_mutations_refuse_branch_threads(self):
        from tests.conftest import build_platform

        platform = build_platform(deploy_profile=False)
        executor = AsyncExecutor(WallClock(), max_workers=2)
        try:
            with pytest.raises(RuntimeError, match="set_tracer"):
                executor.run_parallel(
                    [lambda: platform.ctx.set_tracer(None), lambda: None])
            with pytest.raises(RuntimeError, match="attach_database"):
                executor.run_parallel(
                    [lambda: platform.ctx.attach_database(_fast_db("x")),
                     lambda: None])
        finally:
            executor.shutdown()

    def test_branch_flag_cleared_after_failure(self):
        executor = AsyncExecutor(WallClock(), max_workers=2)
        try:
            with pytest.raises(ValueError):
                executor.run_parallel(
                    [lambda: (_ for _ in ()).throw(ValueError("boom")),
                     lambda: None])
            assert AsyncExecutor.in_branch() is False
        finally:
            executor.shutdown()

    def test_counters_survive_concurrent_groups(self, detector):
        executor = AsyncExecutor(WallClock(), max_workers=4)
        try:
            def worker(index):
                for _ in range(20):
                    executor.run_parallel([lambda: 1, lambda: 2])

            run_threads(worker, count=4)
            assert detector.races == [], detector.report_text()
            assert executor.groups_run == 80
            assert executor.branches_run == 160
        finally:
            executor.shutdown()


class TestExternalVariableIsolation:
    def test_concurrent_bindings_do_not_clobber_each_other(self):
        """Two request threads running the same parameterized query with
        different bindings must each see their own results."""
        from tests.conftest import build_platform

        platform = build_platform(customers=3, ws_latency_ms=0.0)
        barrier = threading.Barrier(2)
        results = {}

        def worker(index):
            cid = f"C{index + 1}"
            for _ in range(25):
                barrier.wait()
                out = platform.call_python("getProfileByID", cid)
                values = {child.string_value()
                          for item in out
                          for child in item.child_elements()
                          if child.name.local == "CID"}
                assert values == {cid}, (cid, values)
            results[index] = True

        run_threads(worker, count=2)
        assert results == {0: True, 1: True}

    def test_branch_threads_inherit_the_callers_bindings(self):
        from repro.clock import WallClock as WC

        from tests.conftest import build_platform

        platform = build_platform(customers=2, ws_latency_ms=0.0)
        platform.ctx.external_variables = {"x": [1, 2, 3]}
        executor = AsyncExecutor(WC(), max_workers=2)
        try:
            seen = executor.run_parallel(
                [lambda: platform.ctx.external_variables.get("x"),
                 lambda: platform.ctx.external_variables.get("x")])
            assert seen == [[1, 2, 3], [1, 2, 3]]
        finally:
            executor.shutdown()
