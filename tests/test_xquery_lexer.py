"""Lexer tests: tokens, comments, pragma capture."""

import pytest

from repro.errors import ParseError
from repro.xquery.lexer import DECIMAL, DOUBLE, EOF, INTEGER, NAME, SYMBOL, Lexer


def tokens_of(text):
    lexer = Lexer(text)
    result = []
    while True:
        token = lexer.next_token()
        if token.kind == EOF:
            return result, lexer
        result.append(token)


class TestBasics:
    def test_names_and_symbols(self):
        toks, _ = tokens_of("for $c in CUSTOMER()")
        kinds = [(t.kind, t.value) for t in toks]
        assert kinds == [
            (NAME, "for"), (SYMBOL, "$"), (NAME, "c"), (NAME, "in"),
            (NAME, "CUSTOMER"), (SYMBOL, "("), (SYMBOL, ")"),
        ]

    def test_qname_single_token(self):
        toks, _ = tokens_of("tns:getProfile fn-bea:fail-over")
        assert [t.value for t in toks] == ["tns:getProfile", "fn-bea:fail-over"]

    def test_numbers(self):
        toks, _ = tokens_of("42 3.14 1e10 .5")
        assert [t.kind for t in toks] == [INTEGER, DECIMAL, DOUBLE, DECIMAL]

    def test_strings_with_doubled_quotes(self):
        toks, _ = tokens_of('"say ""hi""" \'it\'\'s\'')
        assert [t.value for t in toks] == ['say "hi"', "it's"]

    def test_multichar_symbols_maximal_munch(self):
        toks, _ = tokens_of(":= != <= >= // ..")
        assert [t.value for t in toks] == [":=", "!=", "<=", ">=", "//", ".."]

    def test_line_and_column_tracking(self):
        toks, _ = tokens_of("a\n  b")
        assert toks[0].line == 1 and toks[1].line == 2
        assert toks[1].column == 3

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            tokens_of('"oops')

    def test_unexpected_character_raises(self):
        with pytest.raises(ParseError):
            tokens_of("a # b")


class TestComments:
    def test_comments_skipped(self):
        toks, _ = tokens_of("a (: comment :) b")
        assert [t.value for t in toks] == ["a", "b"]

    def test_nested_comments(self):
        toks, _ = tokens_of("a (: outer (: inner :) still :) b")
        assert [t.value for t in toks] == ["a", "b"]

    def test_unterminated_comment_raises(self):
        with pytest.raises(ParseError):
            tokens_of("a (: oops")


class TestPragmas:
    def test_pragma_captured_not_tokenized(self):
        toks, lexer = tokens_of('(::pragma function kind="read" ::) declare')
        assert [t.value for t in toks] == ["declare"]
        [pragma] = lexer.drain_pragmas()
        assert pragma.kind == "function"
        assert pragma.attributes == {"kind": "read"}

    def test_multiple_attributes(self):
        _, lexer = tokens_of('(::pragma function kind="navigate" source="db1" ::) x')
        [pragma] = lexer.drain_pragmas()
        assert pragma.attributes == {"kind": "navigate", "source": "db1"}

    def test_drain_clears(self):
        _, lexer = tokens_of('(::pragma xds a="1" ::) x')
        assert len(lexer.drain_pragmas()) == 1
        assert lexer.drain_pragmas() == []

    def test_plain_comment_not_pragma(self):
        _, lexer = tokens_of("(: pragma-like but not :) x")
        assert lexer.drain_pragmas() == []

    def test_seek_supports_reparsing(self):
        lexer = Lexer("a b c")
        first = lexer.next_token()
        lexer.next_token()
        lexer.seek(first.pos)
        assert lexer.next_token().value == "a"
