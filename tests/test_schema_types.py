"""Tests for the schema type system: atomic hierarchy, occurrences,
sequence-type algebra."""

import pytest

from repro.errors import SchemaError
from repro.schema import (
    EMPTY,
    AtomicItemType,
    ElementItemType,
    Occurrence,
    atomic,
    atomic_ancestors,
    element_type,
    is_atomic_subtype,
    is_numeric,
    numeric_promote,
    sequence_concat,
    union,
)


class TestAtomicHierarchy:
    def test_integer_under_decimal(self):
        assert is_atomic_subtype("xs:integer", "xs:decimal")
        assert is_atomic_subtype("xs:int", "xs:integer")
        assert not is_atomic_subtype("xs:decimal", "xs:integer")

    def test_everything_under_any_atomic(self):
        for name in ("xs:string", "xs:boolean", "xs:dateTime", "xs:byte"):
            assert is_atomic_subtype(name, "xs:anyAtomicType")

    def test_ancestors_chain(self):
        chain = atomic_ancestors("xs:short")
        assert chain[:3] == ["xs:short", "xs:int", "xs:long"]
        assert chain[-1] == "xs:anyType"

    def test_is_numeric(self):
        assert is_numeric("xs:unsignedByte")
        assert is_numeric("xs:double")
        assert not is_numeric("xs:string")

    def test_numeric_promotion(self):
        assert numeric_promote("xs:integer", "xs:integer") == "xs:integer"
        assert numeric_promote("xs:integer", "xs:double") == "xs:double"
        assert numeric_promote("xs:decimal", "xs:float") == "xs:float"

    def test_promotion_of_non_numeric_raises(self):
        with pytest.raises(SchemaError):
            numeric_promote("xs:string", "xs:integer")

    def test_unknown_atomic_type_rejected(self):
        with pytest.raises(SchemaError):
            AtomicItemType("xs:nonsense")


class TestOccurrence:
    def test_counts(self):
        assert Occurrence.ONE.min_count == 1 and Occurrence.ONE.max_count == 1
        assert Occurrence.OPTIONAL.min_count == 0 and Occurrence.OPTIONAL.max_count == 1
        assert Occurrence.STAR.max_count is None
        assert Occurrence.PLUS.min_count == 1 and Occurrence.PLUS.max_count is None

    def test_union(self):
        assert Occurrence.ONE.union(Occurrence.OPTIONAL) is Occurrence.OPTIONAL
        assert Occurrence.ONE.union(Occurrence.PLUS) is Occurrence.PLUS
        assert Occurrence.OPTIONAL.union(Occurrence.PLUS) is Occurrence.STAR

    def test_intersect(self):
        assert Occurrence.STAR.intersect(Occurrence.ONE) is Occurrence.ONE
        assert Occurrence.PLUS.intersect(Occurrence.OPTIONAL) is Occurrence.ONE
        assert Occurrence.OPTIONAL.intersect(Occurrence.STAR) is Occurrence.OPTIONAL


class TestSequenceTypeAlgebra:
    def test_show(self):
        assert atomic("xs:integer").show() == "xs:integer"
        assert atomic("xs:integer", Occurrence.STAR).show() == "xs:integer*"
        assert EMPTY.show() == "empty-sequence()"

    def test_union_merges_alternatives(self):
        merged = union(atomic("xs:integer"), atomic("xs:string"))
        assert len(merged.alternatives) == 2

    def test_union_with_empty_optionalizes(self):
        merged = union(atomic("xs:integer"), EMPTY)
        assert merged.allows_empty()

    def test_concat_occurrence(self):
        two = sequence_concat(atomic("xs:integer"), atomic("xs:integer"))
        assert two.occurrence is Occurrence.PLUS
        maybe = sequence_concat(
            atomic("xs:integer", Occurrence.OPTIONAL),
            atomic("xs:integer", Occurrence.OPTIONAL),
        )
        assert maybe.occurrence.min_count == 0

    def test_concat_with_empty_is_identity(self):
        t = atomic("xs:string")
        assert sequence_concat(t, EMPTY) is t
        assert sequence_concat(EMPTY, t) is t

    def test_element_type_constructor(self):
        t = element_type("CUSTOMER", occurrence=Occurrence.STAR)
        assert isinstance(t.alternatives[0], ElementItemType)
        assert t.show() == "element(CUSTOMER)*"
