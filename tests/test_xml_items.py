"""Unit tests for the XML data-model items."""

import pytest

from repro.errors import DynamicError, XMLError
from repro.xml import (
    AtomicValue,
    AttributeNode,
    DocumentNode,
    ElementNode,
    QName,
    TextNode,
    element,
    qname,
)
from repro.xml.items import iter_descendants


class TestQName:
    def test_equality_ignores_prefix(self):
        assert QName("A", "urn:x", "p") == QName("A", "urn:x", "q")

    def test_inequality_on_namespace(self):
        assert QName("A", "urn:x") != QName("A", "urn:y")

    def test_lexical_form(self):
        assert QName("A", "urn:x", "p").lexical == "p:A"
        assert QName("A").lexical == "A"

    def test_qname_helper_splits_prefix(self):
        q = qname("tns:PROFILE")
        assert q.local == "PROFILE"
        assert q.prefix == "tns"

    def test_matches(self):
        assert QName("A", "urn:x").matches(QName("A", "urn:x", "zz"))
        assert not QName("A", "urn:x").matches(QName("B", "urn:x"))


class TestAtomicValue:
    def test_string_value_of_boolean(self):
        assert AtomicValue(True, "xs:boolean").string_value() == "true"
        assert AtomicValue(False, "xs:boolean").string_value() == "false"

    def test_atomize_returns_self(self):
        atom = AtomicValue(5, "xs:integer")
        assert atom.atomize() == [atom]

    def test_equality_includes_type(self):
        assert AtomicValue(1, "xs:integer") != AtomicValue(1, "xs:long")
        assert AtomicValue(1, "xs:integer") == AtomicValue(1, "xs:integer")

    def test_hashable(self):
        assert len({AtomicValue(1, "xs:integer"), AtomicValue(1, "xs:integer")}) == 1


class TestElementNode:
    def test_builder_creates_typed_leaves(self):
        e = element("CID", 7, type_annotation="xs:integer")
        assert e.string_value() == "7"
        assert e.type_annotation == "xs:integer"

    def test_typed_value_preserves_type(self):
        e = element("CID", 7, type_annotation="xs:integer")
        [atom] = e.typed_value()
        assert atom.value == 7
        assert atom.type_name == "xs:integer"

    def test_atomize_complex_content_raises(self):
        parent = element("P", element("C", "x"))
        with pytest.raises(DynamicError):
            parent.typed_value()

    def test_untyped_element_atomizes_to_untyped(self):
        e = ElementNode(QName("X"))
        e.add_child(TextNode("abc"))
        [atom] = e.typed_value()
        assert atom.type_name == "xs:untypedAtomic"

    def test_string_value_concatenates_descendants(self):
        e = element("P", element("A", "x"), element("B", "y"))
        assert e.string_value() == "xy"

    def test_duplicate_attribute_rejected(self):
        e = ElementNode(QName("X"))
        e.add_attribute(AttributeNode(QName("a"), AtomicValue("1")))
        with pytest.raises(XMLError):
            e.add_attribute(AttributeNode(QName("a"), AtomicValue("2")))

    def test_child_elements_name_filter(self):
        e = element("P", element("A", 1), element("B", 2), element("A", 3))
        assert len(e.child_elements(QName("A"))) == 2
        assert len(e.child_elements()) == 3

    def test_attribute_lookup(self):
        e = element("P", attrs={"x": 5})
        attr = e.attribute(QName("x"))
        assert attr is not None
        assert attr.string_value() == "5"
        assert e.attribute(QName("y")) is None

    def test_deep_copy_is_detached_and_equal_text(self):
        original = element("P", element("A", "x"), attrs={"k": "v"})
        copy = original.deep_copy()
        assert copy.node_id != original.node_id
        assert copy.string_value() == original.string_value()
        copy.child_elements()[0]._children = []
        assert original.string_value() == "x"

    def test_parent_links(self):
        child = element("C", "x")
        parent = element("P", child)
        assert child.parent is parent


class TestDocumentNode:
    def test_root_element(self):
        root = element("R")
        doc = DocumentNode([root])
        assert doc.root_element() is root

    def test_empty_document_has_no_root(self):
        with pytest.raises(XMLError):
            DocumentNode([]).root_element()


def test_iter_descendants_preorder():
    tree = element("A", element("B", element("C", "x")), element("D", "y"))
    names = [n.name.local for n in iter_descendants(tree) if isinstance(n, ElementNode)]
    assert names == ["B", "C", "D"]
