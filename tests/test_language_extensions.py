"""Tests for the remaining language surface: typeswitch, computed
constructors, regex functions — and their non-pushability (section 4.4
lists typeswitch among the expressions that never push)."""

import pytest

from repro.compiler import PushedSQL
from repro.errors import ParseError
from repro.xml import serialize
from repro.xquery import ast, parse_expression

from tests.conftest import build_platform
from tests.test_runtime_evaluate import run, values


class TestTypeswitch:
    def test_parse_shape(self):
        expr = parse_expression('''
            typeswitch ($x)
              case $i as xs:integer return "int"
              case xs:string return "str"
              default $d return "other"
        ''')
        assert isinstance(expr, ast.TypeswitchExpr)
        assert len(expr.cases) == 2
        assert expr.cases[0][0] == "i"
        assert expr.cases[1][0] is None
        assert expr.default_var == "d"

    def test_requires_cases(self):
        with pytest.raises(ParseError):
            parse_expression("typeswitch ($x) default return 1")

    def test_dispatch_on_dynamic_type(self):
        query = '''
            for $x in (1, "two", 3.5)
            return typeswitch ($x)
              case $i as xs:integer return <INT>{$i}</INT>
              case $s as xs:string return <STR>{$s}</STR>
              default $d return <OTHER>{$d}</OTHER>
        '''
        assert serialize(run(query)) == "<INT>1</INT><STR>two</STR><OTHER>3.5</OTHER>"

    def test_case_variable_binding(self):
        assert values(run(
            'typeswitch (5) case $i as xs:integer return $i * 2 default return 0'
        )) == [10]

    def test_default_without_variable(self):
        assert values(run(
            'typeswitch ("x") case xs:integer return 1 default return 99'
        )) == [99]

    def test_element_case(self):
        out = run('''
            typeswitch (<A>1</A>)
              case $e as element(A) return "matched-A"
              default return "no"
        ''')
        assert values(out) == ["matched-A"]

    def test_typeswitch_never_pushes(self):
        platform = build_platform(deploy_profile=False)
        plan = platform.prepare('''
            for $c in CUSTOMER()
            return typeswitch (data($c/SINCE))
              case xs:int return "typed"
              default return "untyped"
        ''')
        # the scan pushes; the typeswitch stays mid-tier
        assert not isinstance(plan.expr, PushedSQL)
        assert any(isinstance(n, ast.TypeswitchExpr) for n in plan.expr.walk())
        out = platform.execute('''
            for $c in CUSTOMER()
            return typeswitch (data($c/SINCE))
              case xs:int return "typed"
              default return "untyped"
        ''')
        assert values(out) == ["typed", "typed"]


class TestComputedConstructors:
    def test_computed_element(self):
        assert serialize(run("element OUT { 1 + 1 }")) == "<OUT>2</OUT>"

    def test_computed_attribute_in_element_content(self):
        out = run('<P>{ attribute rank { 3 } }</P>')
        assert serialize(out) == '<P rank="3"/>'

    def test_computed_attribute_standalone(self):
        [attr] = run("attribute k { 'v' }")
        assert attr.name.local == "k"
        assert attr.string_value() == "v"

    def test_mixed_computed_and_direct(self):
        out = run('<P fixed="1">{ attribute extra { 2 }, <C>3</C> }</P>')
        assert serialize(out) == '<P fixed="1" extra="2"><C>3</C></P>'


class TestRegexFunctions:
    def test_matches(self):
        assert values(run('matches("ALDSP-2.1", "^[A-Z]+-\\d")')) == [True]
        assert values(run('matches("nope", "^[0-9]+$")')) == [False]

    def test_matches_flags(self):
        assert values(run('matches("HELLO", "hello", "i")')) == [True]

    def test_replace(self):
        assert values(run('replace("a-b-c", "-", "+")')) == ["a+b+c"]

    def test_replace_group_reference(self):
        assert values(run('replace("john smith", "(\\w+) (\\w+)", "$2, $1")')) == \
            ["smith, john"]

    def test_tokenize(self):
        assert values(run('tokenize("a,b,,c", ",")')) == ["a", "b", "", "c"]
        assert run('tokenize("", ",")') == []

    def test_invalid_pattern_raises(self):
        from repro.errors import DynamicError

        with pytest.raises(DynamicError):
            run('matches("x", "(unclosed")')

    def test_invalid_flag_raises(self):
        from repro.errors import DynamicError

        with pytest.raises(DynamicError):
            run('matches("x", "x", "q")')


class TestRpcParamTypes:
    def test_declared_rpc_types_typechecked(self):
        from repro.schema import leaf, shape
        from repro.sources import WebServiceDescriptor, WebServiceOperation
        from repro.xml import element

        platform = build_platform(deploy_profile=False)
        out_shape = shape("r", [leaf("v", "xs:integer")])
        platform.register_web_service(WebServiceDescriptor("Calc", [
            WebServiceOperation(
                "add", None, out_shape,
                lambda a, b: element("r", element("v", a + b)),
                style="rpc", rpc_param_types=["xs:integer", "xs:integer"],
            ),
        ]))
        out = platform.execute("data(add(2, 3)/v)")
        assert values(out) == [5]
