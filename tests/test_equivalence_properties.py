"""Cross-cutting equivalence properties.

The strongest correctness check in the suite: for a family of randomized
queries and datasets, the *pushed* plan (SQL generation + PP-k) must
produce exactly the same results as the *middleware-only* plan (pushdown
disabled, full scans + naive evaluation).
"""

from hypothesis import given, settings, strategies as st

from repro import Database, Platform
from repro.clock import VirtualClock
from repro.xml import serialize


def build(customers, orders, vendor="oracle"):
    clock = VirtualClock()
    platform = Platform(clock=clock)
    db = Database("db", vendor=vendor, clock=clock)
    db.create_table(
        "C",
        [("ID", "INTEGER", False), ("NAME", "VARCHAR"), ("TIER", "INTEGER")],
        primary_key=["ID"],
    )
    db.create_table(
        "O",
        [("OID", "INTEGER", False), ("CID", "INTEGER"), ("AMT", "INTEGER")],
        primary_key=["OID"],
    )
    db.load("C", customers)
    db.load("O", orders)
    platform.register_database(db, navigation=False)
    return platform


customers_strategy = st.lists(
    st.tuples(st.sampled_from(["ann", "bob", "cat", None]), st.integers(0, 3)),
    min_size=0, max_size=8,
).map(lambda rows: [
    {"ID": i + 1, "NAME": name, "TIER": tier} for i, (name, tier) in enumerate(rows)
])

orders_strategy = st.lists(
    st.tuples(st.integers(1, 8), st.integers(0, 100)),
    min_size=0, max_size=12,
).map(lambda rows: [
    {"OID": i + 1, "CID": cid, "AMT": amt} for i, (cid, amt) in enumerate(rows)
])

QUERIES = [
    # select-project with predicate
    'for $c in C() where $c/TIER ge 2 return $c/NAME',
    # inner join
    'for $c in C(), $o in O() where $c/ID eq $o/CID return <R>{$c/ID, $o/AMT}</R>',
    # nested content (outer join shape)
    'for $c in C() return <R>{$c/ID, for $o in O() where $o/CID eq $c/ID return $o/AMT}</R>',
    # aggregation over correlated scan
    'for $c in C() return <N>{ count(for $o in O() where $o/CID eq $c/ID return $o) }</N>',
    # group by
    'for $c in C() group $c as $g by $c/TIER as $t order by $t return <G>{$t, count($g)}</G>',
    # distinct
    'for $c in C() group by $c/TIER as $t order by $t return $t',
    # exists semi-join
    'for $c in C() where some $o in O() satisfies $o/CID eq $c/ID return $c/ID',
    # order by + pagination
    'let $s := for $o in O() order by $o/AMT descending return $o/AMT '
    'return subsequence($s, 2, 3)',
    # if-then-else projection
    'for $c in C() return <K>{ if ($c/TIER ge 2) then "hi" else "lo" }</K>',
    # order by over a nullable column, both empty modes (NAME may be NULL)
    'for $c in C() order by $c/NAME return $c/ID',
    'for $c in C() order by $c/NAME descending empty greatest return $c/ID',
]


@settings(max_examples=12, deadline=None)
@given(customers=customers_strategy, orders=orders_strategy,
       query_index=st.integers(0, len(QUERIES) - 1))
def test_property_pushed_equals_middleware(customers, orders, query_index):
    query = QUERIES[query_index]
    pushed = build(customers, orders)
    pushed_out = serialize(pushed.execute(query))
    naive = build(customers, orders)
    naive.set_pushdown_enabled(False)
    naive_out = serialize(naive.execute(query))
    assert pushed_out == naive_out


@settings(max_examples=6, deadline=None)
@given(customers=customers_strategy, orders=orders_strategy,
       vendor=st.sampled_from(["oracle", "db2", "sqlserver", "sybase", "sql92"]))
def test_property_vendors_agree(customers, orders, vendor):
    query = QUERIES[2]
    reference = serialize(build(customers, orders, "oracle").execute(query))
    other = serialize(build(customers, orders, vendor).execute(query))
    assert other == reference


@settings(max_examples=8, deadline=None)
@given(customers=customers_strategy, orders=orders_strategy,
       k=st.sampled_from([1, 2, 7, 20]))
def test_property_ppk_block_size_never_changes_results(customers, orders, k):
    # split the tables across two databases to force PP-k
    clock = VirtualClock()
    platform = Platform(clock=clock)
    db1 = Database("db1", clock=clock)
    db1.create_table("C", [("ID", "INTEGER", False), ("NAME", "VARCHAR"),
                           ("TIER", "INTEGER")], primary_key=["ID"])
    db1.load("C", customers)
    db2 = Database("db2", clock=clock)
    db2.create_table("O", [("OID", "INTEGER", False), ("CID", "INTEGER"),
                           ("AMT", "INTEGER")], primary_key=["OID"])
    db2.load("O", orders)
    platform.register_database(db1, navigation=False)
    platform.register_database(db2, navigation=False)
    platform.set_ppk_block_size(k)
    query = QUERIES[2]
    out = serialize(platform.execute(query))

    naive = build(customers, orders)
    naive.set_pushdown_enabled(False)
    assert out == serialize(naive.execute(query))
