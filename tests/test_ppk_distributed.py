"""PP-k distributed join tests (section 4.2).

The running-example federation splits CUSTOMER (custdb) from CREDIT_CARD
(ccdb), so queries correlating them execute as PP-k joins: the block size
k controls the roundtrip count (ceil(N/k) requests), and the request is a
single disjunctive parameterized query per block.
"""


import pytest

from repro.compiler import PPkLetClause, PushedSQL
from repro.xml import serialize

from tests.conftest import build_platform

CROSS_DB_QUERY = '''
for $c in CUSTOMER()
return <OUT>{
    $c/CID,
    <CARDS>{ for $cc in CREDIT_CARD() where $cc/CID eq $c/CID return $cc/NUMBER }</CARDS>
}</OUT>
'''


def ppk_clauses(expr):
    return [n for n in expr.walk() if isinstance(n, PPkLetClause)]


class TestPlanShape:
    def test_cross_database_query_uses_ppk(self):
        platform = build_platform(deploy_profile=False)
        plan = platform.prepare(CROSS_DB_QUERY)
        clauses = ppk_clauses(plan.expr)
        assert len(clauses) == 1
        assert clauses[0].pushed.database == "ccdb"
        assert clauses[0].pushed.correlation is not None
        assert clauses[0].k == 20  # the paper's default

    def test_block_size_configurable(self):
        platform = build_platform(deploy_profile=False)
        platform.set_ppk_block_size(5)
        plan = platform.prepare(CROSS_DB_QUERY)
        assert ppk_clauses(plan.expr)[0].k == 5

    def test_same_database_correlation_not_crossed(self):
        # CUSTOMER and ORDER share custdb: the whole region pushes as one
        # SQL (outer join), no PP-k involved.
        platform = build_platform(deploy_profile=False)
        plan = platform.prepare('''
            for $c in CUSTOMER()
            return <OUT>{ $c/CID,
                for $o in ORDER() where $o/CID eq $c/CID return $o/OID }</OUT>
        ''')
        assert isinstance(plan.expr, PushedSQL)
        assert not ppk_clauses(plan.expr)


class TestExecution:
    def test_results_match_left_outer_semantics(self):
        platform = build_platform(customers=3, deploy_profile=False)
        # remove one credit card so a customer has none
        ccdb = platform.ctx.databases["ccdb"]
        ccdb.table("CREDIT_CARD").restore(
            [r for r in ccdb.table("CREDIT_CARD").rows if r["CID"] != "C2"]
        )
        out = serialize(platform.execute(CROSS_DB_QUERY))
        assert "<CID>C2</CID><CARDS/>" in out
        assert "<NUMBER>4401</NUMBER>" in out

    @pytest.mark.parametrize("k", [1, 2, 5, 100])
    def test_results_identical_for_any_k(self, k):
        platform = build_platform(customers=7, deploy_profile=False)
        platform.set_ppk_block_size(k)
        out = serialize(platform.execute(CROSS_DB_QUERY))
        reference = build_platform(customers=7, deploy_profile=False)
        reference.set_pushdown_enabled(False)
        expected = serialize(reference.execute(CROSS_DB_QUERY))
        assert out == expected

    @pytest.mark.parametrize("k,expected_blocks", [(1, 12), (4, 3), (6, 2), (12, 1), (50, 1)])
    def test_roundtrips_scale_as_n_over_k(self, k, expected_blocks):
        platform = build_platform(customers=12, deploy_profile=False)
        platform.set_ppk_block_size(k)
        platform.execute(CROSS_DB_QUERY)
        assert platform.ctx.stats.ppk_blocks == expected_blocks
        assert platform.ctx.databases["ccdb"].stats.roundtrips == expected_blocks

    def test_disjunctive_query_has_k_parameters(self):
        platform = build_platform(customers=6, deploy_profile=False)
        platform.set_ppk_block_size(3)
        platform.execute(CROSS_DB_QUERY)
        [statement] = set(platform.ctx.databases["ccdb"].stats.statements)
        # one (col = ?) per distinct key in the block
        assert statement.count("?") == 3
        assert statement.count("OR") == 2

    def test_duplicate_keys_deduplicated_within_block(self):
        platform = build_platform(customers=1, deploy_profile=False)
        custdb = platform.ctx.databases["custdb"]
        # two customers sharing a CID is impossible (PK), so correlate on
        # LAST_NAME instead: many customers share a surname
        for i in range(2, 7):
            custdb.table("CUSTOMER").insert(
                {"CID": f"C{i}", "FIRST_NAME": "X", "LAST_NAME": "Jones",
                 "SSN": f"{100+i}", "SINCE": 864000}
            )
        ccdb = platform.ctx.databases["ccdb"]
        query = '''
        for $c in CUSTOMER()
        return <OUT>{ for $cc in CREDIT_CARD() where $cc/CID eq $c/LAST_NAME
                      return $cc }</OUT>
        '''
        platform.set_ppk_block_size(10)
        platform.execute(query)
        [statement] = set(ccdb.stats.statements)
        assert statement.count("?") == 1  # 6 tuples, 1 distinct key

    def test_ppk_tuples_counted(self):
        platform = build_platform(customers=9, deploy_profile=False)
        platform.set_ppk_block_size(4)
        platform.execute(CROSS_DB_QUERY)
        assert platform.ctx.stats.ppk_tuples == 9

    def test_quantified_against_remote_table_uses_ppk(self):
        platform = build_platform(customers=3, deploy_profile=False)
        plan = platform.prepare('''
            for $c in CUSTOMER()
            where some $cc in CREDIT_CARD() satisfies $cc/CID eq $c/CID
            return $c/CID
        ''')
        assert ppk_clauses(plan.expr)
        out = serialize(platform.execute('''
            for $c in CUSTOMER()
            where some $cc in CREDIT_CARD() satisfies $cc/CID eq $c/CID
            return $c/CID
        '''))
        assert out == "<CID>C1</CID><CID>C2</CID><CID>C3</CID>"

    def test_aggregate_over_remote_table_via_ppk(self):
        platform = build_platform(customers=3, deploy_profile=False)
        out = serialize(platform.execute('''
            for $c in CUSTOMER()
            return <N>{ count(for $cc in CREDIT_CARD()
                              where $cc/CID eq $c/CID return $cc) }</N>
        '''))
        assert out == "<N>1</N><N>1</N><N>1</N>"


class TestLatencyTradeoff:
    def test_larger_k_means_less_total_latency(self):
        # "A small value of k means many roundtrips" — with a fixed
        # roundtrip cost, time decreases as k grows.
        times = {}
        for k in (1, 5, 20):
            platform = build_platform(customers=40, orders_per_customer=0,
                                      deploy_profile=False)
            platform.set_ppk_block_size(k)
            start = platform.clock.now_ms()
            platform.execute(CROSS_DB_QUERY)
            times[k] = platform.clock.now_ms() - start
        assert times[1] > times[5] > times[20]
