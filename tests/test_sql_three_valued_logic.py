"""Property test: the SQL executor's three-valued logic against a Python
reference model, over randomized rows containing NULLs."""

from hypothesis import given, settings, strategies as st

from repro.relational import Database, Executor
from repro.sql import (
    BinOp,
    ColumnRef,
    IsNull,
    NotExpr,
    Select,
    SelectItem,
    SqlLiteral,
    TableRef,
)

_VALUES = st.one_of(st.none(), st.integers(-3, 3))
_ROWS = st.lists(
    st.tuples(_VALUES, _VALUES), min_size=0, max_size=8
).map(lambda rows: [{"ID": i, "A": a, "B": b} for i, (a, b) in enumerate(rows)])


@st.composite
def where_exprs(draw, depth=2):
    operand = st.one_of(
        st.sampled_from([ColumnRef("t", "A"), ColumnRef("t", "B")]),
        st.integers(-3, 3).map(SqlLiteral),
    )
    if depth == 0 or draw(st.booleans()):
        kind = draw(st.integers(0, 1))
        if kind == 0:
            op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
            return BinOp(op, draw(operand), draw(operand))
        return IsNull(draw(operand), draw(st.booleans()))
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return BinOp("AND", draw(where_exprs(depth=depth - 1)),
                     draw(where_exprs(depth=depth - 1)))
    if kind == 1:
        return BinOp("OR", draw(where_exprs(depth=depth - 1)),
                     draw(where_exprs(depth=depth - 1)))
    return NotExpr(draw(where_exprs(depth=depth - 1)))


def reference_eval(expr, row):
    """Kleene three-valued reference semantics: True/False/None."""
    if isinstance(expr, SqlLiteral):
        return expr.value
    if isinstance(expr, ColumnRef):
        return row[expr.column]
    if isinstance(expr, IsNull):
        value = reference_eval(expr.operand, row)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, NotExpr):
        inner = reference_eval(expr.operand, row)
        return None if inner is None else not inner
    assert isinstance(expr, BinOp)
    if expr.op in ("AND", "OR"):
        left = reference_eval(expr.left, row)
        right = reference_eval(expr.right, row)
        if expr.op == "AND":
            if left is False or right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if left is True or right is True:
            return True
        if left is None or right is None:
            return None
        return False
    left = reference_eval(expr.left, row)
    right = reference_eval(expr.right, row)
    if left is None or right is None:
        return None
    return {
        "=": left == right, "<>": left != right, "<": left < right,
        "<=": left <= right, ">": left > right, ">=": left >= right,
    }[expr.op]


@settings(max_examples=120, deadline=None)
@given(rows=_ROWS, where=where_exprs())
def test_property_where_matches_kleene_reference(rows, where):
    db = Database("p")
    db.create_table("T", [("ID", "INTEGER", False), ("A", "INTEGER"), ("B", "INTEGER")],
                    primary_key=["ID"])
    db.load("T", rows)
    stmt = Select(items=[SelectItem(ColumnRef("t", "ID"), "id")],
                  from_items=[TableRef("T", "t")], where=where)
    engine_ids = {row["id"] for row in Executor(db).execute(stmt)}
    # SQL keeps a row iff the predicate is *true* (unknown drops it)
    reference_ids = {
        row["ID"] for row in rows if reference_eval(where, row) is True
    }
    assert engine_ids == reference_ids
