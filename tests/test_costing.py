"""Cost-based plan choice (P-COST): the statistics catalog, the costing
pass over strategy alternatives, greedy join ordering, warm-started
estimates from the plan-stats store, and mid-query re-planning."""

from __future__ import annotations

import pytest

from repro import serialize
from repro.clock import VirtualClock
from repro.compiler.stats import (DEFAULT_SELECTIVITY, TableStats,
                                  clamp_selectivity)
from repro.demo import build_demo_platform
from repro.relational import Database
from repro.services import Platform

JOIN_QUERY = ("for $c in CUSTOMER() for $cc in CREDIT_CARD() "
              "where $cc/CID eq $c/CID return $cc/NUMBER")

RATING_QUERY = ("fn:data(getRating(<getRating><lName>x</lName>"
                "<ssn>101</ssn></getRating>)/getRatingResult)")


def demo(customers: int = 4, **kwargs):
    return build_demo_platform(customers=customers, orders_per_customer=2,
                               deploy_profile=False, **kwargs)


def three_way_platform() -> Platform:
    """ORDERS joining CUSTOMER (unfiltered pk join) and ACCOUNT (pk join
    plus a pushed filter) — the shape the greedy join ordering permutes."""
    clock = VirtualClock()
    platform = Platform(clock=clock)
    orders = Database("orders", vendor="oracle", clock=clock)
    orders.create_table(
        "ORDERS",
        [("OID", "VARCHAR", False), ("CID", "VARCHAR"), ("AID", "VARCHAR")],
        primary_key=["OID"])
    crm = Database("crm", vendor="oracle", clock=clock)
    crm.create_table(
        "CUSTOMER", [("CID", "VARCHAR", False), ("NAME", "VARCHAR")],
        primary_key=["CID"])
    billing = Database("billing", vendor="db2", clock=clock)
    billing.create_table(
        "ACCOUNT", [("AID", "VARCHAR", False), ("BALANCE", "INTEGER")],
        primary_key=["AID"])
    for i in range(1, 9):
        orders.table("ORDERS").insert(
            {"OID": f"O{i}", "CID": f"C{1 + (i - 1) % 4}", "AID": f"A{i}"})
    for i in range(1, 5):
        crm.table("CUSTOMER").insert({"CID": f"C{i}", "NAME": f"N{i}"})
    for i in range(1, 9):
        billing.table("ACCOUNT").insert({"AID": f"A{i}", "BALANCE": 10 * i})
    for db in (orders, crm, billing):
        platform.register_database(db)
    return platform


THREE_WAY_QUERY = (
    "for $o in ORDERS() for $c in CUSTOMER() for $a in ACCOUNT() "
    "where $c/CID eq $o/CID and $a/AID eq $o/AID and $a/BALANCE gt 45 "
    "return <R>{$o/OID}{$c/NAME}{$a/BALANCE}</R>")


def spans_of_kind(profile, kind: str) -> list:
    out = []

    def walk(span):
        if span.kind == kind:
            out.append(span)
        for child in span.children:
            walk(child)

    for root in profile.tracer.roots:
        walk(root)
    return out


class TestSelectivityClamping:
    def test_missing_ndv_falls_back_to_default(self):
        stats = TableStats(rows=100)
        assert clamp_selectivity(stats, "CID") == DEFAULT_SELECTIVITY

    def test_one_over_ndv(self):
        stats = TableStats(rows=100, ndv={"CID": 20})
        assert clamp_selectivity(stats, "CID") == pytest.approx(0.05)

    def test_zero_ndv_treated_as_unknown(self):
        stats = TableStats(rows=100, ndv={"CID": 0})
        assert clamp_selectivity(stats, "CID") == DEFAULT_SELECTIVITY

    def test_floored_at_one_over_rows(self):
        # ndv larger than the table cannot make a key rarer than 1/rows
        stats = TableStats(rows=5, ndv={"CID": 50})
        assert clamp_selectivity(stats, "CID") == pytest.approx(0.2)

    def test_empty_table_clamps_to_one(self):
        stats = TableStats(rows=0, ndv={"CID": 3})
        assert clamp_selectivity(stats, "CID") == 1.0


class TestStatisticsCatalog:
    def test_live_statistics_from_registered_tables(self):
        platform = demo()
        stats = platform.statistics.table_stats("custdb", "CUSTOMER")
        assert stats.rows == 4
        assert stats.ndv["CID"] == 4
        assert stats.unique_columns == ("CID",)
        # ORDER's primary key is OID; CID repeats across orders
        orders = platform.statistics.table_stats("custdb", "ORDER")
        assert orders.rows == 8
        assert orders.ndv["CID"] == 4

    def test_overrides_shadow_and_clear(self):
        platform = demo()
        platform.statistics.set_table_stats("custdb", "CUSTOMER", rows=99,
                                            ndv={"CID": 9})
        stats = platform.statistics.table_stats("custdb", "CUSTOMER")
        assert stats.rows == 99 and stats.ndv["CID"] == 9
        platform.statistics.clear_overrides()
        assert platform.statistics.table_stats("custdb", "CUSTOMER").rows == 4

    def test_unknown_database_has_no_stats(self):
        platform = demo()
        assert platform.statistics.table_stats("nosuch", "T") is None
        assert platform.statistics.latency("nosuch") is None


class TestColdStartByteIdentity:
    def test_off_by_default_and_toggle_restores_plan(self):
        platform = demo()
        before = platform.explain(JOIN_QUERY)
        assert "[cost:" not in before
        platform.set_cost_based(True)
        stamped = platform.explain(JOIN_QUERY)
        assert "[cost:" in stamped
        platform.set_cost_based(False)
        assert platform.explain(JOIN_QUERY) == before

    def test_functional_sources_are_untouched(self):
        # no table statistics exist for a Web service call: the costing
        # pass leaves the plan byte-identical even when enabled
        platform = demo()
        before = platform.explain(RATING_QUERY)
        platform.set_cost_based(True)
        assert platform.explain(RATING_QUERY) == before

    def test_empty_tables_cost_safely(self):
        platform = demo(customers=0)
        expected = serialize(platform.execute(JOIN_QUERY))
        platform.set_cost_based(True)
        assert "est_rows=0" in platform.explain(JOIN_QUERY)
        assert serialize(platform.execute(JOIN_QUERY)) == expected == ""


class TestStrategyChoice:
    @pytest.mark.parametrize("force", [None, "ppk", "index-join", "ship-all"])
    def test_every_strategy_returns_identical_results(self, force):
        platform = demo()
        expected = serialize(platform.execute(JOIN_QUERY))
        platform.set_cost_based(True, force=force)
        assert serialize(platform.execute(JOIN_QUERY)) == expected

    def test_forced_strategies_show_in_explain(self):
        platform = demo()
        platform.set_cost_based(True, force="index-join")
        text = platform.explain(JOIN_QUERY)
        assert "INDEX NESTED-LOOP JOIN" in text
        assert "strategy=index-join" in text
        platform.set_cost_based(True, force="ship-all")
        assert "strategy=ship-all" in platform.explain(JOIN_QUERY)
        platform.set_cost_based(True, force="ppk")
        text = platform.explain(JOIN_QUERY)
        assert "PP-" in text and "strategy=ppk" in text

    def test_estimates_render_with_runner_up(self):
        platform = demo()
        platform.set_cost_based(True)
        text = platform.explain(JOIN_QUERY)
        assert "est_rows=" in text and "est_ms=" in text
        assert "via=statistics" in text and "runner-up=" in text

    def test_invalid_knob_values_rejected(self):
        platform = demo()
        with pytest.raises(ValueError):
            platform.set_cost_based(True, force="hash-join")
        with pytest.raises(ValueError):
            platform.set_replan_threshold(1.0)

    def test_profile_shows_estimates_next_to_actuals(self):
        platform = demo()
        platform.set_cost_based(True)
        text = platform.profile(JOIN_QUERY).text
        assert "est_rows=" in text and "act_rows=" in text


class TestJoinOrdering:
    def test_selective_filtered_join_runs_first(self):
        platform = three_way_platform()
        expected = serialize(platform.execute(THREE_WAY_QUERY))
        platform.set_cost_based(True)
        text = platform.explain(THREE_WAY_QUERY)
        # the ACCOUNT unit carries a pushed filter (drops ~90% of outer
        # tuples) so the greedy ordering runs it before the pass-through
        # CUSTOMER join
        assert text.index("for $a") < text.index("$c")
        assert serialize(platform.execute(THREE_WAY_QUERY)) == expected

    def test_reorder_can_be_disabled(self):
        platform = three_way_platform()
        expected = serialize(platform.execute(THREE_WAY_QUERY))
        platform.set_cost_based(True, reorder=False)
        text = platform.explain(THREE_WAY_QUERY)
        assert text.index("$c") < text.index("for $a")
        assert serialize(platform.execute(THREE_WAY_QUERY)) == expected


class TestWarmStart:
    def test_second_compilation_uses_observed_rows(self):
        """The satellite regression: statistics lie (CUSTOMER rows=1), the
        first profiled run feeds the plan-stats store, and the second
        compilation of the same query estimates from observed EWMAs."""
        platform = demo()
        platform.statistics.set_table_stats("custdb", "CUSTOMER", rows=1)
        platform.set_cost_based(True)
        cold = platform.explain(JOIN_QUERY)
        assert "est_rows=1" in cold and "via=observed" not in cold
        platform.profile(JOIN_QUERY)
        platform.set_cost_based(True)  # invalidate -> recompile
        warm = platform.explain(JOIN_QUERY)
        assert "via=observed" in warm
        assert "est_rows=4" in warm  # the scan's observed cardinality

    def test_warm_start_keyed_by_query_fingerprint(self):
        platform = demo()
        platform.set_cost_based(True)
        platform.profile(JOIN_QUERY)
        platform.set_cost_based(True)
        other = "for $o in ORDER() return $o/AMOUNT"
        assert "via=observed" not in platform.explain(other)


class TestReplanning:
    def test_ppk_to_scan_replan_recovers_and_counts(self):
        expected = serialize(demo(customers=8).execute(JOIN_QUERY))
        platform = demo(customers=8)
        platform.set_ppk_block_size(2)
        # lie: claim 2 customers so PP-k looks like one cheap roundtrip
        platform.statistics.set_table_stats("custdb", "CUSTOMER", rows=2)
        platform.set_cost_based(True)
        platform.set_replan_threshold(2.0)
        assert "strategy=ppk" in platform.explain(JOIN_QUERY)
        profile = platform.profile(JOIN_QUERY)
        assert serialize(platform.execute(JOIN_QUERY)) == expected
        replans = spans_of_kind(profile, "replan")
        assert len(replans) == 1
        assert replans[0].attrs["strategy_from"] == "ppk"
        assert replans[0].attrs["strategy_to"] == "scan"
        assert platform.metrics_snapshot()["runtime.replans"] >= 1

    def test_index_join_to_ppk_replan_on_overestimate(self):
        expected = serialize(demo(customers=8).execute(JOIN_QUERY))
        platform = demo(customers=8)
        # lie the other way: a huge outer makes index-join win, but the
        # real outer finishes before the build commit point
        platform.statistics.set_table_stats("custdb", "CUSTOMER", rows=1000)
        platform.set_cost_based(True)
        platform.set_replan_threshold(2.0)
        assert "strategy=index-join" in platform.explain(JOIN_QUERY)
        profile = platform.profile(JOIN_QUERY)
        assert serialize(platform.execute(JOIN_QUERY)) == expected
        replans = spans_of_kind(profile, "replan")
        assert len(replans) == 1
        assert replans[0].attrs["strategy_from"] == "index-join"
        assert replans[0].attrs["strategy_to"] == "ppk"

    def test_replan_is_deterministic(self):
        def run():
            platform = demo(customers=8)
            platform.set_ppk_block_size(2)
            platform.statistics.set_table_stats("custdb", "CUSTOMER", rows=2)
            platform.set_cost_based(True)
            platform.set_replan_threshold(2.0)
            out = serialize(platform.execute(JOIN_QUERY))
            return out, platform.ctx.stats.replans, platform.clock.now_ms()

        assert run() == run()

    def test_no_replan_when_estimate_is_right(self):
        platform = demo(customers=8)
        platform.set_ppk_block_size(2)
        platform.set_cost_based(True, force="ppk")
        platform.set_replan_threshold(2.0)
        platform.execute(JOIN_QUERY)
        assert platform.ctx.stats.replans == 0
