"""The serving layer (R-SERVE): sessions, admission control, cost
estimation, deadline propagation and close semantics — single-threaded
unit coverage (the contention side lives in ``tests/threaded``)."""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.demo import build_demo_platform
from repro.errors import (
    AdmissionError,
    DeadlineExceededError,
    PlatformClosedError,
    SecurityError,
)
from repro.server import (
    STATE_OPEN,
    STATE_OVERLOAD,
    STATE_SHED_EXPENSIVE,
    AdmissionController,
    DataServer,
    SessionManager,
    TenantQuota,
    TokenBucket,
    estimate_cost,
)
from repro.server.cost import DEFAULT_COST_THRESHOLD
from repro.xml.items import AtomicValue


def _string(value: str) -> AtomicValue:
    return AtomicValue(value, "xs:string")


LOOKUP = "for $c in CUSTOMER() where $c/CID eq $id return $c/LAST_NAME"
SCAN = "getProfile()"


def build_server(clock=None, **admission_kwargs):
    platform = build_demo_platform(clock=clock or VirtualClock())
    admission_kwargs.setdefault("max_concurrent", 2)
    admission_kwargs.setdefault("queue_soft", 3)
    admission_kwargs.setdefault("queue_hard", 5)
    admission = AdmissionController(platform.clock, **admission_kwargs)
    server = DataServer(platform, admission=admission)
    server.register_tenant("acme", "pw", roles=("analyst",))
    return platform, server


# ---------------------------------------------------------------------------
# token bucket + admission states
# ---------------------------------------------------------------------------

class TestTokenBucket:
    def test_burst_then_deficit_then_refill(self):
        bucket = TokenBucket(TenantQuota(capacity=2, refill_per_s=10), 0.0)
        assert bucket.try_acquire(0.0) == 0.0
        assert bucket.try_acquire(0.0) == 0.0
        wait = bucket.try_acquire(0.0)
        assert wait == pytest.approx(100.0)  # 1 token / 10 per s
        # after the suggested wait a token is there again
        assert bucket.try_acquire(wait) == 0.0

    def test_zero_refill_never_recovers(self):
        bucket = TokenBucket(TenantQuota(capacity=1, refill_per_s=0.0), 0.0)
        assert bucket.try_acquire(0.0) == 0.0
        assert bucket.try_acquire(1e9) == float("inf")


class TestAdmissionController:
    def make(self, **kwargs):
        kwargs.setdefault("max_concurrent", 2)
        kwargs.setdefault("queue_soft", 3)
        kwargs.setdefault("queue_hard", 5)
        return AdmissionController(VirtualClock(), **kwargs)

    def test_states_follow_depth(self):
        controller = self.make()
        tickets = []
        assert controller.state == STATE_OPEN
        for _ in range(3):
            tickets.append(controller.admit("t", cost=1.0))
        assert controller.state == STATE_SHED_EXPENSIVE
        # cheap still admitted, expensive shed with a structured error
        tickets.append(controller.admit("t", cost=1.0))
        with pytest.raises(AdmissionError) as info:
            controller.admit("t", cost=DEFAULT_COST_THRESHOLD + 1)
        assert info.value.reason == "cost"
        assert info.value.state == STATE_SHED_EXPENSIVE
        assert info.value.retry_after_ms > 0
        tickets.append(controller.admit("t", cost=1.0))
        assert controller.state == STATE_OVERLOAD
        with pytest.raises(AdmissionError) as info:
            controller.admit("t", cost=1.0)
        assert info.value.reason == "overload"
        # draining the tickets re-opens admission
        for ticket in tickets:
            ticket.release()
        assert controller.depth == 0
        assert controller.state == STATE_OPEN
        controller.admit("t", cost=100.0).release()

    def test_quota_shed_carries_retry_after(self):
        controller = self.make()
        controller.set_quota("t", capacity=1, refill_per_s=10)
        controller.admit("t", cost=1.0).release()
        with pytest.raises(AdmissionError) as info:
            controller.admit("t", cost=1.0)
        assert info.value.reason == "quota"
        assert info.value.retry_after_ms == pytest.approx(100.0)
        assert info.value.to_dict()["tenant"] == "t"
        # an unknown tenant with no default quota is not rate limited
        controller.admit("other", cost=1.0).release()

    def test_ticket_context_manager_releases_once(self):
        controller = self.make()
        ticket = controller.admit("t", cost=1.0)
        with ticket:
            assert controller.depth == 1
        assert controller.depth == 0
        ticket.release()  # idempotent
        assert controller.depth == 0

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            AdmissionController(VirtualClock(), max_concurrent=4,
                                queue_soft=2, queue_hard=8)


# ---------------------------------------------------------------------------
# plan-cost estimation
# ---------------------------------------------------------------------------

class TestCostEstimation:
    def test_keyed_lookup_is_cheap_and_scan_is_expensive(self):
        platform = build_demo_platform()
        lookup = estimate_cost(platform.prepare(LOOKUP, {"id": []}).expr)
        scan = estimate_cost(platform.prepare(SCAN).expr)
        # one keyed roundtrip is the unit: a point lookup prices at 1.0
        assert lookup == 1.0
        assert lookup <= DEFAULT_COST_THRESHOLD < scan
        # a whole-table ship prices well past the shed threshold
        table = estimate_cost(platform.prepare("CUSTOMER()").expr)
        assert table > DEFAULT_COST_THRESHOLD
        # additivity: a PP-k join over the scan prices above the scan alone
        join = estimate_cost(platform.prepare(
            "for $c in CUSTOMER() for $cc in CREDIT_CARD() "
            "where $cc/CID eq $c/CID return $cc/NUMBER").expr)
        assert lookup < table < join

    def test_floor_is_one(self):
        platform = build_demo_platform()
        assert estimate_cost(platform.prepare("1 + 1").expr) == 1.0


# ---------------------------------------------------------------------------
# sessions
# ---------------------------------------------------------------------------

class TestSessions:
    def test_auth_and_lookup(self):
        platform = build_demo_platform()
        manager = SessionManager(platform.security, platform.clock)
        manager.register_tenant("acme", "pw", ("analyst",))
        with pytest.raises(SecurityError, match="authentication failed"):
            manager.open_session("acme", "wrong")
        with pytest.raises(SecurityError, match="authentication failed"):
            manager.open_session("ghost", "pw")
        session = manager.open_session("acme", "pw")
        assert manager.get(session.session_id) is session
        assert session.user.roles == frozenset({"analyst"})
        with pytest.raises(SecurityError, match="no live session"):
            manager.get("nope")
        manager.close_session(session.session_id)
        with pytest.raises(SecurityError, match="no live session"):
            manager.get(session.session_id)

    def test_idle_expiry_and_sweep(self):
        clock = VirtualClock()
        platform = build_demo_platform(clock=clock)
        manager = SessionManager(platform.security, platform.clock,
                                 idle_timeout_ms=100.0)
        manager.register_tenant("acme", "pw")
        stale = manager.open_session("acme", "pw")
        clock.charge_ms(50.0)
        fresh = manager.open_session("acme", "pw")
        manager.get(fresh.session_id)  # touch
        clock.charge_ms(80.0)  # stale is 130ms idle, fresh 80ms
        assert manager.sweep_idle() == 1
        assert manager.get(fresh.session_id) is fresh
        with pytest.raises(SecurityError, match="no live session"):
            manager.get(stale.session_id)
        assert manager.snapshot()["expired"] == 1

    def test_session_variables_feed_queries(self):
        platform, server = build_server()
        session = server.open_session("acme", "pw")
        server.sessions.bind(session.session_id, "id", [_string("C2")])
        response = server.execute(session.session_id, LOOKUP)
        assert len(response.items) == 1
        # request-level bindings override the session's
        response = server.execute(session.session_id, LOOKUP,
                                  {"id": [_string("no-such")]})
        assert response.items == []


# ---------------------------------------------------------------------------
# the serving front-end
# ---------------------------------------------------------------------------

class TestDataServer:
    def test_request_runs_as_the_session_user(self):
        platform, server = build_server()
        platform.security.protect_element(("PROFILE", "RATING"), ["manager"],
                                          action="remove")
        session = server.open_session("acme", "pw")  # analyst, not manager
        response = server.execute(session.session_id, SCAN)
        assert response.items
        for profile in response.items:
            names = [child.name.local for child in profile.child_elements()]
            assert "RATING" not in names and "CID" in names
        # the platform's direct API still defaults to ADMIN: full view
        [admin_profile] = platform.call("getProfileByID", [_string("C1")])
        assert "RATING" in [child.name.local
                            for child in admin_profile.child_elements()]

    def test_quota_shed_surfaces_and_counts(self):
        platform, server = build_server()
        server.admission.set_quota("acme", capacity=2, refill_per_s=1)
        session = server.open_session("acme", "pw")
        variables = {"id": [_string("C1")]}
        server.execute(session.session_id, LOOKUP, variables)
        server.execute(session.session_id, LOOKUP, variables)
        with pytest.raises(AdmissionError) as info:
            server.execute(session.session_id, LOOKUP, variables)
        assert info.value.reason == "quota"
        snap = platform.metrics_snapshot()
        assert snap["server.requests"] == 3
        assert snap["server.completed"] == 2
        assert snap["server.shed{reason=quota}"] == 1
        assert snap["server.latency_ms{kind=lookup}"]["count"] == 2

    def test_latency_histogram_percentiles(self):
        platform, server = build_server()
        session = server.open_session("acme", "pw")
        for cid in ("C1", "C2", "C3"):
            server.execute(session.session_id, LOOKUP,
                           {"id": [_string(cid)]})
        histogram = platform.metrics.histogram("server.latency_ms",
                                               kind="lookup")
        assert histogram.count == 3
        p50, p99 = histogram.percentile(50), histogram.percentile(99)
        assert p50 is not None and p99 is not None
        assert histogram.min <= p50 <= p99 <= histogram.max

    def test_deadline_budget_fails_doomed_requests_cleanly(self):
        platform, server = build_server()
        # even in partial-results mode a blown deadline is a hard error:
        # degradation must not silently absorb it
        platform.set_partial_results(True)
        session = server.open_session("acme", "pw")
        # the demo's rating service charges 30 simulated ms per customer;
        # a 40ms budget dooms the 4-customer scan partway through
        with pytest.raises(DeadlineExceededError):
            server.execute(session.session_id, SCAN, budget_ms=40.0)
        snap = platform.metrics_snapshot()
        assert snap["server.deadline_exceeded"] == 1
        # ...and a later request with room succeeds: the deadline was
        # reset with the request that installed it
        response = server.execute(session.session_id, SCAN)
        assert len(response.items) == 4

    def test_deadline_aborts_retry_backoff(self):
        platform = build_demo_platform()
        platform.set_source_policy("ccdb", retry=5)
        platform.ctx.databases["ccdb"].available = False
        with pytest.raises(DeadlineExceededError):
            platform.execute(SCAN, budget_ms=100.0)


# ---------------------------------------------------------------------------
# close semantics (satellite)
# ---------------------------------------------------------------------------

class TestPlatformClose:
    def test_close_is_idempotent_and_queries_fail_cleanly(self):
        platform = build_demo_platform()
        assert not platform.closed
        platform.close()
        platform.close()  # idempotent
        assert platform.closed
        with pytest.raises(PlatformClosedError):
            platform.execute("1 + 1")
        with pytest.raises(PlatformClosedError):
            platform.call("getProfile")
        with pytest.raises(PlatformClosedError):
            platform.prepare("1 + 1")

    def test_context_manager_closes(self):
        with build_demo_platform() as platform:
            assert platform.execute("1 + 1")[0].value == 2
        with pytest.raises(PlatformClosedError):
            platform.execute("1 + 1")

    def test_server_surfaces_closed_platform(self):
        platform, server = build_server()
        session = server.open_session("acme", "pw")
        platform.close()
        with pytest.raises(PlatformClosedError):
            server.execute(session.session_id, LOOKUP,
                           {"id": [_string("C1")]})


# ---------------------------------------------------------------------------
# deterministic compilation (satellite)
# ---------------------------------------------------------------------------

class TestGensymDeterminism:
    def test_fresh_platforms_compile_byte_identical_plans(self):
        first = build_demo_platform()
        second = build_demo_platform()
        # interleave unrelated compiles on the first so its (scoped)
        # numbering would diverge if state leaked across compilations
        first.explain("for $o in ORDER() return $o/AMOUNT")
        first.call("getProfileByID", [_string("C1")])
        for query in (SCAN, LOOKUP):
            variables = {"id": []} if "$id" in query else None
            assert first.explain(query, variables) == \
                second.explain(query, variables)

    def test_warm_view_cache_recompiles_identically(self):
        platform = build_demo_platform()
        cold = platform.explain(SCAN)
        platform.plan_cache.clear()  # keep the view cache warm
        assert platform.explain(SCAN) == cold
