"""Service-quality machinery tests (sections 5.4–5.6): fn-bea:async,
fn-bea:fail-over, fn-bea:timeout, and the function cache."""

import pytest

from repro.clock import VirtualClock, WallClock
from repro.errors import SourceError
from repro.runtime.asyncexec import AsyncExecutor
from repro.runtime.cache import FunctionCache
from repro.relational import Database
from repro.xml import AtomicValue, element, serialize

from tests.conftest import build_platform


class TestAsyncExecutor:
    def test_virtual_overlap_takes_max(self):
        clock = VirtualClock()
        executor = AsyncExecutor(clock)

        def work(ms):
            def thunk():
                clock.charge_ms(ms)
                return ms
            return thunk

        results = executor.run_parallel([work(30), work(50), work(10)])
        assert results == [30, 50, 10]
        assert clock.now_ms() == 50  # max, not 90

    def test_wall_clock_threads_overlap(self):
        clock = WallClock()
        executor = AsyncExecutor(clock)
        start = clock.now_ms()
        executor.run_parallel([lambda: clock.charge_ms(40)] * 3)
        elapsed = clock.now_ms() - start
        assert elapsed < 100  # three 40ms sleeps overlapped
        executor.shutdown()

    def test_branch_exception_propagates_after_all_branches(self):
        clock = VirtualClock()
        executor = AsyncExecutor(clock)
        log = []

        def failing():
            clock.charge_ms(10)
            raise SourceError("boom")

        def ok():
            clock.charge_ms(30)
            log.append("ran")
            return 1

        with pytest.raises(SourceError):
            executor.run_parallel([failing, ok])
        assert log == ["ran"]
        assert clock.now_ms() == 30

    def test_measure(self):
        clock = VirtualClock()
        executor = AsyncExecutor(clock)
        result, elapsed, failed = executor.measure(lambda: clock.charge_ms(25) or "v")
        assert elapsed == 25 and not failed
        assert clock.now_ms() == 0  # measurement did not advance the clock


class TestAsyncInQueries:
    def test_sibling_async_calls_overlap(self):
        ws_log = []
        platform = build_platform(ws_latency_ms=40.0, ws_log=ws_log, deploy_profile=False)
        query = '''
        for $c in CUSTOMER()
        where $c/CID eq "C1"
        return <R>{
            fn-bea:async(getRating(<getRating><lName>{data($c/LAST_NAME)}</lName>
                                   <ssn>{data($c/SSN)}</ssn></getRating>)),
            fn-bea:async(getRating(<getRating><lName>{data($c/LAST_NAME)}</lName>
                                   <ssn>{data($c/SSN)}</ssn></getRating>))
        }</R>
        '''
        start = platform.clock.now_ms()
        platform.execute(query)
        elapsed = platform.clock.now_ms() - start
        assert platform.ctx.stats.service_calls == 2
        assert platform.ctx.async_exec.groups_run >= 1
        # two 40ms calls overlapped: well under the 80ms serial cost
        assert elapsed < 80

    def test_single_async_is_transparent(self):
        platform = build_platform(deploy_profile=False)
        out = platform.execute('fn-bea:async((1, 2))')
        assert [i.value for i in out] == [1, 2]


class TestFailover:
    def test_failover_returns_primary_on_success(self):
        platform = build_platform(deploy_profile=False)
        out = platform.execute('fn-bea:fail-over(CUSTOMER(), ())')
        assert len(out) == 2

    def test_failover_to_alternate_on_source_error(self):
        platform = build_platform(deploy_profile=False)
        platform.ctx.databases["custdb"].available = False
        out = platform.execute('fn-bea:fail-over(CUSTOMER(), CREDIT_CARD())')
        assert serialize(out[0]).startswith("<CREDIT_CARD>")

    def test_failover_empty_alternate_gives_partial_result(self):
        platform = build_platform(deploy_profile=False)
        platform.ctx.databases["custdb"].available = False
        assert platform.execute('fn-bea:fail-over(CUSTOMER(), ())') == []

    def test_programming_errors_not_swallowed(self):
        from repro.errors import DynamicError

        platform = build_platform(deploy_profile=False)
        with pytest.raises(DynamicError):
            platform.execute('fn-bea:fail-over(1 div 0, 99)')

    def test_timeout_returns_primary_when_fast(self):
        platform = build_platform(ws_latency_ms=10.0, deploy_profile=False)
        out = platform.execute('''
            fn-bea:timeout(
              getRating(<getRating><lName>x</lName><ssn>101</ssn></getRating>),
              50, <DEFAULT>0</DEFAULT>)
        ''')
        assert serialize(out[0]).startswith("<getRatingResponse>")

    def test_timeout_fails_over_when_slow(self):
        platform = build_platform(ws_latency_ms=200.0, deploy_profile=False)
        start = platform.clock.now_ms()
        out = platform.execute('''
            fn-bea:timeout(
              getRating(<getRating><lName>x</lName><ssn>101</ssn></getRating>),
              30, <DEFAULT>0</DEFAULT>)
        ''')
        elapsed = platform.clock.now_ms() - start
        assert serialize(out) == "<DEFAULT>0</DEFAULT>"
        # the caller waited the limit, not the full 200ms
        assert elapsed == pytest.approx(30, abs=1)

    def test_timeout_handles_unavailable_source(self):
        platform = build_platform(deploy_profile=False)
        platform.ctx.databases["custdb"].available = False
        out = platform.execute('fn-bea:timeout(CUSTOMER(), 100, <ALT/>)')
        assert serialize(out) == "<ALT/>"


class TestFunctionCache:
    def test_hit_after_miss(self):
        clock = VirtualClock()
        cache = FunctionCache(clock)
        cache.enable("f", ttl_ms=1000)
        key = cache.argument_key([[AtomicValue("a", "xs:string")]])
        assert cache.get("f", key) is None
        cache.put("f", key, [AtomicValue(1, "xs:integer")])
        assert cache.get("f", key) == [AtomicValue(1, "xs:integer")]
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_ttl_expiry(self):
        clock = VirtualClock()
        cache = FunctionCache(clock)
        cache.enable("f", ttl_ms=100)
        cache.put("f", "k", [AtomicValue(1, "xs:integer")])
        clock.charge_ms(150)
        assert cache.get("f", "k") is None
        assert cache.stats.expirations == 1

    def test_disabled_function_not_stored(self):
        cache = FunctionCache(VirtualClock())
        cache.put("f", "k", [AtomicValue(1, "xs:integer")])
        assert cache.get("f", "k") is None

    def test_argument_key_distinguishes_values(self):
        cache = FunctionCache(VirtualClock())
        k1 = cache.argument_key([[AtomicValue("a", "xs:string")]])
        k2 = cache.argument_key([[AtomicValue("b", "xs:string")]])
        assert k1 != k2
        k3 = cache.argument_key([[element("X", "v")]])
        assert k3 not in (k1, k2)

    def test_relational_backing_store(self):
        clock = VirtualClock()
        backing = Database("cachedb", clock=clock)
        cache = FunctionCache(clock, backing=backing)
        cache.enable("f", ttl_ms=1000)
        cache.put("f", "k", [element("R", 7, type_annotation="xs:integer")])
        # simulate another node: fresh in-memory map, same backing table
        other = FunctionCache(clock, backing=backing)
        other.enable("f", ttl_ms=1000)
        [item] = other.get("f", "k")
        assert serialize(item) == "<R>7</R>"

    def test_platform_caching_turns_service_calls_into_lookups(self):
        platform = build_platform(ws_latency_ms=50.0, deploy_profile=False)
        platform.enable_function_cache("getRating", ttl_ms=10_000, arity=1)
        query = '''
            getRating(<getRating><lName>J</lName><ssn>101</ssn></getRating>)
            /getRatingResult
        '''
        platform.execute(query)
        assert platform.ctx.stats.service_calls == 1
        t0 = platform.clock.now_ms()
        out = platform.execute(query)
        elapsed = platform.clock.now_ms() - t0
        assert platform.ctx.stats.service_calls == 1  # no second call
        assert elapsed < 50.0
        assert serialize(out) == "<getRatingResult>701</getRatingResult>"

    def test_stale_entry_recomputed(self):
        platform = build_platform(ws_latency_ms=50.0, deploy_profile=False)
        platform.enable_function_cache("getRating", ttl_ms=10.0, arity=1)
        query = 'getRating(<getRating><lName>J</lName><ssn>101</ssn></getRating>)'
        platform.execute(query)
        platform.clock.charge_ms(100)
        platform.execute(query)
        assert platform.ctx.stats.service_calls == 2
