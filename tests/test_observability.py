"""Observability plane tests (O-OBS): tracer, metrics, profile, exports.

Covers the tentpole contracts — span trees mirroring the executed plan,
``Platform.profile`` actuals joined to the plan render by stable operator
ids, the unified metrics snapshot — and the satellite guarantees: the
observed-cost model only learns from *successful* attempts, a one-call
``reset_stats``, async branch spans nesting under the query span on pool
threads, and byte-identical Chrome trace exports under the virtual clock.
"""

from __future__ import annotations

import json
import re

import pytest

from repro import Platform
from repro.clock import VirtualClock, WallClock
from repro.observability import (
    NOOP_SPAN,
    MetricsRegistry,
    NoopTracer,
    QueryTracer,
    chrome_trace,
    chrome_trace_json,
    render_metrics,
    render_span_tree,
    series_name,
)
from repro.resilience import FaultInjector, RetryPolicy
from tests.conftest import build_custdb, build_platform, rating_service

# PP-k over two databases plus two overlapped web-service calls: the
# acceptance query shape (PP-k + async, two sources).
PPK_ASYNC_QUERY = '''
for $c in CUSTOMER()
return <R>{ $c/CID,
    <CARDS>{ for $cc in CREDIT_CARD() where $cc/CID eq $c/CID
             return $cc/NUMBER }</CARDS>,
    fn-bea:async(data(getRating(
        <getRating><lName>{data($c/LAST_NAME)}</lName>
        <ssn>{data($c/SSN)}</ssn></getRating>)/getRatingResult)),
    fn-bea:async(data(getRating(
        <getRating><lName>{data($c/LAST_NAME)}</lName>
        <ssn>{data($c/SSN)}</ssn></getRating>)/getRatingResult))
}</R>
'''


# ---------------------------------------------------------------------------
# Tracer unit behaviour
# ---------------------------------------------------------------------------


class TestQueryTracer:
    def test_span_tree_follows_nesting(self):
        clock = VirtualClock()
        tracer = QueryTracer(clock)
        with tracer.start("query", "q") as root:
            with tracer.start("pushed-sql", "custdb") as inner:
                clock.charge_ms(5)
                inner.set(rows=3)
        assert tracer.roots == [root]
        assert [s.kind for s in root.walk()] == ["query", "pushed-sql"]
        assert root.children[0].parent is root
        assert root.children[0].elapsed_ms == 5
        assert root.children[0].attrs["rows"] == 3

    def test_timestamps_come_from_the_clock(self):
        clock = VirtualClock()
        clock.charge_ms(100)
        tracer = QueryTracer(clock)
        span = tracer.start("x")
        clock.charge_ms(7)
        span.end()
        assert span.start_ms == 100 and span.end_ms == 107

    def test_none_attrs_are_dropped(self):
        tracer = QueryTracer(VirtualClock())
        span = tracer.start("x", op=None, rows=2)
        assert span.attrs == {"rows": 2}

    def test_explicit_parent_overrides_cursor(self):
        tracer = QueryTracer(VirtualClock())
        root = tracer.start("query")
        other = tracer.start("op")
        branch = tracer.start("async.branch", parent=root)
        assert branch.parent is root and branch in root.children
        assert branch not in other.children

    def test_out_of_order_close_keeps_tree_intact(self):
        tracer = QueryTracer(VirtualClock())
        a = tracer.start("a")
        b = tracer.start("b")
        a.end()  # closes before its child-cursor sibling
        b.end()
        assert a.end_ms is not None and b.end_ms is not None
        assert b.parent is a

    def test_exception_marks_span_and_closes_it(self):
        tracer = QueryTracer(VirtualClock())
        with pytest.raises(ValueError):
            with tracer.start("x"):
                raise ValueError("boom")
        [root] = tracer.roots
        assert root.attrs["error"] == "ValueError"
        assert root.end_ms is not None

    def test_spans_feed_metrics_histograms(self):
        metrics = MetricsRegistry()
        tracer = QueryTracer(VirtualClock(), metrics)
        with tracer.start("pushed-sql"):
            pass
        snap = metrics.snapshot()
        assert snap["trace.span_ms{kind=pushed-sql}"]["count"] == 1

    def test_instant_is_a_closed_zero_duration_span(self):
        tracer = QueryTracer(VirtualClock())
        span = tracer.instant("breaker.rejected", "ccdb")
        assert span.elapsed_ms == 0 and span.end_ms is not None


class TestNoopTracer:
    def test_disabled_contract_counts_calls_allocates_nothing(self):
        tracer = NoopTracer()
        assert tracer.enabled is False
        with tracer.start("pushed-sql", "custdb", rows=1) as span:
            span.set(rows=2).add("n")
        tracer.instant("breaker.rejected")
        assert tracer.calls == 2
        assert tracer.spans_allocated == 0
        assert tracer.start("x") is NOOP_SPAN  # the shared singleton
        assert tracer.current() is None and tracer.roots == []


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_series_name_sorts_labels(self):
        assert series_name("source.roundtrips", {"b": 1, "a": "x"}) == \
            "source.roundtrips{a=x,b=1}"
        assert series_name("runtime.tuples", {}) == "runtime.tuples"

    def test_instruments_snapshot_and_reset(self):
        metrics = MetricsRegistry()
        metrics.counter("c").inc(3)
        metrics.gauge("g", source="db").set(7)
        h = metrics.histogram("h")
        h.observe(1.0)
        h.observe(3.0)
        snap = metrics.snapshot()
        assert snap["c"] == 3 and snap["g{source=db}"] == 7
        assert snap["h"]["count"] == 2 and snap["h"]["avg"] == 2.0
        metrics.reset()
        snap = metrics.snapshot()
        assert snap["c"] == 0 and snap["h"]["count"] == 0

    def test_collectors_merge_into_snapshot(self):
        metrics = MetricsRegistry()
        metrics.counter("a").inc()
        metrics.add_collector(lambda: {"legacy.counter": 42})
        snap = metrics.snapshot()
        assert snap["legacy.counter"] == 42 and snap["a"] == 1
        assert list(snap) == sorted(snap)

    def test_render_metrics_dashboard(self):
        text = render_metrics({"a.long.name": 3, "h": {"count": 1, "sum": 2.0,
                                                       "avg": 2.0, "min": 2.0,
                                                       "max": 2.0}})
        assert "a.long.name" in text and "count=1" in text


# ---------------------------------------------------------------------------
# Platform integration: tracing toggle, spans, unified snapshot
# ---------------------------------------------------------------------------


class TestPlatformTracing:
    def test_tracing_off_by_default_and_counts_crossings(self):
        platform = build_platform()
        assert platform.tracer.enabled is False
        platform.call("getProfile")
        # the hot path crossed instrumentation points without allocating
        assert platform.tracer.calls > 0
        assert platform.tracer.spans_allocated == 0
        assert platform.last_trace is None

    def test_enabled_tracing_records_operator_spans(self):
        platform = build_platform()
        platform.set_tracing(True)
        items = platform.call("getProfile")
        root = platform.last_trace
        assert root.kind == "query" and root.attrs["items"] == len(items)
        kinds = {span.kind for span in root.walk()}
        assert {"pushed-sql", "ppk.fetch", "ppk.join", "source-call",
                "source.roundtrip"} <= kinds
        # every source roundtrip is a child span of some operator span
        for rt in root.find("source.roundtrip"):
            assert rt.parent is not None and rt.parent.kind != "query"

    def test_unified_snapshot_covers_every_stats_family(self):
        platform = build_platform()
        platform.set_tracing(True)
        platform.call("getProfile")
        snap = platform.metrics_snapshot()
        assert snap["runtime.pushed_queries"] > 0
        assert snap["runtime.ppk_blocks"] > 0
        assert snap[series_name("source.roundtrips", {"source": "custdb"})] > 0
        assert series_name("source.attempts", {"source": "ccdb"}) in snap
        # resilience + cache + plan-cache + trace series are all present
        assert "resilience.degradations" in snap
        assert "cache.hits" in snap and "plan_cache.misses" in snap
        assert any(name.startswith("trace.span_ms") for name in snap)

    def test_tracer_swap_reaches_connections_and_pools(self):
        platform = build_platform()
        platform.set_tracing(True)
        tracer = platform.tracer
        assert platform.ctx.async_exec.tracer is tracer
        assert platform.ctx.resilience.tracer is tracer
        for name in platform.ctx.databases:
            assert platform.ctx.connection(name).tracer is tracer
        platform.set_tracing(False)
        assert platform.ctx.async_exec.tracer.enabled is False


# ---------------------------------------------------------------------------
# Platform.profile (explain analyze)
# ---------------------------------------------------------------------------


class TestProfile:
    def test_profile_annotates_plan_with_actuals(self):
        platform = build_platform()
        profile = platform.profile(PPK_ASYNC_QUERY)
        assert profile.items == 2
        text = str(profile)
        # PP-k clause annotated with its fetch/join split and row counts
        assert re.search(r"PP-\d+ JOIN.*\[#\d+ actual: .*rows=", text)
        assert "ppk.fetch" in text and "roundtrips=" in text
        # the async service calls are attributed to the source-call operator
        assert re.search(r"SOURCE CALL getRating.*actual: \d+ span", text)

    def test_annotations_ride_on_the_explain_render(self):
        """Stripping the actuals suffix recovers ``explain`` byte-for-byte:
        one renderer, stable operator ids across explain and profile."""
        platform = build_platform()
        profile = platform.profile(PPK_ASYNC_QUERY)
        stripped = re.sub(r"  \[#\d+ actual: [^\]]*\]", "", profile.text)
        plain = platform.explain(PPK_ASYNC_QUERY).split("\nDIAGNOSTICS")[0]
        assert stripped == plain

    def test_virtual_clock_span_consistency(self):
        """Exact timing identities under the virtual clock: the root span
        equals the measured elapsed time, children sit inside their
        parents, and an async group's elapsed is the max of its branches."""
        platform = build_platform()
        profile = platform.profile(PPK_ASYNC_QUERY)
        root = profile.root
        assert root.kind == "query"
        assert root.elapsed_ms == profile.elapsed_ms
        for span in root.walk():
            for child in span.children:
                assert child.start_ms >= span.start_ms
                assert child.end_ms <= span.end_ms
        groups = root.find("async.group")
        assert groups, "PP-k + async query must run async groups"
        for group in groups:
            branches = [c for c in group.children if c.kind == "async.branch"]
            assert len(branches) == 2
            # overlap: both branches start at the group's base time and the
            # group closes exactly when the slowest branch does
            assert branches[0].start_ms == branches[1].start_ms
            assert group.elapsed_ms == max(b.elapsed_ms for b in branches)

    def test_profile_restores_the_installed_tracer(self):
        platform = build_platform()
        platform.set_tracing(False)
        before = platform.tracer
        platform.profile("1 + 1")
        assert platform.tracer is before
        platform.set_tracing(True)
        enabled = platform.tracer
        platform.profile("1 + 1")
        assert platform.tracer is enabled

    def test_group_by_actuals_report_groups(self):
        platform = build_platform()
        # literal input keeps the group-by mid-tier (nothing to push)
        profile = platform.profile('''
            for $x in (1, 2, 3, 4, 5)
            group $x as $g by $x mod 2 as $k
            return <G>{$k}</G>
        ''')
        assert re.search(r"group by.*actual:.*groups=2", profile.text)


# ---------------------------------------------------------------------------
# Satellite: observed cost model learns only from successes
# ---------------------------------------------------------------------------


class TestObservedCostSuccessOnly:
    def test_failed_attempts_and_backoff_never_pollute_samples(self):
        platform = build_platform()
        platform.set_source_policy("custdb", retry=RetryPolicy(
            max_attempts=3, backoff_ms=500.0, multiplier=2.0))
        FaultInjector().fail_first(2).attach(platform.ctx.databases["custdb"])
        platform.execute("for $c in CUSTOMER() return $c/CID")
        stats = platform.ctx.databases["custdb"].stats
        assert stats.attempts == 3 and stats.retries == 2  # the plan fired
        samples = platform.ctx.observed._samples["custdb"]
        # exactly one sample: the successful third attempt — and its elapsed
        # is the single-roundtrip cost, not attempts + retry backoff
        assert len(samples) == stats.roundtrips == 1
        assert samples[0].elapsed_ms < 100  # backoff alone would be >= 500
        estimate = platform.ctx.observed.estimate("custdb")
        assert estimate.roundtrip_ms < 100


# ---------------------------------------------------------------------------
# Satellite: one-call reset
# ---------------------------------------------------------------------------


class TestResetStats:
    def test_reset_zeroes_every_series_in_one_call(self):
        platform = build_platform()
        platform.set_tracing(True)
        platform.call("getProfile")
        platform.call("getProfile")
        before = platform.metrics_snapshot()
        assert before["runtime.pushed_queries"] > 0
        assert before["plan_cache.hits"] > 0
        assert before[series_name("source.attempts", {"source": "ccdb"})] > 0
        platform.reset_stats()
        after = platform.metrics_snapshot()
        for name, value in after.items():
            if name == "plan_cache.size":  # plans are kept, counters zeroed
                continue
            if isinstance(value, dict):
                assert value["count"] == 0, name
            else:
                assert value == 0, name


# ---------------------------------------------------------------------------
# Satellite: async branch spans nest under the query span on pool threads
# ---------------------------------------------------------------------------


def _async_group(root):
    groups = root.find("async.group")
    assert groups
    return groups[0]


class TestAsyncSpanNesting:
    def test_virtual_clock_branches_nest_and_overlap(self):
        platform = build_platform()
        platform.set_tracing(True)
        platform.execute(PPK_ASYNC_QUERY)
        root = platform.last_trace
        group = _async_group(root)
        branches = [c for c in group.children if c.kind == "async.branch"]
        assert len(branches) == 2
        for branch in branches:
            # the service call the branch ran nests below the branch span
            assert branch.find("source-call")
        assert group.elapsed_ms == max(b.elapsed_ms for b in branches)

    def test_wall_clock_pool_threads_still_parent_to_the_query(self):
        clock = WallClock()
        platform = Platform(clock=clock)
        platform.register_database(build_custdb(clock))
        platform.register_web_service(rating_service(latency_ms=5.0))
        platform.set_tracing(True)
        platform.execute('''
            for $c in CUSTOMER() where $c/CID eq "C1"
            return <R>{
                fn-bea:async(getRating(<getRating>
                    <lName>{data($c/LAST_NAME)}</lName>
                    <ssn>{data($c/SSN)}</ssn></getRating>)),
                fn-bea:async(getRating(<getRating>
                    <lName>{data($c/LAST_NAME)}</lName>
                    <ssn>{data($c/SSN)}</ssn></getRating>))
            }</R>
        ''')
        root = platform.last_trace
        assert root.kind == "query"
        group = _async_group(root)
        branches = [c for c in group.children if c.kind == "async.branch"]
        assert len(branches) == 2
        for branch in branches:
            assert branch.parent is group  # explicit handoff, not ambient
            assert branch.find("source-call")
            assert branch.elapsed_ms > 0
        # both web-service calls slept 5ms; overlap means the group is
        # well under the 10ms serial cost
        assert group.elapsed_ms < 9.5


# ---------------------------------------------------------------------------
# Chrome trace export + determinism
# ---------------------------------------------------------------------------


def _traced_chrome_json(seed: int) -> str:
    platform = build_platform()
    platform.set_partial_results(True)
    platform.set_source_policy("ccdb", retry=RetryPolicy(
        max_attempts=2, backoff_ms=5.0))
    FaultInjector(seed=seed).fail_with_probability(0.4).attach(
        platform.ctx.databases["ccdb"])
    platform.set_tracing(True)
    platform.execute(PPK_ASYNC_QUERY)
    return chrome_trace_json(platform.tracer.roots)


class TestChromeExport:
    def test_schema_of_emitted_events(self):
        platform = build_platform()
        platform.set_tracing(True)
        platform.execute(PPK_ASYNC_QUERY)
        doc = chrome_trace(platform.tracer.roots)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"  # process-name metadata record
        spans = [e for e in events if e["ph"] == "X"]
        assert spans, "no complete events emitted"
        for event in spans:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid",
                    "args"} <= set(event)
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert "sid" in event["args"]
        # overlapping async branches get their own deterministic lanes
        branch_lanes = [e["tid"] for e in spans if e["cat"] == "async.branch"]
        assert len(branch_lanes) == len(set(branch_lanes)) >= 2

    def test_round_trips_through_json(self):
        platform = build_platform()
        platform.set_tracing(True)
        platform.execute("for $c in CUSTOMER() return $c/CID")
        doc = json.loads(chrome_trace_json(platform.tracer.roots))
        assert any(e.get("cat") == "query" for e in doc["traceEvents"])

    def test_trace_is_byte_identical_across_runs(self):
        """Satellite: virtual clock + seeded faults => deterministic export."""
        first = _traced_chrome_json(seed=3)
        second = _traced_chrome_json(seed=3)
        assert first == second
        assert len(json.loads(first)["traceEvents"]) > 5
        # the seed actually fired a fault: the trace records a retry
        assert '"attempt":2' in first
        # and the determinism is real, not vacuous: a fault-free seed
        # produces a different trace
        assert _traced_chrome_json(seed=5) != first

    def test_span_tree_rendering(self):
        platform = build_platform()
        platform.set_tracing(True)
        platform.call("getProfile")
        text = render_span_tree(platform.last_trace)
        lines = text.splitlines()
        assert lines[0].startswith("query getProfile")
        assert any(line.startswith("  pushed-sql") for line in lines)
        assert any("source.roundtrip" in line for line in lines)
