"""Adaptive parallel source access (P-ADAPT).

Covers the three tentpole behaviours — closed-loop PP-k block sizing from
the observed cost model, the deep prefetch window, and scatter execution
of compiler-stamped independent regions — plus the satellite work: the
``math.ceil`` recommendation edge cases, the bounded LRU function cache,
and the configurable async worker pool (with window clamping).
"""

import pytest

from repro.clock import WallClock
from repro.compiler.verify import verify_plan
from repro.demo import build_demo_platform
from repro.relational.database import LatencyModel
from repro.resilience import FaultInjector
from repro.runtime.cache import FunctionCache
from repro.runtime.observed import ObservedCostModel
from repro.xml import serialize
from repro.xml.items import AtomicValue

from tests.conftest import build_platform

CROSS_DB_QUERY = '''
for $c in CUSTOMER()
return <OUT>{
    $c/CID,
    <CARDS>{ for $cc in CREDIT_CARD() where $cc/CID eq $c/CID return $cc/NUMBER }</CARDS>
}</OUT>
'''

SCATTER_QUERY = '''
let $c := CUSTOMER()
let $cc := CREDIT_CARD()
return <OUT><A>{count($c)}</A><B>{count($cc)}</B>
            <A2>{count($c)}</A2><B2>{count($cc)}</B2></OUT>
'''

DEPENDENT_QUERY = '''
let $c := CUSTOMER()
let $d := $c
return <OUT>{count($c), count($d), count($d)}</OUT>
'''


def let_clauses(expr):
    from repro.xquery import ast_nodes as ast

    return [n for n in expr.walk() if isinstance(n, ast.LetClause)]


# ---------------------------------------------------------------------------
# Satellite: recommend_ppk edge cases (math.ceil, samples, per_row <= 0)
# ---------------------------------------------------------------------------


class TestRecommendPpkEdges:
    def test_fewer_than_two_samples_recommends_nothing(self):
        model = ObservedCostModel()
        assert model.recommend_ppk("src") is None
        model.record("src", 10, 5.0)
        assert model.recommend_ppk("src") is None

    def test_uniform_rows_attribute_everything_to_roundtrip(self):
        # var_rows == 0 -> per_row_ms == 0 -> batch as much as possible
        model = ObservedCostModel()
        model.record("src", 10, 5.0)
        model.record("src", 10, 5.0)
        estimate = model.estimate("src")
        assert estimate.per_row_ms == 0.0
        assert model.recommend_ppk("src") == 200
        assert model.recommend_ppk("src", k_max=64) == 64

    def test_fractional_ideal_rounds_up(self):
        # fit: roundtrip=1.0, per_row=0.3 -> ideal = 1*(1-.5)/(.5*.3) = 3.33
        model = ObservedCostModel()
        model.record("src", 0, 1.0)
        model.record("src", 10, 4.0)
        estimate = model.estimate("src")
        assert estimate.roundtrip_ms == pytest.approx(1.0)
        assert estimate.per_row_ms == pytest.approx(0.3)
        assert model.recommend_ppk("src") == 4

    def test_bounds_are_respected(self):
        model = ObservedCostModel()
        model.record("src", 0, 100.0)
        model.record("src", 10, 101.0)
        assert model.recommend_ppk("src", k_min=5, k_max=50) == 50
        model2 = ObservedCostModel()
        model2.record("src", 0, 0.01)
        model2.record("src", 10, 100.0)
        assert model2.recommend_ppk("src", k_min=5, k_max=50) == 5


# ---------------------------------------------------------------------------
# Tentpole 1: adaptive PP-k block sizing
# ---------------------------------------------------------------------------


class TestAdaptivePpk:
    def test_off_by_default_keeps_static_blocks(self):
        platform = build_platform(customers=12, deploy_profile=False)
        platform.set_ppk_block_size(3)
        platform.execute(CROSS_DB_QUERY)
        assert platform.ctx.stats.ppk_blocks == 4
        assert platform.ctx.databases["ccdb"].stats.ppk_k_adjustments == 0

    def test_adaptive_resizes_blocks_and_preserves_results(self):
        reference = build_platform(customers=12, deploy_profile=False)
        reference.set_ppk_block_size(3)
        expected = serialize(reference.execute(CROSS_DB_QUERY))

        platform = build_platform(customers=12, deploy_profile=False)
        platform.set_ppk_block_size(3)
        platform.set_adaptive_ppk(True)
        out = serialize(platform.execute(CROSS_DB_QUERY))
        assert out == expected
        # Uniform per-block row counts attribute the whole cost to the
        # roundtrip, so once two samples exist the model recommends k_max
        # and the tail collapses into one big block: fewer blocks than the
        # static plan, and the re-size is counted against the source.
        assert platform.ctx.stats.ppk_blocks < 4
        assert platform.ctx.databases["ccdb"].stats.ppk_k_adjustments >= 1

    def test_chosen_k_histogram_and_metrics_counter(self):
        platform = build_platform(customers=12, deploy_profile=False)
        platform.set_ppk_block_size(3)
        platform.set_adaptive_ppk(True)
        platform.execute(CROSS_DB_QUERY)
        snapshot = platform.metrics_snapshot()
        histograms = [key for key in snapshot if key.startswith("ppk.chosen_k")]
        assert histograms, sorted(snapshot)
        [series] = [key for key in snapshot
                    if key.startswith("source.ppk_k_adjustments") and "ccdb" in key]
        assert snapshot[series] >= 1

    def test_adjustment_counter_resets(self):
        platform = build_platform(customers=12, deploy_profile=False)
        platform.set_ppk_block_size(3)
        platform.set_adaptive_ppk(True)
        platform.execute(CROSS_DB_QUERY)
        assert platform.ctx.databases["ccdb"].stats.ppk_k_adjustments >= 1
        platform.reset_stats()
        assert platform.ctx.databases["ccdb"].stats.ppk_k_adjustments == 0

    def test_knob_validates_bounds(self):
        platform = build_platform(deploy_profile=False)
        with pytest.raises(ValueError):
            platform.set_adaptive_ppk(True, k_min=0)
        with pytest.raises(ValueError):
            platform.set_adaptive_ppk(True, k_min=10, k_max=5)

    def test_profile_shows_block_capacity_fact(self):
        platform = build_platform(customers=4, deploy_profile=False)
        profile = platform.profile(CROSS_DB_QUERY)
        assert "k=20" in profile.text  # static capacity surfaces as a fact


# ---------------------------------------------------------------------------
# Tentpole 2: deep prefetch window
# ---------------------------------------------------------------------------


class TestPrefetchWindow:
    def test_window_results_identical_to_serial(self):
        reference = build_platform(customers=12, deploy_profile=False)
        reference.set_ppk_block_size(2)
        reference.set_ppk_pipelining(False)
        expected = serialize(reference.execute(CROSS_DB_QUERY))
        for window in (1, 2, 3, 8):
            platform = build_platform(customers=12, deploy_profile=False)
            platform.set_ppk_block_size(2)
            platform.set_ppk_prefetch_window(window)
            assert serialize(platform.execute(CROSS_DB_QUERY)) == expected

    def test_window_is_clamped_to_worker_pool(self):
        platform = build_platform(customers=12, deploy_profile=False)
        platform.set_async_workers(2)
        platform.set_ppk_prefetch_window(8)
        platform.set_ppk_block_size(2)
        platform.execute(CROSS_DB_QUERY)
        # 6 blocks at effective W=2: one initial 2-fetch group, then two
        # join+2-fetch rounds, with the last window joined inline.
        assert platform.ctx.async_exec.max_workers == 2
        assert platform.ctx.async_exec.groups_run == 3
        assert platform.ctx.async_exec.branches_run == 8

    def test_worker_pool_knob_validates(self):
        platform = build_platform(deploy_profile=False)
        with pytest.raises(ValueError):
            platform.set_async_workers(0)
        with pytest.raises(ValueError):
            platform.set_ppk_prefetch_window(0)

    def test_deeper_window_overlaps_more_latency(self):
        def elapsed(window: int) -> float:
            platform = build_demo_platform(
                customers=60, orders_per_customer=0, deploy_profile=False,
                db_latency=LatencyModel(roundtrip_ms=20.0, per_row_ms=0.01),
            )
            platform.set_ppk_block_size(5)
            platform.set_ppk_prefetch_window(window)
            start = platform.clock.now_ms()
            platform.execute(CROSS_DB_QUERY)
            return platform.clock.now_ms() - start

        times = {w: elapsed(w) for w in (1, 2, 4)}
        assert times[2] < times[1]
        assert times[4] <= times[2]

    def test_degraded_block_mid_window_virtual_clock(self):
        def run(pipelined: bool) -> str:
            platform = build_platform(customers=12, deploy_profile=False)
            platform.set_ppk_block_size(2)
            platform.set_partial_results(True)
            if pipelined:
                platform.set_ppk_prefetch_window(3)
            else:
                platform.set_ppk_pipelining(False)
            FaultInjector().fail_first(2).attach(platform.ctx.databases["ccdb"])
            return serialize(platform.execute(CROSS_DB_QUERY))

        windowed = run(pipelined=True)
        serial = run(pipelined=False)
        assert windowed == serial  # byte-identical despite faults in-window
        # the first two blocks degraded: C1-C4 left-outer join to nothing
        for cid in ("C1", "C2", "C3", "C4"):
            assert f"<CID>{cid}</CID><CARDS/>" in windowed
        assert "<NUMBER>4405</NUMBER>" in windowed

    def test_degraded_block_mid_window_wall_clock(self):
        platform = build_demo_platform(
            customers=10, orders_per_customer=0, clock=WallClock(),
            deploy_profile=False,
            db_latency=LatencyModel(roundtrip_ms=1.0, per_row_ms=0.0,
                                    connect_timeout_ms=0.0),
        )
        platform.set_ppk_block_size(2)
        platform.set_ppk_prefetch_window(3)
        platform.set_partial_results(True)
        FaultInjector().fail_first(2).attach(platform.ctx.databases["ccdb"])
        out = serialize(platform.execute(CROSS_DB_QUERY))
        platform.close()
        # Which two blocks hit the injected failures is a thread race, but
        # order and left-outer shape are invariant: every customer appears,
        # in arrival order, and exactly two blocks (four customers) degrade.
        cids = [f"C{i}" for i in range(1, 11)]
        positions = [out.index(f"<CID>{cid}</CID>") for cid in cids]
        assert positions == sorted(positions)
        assert out.count("<OUT>") == 10
        assert out.count("<CARDS/>") == 4


# ---------------------------------------------------------------------------
# Tentpole 3: scatter execution of independent regions
# ---------------------------------------------------------------------------


class TestScatterRegions:
    def test_compiler_stamps_independent_lets(self):
        platform = build_platform(deploy_profile=False)
        plan = platform.prepare(SCATTER_QUERY)
        stamped = [c for c in let_clauses(plan.expr)
                   if getattr(c, "scatter_group", None) is not None]
        assert len(stamped) == 2
        assert len({c.scatter_group for c in stamped}) == 1

    def test_dependent_let_is_not_stamped(self):
        platform = build_platform(deploy_profile=False)
        plan = platform.prepare(DEPENDENT_QUERY)
        assert all(getattr(c, "scatter_group", None) is None
                   for c in let_clauses(plan.expr))

    def test_explain_renders_scatter_groups(self):
        platform = build_platform(deploy_profile=False)
        assert "[scatter group" in platform.explain(SCATTER_QUERY)
        assert "[scatter group" not in platform.explain(DEPENDENT_QUERY)

    def test_verifier_rejects_dependent_scatter_group(self):
        # Hand-build a plan whose stamped group violates independence (the
        # stamping pass never produces one — this guards against drift).
        from repro.xml.items import AtomicValue as Atomic
        from repro.xquery import ast_nodes as ast

        first = ast.LetClause("c", ast.Literal(Atomic(1, "xs:integer")))
        second = ast.LetClause("d", ast.VarRef("c"))
        first.scatter_group = 42
        second.scatter_group = 42
        flwor = ast.FLWOR([first, second],
                          ast.SequenceExpr([ast.VarRef("c"), ast.VarRef("d")]))
        report = verify_plan(flwor)
        [finding] = [d for d in report.errors if d.code == "ALDSP-E309"]
        assert "$d" in finding.message and "$c" in finding.message

    def test_scatter_costs_max_not_sum(self):
        def elapsed(parallel: bool) -> float:
            platform = build_demo_platform(customers=4, orders_per_customer=0,
                                           deploy_profile=False)
            platform.set_parallel_regions(parallel)
            start = platform.clock.now_ms()
            platform.execute(SCATTER_QUERY)
            return platform.clock.now_ms() - start

        # each region ships 4 rows: roundtrip + 4 * per_row = 5.2ms
        region_ms = 5.0 + 4 * 0.05
        assert elapsed(parallel=False) == pytest.approx(2 * region_ms)
        assert elapsed(parallel=True) == pytest.approx(region_ms)

    def test_scatter_results_match_serial(self):
        platform = build_platform(customers=5, deploy_profile=False)
        out = serialize(platform.execute(SCATTER_QUERY))
        reference = build_platform(customers=5, deploy_profile=False)
        reference.set_parallel_regions(False)
        assert out == serialize(reference.execute(SCATTER_QUERY))
        assert "<A>5</A>" in out and "<B>5</B>" in out

    def test_scatter_branches_nest_under_async_group_span(self):
        platform = build_platform(customers=3, deploy_profile=False)
        profile = platform.profile(SCATTER_QUERY)
        groups = profile.root.find("async.group")
        assert groups and groups[0].attrs["branches"] == 2
        assert len(groups[0].find("async.branch")) == 2

    def test_scatter_degrades_per_branch_with_partial_results(self):
        platform = build_platform(customers=3, deploy_profile=False)
        platform.set_partial_results(True)
        platform.ctx.databases["ccdb"].available = False
        out = serialize(platform.execute(SCATTER_QUERY))
        assert "<A>3</A>" in out  # the healthy branch is unaffected
        assert "<B>0</B>" in out  # the dead source degrades to empty
        assert platform.ctx.databases["ccdb"].stats.degraded >= 1


# ---------------------------------------------------------------------------
# Satellite: bounded LRU function cache
# ---------------------------------------------------------------------------


def _items(n: int):
    return [AtomicValue(n, "xs:integer")]


class TestFunctionCacheBound:
    def make(self, capacity: int) -> FunctionCache:
        cache = FunctionCache(max_entries=capacity)
        cache.enable("f", ttl_ms=10_000.0)
        return cache

    def test_lru_eviction_over_capacity(self):
        cache = self.make(2)
        cache.put("f", "a", _items(1))
        cache.put("f", "b", _items(2))
        cache.put("f", "c", _items(3))
        assert cache.stats.evictions == 1
        assert cache.get("f", "a") is None  # oldest entry evicted
        assert cache.get("f", "b") is not None
        assert cache.get("f", "c") is not None

    def test_get_refreshes_recency(self):
        cache = self.make(2)
        cache.put("f", "a", _items(1))
        cache.put("f", "b", _items(2))
        assert cache.get("f", "a") is not None  # a becomes most recent
        cache.put("f", "c", _items(3))
        assert cache.get("f", "b") is None  # b was the LRU entry
        assert cache.get("f", "a") is not None

    def test_set_capacity_shrinks_immediately(self):
        cache = self.make(8)
        for i in range(5):
            cache.put("f", str(i), _items(i))
        cache.set_capacity(2)
        assert cache.snapshot()["size"] == 2
        assert cache.stats.evictions == 3
        with pytest.raises(ValueError):
            cache.set_capacity(0)

    def test_snapshot_shape(self):
        cache = self.make(4)
        cache.put("f", "a", _items(1))
        cache.get("f", "a")
        cache.get("f", "zzz")
        snap = cache.snapshot()
        assert snap == {"size": 1, "capacity": 4, "hits": 1, "misses": 1,
                        "expirations": 0, "evictions": 0}

    def test_platform_exposes_cache_stats_and_metrics(self):
        platform = build_platform(deploy_profile=False)
        assert platform.function_cache_stats()["capacity"] == 512
        platform.set_function_cache_capacity(16)
        assert platform.function_cache_stats()["capacity"] == 16
        assert platform.metrics_snapshot()["cache.evictions"] == 0
