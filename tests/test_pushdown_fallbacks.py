"""Pushdown fallback behaviour: when a region cannot fully push, the
pushable parts still ship and the rest evaluates mid-tier, with results
always identical to naive evaluation (section 4.3's local reordering by
"acceptability for pushdown")."""


from repro.compiler import PushedSQL
from repro.xml import serialize

from tests.conftest import build_platform


def both_plans(query, **kwargs):
    pushed_platform = build_platform(deploy_profile=False, **kwargs)
    pushed_out = serialize(pushed_platform.execute(query))
    naive_platform = build_platform(deploy_profile=False, **kwargs)
    naive_platform.set_pushdown_enabled(False)
    naive_out = serialize(naive_platform.execute(query))
    return pushed_platform, pushed_out, naive_out


class TestPartialPredicatePushdown:
    def test_mixed_conjuncts_split(self):
        # contains() with a computed needle is not pushable; the SINCE
        # range is. The scan must still carry the pushable predicate.
        query = '''
            for $c in CUSTOMER()
            where $c/SINCE ge 864000 and contains($c/LAST_NAME, lower-case("ONES"))
            return $c/CID
        '''
        platform, pushed, naive = both_plans(query, customers=4)
        assert pushed == naive == "<CID>C1</CID>"
        custdb_sql = [s for s in platform.ctx.databases["custdb"].stats.statements
                      if "CUSTOMER" in s]
        assert any('"SINCE" >=' in s for s in custdb_sql)
        assert all("LOWER" not in s for s in custdb_sql)

    def test_fully_unpushable_predicate_still_correct(self):
        query = '''
            for $c in CUSTOMER()
            where string-length(normalize-space($c/LAST_NAME)) gt 4
            return $c/CID
        '''
        _platform, pushed, naive = both_plans(query, customers=4)
        assert pushed == naive

    def test_multi_step_path_evaluated_midtier(self):
        platform = build_platform(customers=2)
        out = platform.execute('''
            for $p in getProfile()
            return sum($p/ORDERS/ORDER/AMOUNT)
        ''')
        assert [i.value for i in out] == [30, 70]

    def test_instance_of_in_where_not_pushed(self):
        query = '''
            for $c in CUSTOMER()
            where data($c/SINCE) instance of xs:int
            return $c/CID
        '''
        platform, pushed, naive = both_plans(query, customers=3)
        assert pushed == naive
        assert pushed.count("<CID>") == 3

    def test_positional_predicate_not_pushed(self):
        query = "(for $c in CUSTOMER() return $c/CID)[2]"
        _platform, pushed, naive = both_plans(query, customers=3)
        assert pushed == naive == "<CID>C2</CID>"


class TestScanFallback:
    def test_disabled_pushdown_uses_adaptor_scan(self):
        platform = build_platform(customers=2, deploy_profile=False)
        platform.set_pushdown_enabled(False)
        out = platform.execute("CUSTOMER()")
        assert len(out) == 2
        # the fallback scan selects every column explicitly
        [statement] = platform.ctx.databases["custdb"].stats.statements
        assert statement.startswith("SELECT") and "CID" in statement

    def test_nulls_are_missing_elements_in_scans(self):
        platform = build_platform(customers=1, deploy_profile=False)
        platform.ctx.databases["custdb"].table("CUSTOMER").update_at(
            0, {"LAST_NAME": None})
        [row] = platform.execute("CUSTOMER()")
        assert "<LAST_NAME>" not in serialize(row)
        # and under the pushed row template as well
        platform2 = build_platform(customers=1, deploy_profile=False)
        platform2.set_pushdown_enabled(False)
        platform2.ctx.databases["custdb"].table("CUSTOMER").update_at(
            0, {"LAST_NAME": None})
        [row2] = platform2.execute("CUSTOMER()")
        assert serialize(row) == serialize(row2)


class TestPushdownKnobs:
    def test_clause_join_pushdown_ablation(self):
        query = '''
            for $c in CUSTOMER(), $o in ORDER()
            where $c/CID eq $o/CID and matches($o/OID, "^O\\d+$")
            return <P>{ $c/CID, $o/OID }</P>
        '''
        platform = build_platform(customers=3, deploy_profile=False)
        out_joined = serialize(platform.execute(query))
        ablated = build_platform(customers=3, deploy_profile=False)
        ablated.options.push.clause_join_pushdown = False
        ablated._invalidate_plans()
        out_ablated = serialize(ablated.execute(query))
        assert out_joined == out_ablated
        # with clause-level join pushdown, one statement contains the JOIN
        joined_sql = platform.ctx.databases["custdb"].stats.statements
        assert any("JOIN" in s for s in joined_sql)

    def test_pushed_tuple_clause_binds_both_vars(self):
        platform = build_platform(customers=3, deploy_profile=False)
        query = '''
            for $c in CUSTOMER(), $o in ORDER()
            where $c/CID eq $o/CID and matches($o/OID, "^O\\d+$")
            return <P>{ data($c/LAST_NAME), data($o/AMOUNT) }</P>
        '''
        out = platform.execute(query)
        assert len(out) == 6
        from repro.compiler import PushedTupleForClause

        plan = platform.prepare(query)
        assert any(isinstance(n, PushedTupleForClause) for n in plan.expr.walk())


class TestClusteringRequest:
    """Section 4.2: 'In most ALDSP use cases, a constant-memory group-by
    can be chosen' — the rewriter asks the pushed scan for ORDER BY on the
    grouping columns and marks the middleware group clause pre-clustered."""

    QUERY = '''
        for $c in CUSTOMER()
        group $c as $g by $c/LAST_NAME as $l
        return <G name="{$l}">{
            string-join(for $x in $g return data($x/FIRST_NAME), "+")
        }</G>
    '''

    def test_scan_ordered_and_group_streams(self):
        platform = build_platform(customers=12, deploy_profile=False)
        platform.execute(self.QUERY)
        [statement] = platform.ctx.databases["custdb"].stats.statements
        assert 'ORDER BY t1."LAST_NAME"' in statement
        # constant memory: peak = largest group, not the whole input
        assert platform.evaluator.group_stats.peak_resident <= 3

    def test_results_match_naive(self):
        platform = build_platform(customers=12, deploy_profile=False)
        clustered = serialize(platform.execute(self.QUERY))
        naive = build_platform(customers=12, deploy_profile=False)
        naive.set_pushdown_enabled(False)
        assert clustered == serialize(naive.execute(self.QUERY))

    def test_explicitly_ordered_scan_not_reclustered(self):
        # The inner FLWOR pushes with its own ORDER BY; the rewriter must
        # not override a source ordering the query asked for.
        platform = build_platform(customers=6, deploy_profile=False)
        query = '''
            for $c in (for $x in CUSTOMER() order by $x/SINCE descending return $x)
            group $c as $g by $c/LAST_NAME as $l
            return <G>{ $l, count($g) }</G>
        '''
        out = platform.execute(query)
        assert len(out) >= 1
        [statement] = platform.ctx.databases["custdb"].stats.statements
        assert '"SINCE" DESC' in statement
        assert statement.count("ORDER BY") == 1


class TestOrderPushdownToScan:
    """Section 4.3: ordering work delegated to the source in fallback
    plans — the mid-tier sort disappears when all keys are scan columns."""

    QUERY = '''
        for $c in CUSTOMER()
        let $tag := concat(data($c/CID), ":",
                           string-length(normalize-space($c/LAST_NAME)))
        order by $c/SINCE descending
        return <T>{$tag}</T>
    '''

    def test_order_shipped_with_scan(self):
        platform = build_platform(customers=4, deploy_profile=False)
        platform.execute(self.QUERY)
        [statement] = platform.ctx.databases["custdb"].stats.statements
        assert 'ORDER BY t1."SINCE" DESC' in statement
        # and the plan has no mid-tier sort left
        assert "mid-tier sort" not in platform.explain(self.QUERY)

    def test_results_match_naive(self):
        platform = build_platform(customers=4, deploy_profile=False)
        ordered = serialize(platform.execute(self.QUERY))
        naive = build_platform(customers=4, deploy_profile=False)
        naive.set_pushdown_enabled(False)
        assert ordered == serialize(naive.execute(self.QUERY))

    def test_multiplying_clause_keeps_midtier_sort(self):
        platform = build_platform(customers=3, deploy_profile=False)
        query = '''
            for $c in CUSTOMER()
            for $i in (1, 2)
            order by $c/SINCE descending
            return <T>{ data($c/CID), $i }</T>
        '''
        out = serialize(platform.execute(query))
        naive = build_platform(customers=3, deploy_profile=False)
        naive.set_pushdown_enabled(False)
        assert out == serialize(naive.execute(query))
        assert "order by" in platform.explain(query)

    def test_empty_greatest_not_delegated(self):
        platform = build_platform(customers=3, deploy_profile=False)
        query = '''
            for $c in CUSTOMER()
            let $x := string-length(normalize-space($c/CID))
            order by $c/SINCE descending empty greatest
            return <T>{$x}</T>
        '''
        out = serialize(platform.execute(query))
        naive = build_platform(customers=3, deploy_profile=False)
        naive.set_pushdown_enabled(False)
        assert out == serialize(naive.execute(query))
