"""Structural subtyping / intersection tests (sections 3.1, 4.1)."""

from hypothesis import given, strategies as st

from repro.schema import (
    EMPTY,
    ITEM_STAR,
    AnyItemType,
    AnyNodeType,
    AtomicItemType,
    ElementItemType,
    Occurrence,
    SequenceType,
    SimpleContent,
    atomic,
    intersects,
    is_subtype,
    item_matches,
    leaf,
    needs_typematch,
    shape,
    shape_sequence,
    value_matches,
)
from repro.xml import AtomicValue, element


CUSTOMER = shape(
    "CUSTOMER",
    [leaf("CID", "xs:string"), leaf("LAST_NAME", "xs:string"), leaf("SINCE", "xs:integer", "?")],
)


class TestSubtyping:
    def test_atomic_subtype(self):
        assert is_subtype(atomic("xs:integer"), atomic("xs:decimal"))
        assert not is_subtype(atomic("xs:decimal"), atomic("xs:integer"))

    def test_occurrence_widening(self):
        assert is_subtype(atomic("xs:integer"), atomic("xs:integer", Occurrence.STAR))
        assert not is_subtype(atomic("xs:integer", Occurrence.STAR), atomic("xs:integer"))

    def test_empty_under_optional(self):
        assert is_subtype(EMPTY, atomic("xs:integer", Occurrence.OPTIONAL))
        assert not is_subtype(EMPTY, atomic("xs:integer"))

    def test_everything_under_item_star(self):
        assert is_subtype(shape_sequence(CUSTOMER), ITEM_STAR)
        assert is_subtype(atomic("xs:string"), ITEM_STAR)

    def test_structural_element_subtype(self):
        narrower = shape("CUSTOMER", [leaf("CID", "xs:string"), leaf("LAST_NAME", "xs:string")])
        # narrower lacks the optional SINCE -> still a subtype of CUSTOMER
        assert is_subtype(
            SequenceType((narrower,), Occurrence.ONE),
            SequenceType((CUSTOMER,), Occurrence.ONE),
        )

    def test_missing_required_child_not_subtype(self):
        missing = shape("CUSTOMER", [leaf("CID", "xs:string")])
        assert not is_subtype(
            SequenceType((missing,), Occurrence.ONE),
            SequenceType((CUSTOMER,), Occurrence.ONE),
        )

    def test_name_mismatch(self):
        other = shape("ORDER", [leaf("CID", "xs:string"), leaf("LAST_NAME", "xs:string")])
        assert not is_subtype(
            SequenceType((other,), Occurrence.ONE),
            SequenceType((CUSTOMER,), Occurrence.ONE),
        )

    def test_wildcard_element_accepts_named(self):
        wildcard = SequenceType((ElementItemType(None),), Occurrence.ONE)
        assert is_subtype(SequenceType((CUSTOMER,), Occurrence.ONE), wildcard)

    def test_anytype_content_is_top(self):
        anytype = SequenceType((ElementItemType("CUSTOMER"),), Occurrence.ONE)
        assert is_subtype(SequenceType((CUSTOMER,), Occurrence.ONE), anytype)
        assert not is_subtype(anytype, SequenceType((CUSTOMER,), Occurrence.ONE))

    def test_simple_content_subtype(self):
        narrow = ElementItemType("X", SimpleContent("xs:integer"))
        wide = ElementItemType("X", SimpleContent("xs:decimal"))
        assert is_subtype(SequenceType((narrow,)), SequenceType((wide,)))


class TestIntersection:
    def test_disjoint_atomics(self):
        assert not intersects(atomic("xs:integer"), atomic("xs:string"))

    def test_related_atomics(self):
        assert intersects(atomic("xs:decimal"), atomic("xs:integer"))

    def test_node_vs_atomic_disjoint(self):
        assert not intersects(SequenceType((AnyNodeType(),)), atomic("xs:string"))

    def test_occurrence_disjoint(self):
        assert not intersects(EMPTY, atomic("xs:integer", Occurrence.PLUS))

    def test_both_optional_always_intersect(self):
        # The empty sequence inhabits both.
        assert intersects(
            atomic("xs:integer", Occurrence.OPTIONAL),
            atomic("xs:string", Occurrence.STAR),
        )

    def test_optimistic_rule_accepts_overlap(self):
        # element(CUSTOMER) with unknown content vs the detailed shape:
        # ALDSP's rule accepts the call with a typematch (section 4.1).
        loose = SequenceType((ElementItemType("CUSTOMER"),), Occurrence.ONE)
        tight = SequenceType((CUSTOMER,), Occurrence.ONE)
        assert intersects(loose, tight)
        assert needs_typematch(loose, tight)
        assert not needs_typematch(tight, loose)


class TestDynamicMatching:
    def sample(self):
        return element(
            "CUSTOMER",
            element("CID", "C1", type_annotation="xs:string"),
            element("LAST_NAME", "Jones", type_annotation="xs:string"),
        )

    def test_value_matches_shape(self):
        assert value_matches([self.sample()], SequenceType((CUSTOMER,), Occurrence.ONE))

    def test_missing_optional_ok(self):
        assert value_matches([self.sample()], shape_sequence(CUSTOMER))

    def test_wrong_name_rejected(self):
        bad = element("ORDER", element("CID", "C1"))
        assert not value_matches([bad], SequenceType((CUSTOMER,), Occurrence.ONE))

    def test_cardinality_enforced(self):
        two = [self.sample(), self.sample()]
        assert not value_matches(two, SequenceType((CUSTOMER,), Occurrence.ONE))
        assert value_matches(two, shape_sequence(CUSTOMER))

    def test_atomic_match(self):
        assert item_matches(AtomicValue(1, "xs:integer"), AtomicItemType("xs:decimal"))
        assert not item_matches(AtomicValue("x", "xs:string"), AtomicItemType("xs:decimal"))

    def test_unexpected_child_rejected(self):
        bad = self.sample()
        bad.add_child(element("EXTRA", "1"))
        assert not value_matches([bad], SequenceType((CUSTOMER,), Occurrence.ONE))


# -- property: subtyping implies intersection --------------------------------

_ATOMICS = st.sampled_from(
    ["xs:integer", "xs:decimal", "xs:double", "xs:string", "xs:boolean", "xs:long"]
)
_OCCURRENCES = st.sampled_from(list(Occurrence))


@st.composite
def sequence_types(draw):
    name = draw(_ATOMICS)
    occ = draw(_OCCURRENCES)
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return atomic(name, occ)
    if kind == 1:
        return SequenceType((ElementItemType(draw(st.sampled_from(["A", "B"])),
                                             SimpleContent(name)),), occ)
    if kind == 2:
        return SequenceType((AnyItemType(),), occ)
    return EMPTY


@given(sequence_types(), sequence_types())
def test_property_subtype_implies_intersects(a, b):
    if is_subtype(a, b):
        assert intersects(a, b)


@given(sequence_types())
def test_property_subtype_reflexive(a):
    assert is_subtype(a, a)
    assert intersects(a, a) or a.is_empty


@given(sequence_types(), sequence_types())
def test_property_intersects_symmetric(a, b):
    assert intersects(a, b) == intersects(b, a)
