"""Shared fixtures: the paper's running-example federation.

Two relational databases (``custdb`` with CUSTOMER/ORDER on Oracle,
``ccdb`` with CREDIT_CARD on DB2), the credit-rating Web service, and the
getProfile logical data service of Figure 3.
"""

from __future__ import annotations

import pytest

from repro import Database, Platform
from repro.clock import VirtualClock
from repro.relational import ForeignKey
from repro.schema import leaf, shape
from repro.sources import WebServiceDescriptor, WebServiceOperation
from repro.xml import element


def build_custdb(clock, customers=2, orders_per_customer=2, vendor="oracle"):
    db = Database("custdb", vendor=vendor, clock=clock)
    db.create_table(
        "CUSTOMER",
        [("CID", "VARCHAR", False), ("FIRST_NAME", "VARCHAR"),
         ("LAST_NAME", "VARCHAR"), ("SSN", "VARCHAR"), ("SINCE", "INTEGER")],
        primary_key=["CID"],
    )
    db.create_table(
        "ORDER",
        [("OID", "VARCHAR", False), ("CID", "VARCHAR"), ("AMOUNT", "INTEGER")],
        primary_key=["OID"],
        foreign_keys=[ForeignKey(("CID",), "CUSTOMER", ("CID",))],
    )
    surnames = ["Jones", "Smith", "Nguyen", "Garcia", "Chen"]
    firsts = ["Al", "Bo", "Cy", "Di", "Ed"]
    oid = 0
    for i in range(1, customers + 1):
        db.table("CUSTOMER").insert({
            "CID": f"C{i}",
            "FIRST_NAME": firsts[(i - 1) % len(firsts)],
            "LAST_NAME": surnames[(i - 1) % len(surnames)],
            "SSN": f"{100 + i}",
            "SINCE": 864000 * i,  # exactly 10*i days (inverse-function tests)
        })
        for _j in range(orders_per_customer):
            oid += 1
            db.table("ORDER").insert({
                "OID": f"O{oid}", "CID": f"C{i}", "AMOUNT": 10 * oid,
            })
    return db


def build_ccdb(clock, customers=2, vendor="db2"):
    db = Database("ccdb", vendor=vendor, clock=clock)
    db.create_table(
        "CREDIT_CARD",
        [("CCID", "VARCHAR", False), ("CID", "VARCHAR"), ("NUMBER", "VARCHAR")],
        primary_key=["CCID"],
    )
    for i in range(1, customers + 1):
        db.table("CREDIT_CARD").insert(
            {"CCID": f"CC{i}", "CID": f"C{i}", "NUMBER": f"44{i:02d}"}
        )
    return db


RATING_IN = shape("getRating", [leaf("lName", "xs:string"), leaf("ssn", "xs:string")])
RATING_OUT = shape("getRatingResponse", [leaf("getRatingResult", "xs:integer")])


def rating_service(latency_ms=30.0, log=None):
    def handler(doc):
        if log is not None:
            log.append(doc.child_elements()[0].string_value())
        ssn = doc.child_elements()[1].string_value()
        return element(
            "getRatingResponse", element("getRatingResult", 600 + int(ssn))
        )

    return WebServiceDescriptor(
        "RatingService",
        [WebServiceOperation("getRating", RATING_IN, RATING_OUT, handler,
                             latency_ms=latency_ms)],
    )


PROFILE_DS = '''
xquery version "1.0" encoding "UTF8";
declare namespace tns="urn:profile";

(::pragma function kind="read" ::)
declare function tns:getProfile() as element(PROFILE)* {
  for $CUSTOMER in CUSTOMER()
  return
    <PROFILE>
      <CID>{fn:data($CUSTOMER/CID)}</CID>
      <LAST_NAME>{fn:data($CUSTOMER/LAST_NAME)}</LAST_NAME>
      <ORDERS>{ getORDER($CUSTOMER) }</ORDERS>
      <CREDIT_CARDS>{ CREDIT_CARD()[CID eq $CUSTOMER/CID] }</CREDIT_CARDS>
      <RATING>{
        fn:data(getRating(
          <getRating>
            <lName>{ data($CUSTOMER/LAST_NAME) }</lName>
            <ssn>{ data($CUSTOMER/SSN) }</ssn>
          </getRating>)/getRatingResult)
      }</RATING>
    </PROFILE>
};

(::pragma function kind="read" ::)
declare function tns:getProfileByID($id as xs:string) as element(PROFILE)* {
  tns:getProfile()[CID eq $id]
};
'''


def build_platform(customers=2, orders_per_customer=2, ws_latency_ms=30.0,
                   ws_log=None, deploy_profile=True):
    clock = VirtualClock()
    platform = Platform(clock=clock)
    platform.register_database(build_custdb(clock, customers, orders_per_customer))
    platform.register_database(build_ccdb(clock, customers))
    platform.register_web_service(rating_service(ws_latency_ms, ws_log))
    if deploy_profile:
        platform.deploy(PROFILE_DS, name="ProfileService")
    return platform


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def custdb(clock):
    return build_custdb(clock)


@pytest.fixture
def platform():
    return build_platform()


@pytest.fixture
def big_platform():
    return build_platform(customers=30, orders_per_customer=3)
