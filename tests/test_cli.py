"""CLI tests (``python -m repro ...``)."""

import subprocess
import sys

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    result = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, timeout=120,
    )
    return result


class TestCLI:
    def test_demo(self):
        result = run_cli("--customers", "2", "demo")
        assert result.returncode == 0
        assert result.stdout.count("<PROFILE>") == 2
        assert "pushed SQL queries" in result.stdout

    def test_query(self):
        result = run_cli("--customers", "2", "query",
                         "for $c in CUSTOMER() return $c/CID")
        assert result.returncode == 0
        assert result.stdout.splitlines() == ["<CID>C1</CID>", "<CID>C2</CID>"]

    def test_explain(self):
        result = run_cli("explain", "for $c in CUSTOMER() return $c/CID")
        assert result.returncode == 0
        assert "PUSHED SQL -> custdb" in result.stdout

    def test_sql(self):
        result = run_cli("--customers", "2", "sql", 'getProfileByID("C1")')
        assert result.returncode == 0
        assert "[custdb]" in result.stdout and "[ccdb]" in result.stdout

    def test_lineage(self):
        result = run_cli("lineage")
        assert result.returncode == 0
        assert "PROFILE/LAST_NAME" in result.stdout
        assert "custdb.CUSTOMER.LAST_NAME" in result.stdout

    def test_query_error_exit_code(self):
        result = run_cli("query", "for $c in NO_SUCH() return $c")
        assert result.returncode == 1
        assert "error:" in result.stderr

    def test_in_process_main(self, capsys):
        code = main(["--customers", "1", "query", "1 + 1"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestTraceCommand:
    def test_trace_emits_valid_chrome_trace_json(self):
        import json

        result = run_cli("--customers", "2", "trace",
                         "for $c in CUSTOMER() return $c/CID")
        assert result.returncode == 0
        doc = json.loads(result.stdout)
        assert doc["displayTimeUnit"] == "ms"
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert spans
        for event in spans:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(event)
        assert any(e["cat"] == "source.roundtrip" for e in spans)

    def test_trace_tree(self):
        result = run_cli("--customers", "2", "trace", "--tree",
                         "for $c in CUSTOMER() return $c/CID")
        assert result.returncode == 0
        assert result.stdout.startswith("query ")
        assert "pushed-sql custdb" in result.stdout

    def test_trace_profile(self):
        result = run_cli("--customers", "2", "trace", "--profile",
                         'getProfileByID("C1")')
        assert result.returncode == 0
        assert "actual:" in result.stdout and "roundtrips=" in result.stdout

    def test_trace_error_exit_code(self):
        result = run_cli("trace", "for $c in NO_SUCH() return $c")
        assert result.returncode == 1
        assert "error:" in result.stderr


class TestStatsCommand:
    def test_stats_renders_unified_snapshot(self):
        result = run_cli("--customers", "2", "stats")
        assert result.returncode == 0
        for series in ("runtime.pushed_queries", "source.roundtrips{source=custdb}",
                       "source.attempts{source=ccdb}", "cache.hits",
                       "resilience.degradations", "trace.span_ms{kind=query}"):
            assert series in result.stdout

    def test_stats_json_with_query(self):
        import json

        result = run_cli("--customers", "2", "stats", "--json",
                         "for $c in CUSTOMER() return $c/CID")
        assert result.returncode == 0
        snapshot = json.loads(result.stdout)
        assert snapshot["runtime.pushed_queries"] == 1
        assert snapshot["source.roundtrips{source=custdb}"] == 1


class TestFlightCommand:
    def test_flight_renders_records_and_ledger(self):
        result = run_cli("--customers", "2", "flight", "--requests", "4")
        assert result.returncode == 0
        assert "[acme]" in result.stdout and "[globex]" in result.stdout
        assert "completed" in result.stdout
        assert "fp=" in result.stdout  # plan fingerprint on every record
        assert '"outcomes"' in result.stdout  # the ledger trailer

    def test_flight_json_reconciles_with_admission(self):
        import json

        result = run_cli("--customers", "2", "flight", "--requests", "4",
                         "--json")
        assert result.returncode == 0
        payload = json.loads(result.stdout)
        assert len(payload["records"]) == 8
        outcomes = payload["flight"]["outcomes"]
        admission = payload["admission"]
        assert outcomes.get("completed", 0) + outcomes.get("deadline", 0) + \
            outcomes.get("error", 0) == admission["admitted"]
        assert outcomes.get("shed", 0) == admission["shed_quota"] + \
            admission["shed_overload"] + admission["shed_cost"]
        assert payload["continuous"]["requests"] == 8

    def test_flight_filters_by_outcome(self):
        import json

        result = run_cli("--customers", "2", "flight", "--requests", "4",
                         "--outcome", "shed", "--json")
        assert result.returncode == 0
        payload = json.loads(result.stdout)
        assert payload["records"] == []  # nothing shed at default quotas


class TestNoTracingFlag:
    def test_trace_profile_fails_cleanly_when_disabled(self):
        result = run_cli("--no-tracing", "--customers", "2", "trace",
                         "--profile", 'getProfileByID("C1")')
        assert result.returncode == 1
        assert "Traceback" not in result.stderr
        assert "error: ALDSP-E501:" in result.stderr
        assert "administratively disabled" in result.stderr

    def test_trace_fails_cleanly_when_disabled(self):
        result = run_cli("--no-tracing", "trace",
                         "for $c in CUSTOMER() return $c/CID")
        assert result.returncode == 1
        assert "error: ALDSP-E501:" in result.stderr

    def test_stats_window_fails_cleanly_when_disabled(self):
        result = run_cli("--no-tracing", "stats", "--window")
        assert result.returncode == 1
        assert "error: ALDSP-E501:" in result.stderr


class TestStatsWindowCommand:
    def test_stats_window_renders_rolling_plane(self):
        result = run_cli("--customers", "2", "stats", "--window")
        assert result.returncode == 0
        assert "trace.requests" in result.stdout
        assert "trace.latency_ms" in result.stdout

    def test_stats_window_json(self):
        import json

        result = run_cli("--customers", "2", "stats", "--window", "--json")
        assert result.returncode == 0
        snapshot = json.loads(result.stdout)
        assert snapshot["trace.requests"]["window_total"] == 1.0


class TestHealthCommand:
    def test_health_with_dead_database(self):
        result = run_cli("--customers", "2", "health", "--kill", "ccdb",
                         "--retry", "2")
        assert result.returncode == 0
        assert "profiles returned: 2" in result.stdout
        assert "DOWN" in result.stdout
        assert "degradations (partial results):" in result.stdout
        assert "ccdb: database ccdb is unavailable" in result.stdout

    def test_health_json(self):
        import json

        result = run_cli("--customers", "2", "health", "--kill", "ccdb",
                         "--retry", "2", "--breaker", "3", "--json")
        assert result.returncode == 0
        payload = json.loads(result.stdout)
        assert payload["results"] == 2
        assert payload["sources"]["ccdb"]["available"] is False
        assert payload["sources"]["ccdb"]["retries"] == 1
        [record] = payload["degradations"]
        assert record["source"] == "ccdb" and record["attempts"] == 2

    def test_health_flaky_source_is_seeded(self):
        a = run_cli("health", "--flaky", "ccdb", "--seed", "5", "--retry", "2",
                    "--json")
        b = run_cli("health", "--flaky", "ccdb", "--seed", "5", "--retry", "2",
                    "--json")
        assert a.returncode == b.returncode == 0
        assert a.stdout == b.stdout  # same seed, bit-for-bit identical

    def test_health_unknown_source_errors(self):
        result = run_cli("health", "--kill", "nosuchdb")
        assert result.returncode == 1
        assert "no source named nosuchdb" in result.stderr

    def test_serve_demo(self):
        result = run_cli("--customers", "2", "serve", "--requests", "4")
        assert result.returncode == 0
        assert "[acme]" in result.stdout and "[globex]" in result.stdout
        assert "completed=8 shed=0" in result.stdout
        assert '"state": "open"' in result.stdout

    def test_bench_serve_writes_report(self, tmp_path):
        import json

        output = tmp_path / "BENCH_serving.json"
        result = run_cli("bench-serve", "--stages", "2,6",
                         "--stage-seconds", "0.2", "--output", str(output))
        assert result.returncode == 0
        payload = json.loads(output.read_text())
        assert payload["benchmark"] == "serving-overload-ramp"
        assert [stage["clients"] for stage in payload["stages"]] == [2, 6]
        for stage in payload["stages"]:
            assert stage["errors"] == 0
            assert stage["completed"] > 0
        assert payload["serving"]["admission"]["depth"] == 0
