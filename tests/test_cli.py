"""CLI tests (``python -m repro ...``)."""

import subprocess
import sys

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    result = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, timeout=120,
    )
    return result


class TestCLI:
    def test_demo(self):
        result = run_cli("--customers", "2", "demo")
        assert result.returncode == 0
        assert result.stdout.count("<PROFILE>") == 2
        assert "pushed SQL queries" in result.stdout

    def test_query(self):
        result = run_cli("--customers", "2", "query",
                         "for $c in CUSTOMER() return $c/CID")
        assert result.returncode == 0
        assert result.stdout.splitlines() == ["<CID>C1</CID>", "<CID>C2</CID>"]

    def test_explain(self):
        result = run_cli("explain", "for $c in CUSTOMER() return $c/CID")
        assert result.returncode == 0
        assert "PUSHED SQL -> custdb" in result.stdout

    def test_sql(self):
        result = run_cli("--customers", "2", "sql", 'getProfileByID("C1")')
        assert result.returncode == 0
        assert "[custdb]" in result.stdout and "[ccdb]" in result.stdout

    def test_lineage(self):
        result = run_cli("lineage")
        assert result.returncode == 0
        assert "PROFILE/LAST_NAME" in result.stdout
        assert "custdb.CUSTOMER.LAST_NAME" in result.stdout

    def test_query_error_exit_code(self):
        result = run_cli("query", "for $c in NO_SUCH() return $c")
        assert result.returncode == 1
        assert "error:" in result.stderr

    def test_in_process_main(self, capsys):
        code = main(["--customers", "1", "query", "1 + 1"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
