"""Edge-path coverage: designated-timestamp concurrency, change-log kinds,
async sequences, cast cardinality, SQL oddities."""

import pytest

from repro.errors import ConcurrencyError, DynamicError, UpdateError
from repro.sdo import Change, ChangeLog, ConcurrencyPolicy
from repro.xml import serialize

from tests.conftest import build_platform
from tests.test_runtime_evaluate import run, values


class TestDesignatedConcurrency:
    """Section 6: 'requiring a designated subset of the data (e.g., a
    timestamp element or attribute) to still be the same'."""

    def deploy_versioned(self):
        platform = build_platform(customers=2, deploy_profile=False)
        custdb = platform.ctx.databases["custdb"]
        platform.deploy('''
            (::pragma function kind="read" ::)
            declare function versioned() as element(VROW)* {
              for $c in CUSTOMER()
              return <VROW>
                <CID>{data($c/CID)}</CID>
                <LAST_NAME>{data($c/LAST_NAME)}</LAST_NAME>
                <TS>{data($c/SINCE)}</TS>
              </VROW>
            };
        ''', name="Versioned")
        return platform, custdb

    def test_designated_check_passes_when_stamp_unchanged(self):
        platform, custdb = self.deploy_versioned()
        [obj, _] = platform.read_for_update("Versioned", "versioned")
        # a concurrent writer touched an *undesignated* column: no conflict
        custdb.table("CUSTOMER").update_at(0, {"FIRST_NAME": "Zed"})
        obj.setLAST_NAME("Renamed")
        result = platform.submit(obj, policy=ConcurrencyPolicy.designated("TS"))
        assert result.rows_updated == 1

    def test_designated_check_fails_when_stamp_moved(self):
        platform, custdb = self.deploy_versioned()
        [obj, _] = platform.read_for_update("Versioned", "versioned")
        custdb.table("CUSTOMER").update_at(0, {"SINCE": 999})  # the stamp
        obj.setLAST_NAME("Renamed")
        with pytest.raises(ConcurrencyError):
            platform.submit(obj, policy=ConcurrencyPolicy.designated("TS"))

    def test_designated_condition_in_generated_sql(self):
        platform, _ = self.deploy_versioned()
        [obj, _] = platform.read_for_update("Versioned", "versioned")
        obj.setLAST_NAME("Renamed")
        result = platform.submit(obj, policy=ConcurrencyPolicy.designated("TS"))
        [statement] = result.statements
        assert '"SINCE" = 864000' in statement  # the stamp conditions the UPDATE


class TestChangeLogKinds:
    def test_insert_delete_kinds_rejected_by_decomposer(self):
        platform = build_platform(customers=1)
        [obj] = platform.read_for_update("ProfileService", "getProfile")
        obj._changes.append(
            Change(("PROFILE", "LAST_NAME"), None, "x", kind="insert")
        )
        with pytest.raises(UpdateError):
            platform.submit(obj)

    def test_changelog_wire_roundtrip_preserves_kind(self):
        log = ChangeLog("R", [Change(("R", "A"), 1, 2, kind="modify")])
        wire = log.serialize()
        rebuilt = ChangeLog.deserialize("R", wire)
        assert rebuilt.changes[0].kind == "modify"
        assert rebuilt.changes[0].path == ("R", "A")


class TestAsyncSequences:
    def test_sibling_async_in_sequence_expression(self):
        # _eval_parts also powers the comma operator
        out = values(run("(fn-bea:async(1), fn-bea:async(2), 3)"))
        assert out == [1, 2, 3]

    def test_async_preserves_order_despite_parallelism(self):
        out = run("<R>{ fn-bea:async((1, 2)), fn-bea:async(3) }</R>")
        # the constructed content keeps document order
        assert serialize(out) == "<R>1 2 3</R>"


class TestCastCardinality:
    def test_cast_empty_to_optional(self):
        assert run("() cast as xs:integer?") == []

    def test_cast_empty_to_required_raises(self):
        from repro.errors import DynamicError

        with pytest.raises(DynamicError):
            run("() cast as xs:integer")

    def test_cast_sequence_raises(self):
        with pytest.raises(DynamicError):
            run("(1, 2) cast as xs:string")

    def test_castable_empty(self):
        assert values(run("() castable as xs:integer?")) == [True]


class TestSQLOddities:
    def setup_method(self):
        from repro.relational import Database

        self.db = Database("d")
        self.db.create_table("T", [("ID", "INTEGER", False), ("S", "VARCHAR")],
                             primary_key=["ID"])
        self.db.load("T", [{"ID": 1, "S": "a_b"}, {"ID": 2, "S": None}])

    def runsql(self, sql, params=None):
        from repro.relational import Executor, parse_sql

        return Executor(self.db, params).execute(parse_sql(sql))

    def test_like_underscore_wildcard(self):
        rows = self.runsql("SELECT t.\"ID\" AS i FROM \"T\" t WHERE t.\"S\" LIKE 'a_b'")
        assert rows == [{"i": 1}]

    def test_coalesce(self):
        rows = self.runsql('SELECT COALESCE(t."S", \'none\') AS s FROM "T" t ORDER BY t."ID"')
        assert [r["s"] for r in rows] == ["a_b", "none"]

    def test_concat_function(self):
        rows = self.runsql("SELECT CONCAT(t.\"S\", '!') AS s FROM \"T\" t WHERE t.\"ID\" = 1")
        assert rows == [{"s": "a_b!"}]

    def test_having_without_aggregate_in_select(self):
        rows = self.runsql('SELECT t."S" AS s FROM "T" t GROUP BY t."S" '
                           "HAVING COUNT(*) >= 1 ORDER BY t.\"S\"")
        assert len(rows) == 2

    def test_string_plus_is_concat(self):
        rows = self.runsql("SELECT t.\"S\" + '!' AS s FROM \"T\" t WHERE t.\"ID\" = 1")
        assert rows == [{"s": "a_b!"}]


class TestNestedRepeatedGroups:
    """Deep SDO paths: repeated groups inside repeated groups must remain
    individually addressable and updatable."""

    def make_platform(self):
        from repro import Database, Platform
        from repro.clock import VirtualClock

        clock = VirtualClock()
        platform = Platform(clock=clock)
        db = Database("db", clock=clock)
        db.create_table("PARENT", [("PID", "VARCHAR", False)], primary_key=["PID"])
        db.create_table("CHILD", [("CID", "VARCHAR", False), ("PID", "VARCHAR"),
                                  ("V", "INTEGER")], primary_key=["CID"])
        db.load("PARENT", [{"PID": "P1"}, {"PID": "P2"}])
        db.load("CHILD", [
            {"CID": "K1", "PID": "P1", "V": 1},
            {"CID": "K2", "PID": "P1", "V": 2},
            {"CID": "K3", "PID": "P2", "V": 3},
        ])
        platform.register_database(db, navigation=False)
        platform.deploy('''
            (::pragma function kind="read" ::)
            declare function tree() as element(TREE)* {
              for $p in PARENT()
              return <TREE>
                <PID>{data($p/PID)}</PID>
                <KIDS>{
                  for $k in CHILD() where $k/PID eq $p/PID
                  return <KID><CID>{data($k/CID)}</CID><V>{data($k/V)}</V></KID>
                }</KIDS>
              </TREE>
            };
        ''', name="Tree")
        return platform, db

    def test_indexed_nested_get_set(self):
        platform, _db = self.make_platform()
        [p1, _p2] = platform.read_for_update("Tree", "tree")
        assert p1.get("KIDS/KID[2]/V") == 2
        p1.set("KIDS/KID[2]/V", 20)
        [change] = p1.change_log().changes
        assert change.path == ("TREE", "KIDS", "KID[2]", "V")

    def test_update_targets_correct_nested_row(self):
        platform, db = self.make_platform()
        [p1, _p2] = platform.read_for_update("Tree", "tree")
        p1.set("KIDS/KID[2]/V", 20)
        result = platform.submit(p1)
        assert result.rows_updated == 1
        assert db.table("CHILD").lookup_pk(("K2",))["V"] == 20
        assert db.table("CHILD").lookup_pk(("K1",))["V"] == 1


class TestSecurityRepeatedChildren:
    def test_every_matching_repeated_child_filtered(self):
        from repro.security import SecurityService, User
        from repro.xml import element

        service = SecurityService()
        service.protect_element(("T", "KID", "SECRET"), ["manager"],
                                action="replace", replacement="X")
        doc = element("T",
                      element("KID", element("SECRET", "a")),
                      element("KID", element("SECRET", "b")))
        [filtered] = service.filter_items([doc], User.of("eve"))
        assert serialize(filtered).count("<SECRET>X</SECRET>") == 2
