"""A second large integration scenario: a three-layer composite
application over four source kinds (two databases, a stored procedure, a
CSV file, and a Web service) with layered data services — the "composite
application development" the paper's introduction motivates.
"""


from repro import Database, Platform, serialize
from repro.clock import VirtualClock
from repro.relational import ForeignKey
from repro.schema import leaf, shape
from repro.sources import WebServiceDescriptor, WebServiceOperation
from repro.xml import element


def build_scenario(tmp_path, tracker_fails=False):
    clock = VirtualClock()
    platform = Platform(clock=clock)

    # -- inventory database -------------------------------------------------
    invdb = Database("invdb", vendor="sqlserver", clock=clock)
    invdb.create_table(
        "PRODUCT",
        [("SKU", "VARCHAR", False), ("NAME", "VARCHAR"), ("PRICE", "INTEGER")],
        primary_key=["SKU"],
    )
    invdb.create_table(
        "STOCK",
        [("SKU", "VARCHAR", False), ("WAREHOUSE", "VARCHAR", False), ("QTY", "INTEGER")],
        primary_key=["SKU", "WAREHOUSE"],
        foreign_keys=[ForeignKey(("SKU",), "PRODUCT", ("SKU",))],
    )
    invdb.load("PRODUCT", [
        {"SKU": "S1", "NAME": "widget", "PRICE": 10},
        {"SKU": "S2", "NAME": "gadget", "PRICE": 25},
        {"SKU": "S3", "NAME": "sprocket", "PRICE": 40},
    ])
    invdb.load("STOCK", [
        {"SKU": "S1", "WAREHOUSE": "east", "QTY": 5},
        {"SKU": "S1", "WAREHOUSE": "west", "QTY": 7},
        {"SKU": "S2", "WAREHOUSE": "east", "QTY": 0},
        {"SKU": "S3", "WAREHOUSE": "west", "QTY": 2},
    ])
    platform.register_database(invdb)

    # -- sales database -----------------------------------------------------
    salesdb = Database("salesdb", vendor="oracle", clock=clock)
    salesdb.create_table(
        "SALE",
        [("SID", "VARCHAR", False), ("SKU", "VARCHAR"), ("UNITS", "INTEGER")],
        primary_key=["SID"],
    )
    salesdb.load("SALE", [
        {"SID": "T1", "SKU": "S1", "UNITS": 3},
        {"SID": "T2", "SKU": "S1", "UNITS": 4},
        {"SID": "T3", "SKU": "S2", "UNITS": 9},
    ])
    platform.register_database(salesdb)

    # -- stored procedure: restock suggestions inside invdb ------------------
    def restock(db, threshold):
        from repro.relational import Executor, parse_sql

        stmt = parse_sql(
            'SELECT t1."SKU" AS SKU, SUM(t1."QTY") AS TOTAL FROM "STOCK" t1 '
            'GROUP BY t1."SKU" HAVING SUM(t1."QTY") < ?'
        )
        return Executor(db, [threshold]).execute(stmt)

    platform.register_stored_procedure(
        invdb, "lowStock", restock,
        columns=[("SKU", "xs:string"), ("TOTAL", "xs:int")],
        param_types=["xs:integer"],
    )

    # -- CSV file: supplier directory ----------------------------------------
    suppliers = tmp_path / "suppliers.csv"
    suppliers.write_text(
        "SKU,SUPPLIER,LEAD_DAYS\nS1,Acme,3\nS2,Globex,10\nS3,Initech,5\n"
    )
    supplier_shape = shape("SUPPLIER_ROW", [
        leaf("SKU", "xs:string"), leaf("SUPPLIER", "xs:string"),
        leaf("LEAD_DAYS", "xs:integer"),
    ])
    platform.register_csv_file("SUPPLIERS", suppliers, supplier_shape)

    # -- Web service: shipment tracker ---------------------------------------
    track_out = shape("trackResponse", [leaf("eta", "xs:integer")])

    def tracker(sku):
        if tracker_fails:
            raise RuntimeError("tracker backend exploded")
        return element("trackResponse", element("eta", 2 + len(str(sku))))

    platform.register_web_service(WebServiceDescriptor("Tracker", [
        WebServiceOperation("trackShipment", None, track_out, tracker,
                            style="rpc", rpc_param_types=["xs:string"],
                            latency_ms=25.0),
    ]))

    # -- layer 1: per-source logical services ---------------------------------
    platform.deploy('''
        (::pragma function kind="read" ::)
        declare function productInfo() as element(PRODUCT_INFO)* {
          for $p in PRODUCT()
          return <PRODUCT_INFO>
            <SKU>{data($p/SKU)}</SKU>
            <NAME>{data($p/NAME)}</NAME>
            <ON_HAND>{ sum(for $s in STOCK() where $s/SKU eq $p/SKU
                           return $s/QTY) }</ON_HAND>
          </PRODUCT_INFO>
        };
    ''', name="Inventory")

    # -- layer 2: composite service over layer 1 + other sources --------------
    platform.deploy('''
        (::pragma function kind="read" ::)
        declare function replenishmentReport() as element(REPLENISH)* {
          for $low in lowStock(6)
          let $info := productInfo()[SKU eq $low/SKU]
          for $sup in SUPPLIERS()
          where $sup/SKU eq $low/SKU
          return <REPLENISH>
            <SKU>{data($low/SKU)}</SKU>
            <NAME>{data($info/NAME)}</NAME>
            <ON_HAND>{data($low/TOTAL)}</ON_HAND>
            <SUPPLIER>{data($sup/SUPPLIER)}</SUPPLIER>
            <ETA>{ fn-bea:fail-over(
                     data(trackShipment(data($low/SKU))/eta),
                     data($sup/LEAD_DAYS)) }</ETA>
          </REPLENISH>
        };
    ''', name="Replenishment")
    return platform, invdb, salesdb


class TestCompositeScenario:
    def test_layer1_inventory_join_pushes(self, tmp_path):
        platform, invdb, _ = build_scenario(tmp_path)
        out = platform.call("productInfo")
        text = serialize(out)
        assert "<SKU>S1</SKU><NAME>widget</NAME><ON_HAND>12</ON_HAND>" in text
        assert "<SKU>S2</SKU><NAME>gadget</NAME><ON_HAND>0</ON_HAND>" in text
        # the sum over STOCK pushed as one aggregate join into invdb
        assert any("SUM" in s and "LEFT OUTER JOIN" in s
                   for s in invdb.stats.statements)

    def test_layer2_report_composes_four_source_kinds(self, tmp_path):
        platform, _, _ = build_scenario(tmp_path)
        out = platform.call("replenishmentReport")
        text = serialize(out)
        # low stock: S2 (0) and S3 (2); ETA from the tracker (2 + len sku)
        assert "<SKU>S2</SKU><NAME>gadget</NAME><ON_HAND>0</ON_HAND>" in text
        assert "<SUPPLIER>Globex</SUPPLIER><ETA>4</ETA>" in text
        assert "<SKU>S3</SKU>" in text
        assert "<SKU>S1</SKU>" not in text  # on hand 12 >= 6

    def test_service_fault_degrades_to_supplier_lead_time(self, tmp_path):
        platform, _, _ = build_scenario(tmp_path, tracker_fails=True)
        out = platform.call("replenishmentReport")
        text = serialize(out)
        # fail-over replaces the tracker ETA with the CSV lead time
        assert "<SUPPLIER>Globex</SUPPLIER><ETA>10</ETA>" in text
        assert "<SUPPLIER>Initech</SUPPLIER><ETA>5</ETA>" in text

    def test_cross_database_sales_enrichment(self, tmp_path):
        platform, invdb, salesdb = build_scenario(tmp_path)
        out = platform.execute('''
            for $p in PRODUCT()
            let $sold := sum(for $s in SALE() where $s/SKU eq $p/SKU
                             return $s/UNITS)
            order by $sold descending
            return <VELOCITY>{ data($p/SKU), $sold }</VELOCITY>
        ''')
        assert serialize(out) == ("<VELOCITY>S2 9</VELOCITY>"
                                  "<VELOCITY>S1 7</VELOCITY>"
                                  "<VELOCITY>S3 0</VELOCITY>")
        # SALE lives in another database: fetched via PP-k, not a SQL join
        assert platform.ctx.stats.ppk_blocks >= 1

    def test_explain_shows_the_distributed_plan(self, tmp_path):
        platform, _, _ = build_scenario(tmp_path)
        text = platform.explain("replenishmentReport()")
        assert "SOURCE CALL lowStock() [storedproc]" in text
        assert "SOURCE CALL SUPPLIERS() [file]" in text or "INDEX NESTED-LOOP" in text

    def test_multi_column_pk_update(self, tmp_path):
        platform, invdb, _ = build_scenario(tmp_path)
        platform.deploy('''
            (::pragma function kind="read" ::)
            declare function stockRows() as element(STOCK_ROW)* {
              for $s in STOCK()
              return <STOCK_ROW>
                <SKU>{data($s/SKU)}</SKU>
                <WAREHOUSE>{data($s/WAREHOUSE)}</WAREHOUSE>
                <QTY>{data($s/QTY)}</QTY>
              </STOCK_ROW>
            };
        ''', name="Stock")
        rows = platform.read_for_update("Stock", "stockRows")
        target = next(r for r in rows
                      if r.get("SKU") == "S1" and r.get("WAREHOUSE") == "west")
        target.set("QTY", 99)
        result = platform.submit(target)
        assert result.rows_updated == 1
        assert invdb.table("STOCK").lookup_pk(("S1", "west"))["QTY"] == 99
        assert invdb.table("STOCK").lookup_pk(("S1", "east"))["QTY"] == 5
