"""Tests for the typed token stream and Figure 4's tuple representations."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import XMLError
from repro.xml import (
    AtomicValue,
    TokenStream,
    TokenType,
    element,
    serialize,
    tokens_to_items,
)
from repro.xml.tokens import Token, item_to_tokens, items_to_tokens
from repro.xml.tuples import (
    ArrayTuple,
    SingleTokenTuple,
    StreamTuple,
    choose_representation,
    decode_framed_stream,
    make_tuple,
)


def sample_element():
    return element(
        "CUSTOMER",
        element("CID", 1, type_annotation="xs:integer"),
        element("LAST_NAME", "Jones"),
        attrs={"region": "west"},
    )


class TestTokenStreamRoundtrip:
    def test_element_roundtrip(self):
        original = sample_element()
        rebuilt = tokens_to_items(list(item_to_tokens(original)))
        assert serialize(rebuilt) == serialize(original)

    def test_typed_annotation_survives(self):
        tokens = list(item_to_tokens(element("CID", 1, type_annotation="xs:integer")))
        [rebuilt] = tokens_to_items(tokens)
        assert rebuilt.typed_value()[0].type_name == "xs:integer"

    def test_atomic_token(self):
        [token] = list(items_to_tokens([AtomicValue(3, "xs:integer")]))
        assert token.type is TokenType.ATOMIC
        assert tokens_to_items([token]) == [AtomicValue(3, "xs:integer")]

    def test_mismatched_end_tag_rejected(self):
        tokens = list(item_to_tokens(sample_element()))
        bad = tokens[:-1] + [Token(TokenType.END_ELEMENT, name=element("X").name)]
        with pytest.raises(XMLError):
            tokens_to_items(bad)

    def test_unterminated_stream_rejected(self):
        tokens = list(item_to_tokens(sample_element()))[:-1]
        with pytest.raises(XMLError):
            tokens_to_items(tokens)


class TestTokenStreamCursor:
    def test_peek_then_next(self):
        stream = TokenStream(items_to_tokens([AtomicValue(1), AtomicValue(2)]))
        first = stream.peek()
        assert stream.next() is first
        assert not stream.at_end()
        stream.next()
        assert stream.at_end()

    def test_next_past_end_raises(self):
        stream = TokenStream([])
        with pytest.raises(XMLError):
            stream.next()

    def test_expect_type(self):
        stream = TokenStream(items_to_tokens([AtomicValue(1)]))
        with pytest.raises(XMLError):
            stream.expect(TokenType.START_ELEMENT)


def two_field_tuple(representation):
    fields = [[AtomicValue(100, "xs:integer")], [AtomicValue("al", "xs:string")]]
    return make_tuple(representation, fields)


class TestTupleRepresentations:
    @pytest.mark.parametrize("representation", ["stream", "single-token", "array"])
    def test_field_access(self, representation):
        t = two_field_tuple(representation)
        assert t.field(0) == [AtomicValue(100, "xs:integer")]
        assert t.field(1) == [AtomicValue("al", "xs:string")]

    @pytest.mark.parametrize("representation", ["stream", "single-token", "array"])
    def test_arity(self, representation):
        assert two_field_tuple(representation).arity() == 2

    def test_stream_access_cost_grows_with_field_index(self):
        t = two_field_tuple("stream")
        t.field(0)
        cost0 = t.tokens_touched
        t2 = two_field_tuple("stream")
        t2.field(1)
        assert t2.tokens_touched > cost0

    def test_array_access_is_single_touch(self):
        t = two_field_tuple("array")
        t.field(1)
        assert t.tokens_touched == 1

    def test_single_token_skip_is_one_touch(self):
        t = two_field_tuple("single-token")
        assert t.skip() == 1
        assert t.tokens_touched == 1

    def test_stream_skip_walks_everything(self):
        t = two_field_tuple("stream")
        assert t.skip() == t.memory_tokens()

    def test_memory_accounting(self):
        # stream: framing + one token per field; single-token adds the
        # wrapper on top of the retained stream; array charges a slot plus
        # a token per field (its structure overhead).
        stream = two_field_tuple("stream").memory_tokens()
        single = two_field_tuple("single-token").memory_tokens()
        array = two_field_tuple("array").memory_tokens()
        assert stream == 5  # Begin + f1 + Sep + f2 + End
        assert single == stream + 1
        assert array == 2 * 2  # slot + token per field

    def test_array_memory_exceeds_stream_for_wide_fields(self):
        # When a field spans several tokens the array must wrap it, and its
        # per-slot overhead makes it the most expensive resident form —
        # the paper's "higher memory requirements".
        fields = [[sample_element()], [AtomicValue(1, "xs:integer")]]
        array = ArrayTuple.from_fields(fields).memory_tokens()
        stream = StreamTuple.from_fields(fields).memory_tokens()
        assert array >= stream

    def test_element_valued_field_wraps_in_array(self):
        fields = [[sample_element()], [AtomicValue(1, "xs:integer")]]
        t = ArrayTuple.from_fields(fields)
        assert t.arity() == 2
        assert serialize(t.field(0)) == serialize([sample_element()])

    def test_tokens_roundtrip_between_representations(self):
        stream = two_field_tuple("stream")
        rebuilt = StreamTuple(two_field_tuple("array").to_tokens())
        assert rebuilt.field(0) == stream.field(0)
        assert rebuilt.field(1) == stream.field(1)

    def test_unknown_representation_rejected(self):
        with pytest.raises(XMLError):
            make_tuple("columnar", [[AtomicValue(1)]])

    def test_decode_framed_stream(self):
        tokens = two_field_tuple("stream").to_tokens() + two_field_tuple("stream").to_tokens()
        tuples = list(decode_framed_stream(tokens))
        assert len(tuples) == 2
        assert tuples[1].field(0) == [AtomicValue(100, "xs:integer")]


class TestRepresentationChoice:
    def test_relational_hot_tuples_pick_array(self):
        assert choose_representation([1, 1, 1], access_ratio=1.0) == "array"

    def test_cold_tuples_pick_single_token(self):
        assert choose_representation([1, 5], access_ratio=0.1) == "single-token"

    def test_wide_fields_pick_stream(self):
        assert choose_representation([4, 9], access_ratio=0.8) == "stream"


@given(
    st.lists(
        st.lists(st.integers(min_value=-1000, max_value=1000), min_size=0, max_size=3),
        min_size=1,
        max_size=5,
    )
)
def test_property_representations_agree_on_fields(field_values):
    fields = [[AtomicValue(v, "xs:integer") for v in values] for values in field_values]
    reference = StreamTuple.from_fields(fields)
    for cls in (SingleTokenTuple, ArrayTuple):
        candidate = cls.from_fields(fields)
        for index in range(len(fields)):
            assert candidate.field(index) == reference.field(index)


@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=99), min_size=1, max_size=2),
        min_size=1,
        max_size=4,
    )
)
def test_property_framed_tokens_roundtrip(field_values):
    fields = [[AtomicValue(v, "xs:integer") for v in values] for values in field_values]
    tokens = StreamTuple.from_fields(fields).to_tokens()
    [rebuilt] = list(decode_framed_stream(tokens))
    for index in range(len(fields)):
        assert rebuilt.field(index) == fields[index]
