"""Normalization (stage 3) and type checking (stage 4) tests."""

import pytest

from repro.errors import TypeError_
from repro.schema import (
    ElementItemType,
    Occurrence,
    SimpleContent,
    atomic,
    leaf,
    shape,
    shape_sequence,
)
from repro.xquery import ast, parse_expression, parse_module
from repro.xquery.normalize import normalize, normalize_module
from repro.xquery.typecheck import FunctionSignature, FunctionTable, TypeChecker


CUSTOMER_SHAPE = shape(
    "CUSTOMER",
    [leaf("CID", "xs:string"), leaf("LAST_NAME", "xs:string"), leaf("SINCE", "xs:integer")],
)
EXTERNALS = {
    ("CUSTOMER", 0): FunctionSignature("CUSTOMER", [], shape_sequence(CUSTOMER_SHAPE)),
}


def checked(text, mode="runtime", env=None):
    expr = normalize(parse_expression(text))
    checker = TypeChecker(FunctionTable(externals=EXTERNALS), mode)
    inferred = checker.infer(expr, env or {})
    return expr, inferred, checker


class TestNormalization:
    def test_comparison_operands_atomized(self):
        expr = normalize(parse_expression("$c/CID eq $id"))
        assert isinstance(expr.left, ast.FunctionCall)
        assert expr.left.name == "fn:data"

    def test_literals_not_wrapped(self):
        expr = normalize(parse_expression('$x eq "C1"'))
        assert isinstance(expr.right, ast.Literal)

    def test_double_data_collapsed(self):
        expr = normalize(parse_expression("data(data($x/A))"))
        assert expr.name == "fn:data"
        assert isinstance(expr.args[0], ast.PathExpr)

    def test_optional_element_expanded_to_let_if(self):
        expr = normalize(parse_expression("<F?>{$f}</F>"))
        assert isinstance(expr, ast.FLWOR)
        assert isinstance(expr.clauses[0], ast.LetClause)
        body = expr.return_expr
        assert isinstance(body, ast.IfExpr)
        assert body.condition.name == "fn:exists"
        assert isinstance(body.then_branch, ast.ElementCtor)
        assert isinstance(body.else_branch, ast.EmptySequence)

    def test_order_by_keys_atomized(self):
        expr = normalize(parse_expression("for $x in X() order by $x/A return $x"))
        order = expr.clauses[1]
        assert order.specs[0].key.name == "fn:data"

    def test_group_keys_atomized(self):
        expr = normalize(parse_expression("for $x in X() group by $x/A as $a return $a"))
        group = expr.clauses[1]
        assert group.keys[0][0].name == "fn:data"

    def test_normalize_module_touches_all_functions(self):
        module = parse_module("declare function f($x) { <A?>{$x}</A> };")
        normalize_module(module)
        assert isinstance(module.function("f", 1).body, ast.FLWOR)


class TestTypeInference:
    def test_literal_types(self):
        _, t, _ = checked("42")
        assert t.show() == "xs:integer"

    def test_flwor_over_source(self):
        _, t, _ = checked('for $c in CUSTOMER() return $c/CID')
        assert "element(CID" in t.show()
        assert t.occurrence in (Occurrence.STAR, Occurrence.PLUS)

    def test_structural_constructor_type(self):
        _, t, _ = checked('<OUT>{ 1 }</OUT>')
        [alt] = t.alternatives
        assert isinstance(alt, ElementItemType)
        assert isinstance(alt.content, SimpleContent)
        assert alt.content.type_name == "xs:integer"

    def test_navigation_through_constructor_recovers_type(self):
        # The key structural-typing property (section 3.1).
        _, t, _ = checked('fn:data((<C><L>{"x"}</L></C>)/L)')
        assert t.alternatives[0].name == "xs:string"

    def test_if_union_type(self):
        _, t, _ = checked('if ($x) then 1 else "a"', env={"x": atomic("xs:boolean")})
        assert len(t.alternatives) == 2

    def test_arithmetic_promotes(self):
        _, t, _ = checked("1 + 2.5")
        assert t.alternatives[0].name in ("xs:decimal", "xs:double")

    def test_comparison_is_boolean(self):
        _, t, _ = checked("1 eq 2")
        assert t.show().startswith("xs:boolean")

    def test_undefined_variable_is_error(self):
        with pytest.raises(TypeError_):
            checked("$nope")

    def test_unknown_function_is_error(self):
        with pytest.raises(TypeError_):
            checked("no-such-fn(1)")

    def test_design_mode_collects_errors(self):
        _, _, checker = checked("$nope", mode="design")
        assert checker.errors

    def test_group_by_rebinds_scope(self):
        _, t, _ = checked(
            "for $c in CUSTOMER() group $c as $p by data($c/LAST_NAME) as $l "
            "return count($p)"
        )
        assert "integer" in t.show()


class TestOptimisticTyping:
    def test_typematch_inserted_on_overlap(self):
        externals = dict(EXTERNALS)
        externals[("takesCustomer", 1)] = FunctionSignature(
            "takesCustomer",
            [shape_sequence(CUSTOMER_SHAPE, "")],
            atomic("xs:string"),
        )
        from repro.schema import AnyNodeType, SequenceType

        expr = normalize(parse_expression("takesCustomer($x)"))
        checker = TypeChecker(FunctionTable(externals=externals))
        checker.infer(
            expr,
            {"x": SequenceType((AnyNodeType(),), Occurrence.STAR)},
        )
        # node()* only intersects element(CUSTOMER) -> guard inserted
        assert isinstance(expr.args[0], ast.TypeMatch)

    def test_no_typematch_when_subtype(self):
        externals = dict(EXTERNALS)
        externals[("wantsDecimal", 1)] = FunctionSignature(
            "wantsDecimal", [atomic("xs:decimal")], atomic("xs:decimal"))
        expr = normalize(parse_expression("wantsDecimal(1)"))
        checker = TypeChecker(FunctionTable(externals=externals))
        checker.infer(expr, {})
        assert isinstance(expr.args[0], ast.Literal)

    def test_disjoint_types_rejected(self):
        externals = dict(EXTERNALS)
        externals[("wantsInt", 1)] = FunctionSignature(
            "wantsInt", [atomic("xs:integer")], atomic("xs:integer"))
        expr = normalize(parse_expression('wantsInt("text")'))
        checker = TypeChecker(FunctionTable(externals=externals))
        with pytest.raises(TypeError_):
            checker.infer(expr, {})


class TestModuleChecking:
    def test_return_type_conflict_reported(self):
        module = parse_module(
            'declare function f() as xs:integer { "text" };', mode="design"
        )
        normalize_module(module)
        checker = TypeChecker(FunctionTable(module), mode="design")
        checker.check_module(module)
        assert module.function("f", 0).errors

    def test_error_free_signature_usable_despite_bad_body(self):
        # Section 4.1: signatures survive body errors in design mode.
        module = parse_module(
            "declare function bad() as xs:integer { $missing };\n"
            "declare function caller() as xs:integer { bad() };",
            mode="design",
        )
        normalize_module(module)
        checker = TypeChecker(FunctionTable(module), mode="design")
        checker.check_module(module)
        assert module.function("bad", 0).errors
        assert not module.function("caller", 0).errors
