"""Design-time error recovery, end to end (section 4.1).

"The ALDSP graphical XQuery editor ... relies heavily on the query
compiler ... its policy is to fail on first error when invoked for query
compilation on the server at runtime, but to recover as gracefully as
possible when being used by the XQuery editor at data service design
time."
"""

import pytest

from repro import Platform
from repro.clock import VirtualClock
from repro.errors import ParseError, TypeError_

from tests.conftest import build_custdb


MIXED_QUALITY_SERVICE = '''
declare namespace tns="urn:x";

(::pragma function kind="read" ::)
declare function tns:goodScan() as element(CUSTOMER)* {
  for $c in CUSTOMER() return $c
};

(::pragma function kind="read" ::)
declare function tns:syntaxError() as element(X)* {
  for $c in return $c
};

(::pragma function kind="read" ::)
declare function tns:typeError() as element(X)* {
  for $c in CUSTOMER() return $undefined
};

(::pragma function kind="read" ::)
declare function tns:caller() as element(CUSTOMER)* {
  tns:goodScan()[CID eq "C1"]
};
'''


def design_platform():
    clock = VirtualClock()
    platform = Platform(clock=clock, mode="design")
    platform.register_database(build_custdb(clock))
    return platform


class TestDesignTimeDeployment:
    def test_all_errors_located_in_one_pass(self):
        platform = design_platform()
        service = platform.deploy(MIXED_QUALITY_SERVICE, name="Mixed")
        module = platform.module
        # the syntax error was skipped to the ';'; type error collected
        assert module.errors  # prolog-level syntax error recorded
        type_errors = module.function("typeError", 0).errors
        assert any("undefined" in e for e in type_errors)

    def test_error_free_functions_still_work(self):
        platform = design_platform()
        platform.deploy(MIXED_QUALITY_SERVICE, name="Mixed")
        out = platform.call("goodScan")
        assert len(out) == 2

    def test_caller_of_good_function_compiles(self):
        platform = design_platform()
        platform.deploy(MIXED_QUALITY_SERVICE, name="Mixed")
        out = platform.call("caller")
        assert len(out) == 1

    def test_erroneous_function_fails_only_at_invocation(self):
        from repro.errors import ReproError

        platform = design_platform()
        platform.deploy(MIXED_QUALITY_SERVICE, name="Mixed")
        with pytest.raises(ReproError):
            platform.call("typeError")

    def test_runtime_mode_fails_fast_on_same_source(self):
        clock = VirtualClock()
        platform = Platform(clock=clock, mode="runtime")
        platform.register_database(build_custdb(clock))
        with pytest.raises(ParseError):
            platform.deploy(MIXED_QUALITY_SERVICE, name="Mixed")


class TestAnalysisModesOnAdHocQueries:
    def test_runtime_query_type_error_raises(self):
        platform = design_platform()
        # ad hoc execution still fails eagerly for unknown functions
        with pytest.raises((TypeError_, Exception)):
            platform.execute("noSuchFunction()")

    def test_signature_survives_broken_body(self):
        platform = design_platform()
        platform.deploy('''
            declare function broken() as xs:integer { $nope };
            declare function user() as xs:integer { broken() + 1 };
        ''', name="S")
        # 'user' type-checked against broken's declared signature
        assert not platform.module.function("user", 0).errors
