"""Clock semantics (virtual branch accounting, wall clock) and small
shared utilities."""

import time

from hypothesis import given, strategies as st

from repro.clock import VirtualClock, WallClock
from repro.sdo import DataObject
from repro.xml import element, parse_element_text


class TestVirtualClock:
    def test_charge_advances(self):
        clock = VirtualClock()
        clock.charge_ms(5)
        clock.charge_ms(2.5)
        assert clock.now_ms() == 7.5

    def test_branch_isolated_until_joined(self):
        clock = VirtualClock()
        clock.charge_ms(10)
        clock.begin_branch()
        clock.charge_ms(40)
        assert clock.now_ms() == 50  # visible while inside the branch
        elapsed = clock.end_branch()
        assert elapsed == 40
        assert clock.now_ms() == 10  # the join decides what to add
        clock.charge_ms(elapsed)
        assert clock.now_ms() == 50

    def test_nested_branches(self):
        clock = VirtualClock()
        clock.begin_branch()
        clock.charge_ms(5)
        clock.begin_branch()
        clock.charge_ms(3)
        assert clock.end_branch() == 3
        assert clock.end_branch() == 5

    def test_set_ms_monotonic(self):
        clock = VirtualClock()
        clock.charge_ms(10)
        clock.set_ms(5)
        assert clock.now_ms() == 10
        clock.set_ms(20)
        assert clock.now_ms() == 20


class TestWallClock:
    def test_charge_sleeps(self):
        clock = WallClock()
        start = time.monotonic()
        clock.charge_ms(20)
        assert time.monotonic() - start >= 0.015

    def test_zero_charge_fast(self):
        clock = WallClock()
        start = time.monotonic()
        clock.charge_ms(0)
        assert time.monotonic() - start < 0.01


_LEAF_NAMES = st.lists(
    st.sampled_from(["A", "B", "C", "D", "E"]), min_size=1, max_size=5, unique=True
)


@given(names=_LEAF_NAMES, edits=st.lists(st.tuples(st.integers(0, 4), st.text(
    alphabet="abcxyz", min_size=1, max_size=5)), max_size=8))
def test_property_dataobject_change_log_consistent(names, edits):
    """Random flat objects + random edit sequences: the change log's old
    values are the originals, its new values are the final state, and
    unchanged leaves never appear."""
    root = element("ROOT", *(element(name, f"init-{name}") for name in names))
    obj = DataObject(root)
    finals = {name: f"init-{name}" for name in names}
    for index, value in edits:
        name = names[index % len(names)]
        obj.set(name, value)
        finals[name] = value
    log = obj.change_log()
    seen = {}
    for change in log.changes:
        leaf_name = change.path[-1]
        seen.setdefault(leaf_name, []).append(change)
        assert seen[leaf_name][0].old == f"init-{leaf_name}"
    for name in names:
        assert obj.get(name) == finals[name]
        if finals[name] == f"init-{name}":
            # a leaf that ended at its original value may appear in the log
            # (intermediate edits) but its first old value is the original
            pass
        if name in seen:
            assert seen[name][-1].new == finals[name] or \
                finals[name] == f"init-{name}"


@given(st.lists(st.sampled_from(["X", "Y"]), min_size=2, max_size=5))
def test_property_repeated_siblings_get_stable_indexed_paths(names):
    root = parse_element_text(
        "<R>" + "".join(f"<{n}>v</{n}>" for n in names) + "</R>"
    )
    obj = DataObject(root)
    originals = obj.change_log().original_values
    # every leaf is addressable and the index disambiguates duplicates
    assert len(originals) == len(names)
    for path in originals:
        assert originals[path] == "v"
