"""Plan verifier tests: the diagnostics framework, the four analysis
passes, the conjunct round-trip, and the lint entry points."""

import json

import pytest

from repro import PlanVerificationError
from repro.compiler.algebra import (
    ColumnSlot,
    Correlation,
    PPkLetClause,
    PushedSQL,
    SourceCall,
    TableMeta,
)
from repro.compiler.pipeline import CompilerOptions
from repro.compiler.verify import verify_plan
from repro.diagnostics import CODE_REGISTRY, DiagnosticReport, Severity, make
from repro.schema.types import atomic
from repro.sql.ast_nodes import (
    ColumnRef,
    FuncCall,
    Param,
    Select,
    SelectItem,
    TableRef,
)
from repro.sql.pushdown import free_vars, join_conjuncts, split_conjuncts
from repro.xquery import ast, parse_expression
from repro.xquery.normalize import normalize

from tests.conftest import build_platform


def parsed(text: str) -> ast.AstNode:
    return normalize(parse_expression(text))


def make_pushed(vendor="oracle", params=None, correlation=None, regroup=None):
    select = Select(
        items=[SelectItem(ColumnRef("t1", "CID"), alias="c1")],
        from_items=[TableRef("CUSTOMER", "t1")],
    )
    template = ColumnSlot("c1", "xs:string", "CID")
    return PushedSQL("custdb", vendor, select, params or [], template,
                     regroup=regroup, correlation=correlation)


CUSTOMER_META = TableMeta(
    database="custdb", table="CUSTOMER", element_name="CUSTOMER",
    columns=[("CID", "xs:string")],
)


# ---------------------------------------------------------------------------
# Diagnostics framework
# ---------------------------------------------------------------------------


class TestDiagnostics:
    def test_severity_encoded_in_code(self):
        assert Severity.from_code("ALDSP-E101") is Severity.ERROR
        assert Severity.from_code("ALDSP-W004") is Severity.WARNING
        assert Severity.from_code("ALDSP-I302") is Severity.INFO

    def test_every_registered_code_has_a_severity(self):
        for code in CODE_REGISTRY:
            assert Severity.from_code(code) in Severity

    def test_make_rejects_unregistered_codes(self):
        with pytest.raises(ValueError):
            make("ALDSP-E999", "no such code")

    def test_report_sorting_and_rendering(self):
        report = DiagnosticReport()
        report.add(make("ALDSP-I302", "a note", "FLWOR/clause[0]"))
        report.add(make("ALDSP-E001", "an error", "FLWOR", line=3))
        report.add(make("ALDSP-W004", "a warning"))
        assert [d.code for d in report.sorted()] == \
            ["ALDSP-E001", "ALDSP-W004", "ALDSP-I302"]
        text = report.render_text()
        assert "ALDSP-E001 error: an error (at FLWOR) [line 3]" in text
        payload = json.loads(report.render_json())
        assert payload["errors"] == 1 and payload["warnings"] == 1
        assert payload["diagnostics"][0]["code"] == "ALDSP-E001"

    def test_raise_if_errors_carries_the_report(self):
        report = DiagnosticReport([make("ALDSP-E001", "boom")])
        with pytest.raises(PlanVerificationError) as info:
            report.raise_if_errors("ctx")
        assert info.value.report is report
        # warnings alone never raise
        DiagnosticReport([make("ALDSP-W004", "shadow")]).raise_if_errors()


# ---------------------------------------------------------------------------
# free_vars on adversarial scoping
# ---------------------------------------------------------------------------


class TestFreeVars:
    def test_shadowed_for_variables(self):
        expr = parsed("for $x in (1, 2) return for $x in (3) return $x")
        assert free_vars(expr) == set()

    def test_let_rebinding_inside_flwor(self):
        expr = parsed("let $x := 1 let $x := $x + 1 return $x")
        assert free_vars(expr) == set()
        expr = parsed("let $x := $y return $x")
        assert free_vars(expr) == {"y"}

    def test_variables_through_element_content(self):
        expr = parsed("<A>{ $z }</A>")
        assert free_vars(expr) == {"z"}
        expr = parsed("for $v in (1) return <A><B>{ $v }</B>{ $w }</A>")
        assert free_vars(expr) == {"w"}

    def test_quantified_and_typeswitch_bindings(self):
        expr = parsed("some $v in (1, 2) satisfies $v eq $w")
        assert free_vars(expr) == {"w"}
        expr = parsed(
            "typeswitch (1) case $i as xs:integer return $i "
            "default $d return $d"
        )
        assert free_vars(expr) == set()

    def test_group_by_key_expressions(self):
        expr = parsed(
            "for $x in (1, 2) group $x as $g by $x as $k return ($k, $g)"
        )
        assert free_vars(expr) == set()

    def test_compiled_ppk_plan_is_closed(self):
        # The optimized getProfile plan contains PP-k clauses whose
        # correlation keys reference outer variables only through the
        # Correlation record — free_vars must see through it.
        platform = build_platform()
        plan = platform.prepare("getProfile()")
        assert any(isinstance(n, PPkLetClause) for n in plan.expr.walk())
        assert free_vars(plan.expr) == set()


# ---------------------------------------------------------------------------
# split/join conjunct round-trip
# ---------------------------------------------------------------------------


class TestConjunctRoundTrip:
    def test_none_and_empty(self):
        assert split_conjuncts(None) == []
        assert join_conjuncts([]) is None

    def test_single_conjunct(self):
        cond = parsed("1 eq 1")
        assert split_conjuncts(cond) == [cond]
        assert join_conjuncts([cond]) is cond

    def test_round_trip_preserves_order(self):
        a, b, c = parsed("$x eq 1"), parsed("$y eq 2"), parsed("$z eq 3")
        joined = join_conjuncts([a, b, c])
        assert split_conjuncts(joined) == [a, b, c]

    def test_split_flattens_nested_ands(self):
        cond = parsed("$a eq 1 and $b eq 2 and $c eq 3 and $d eq 4")
        parts = split_conjuncts(cond)
        assert len(parts) == 4
        assert split_conjuncts(join_conjuncts(parts)) == parts


# ---------------------------------------------------------------------------
# Pass 1: scope / binding
# ---------------------------------------------------------------------------


class TestScopeChecker:
    def test_unbound_variable(self):
        report = verify_plan(parsed("$nowhere + 1"))
        assert "ALDSP-E001" in report.codes()
        assert "ALDSP-E002" in report.codes()
        assert report.has_errors

    def test_externals_are_bound(self):
        report = verify_plan(parsed("$arg + 1"), externals=frozenset({"arg"}))
        assert not report.has_errors

    def test_shadowing_is_a_warning_not_an_error(self):
        report = verify_plan(
            parsed("for $x in (1, 2) return for $x in (3) return $x"))
        assert report.by_code("ALDSP-W004")
        assert not report.has_errors

    def test_open_template_is_an_error(self):
        pushed = make_pushed()
        pushed.template = ast.ElementCtor("ROW", [], [ast.VarRef("leak")])
        report = verify_plan(pushed)
        assert [d.code for d in report.errors] == ["ALDSP-E003"]

    def test_typeswitch_case_variables_are_scoped(self):
        report = verify_plan(parsed(
            "typeswitch (1) case $i as xs:integer return $i "
            "default $d return $d"
        ))
        assert not report.has_errors


# ---------------------------------------------------------------------------
# Pass 2: pushdown-safety auditor
# ---------------------------------------------------------------------------


class TestPushdownAuditor:
    def test_capability_drift_is_rejected(self):
        # Compile a real plan that legitimately pushes CEIL to Oracle,
        # then simulate capability drift by retargeting the region at the
        # base SQL92 dialect, where CEIL is not pushable.
        platform = build_platform()
        plan = platform.prepare(
            "for $o in ORDER() return ceiling($o/AMOUNT div 7)")
        regions = [n for n in plan.expr.walk() if isinstance(n, PushedSQL)]
        assert regions, "expected a pushed region"
        assert any(
            isinstance(n, FuncCall) and n.name == "CEIL"
            for r in regions for n in _sql_walk(r.select)
        )
        assert not verify_plan(plan.expr).has_errors
        for region in regions:
            region.vendor = "sql92"
        report = verify_plan(plan.expr)
        assert report.by_code("ALDSP-E101")
        assert report.has_errors

    def test_unsupported_pagination(self):
        pushed = make_pushed(vendor="sybase")
        pushed.select.fetch = (0, 5)
        report = verify_plan(pushed)
        assert report.by_code("ALDSP-E102")

    def test_parameter_without_middleware_expression(self):
        pushed = make_pushed()
        pushed.select.where = Param(3)
        report = verify_plan(pushed)
        assert report.by_code("ALDSP-E105")

    def test_unshipped_parameter_expression(self):
        pushed = make_pushed(params=[ast.EmptySequence()])
        report = verify_plan(pushed)
        assert report.by_code("ALDSP-W106")
        assert not report.has_errors

    def test_unknown_vendor_falls_back_with_warning(self):
        report = verify_plan(make_pushed(vendor="acmedb"))
        assert report.by_code("ALDSP-W109")
        assert not report.has_errors

    def test_unprojected_template_alias(self):
        pushed = make_pushed()
        pushed.template = ColumnSlot("missing", "xs:string", "CID")
        report = verify_plan(pushed)
        assert report.by_code("ALDSP-E107")

    def test_unprojected_correlation_alias(self):
        correlation = Correlation(ColumnRef("t1", "CID"), "not_projected",
                                  ast.EmptySequence())
        report = verify_plan(make_pushed(correlation=correlation))
        assert report.by_code("ALDSP-E107")

    def test_ppk_without_correlation(self):
        flwor = ast.FLWOR(
            [ast.ForClause("x", parsed("(1, 2)")),
             PPkLetClause("cc", make_pushed(), k=20)],
            ast.VarRef("cc"),
        )
        report = verify_plan(flwor)
        assert report.by_code("ALDSP-E110")


def _sql_walk(obj):
    if isinstance(obj, (list, tuple)):
        for entry in obj:
            yield from _sql_walk(entry)
        return
    if hasattr(obj, "__dataclass_fields__"):
        yield obj
        for name in obj.__dataclass_fields__:
            yield from _sql_walk(getattr(obj, name))


# ---------------------------------------------------------------------------
# Pass 3: typematch consistency
# ---------------------------------------------------------------------------


class TestTypeConsistency:
    def _typematch(self, operand_type, target):
        operand = ast.EmptySequence()
        operand.static_type = operand_type
        node = ast.TypeMatch(operand, target)
        node.static_type = target
        return node

    def test_redundant_typematch(self):
        node = self._typematch(atomic("xs:integer"), atomic("xs:integer"))
        report = verify_plan(node)
        assert report.by_code("ALDSP-W201")
        assert not report.has_errors

    def test_unsatisfiable_typematch(self):
        node = self._typematch(atomic("xs:integer"), atomic("xs:string"))
        report = verify_plan(node)
        assert report.by_code("ALDSP-W202")

    def test_justified_typematch_is_silent(self):
        from repro.schema.types import ITEM_STAR

        node = self._typematch(ITEM_STAR, atomic("xs:integer"))
        report = verify_plan(node)
        assert not report.by_code("ALDSP-W201")
        assert not report.by_code("ALDSP-W202")


# ---------------------------------------------------------------------------
# Pass 4: plan-shape lints
# ---------------------------------------------------------------------------


class TestPlanShape:
    def _ppk_flwor(self, k):
        correlation = Correlation(ColumnRef("t1", "CID"), "c1",
                                  ast.EmptySequence())
        return ast.FLWOR(
            [ast.ForClause("x", parsed("(1, 2)")),
             PPkLetClause("cc", make_pushed(correlation=correlation), k=k)],
            ast.VarRef("cc"),
        )

    def test_invalid_block_size(self):
        report = verify_plan(self._ppk_flwor(0))
        assert report.by_code("ALDSP-E301")

    def test_degenerate_block_size_is_a_note(self):
        report = verify_plan(self._ppk_flwor(1))
        assert report.by_code("ALDSP-I302")
        assert not report.has_errors

    def test_oversized_block_size(self):
        report = verify_plan(self._ppk_flwor(5000))
        assert report.by_code("ALDSP-W303")

    def test_dead_let_slot(self):
        report = verify_plan(parsed("let $unused := 1 return 2"))
        assert report.by_code("ALDSP-W304")
        assert not report.has_errors

    def test_dead_projection(self):
        pushed = make_pushed()
        pushed.select.items.append(
            SelectItem(ColumnRef("t1", "SSN"), alias="dead"))
        report = verify_plan(pushed)
        assert report.by_code("ALDSP-W305")

    def test_middleware_table_scan_only_when_push_enabled(self):
        scan = SourceCall("CUSTOMER", [], "table", CUSTOMER_META)
        assert verify_plan(scan, push_enabled=True).by_code("ALDSP-W306")
        assert not verify_plan(scan, push_enabled=False).by_code("ALDSP-W306")

    def test_unguarded_web_service_call(self):
        call = SourceCall("getRating", [], "webservice")
        assert verify_plan(call).by_code("ALDSP-I308")
        guarded = ast.FunctionCall("fn-bea:timeout", [
            SourceCall("getRating", [], "webservice"),
            ast.EmptySequence(),
        ])
        assert not verify_plan(guarded).by_code("ALDSP-I308")


# ---------------------------------------------------------------------------
# Pipeline / Platform / CLI integration
# ---------------------------------------------------------------------------


class TestIntegration:
    def test_verify_is_on_by_default(self):
        assert CompilerOptions().verify is True

    def test_compiled_plans_carry_diagnostics(self):
        platform = build_platform()
        plan = platform.prepare("for $c in CUSTOMER() return $c/CID")
        assert isinstance(plan.diagnostics, DiagnosticReport)
        assert not plan.diagnostics.has_errors

    def test_explain_appends_diagnostics_and_dialect(self):
        platform = build_platform()
        text = platform.explain("getProfile()")
        assert "sql[oracle]:" in text or "sql[db2]:" in text
        assert "DIAGNOSTICS" in text  # the plan has info-level notes

    def test_explain_names_the_dialect_next_to_sql(self):
        platform = build_platform()
        text = platform.explain("for $c in CUSTOMER() return $c/CID")
        assert "PUSHED SQL -> custdb (oracle)" in text
        assert "sql[oracle]: SELECT" in text

    def test_lint_collects_analysis_errors_as_e000(self):
        platform = build_platform()
        report = platform.lint("$undefined + 1")
        assert report.by_code("ALDSP-E000")
        assert report.has_errors

    def test_lint_clean_query(self):
        platform = build_platform()
        report = platform.lint("for $c in CUSTOMER() return $c/CID")
        assert not report.has_errors

    def test_cli_lint_exit_codes(self, capsys):
        from repro.cli import main

        assert main(["lint", "for $c in CUSTOMER() return $c/CID"]) == 0
        capsys.readouterr()
        assert main(["lint", "$undefined + 1"]) == 1
        out = capsys.readouterr().out
        assert "ALDSP-E000" in out

    def test_cli_lint_json(self, capsys):
        from repro.cli import main

        assert main(["lint", "--json", "getProfile()"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert isinstance(payload["diagnostics"], list)


# ---------------------------------------------------------------------------
# Regression: the benchmark corpus verifies clean
# ---------------------------------------------------------------------------

CORPUS = [
    # running example and method calls
    "getProfile()",
    'getProfileByID("C1")',
    # Table 1/2-style pushdown patterns
    "for $c in CUSTOMER() return $c/CID",
    "for $c in CUSTOMER() where $c/SINCE gt 864000 return $c/LAST_NAME",
    "for $o in ORDER() order by $o/AMOUNT descending return $o/OID",
    "for $o in ORDER() return ceiling($o/AMOUNT div 7)",
    "fn:count(for $o in ORDER() return $o)",
    "for $c in CUSTOMER() return upper-case(data($c/LAST_NAME))",
    # same-database join (pushed as one SQL query)
    "for $c in CUSTOMER() for $o in ORDER() "
    "where $o/CID eq $c/CID return ($c/CID, $o/OID)",
    # cross-database join (PP-k)
    "for $c in CUSTOMER() for $cc in CREDIT_CARD() "
    "where $cc/CID eq $c/CID return $cc/NUMBER",
    # grouping
    "for $o in ORDER() group $o as $g by data($o/CID) as $k "
    "return <T><K>{$k}</K><N>{count($g)}</N></T>",
    # pagination
    "subsequence(for $o in ORDER() order by $o/OID return $o, 1, 2)",
    # quantifier and conditional
    "for $c in CUSTOMER() where some $o in ORDER() "
    "satisfies $o/CID eq $c/CID return $c/CID",
    "for $o in ORDER() return if ($o/AMOUNT gt 20) then $o/OID else ()",
]


class TestBenchmarkCorpusClean:
    @pytest.mark.parametrize("query", CORPUS)
    def test_corpus_query_verifies_clean(self, query):
        platform = build_platform()
        report = platform.lint(query)
        errors = [d.render() for d in report.errors]
        assert not errors, errors

    def test_corpus_compiles_under_runtime_verification(self):
        # Runtime mode raises on error-severity diagnostics; compiling the
        # whole corpus proves the verifier is clean on real plans.
        platform = build_platform(customers=3)
        for query in CORPUS:
            platform.prepare(query)
