"""Batch engine equivalence suite (P-BATCH acceptance).

Every scenario runs under batch sizes {1, 2, 7, 256} — ``1`` being the
untouched tuple-at-a-time pipeline — and the suite asserts the batch
engine is observationally *byte-identical*: serialized results, explain
plans, profile span trees (per-operator actuals included), runtime stats
and virtual-clock totals all match the n=1 baseline exactly.

No normalization is applied: gensym numbering is scoped per
compilation and canonicalized, so two identically configured platforms
render byte-identical plan text — ``$#ppk`` numbering included.
"""

from __future__ import annotations

import pytest

from repro import serialize
from repro.demo import build_demo_platform
from repro.relational import LatencyModel

from .test_composite_scenario import build_scenario

BATCH_SIZES = [1, 2, 7, 256]


def _profile_text(profile) -> str:
    return profile.text


def observe_composite(tmp_path, batch_size: int) -> dict:
    """The composite-application scenario: four source kinds, layered
    services, group-less joins, PP-k, order-by, fail-over."""
    platform, _invdb, _salesdb = build_scenario(tmp_path)
    platform.set_batch_size(batch_size)
    out = {}
    out["productInfo"] = serialize(platform.call("productInfo"))
    out["replenishment"] = serialize(platform.call("replenishmentReport"))
    velocity = '''
        for $p in PRODUCT()
        let $sold := sum(for $s in SALE() where $s/SKU eq $p/SKU
                         return $s/UNITS)
        order by $sold descending
        return <VELOCITY>{ data($p/SKU), $sold }</VELOCITY>
    '''
    out["velocity"] = serialize(platform.execute(velocity))
    out["velocity_explain"] = platform.explain(velocity)
    out["velocity_profile"] = _profile_text(platform.profile(velocity))
    out["report_explain"] = platform.explain("replenishmentReport()")
    out["clock_ms"] = round(platform.clock.now_ms(), 6)
    out["ppk_blocks"] = platform.ctx.stats.ppk_blocks
    out["pushed_queries"] = platform.ctx.stats.pushed_queries
    out["tuples_flowed"] = platform.ctx.stats.tuples_flowed
    return out


def observe_running_example(batch_size: int) -> dict:
    """The Figure-3 running example: PP-k middleware joins, a Web
    service, nested reconstruction — the paper's own workload."""
    platform = build_demo_platform(
        customers=20, orders_per_customer=3, ws_latency_ms=15.0,
        db_latency=LatencyModel(roundtrip_ms=5.0, per_row_ms=0.05),
    )
    platform.set_batch_size(batch_size)
    start = platform.clock.now_ms()
    profiles = platform.call("getProfile")
    out = {
        "profiles": serialize(profiles),
        "elapsed_ms": round(platform.clock.now_ms() - start, 6),
        "explain": platform.explain("getProfile()"),
        "profile": _profile_text(platform.profile("getProfile()")),
        "ppk_blocks": platform.ctx.stats.ppk_blocks,
        "ws_calls": platform.ctx.stats.service_calls,
        "pushed_queries": platform.ctx.stats.pushed_queries,
        "tuples_flowed": platform.ctx.stats.tuples_flowed,
    }
    return out


def observe_operator_zoo(batch_size: int) -> dict:
    """Pure mid-tier operator coverage: where/let chains, group-by
    (clustered and hashed), order-by, positional vars, nested FLWORs,
    constructors — everything the batch clauses reimplement."""
    platform = build_demo_platform(customers=6, orders_per_customer=2)
    platform.set_batch_size(batch_size)
    queries = {
        "scan": "for $i in (1 to 500) where ($i mod 7) eq 3 return $i",
        "group": ("for $i in (1 to 300) let $k := $i mod 7 "
                  "group $i as $is by $k as $g order by $g descending "
                  "return <G>{$g}{fn:count($is)}{fn:sum($is)}</G>"),
        "position": ("for $x at $p in (10, 20, 30, 40) "
                     "where $p mod 2 eq 0 return $x + $p"),
        "nested": ("for $c in CUSTOMER() "
                   "return <P>{$c/LAST_NAME}<O>{ for $o in ORDER() "
                   "where $o/CID eq $c/CID return $o/AMOUNT }</O></P>"),
        "orderby": ("for $c in CUSTOMER() order by $c/LAST_NAME descending "
                    "return $c/CID"),
    }
    out = {}
    for name, query in queries.items():
        out[name] = serialize(platform.execute(query))
        out[f"{name}_explain"] = platform.explain(query)
        out[f"{name}_profile"] = _profile_text(platform.profile(query))
    out["clock_ms"] = round(platform.clock.now_ms(), 6)
    out["tuples_flowed"] = platform.ctx.stats.tuples_flowed
    return out


class TestBatchEquivalence:
    """Byte-identical observables across every batch size."""

    @pytest.mark.parametrize("batch_size", BATCH_SIZES[1:])
    def test_composite_scenario_identical(self, tmp_path, batch_size):
        baseline = observe_composite(tmp_path, 1)
        observed = observe_composite(tmp_path, batch_size)
        for key in baseline:
            assert observed[key] == baseline[key], (batch_size, key)

    @pytest.mark.parametrize("batch_size", BATCH_SIZES[1:])
    def test_running_example_identical(self, batch_size):
        baseline = observe_running_example(1)
        observed = observe_running_example(batch_size)
        for key in baseline:
            assert observed[key] == baseline[key], (batch_size, key)

    @pytest.mark.parametrize("batch_size", BATCH_SIZES[1:])
    def test_operator_zoo_identical(self, batch_size):
        baseline = observe_operator_zoo(1)
        observed = observe_operator_zoo(batch_size)
        for key in baseline:
            assert observed[key] == baseline[key], (batch_size, key)

    def test_default_engine_is_batched(self):
        platform = build_demo_platform(customers=2, orders_per_customer=1)
        assert platform.ctx.batch_size > 1
