"""Security tests (section 7): function ACLs, element-level resources,
post-cache filtering, auditing."""

import pytest

from repro.errors import SecurityError
from repro.security import SecurityService, User
from repro.xml import element, serialize

from tests.conftest import build_platform


AGENT = User.of("alice", "agent")
MANAGER = User.of("bob", "manager")


class TestFunctionACL:
    def test_unprotected_function_open_to_all(self):
        service = SecurityService()
        service.check_call("getProfile", AGENT)  # no exception

    def test_protected_function_requires_role(self):
        service = SecurityService()
        service.protect_function("getProfile", ["manager"])
        service.check_call("getProfile", MANAGER)
        with pytest.raises(SecurityError):
            service.check_call("getProfile", AGENT)

    def test_admin_bypasses(self):
        service = SecurityService()
        service.protect_function("getProfile", ["manager"])
        service.check_call("getProfile", User.of("root", "admin"))

    def test_platform_enforces_on_call(self, platform):
        platform.security.protect_function("getProfile", ["manager"])
        platform.call("getProfile", user=MANAGER)
        with pytest.raises(SecurityError):
            platform.call("getProfile", user=AGENT)


def sample_profile():
    return element(
        "PROFILE",
        element("CID", "C1"),
        element("SSN", "111-22-3333"),
        element("RATING", 700, type_annotation="xs:integer"),
    )


class TestElementResources:
    def test_silent_removal(self):
        service = SecurityService()
        service.protect_element(("PROFILE", "SSN"), ["manager"], action="remove")
        [filtered] = service.filter_items([sample_profile()], AGENT)
        assert "<SSN>" not in serialize(filtered)
        assert "<CID>" in serialize(filtered)

    def test_replacement_value(self):
        service = SecurityService()
        service.protect_element(("PROFILE", "RATING"), ["manager"],
                                action="replace", replacement="***")
        [filtered] = service.filter_items([sample_profile()], AGENT)
        assert "<RATING>***</RATING>" in serialize(filtered)

    def test_authorized_role_sees_everything(self):
        service = SecurityService()
        service.protect_element(("PROFILE", "SSN"), ["manager"])
        [filtered] = service.filter_items([sample_profile()], MANAGER)
        assert "<SSN>111-22-3333</SSN>" in serialize(filtered)

    def test_originals_never_mutated(self):
        service = SecurityService()
        service.protect_element(("PROFILE", "SSN"), ["manager"])
        original = sample_profile()
        service.filter_items([original], AGENT)
        assert "<SSN>" in serialize(original)

    def test_nested_path_matching(self):
        service = SecurityService()
        service.protect_element(("PROFILE", "CARDS", "NUMBER"), ["manager"],
                                action="replace", replacement="XXXX")
        doc = element("PROFILE", element("CARDS", element("NUMBER", "4400")))
        [filtered] = service.filter_items([doc], AGENT)
        assert "<NUMBER>XXXX</NUMBER>" in serialize(filtered)

    def test_bad_action_rejected(self):
        with pytest.raises(SecurityError):
            SecurityService().protect_element(("X",), [], action="explode")


class TestPostCacheFiltering:
    def test_cache_shared_across_users_with_per_user_filtering(self):
        # Section 7: "Function result caching is done before security
        # filters have been applied, thereby making the cache effective
        # across users."
        platform = build_platform(ws_latency_ms=50.0)
        platform.enable_function_cache("getRating", ttl_ms=60_000, arity=1)
        platform.security.protect_element(
            ("PROFILE", "RATING"), ["manager"], action="replace", replacement="hidden")
        query_manager = platform.call("getProfile", user=MANAGER)
        calls_after_manager = platform.ctx.stats.service_calls
        query_agent = platform.call("getProfile", user=AGENT)
        # cache hit: the agent's call did not re-invoke the rating service
        assert platform.ctx.stats.service_calls == calls_after_manager
        assert "<RATING>701</RATING>" in serialize(query_manager[0])
        assert "<RATING>hidden</RATING>" in serialize(query_agent[0])

    def test_filtering_applies_to_ad_hoc_queries(self, platform):
        platform.security.protect_element(
            ("CID",), ["manager"], action="replace", replacement="?")
        out = platform.execute("for $c in CUSTOMER() return $c/CID", user=AGENT)
        assert serialize(out[0]) == "<CID>?</CID>"


class TestAuditing:
    def test_audit_records_decisions(self):
        service = SecurityService()
        service.enable_auditing()
        service.protect_function("f", ["manager"])
        service.protect_element(("PROFILE", "SSN"), ["manager"])
        service.check_call("f", MANAGER)
        with pytest.raises(SecurityError):
            service.check_call("f", AGENT)
        service.filter_items([sample_profile()], AGENT)
        kinds = [(r.kind, r.decision) for r in service.audit_log]
        assert ("function-call", "allow") in kinds
        assert ("function-call", "deny") in kinds
        assert ("element-filter", "remove") in kinds

    def test_auditing_off_by_default(self):
        service = SecurityService()
        service.check_call("f", AGENT)
        assert service.audit_log == []
