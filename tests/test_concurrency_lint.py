"""Static concurrency lint (A-CONC): toy-source verdicts for every
ALDSP-C4xx code, the repo-at-HEAD cleanliness gate, and the seeded
mutation check (removing a lock must trip the lint)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import REGISTRY, analyze_source, run_concurrency_lint

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def lint(source: str, classes=None, strict: bool = False):
    return analyze_source(source, "toy.py", classes=classes, strict=strict)


class TestVerdicts:
    def test_guarded_mutation_is_clean(self):
        report = lint("""
class Box:
    def __init__(self):
        self._lock = TrackedRLock("Box")
        self.items = []
    def add(self, item):
        with self._lock:
            self.items.append(item)
""")
        assert report.codes() == []

    def test_c401_unguarded_write(self):
        report = lint("""
class Box:
    def __init__(self):
        self._lock = TrackedRLock("Box")
        self.count = 0
    def bump(self):
        self.count += 1
""")
        assert report.codes() == ["ALDSP-C401"]
        assert "without holding _lock" in report.diagnostics[0].message

    def test_c401_container_mutator_in_expression(self):
        report = lint("""
class Box:
    def __init__(self):
        self._lock = TrackedRLock("Box")
        self.pending = {}
    def take(self, key):
        return self.pending.pop(key, None)
""")
        assert report.codes() == ["ALDSP-C401"]

    def test_c401_closure_does_not_inherit_lock_scope(self):
        report = lint("""
class Box:
    def __init__(self):
        self._lock = TrackedRLock("Box")
        self.items = []
    def deferred(self):
        with self._lock:
            def later():
                self.items.append(1)
            return later
""")
        assert report.codes() == ["ALDSP-C401"]

    def test_c402_guard_declared_but_no_lock(self):
        report = lint("""
@guarded_by("_lock")
class Box:
    def __init__(self):
        self.count = 0
    def bump(self):
        self.count += 1
""")
        assert "ALDSP-C402" in report.codes()

    def test_c403_shared_state_with_no_lock_at_all(self):
        report = lint("""
class Box:
    def __init__(self):
        self.count = 0
    def bump(self):
        self.count += 1
""")
        assert report.codes() == ["ALDSP-C403"]
        assert report.warnings  # advisory, not an error

    def test_c404_wrong_lock_held(self):
        report = lint("""
class Box:
    def __init__(self):
        self._lock = TrackedRLock("a")
        self._other = TrackedRLock("b")
        self.items = []  # guarded-by: _lock
    def add(self, item):
        with self._other:
            self.items.append(item)
""")
        assert report.codes() == ["ALDSP-C404"]
        assert "_other" in report.diagnostics[0].message

    def test_c405_unguarded_read_strict_only(self):
        source = """
class Box:
    def __init__(self):
        self._lock = TrackedRLock("Box")
        self.items = []
    def add(self, item):
        with self._lock:
            self.items.append(item)
    def peek(self):
        return len(self.items)
"""
        assert lint(source).codes() == []
        strict = lint(source, strict=True)
        assert strict.codes() == ["ALDSP-C405"]
        assert strict.warnings

    def test_c406_race_ok_suppression_is_audited(self):
        report = lint("""
class Box:
    def __init__(self):
        self._lock = TrackedRLock("Box")
        self.count = 0
    def bump(self):
        self.count += 1  # race-ok: single-writer by construction
""")
        assert report.codes() == ["ALDSP-C406"]
        assert "single-writer by construction" in report.diagnostics[0].message
        assert not report.has_errors

    def test_c407_foreign_counter_write(self):
        report = lint("""
def charge(db):
    db.stats.roundtrips += 1
""")
        assert report.codes() == ["ALDSP-C407"]
        assert "bump()" in report.diagnostics[0].message

    def test_c407_ignores_local_variables(self):
        # regression: a *local* named after a counter field is not a
        # foreign stats write (resilience/manager.py's retry loop)
        report = lint("""
def call(self):
    attempts = 0
    while True:
        attempts += 1
        if attempts > 3:
            return attempts
""")
        assert report.codes() == []

    def test_c407_ignores_self_field(self):
        report = lint("""
class Stats:
    def __init__(self):
        self._lock = TrackedRLock("Stats")
    def bump(self):
        with self._lock:
            self.hits += 1
""", classes=())
        assert report.codes() == []

    def test_caller_holds_transfers_the_obligation(self):
        report = lint("""
class Box:
    def __init__(self):
        self._lock = TrackedRLock("Box")
        self.items = []
    def _drain(self):  # caller-holds: _lock
        self.items.clear()
""")
        assert report.codes() == []

    def test_init_is_exempt(self):
        report = lint("""
class Box:
    def __init__(self):
        self._lock = TrackedRLock("Box")
        self.items = []
        self.items.append(0)
""")
        assert report.codes() == []

    def test_unparseable_source_reports_e000(self):
        report = lint("def broken(:\n")
        assert report.codes() == ["ALDSP-E000"]

    def test_classes_argument_restricts_the_pass(self):
        source = """
class Checked:
    def __init__(self):
        self.n = 0
    def bump(self):
        self.n += 1

class Ignored:
    def __init__(self):
        self.n = 0
    def bump(self):
        self.n += 1
"""
        report = lint(source, classes=("Checked",))
        assert report.codes() == ["ALDSP-C403"]
        assert "Checked" in report.diagnostics[0].message


class TestRepoAtHead:
    def test_engine_lint_is_clean(self):
        report = run_concurrency_lint()
        errors = [d.render() for d in report.errors]
        warnings = [d.render() for d in report.warnings]
        assert errors == []
        assert warnings == []

    def test_every_registered_module_exists(self):
        report = run_concurrency_lint()
        assert report.by_code("ALDSP-E000") == []
        for relative in REGISTRY:
            assert (SRC_ROOT / relative).exists(), relative

    def test_registered_classes_exist_in_their_modules(self):
        import ast as ast_mod

        for relative, classes in REGISTRY.items():
            tree = ast_mod.parse((SRC_ROOT / relative).read_text())
            defined = {node.name for node in tree.body
                       if isinstance(node, ast_mod.ClassDef)}
            for cls in classes:
                assert cls in defined, f"{cls} not defined in {relative}"


class TestMutationIsCaught:
    @pytest.mark.parametrize("relative", ["runtime/cache.py",
                                          "relational/prepared.py"])
    def test_removing_one_lock_trips_the_lint(self, relative):
        """Seeded static mutation: neutralize the first ``with self._lock:``
        and the lint must report an unguarded mutation."""
        source = (SRC_ROOT / relative).read_text()
        needle = "with self._lock:"
        assert needle in source
        mutated = source.replace(needle, "if True:  # lock removed", 1)
        report = analyze_source(mutated, relative)
        assert report.has_errors, f"lint missed the lock removal in {relative}"
        assert report.by_code("ALDSP-C401"), report.render_text()

    def test_unmutated_module_is_clean(self):
        source = (SRC_ROOT / "runtime" / "cache.py").read_text()
        report = analyze_source(source, "runtime/cache.py")
        assert not report.has_errors, report.render_text()


class TestCli:
    def test_lint_concurrency_exits_zero_at_head(self, capsys):
        from repro.cli import main

        assert main(["lint", "--concurrency"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_lint_concurrency_json(self, capsys):
        import json

        from repro.cli import main

        assert main(["lint", "--concurrency", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["warnings"] == 0

    def test_lint_without_query_or_flag_is_an_error(self, capsys):
        from repro.cli import main

        assert main(["lint"]) == 2
        assert "provide an XQuery" in capsys.readouterr().err
