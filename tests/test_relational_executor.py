"""SQL parser + executor tests over the simulated engine."""

import pytest

from repro.errors import SQLError
from repro.relational import Database, Executor, parse_sql
from repro.sql.ast_nodes import Select


@pytest.fixture
def db():
    db = Database("test")
    db.create_table(
        "CUSTOMER",
        [("CID", "VARCHAR", False), ("FIRST_NAME", "VARCHAR"),
         ("LAST_NAME", "VARCHAR"), ("SINCE", "INTEGER")],
        primary_key=["CID"],
    )
    db.create_table(
        "ORDERS",
        [("OID", "VARCHAR", False), ("CID", "VARCHAR"), ("AMOUNT", "INTEGER")],
        primary_key=["OID"],
    )
    db.load("CUSTOMER", [
        {"CID": "C1", "FIRST_NAME": "Al", "LAST_NAME": "Jones", "SINCE": 100},
        {"CID": "C2", "FIRST_NAME": "Bo", "LAST_NAME": "Smith", "SINCE": 200},
        {"CID": "C3", "FIRST_NAME": "Cy", "LAST_NAME": "Jones", "SINCE": None},
    ])
    db.load("ORDERS", [
        {"OID": "O1", "CID": "C1", "AMOUNT": 10},
        {"OID": "O2", "CID": "C1", "AMOUNT": 20},
        {"OID": "O3", "CID": "C3", "AMOUNT": 30},
    ])
    return db


def run(db, sql, params=None):
    return Executor(db, params).execute(parse_sql(sql))


class TestSelect:
    def test_projection_and_where(self, db):
        rows = run(db, 'SELECT t1."FIRST_NAME" AS n FROM "CUSTOMER" t1 WHERE t1."CID" = \'C2\'')
        assert rows == [{"n": "Bo"}]

    def test_parameters(self, db):
        rows = run(db, 'SELECT t1."CID" AS c FROM "CUSTOMER" t1 WHERE t1."SINCE" > ?', [150])
        assert rows == [{"c": "C2"}]

    def test_inner_join_preserves_left_order(self, db):
        rows = run(db, 'SELECT t1."CID" AS c, t2."OID" AS o FROM "CUSTOMER" t1 '
                       'JOIN "ORDERS" t2 ON t1."CID" = t2."CID"')
        assert [r["o"] for r in rows] == ["O1", "O2", "O3"]

    def test_left_outer_join_null_extends(self, db):
        rows = run(db, 'SELECT t1."CID" AS c, t2."OID" AS o FROM "CUSTOMER" t1 '
                       'LEFT OUTER JOIN "ORDERS" t2 ON t1."CID" = t2."CID"')
        assert {r["c"]: r["o"] for r in rows if r["c"] == "C2"} == {"C2": None}
        assert len(rows) == 4

    def test_group_by_count(self, db):
        rows = run(db, 'SELECT t1."LAST_NAME" AS l, COUNT(*) AS n FROM "CUSTOMER" t1 '
                       'GROUP BY t1."LAST_NAME"')
        assert {r["l"]: r["n"] for r in rows} == {"Jones": 2, "Smith": 1}

    def test_count_column_skips_nulls(self, db):
        rows = run(db, 'SELECT COUNT(t1."SINCE") AS n FROM "CUSTOMER" t1')
        assert rows == [{"n": 2}]

    def test_aggregates(self, db):
        rows = run(db, 'SELECT SUM(t1."AMOUNT") AS s, AVG(t1."AMOUNT") AS a, '
                       'MIN(t1."AMOUNT") AS lo, MAX(t1."AMOUNT") AS hi FROM "ORDERS" t1')
        assert rows == [{"s": 60, "a": 20, "lo": 10, "hi": 30}]

    def test_having(self, db):
        rows = run(db, 'SELECT t1."LAST_NAME" AS l, COUNT(*) AS n FROM "CUSTOMER" t1 '
                       'GROUP BY t1."LAST_NAME" HAVING COUNT(*) > 1')
        assert rows == [{"l": "Jones", "n": 2}]

    def test_distinct(self, db):
        rows = run(db, 'SELECT DISTINCT t1."LAST_NAME" AS l FROM "CUSTOMER" t1')
        assert sorted(r["l"] for r in rows) == ["Jones", "Smith"]

    def test_order_by_desc(self, db):
        rows = run(db, 'SELECT t1."OID" AS o FROM "ORDERS" t1 ORDER BY t1."AMOUNT" DESC')
        assert [r["o"] for r in rows] == ["O3", "O2", "O1"]

    def test_order_by_nulls_first_ascending(self, db):
        rows = run(db, 'SELECT t1."CID" AS c FROM "CUSTOMER" t1 ORDER BY t1."SINCE"')
        assert rows[0]["c"] == "C3"

    def test_case_expression(self, db):
        rows = run(db, 'SELECT CASE WHEN t1."SINCE" > 150 THEN \'new\' ELSE \'old\' END AS k '
                       'FROM "CUSTOMER" t1 WHERE t1."CID" = \'C2\'')
        assert rows == [{"k": "new"}]

    def test_exists_correlated_subquery(self, db):
        rows = run(db, 'SELECT t1."CID" AS c FROM "CUSTOMER" t1 WHERE EXISTS('
                       'SELECT 1 FROM "ORDERS" t2 WHERE t1."CID" = t2."CID")')
        assert [r["c"] for r in rows] == ["C1", "C3"]

    def test_not_exists(self, db):
        rows = run(db, 'SELECT t1."CID" AS c FROM "CUSTOMER" t1 WHERE NOT EXISTS('
                       'SELECT 1 FROM "ORDERS" t2 WHERE t1."CID" = t2."CID")')
        assert [r["c"] for r in rows] == ["C2"]

    def test_scalar_subquery(self, db):
        rows = run(db, 'SELECT t1."CID" AS c, (SELECT SUM(t2."AMOUNT") FROM "ORDERS" t2 '
                       'WHERE t2."CID" = t1."CID") AS total FROM "CUSTOMER" t1')
        assert {r["c"]: r["total"] for r in rows} == {"C1": 30, "C2": None, "C3": 30}

    def test_in_list(self, db):
        rows = run(db, 'SELECT t1."CID" AS c FROM "CUSTOMER" t1 '
                       "WHERE t1.\"CID\" IN ('C1', 'C3')")
        assert [r["c"] for r in rows] == ["C1", "C3"]

    def test_like(self, db):
        rows = run(db, 'SELECT t1."LAST_NAME" AS l FROM "CUSTOMER" t1 '
                       "WHERE t1.\"LAST_NAME\" LIKE 'Jo%'")
        assert len(rows) == 2

    def test_is_null(self, db):
        rows = run(db, 'SELECT t1."CID" AS c FROM "CUSTOMER" t1 WHERE t1."SINCE" IS NULL')
        assert rows == [{"c": "C3"}]
        rows = run(db, 'SELECT t1."CID" AS c FROM "CUSTOMER" t1 WHERE t1."SINCE" IS NOT NULL')
        assert len(rows) == 2

    def test_between(self, db):
        rows = run(db, 'SELECT t1."OID" AS o FROM "ORDERS" t1 '
                       'WHERE t1."AMOUNT" BETWEEN 15 AND 25')
        assert rows == [{"o": "O2"}]

    def test_null_comparison_is_unknown(self, db):
        rows = run(db, 'SELECT t1."CID" AS c FROM "CUSTOMER" t1 WHERE t1."SINCE" > 0')
        assert [r["c"] for r in rows] == ["C1", "C2"]  # C3's NULL drops out

    def test_subquery_in_from(self, db):
        rows = run(db, 'SELECT sub.c AS c FROM (SELECT t1."CID" AS c FROM "CUSTOMER" t1 '
                       "WHERE t1.\"LAST_NAME\" = 'Jones') sub WHERE sub.c = 'C1'")
        assert rows == [{"c": "C1"}]

    def test_rownum_pagination_pattern(self, db):
        sql = ('SELECT t4.c1 AS c1 FROM (SELECT ROWNUM AS c2, t3.c1 AS c1 FROM '
               '(SELECT t1."OID" AS c1 FROM "ORDERS" t1 ORDER BY t1."AMOUNT" DESC) t3) t4 '
               'WHERE (t4.c2 >= 2) AND (t4.c2 < 4)')
        rows = run(db, sql)
        assert [r["c1"] for r in rows] == ["O2", "O1"]

    def test_row_number_over(self, db):
        sql = ('SELECT t4.c1 AS c1 FROM (SELECT t1."OID" AS c1, '
               'ROW_NUMBER() OVER (ORDER BY t1."AMOUNT" DESC) AS rn FROM "ORDERS" t1) t4 '
               'WHERE t4.rn >= 2 ORDER BY t4.rn')
        rows = run(db, sql)
        assert [r["c1"] for r in rows] == ["O2", "O1"]

    def test_string_concat_operator(self, db):
        rows = run(db, 'SELECT t1."FIRST_NAME" || \' \' || t1."LAST_NAME" AS n '
                       'FROM "CUSTOMER" t1 WHERE t1."CID" = \'C1\'')
        assert rows == [{"n": "Al Jones"}]

    def test_functions(self, db):
        rows = run(db, 'SELECT UPPER(t1."LAST_NAME") AS u, LENGTH(t1."CID") AS n, '
                       'SUBSTR(t1."FIRST_NAME", 1, 1) AS i FROM "CUSTOMER" t1 '
                       "WHERE t1.\"CID\" = 'C1'")
        assert rows == [{"u": "JONES", "n": 2, "i": "A"}]

    def test_arithmetic(self, db):
        rows = run(db, 'SELECT t1."AMOUNT" * 2 + 1 AS x FROM "ORDERS" t1 '
                       "WHERE t1.\"OID\" = 'O1'")
        assert rows == [{"x": 21}]


class TestDML:
    def test_insert(self, db):
        count = run(db, 'INSERT INTO "CUSTOMER" ("CID", "LAST_NAME") VALUES (?, ?)',
                    ["C9", "New"])
        assert count == 1
        assert db.table("CUSTOMER").lookup_pk(("C9",))["LAST_NAME"] == "New"

    def test_update_with_where(self, db):
        count = run(db, 'UPDATE "CUSTOMER" SET "LAST_NAME" = \'X\' '
                        "WHERE \"LAST_NAME\" = 'Jones'")
        assert count == 2

    def test_update_no_match_returns_zero(self, db):
        assert run(db, 'UPDATE "CUSTOMER" SET "LAST_NAME" = \'X\' WHERE "CID" = \'NOPE\'') == 0

    def test_delete(self, db):
        assert run(db, 'DELETE FROM "ORDERS" WHERE "CID" = \'C1\'') == 2
        assert len(db.table("ORDERS")) == 1


class TestErrors:
    def test_unknown_column(self, db):
        with pytest.raises(SQLError):
            run(db, 'SELECT t1."NOPE" AS x FROM "CUSTOMER" t1')

    def test_division_by_zero(self, db):
        with pytest.raises(SQLError):
            run(db, 'SELECT t1."AMOUNT" / 0 AS x FROM "ORDERS" t1')

    def test_bad_syntax(self, db):
        with pytest.raises(SQLError):
            parse_sql("SELECT FROM WHERE")

    def test_trailing_tokens(self, db):
        with pytest.raises(SQLError):
            parse_sql('SELECT 1 AS x FROM "CUSTOMER" t1 GARBAGE ( ;')

    def test_scalar_subquery_multi_row_rejected(self, db):
        with pytest.raises(SQLError):
            run(db, 'SELECT (SELECT t2."OID" FROM "ORDERS" t2) AS o FROM "CUSTOMER" t1')


def test_parse_sql_returns_shared_ast(db):
    stmt = parse_sql('SELECT t1."CID" AS c FROM "CUSTOMER" t1')
    assert isinstance(stmt, Select)
    assert stmt.items[0].alias == "c"
