"""XML text parser and serializer tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import XMLError
from repro.xml import (
    AtomicValue,
    element,
    parse_document,
    parse_element_text,
    serialize,
)


class TestParser:
    def test_simple_element(self):
        e = parse_element_text("<a>hello</a>")
        assert e.name.local == "a"
        assert e.string_value() == "hello"

    def test_attributes(self):
        e = parse_element_text('<a x="1" y="two"/>')
        assert e.attribute(element("x").name).string_value() == "1"

    def test_nested_elements_skip_interelement_whitespace(self):
        e = parse_element_text("<a>\n  <b>1</b>\n  <c>2</c>\n</a>")
        assert [c.name.local for c in e.child_elements()] == ["b", "c"]
        assert e.child_elements()[0].string_value() == "1"

    def test_entities(self):
        e = parse_element_text("<a>x &amp; y &lt; z &#65;</a>")
        assert e.string_value() == "x & y < z A"

    def test_cdata(self):
        e = parse_element_text("<a><![CDATA[<not-xml>]]></a>")
        assert e.string_value() == "<not-xml>"

    def test_comments_skipped(self):
        e = parse_element_text("<a><!-- hi --><b>1</b></a>")
        assert len(e.child_elements()) == 1

    def test_prolog_and_pi_skipped(self):
        doc = parse_document('<?xml version="1.0"?><a/>')
        assert doc.root_element().name.local == "a"

    def test_namespace_declarations_not_attributes(self):
        e = parse_element_text('<a xmlns="urn:x" xmlns:p="urn:y" q="1"/>')
        assert len(e.attributes) == 1

    def test_mismatched_tags_rejected(self):
        with pytest.raises(XMLError):
            parse_element_text("<a><b></a></b>")

    def test_trailing_content_rejected(self):
        with pytest.raises(XMLError):
            parse_document("<a/><b/>")

    def test_unterminated_rejected(self):
        with pytest.raises(XMLError):
            parse_element_text("<a><b>")

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLError):
            parse_element_text("<a>&nope;</a>")


class TestSerializer:
    def test_escapes_text(self):
        assert serialize(element("a", "x < & > y")) == "<a>x &lt; &amp; &gt; y</a>"

    def test_escapes_attribute_quotes(self):
        text = serialize(element("a", attrs={"t": 'say "hi"'}))
        assert "&quot;" in text

    def test_empty_element_self_closes(self):
        assert serialize(element("a")) == "<a/>"

    def test_atomic_sequence_space_separated(self):
        out = serialize([AtomicValue(1, "xs:integer"), AtomicValue(2, "xs:integer")])
        assert out == "1 2"

    def test_pretty_print(self):
        text = serialize(element("a", element("b", "1")), indent=2)
        assert "\n" in text
        assert "<b>1</b>" in text


_NAME = st.from_regex(r"[a-z][a-z0-9]{0,5}", fullmatch=True)
_TEXT = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126, blacklist_characters='<>&"\''),
    min_size=1,
    max_size=12,
).filter(lambda s: s.strip() == s and s.strip() != "")


@st.composite
def xml_trees(draw, depth=2):
    name = draw(_NAME)
    if depth == 0 or draw(st.booleans()):
        return element(name, draw(_TEXT))
    children = draw(st.lists(xml_trees(depth=depth - 1), min_size=1, max_size=3))
    return element(name, *children)


@given(xml_trees())
def test_property_parse_serialize_roundtrip(tree):
    text = serialize(tree)
    assert serialize(parse_element_text(text)) == text
