"""Units for the batch-at-a-time execution core (P-BATCH).

Covers the :class:`TupleBatch` container and :class:`BatchBuilder`
accumulator, the row-expression compiler's edge semantics, the
``set_batch_size`` knob, compiler batch-capability stamping, batched
serialization, the adaptive-PP-k/batch-size interaction, and the
``BatchProbe`` observability surface.  End-to-end byte-identity lives in
``tests/test_batch_equivalence.py``.
"""

from __future__ import annotations

import io

import pytest

from repro.demo import build_demo_platform
from repro.relational import LatencyModel
from repro.runtime.batch import DEFAULT_BATCH_SIZE, BatchBuilder, TupleBatch, rebatch
from repro.xml.serialize import serialize_to_sink
from repro.xquery import ast_nodes as ast


# ---------------------------------------------------------------------------
# TupleBatch
# ---------------------------------------------------------------------------

class TestTupleBatch:
    def test_initial_holds_the_callers_env_unowned(self):
        env = {"x": [1]}
        batch = TupleBatch.initial(env)
        assert batch.length == 1
        assert batch.env_rows()[0] is env
        assert not batch.owned

    def test_extended_owned_reuses_frames_in_place(self):
        rows = [{"a": [1]}, {"a": [2]}]
        batch = TupleBatch.from_rows(rows, owned=True)
        extended = batch.extended([("b", [[10], [20]])])
        # the same dict objects were extended — no per-tuple copies
        assert extended.env_rows()[0] is rows[0]
        assert rows[0] == {"a": [1], "b": [10]}
        assert extended.names == ("a", "b")

    def test_extended_unowned_copies_the_frames(self):
        rows = [{"a": [1]}]
        batch = TupleBatch.from_rows(rows, owned=False)
        extended = batch.extended([("b", [[9]])])
        assert rows[0] == {"a": [1]}  # caller's dict untouched
        assert extended.env_rows()[0] == {"a": [1], "b": [9]}
        assert extended.owned  # the copies belong to the pipeline now

    def test_columnar_extension_shares_existing_columns(self):
        batch = TupleBatch.from_columns(("a",), {"a": [[1], [2]]}, 2)
        column_a = batch.column("a")
        extended = batch.extended([("b", [[3], [4]])])
        assert extended.column("a") is column_a  # copy-on-write share
        assert extended.column("b") == [[3], [4]]

    def test_row_view_is_materialized_once_and_cached(self):
        batch = TupleBatch.from_columns(("a", "b"),
                                        {"a": [[1], [2]], "b": [[3], [4]]}, 2)
        rows = batch.env_rows()
        assert rows == [{"a": [1], "b": [3]}, {"a": [2], "b": [4]}]
        assert batch.env_rows() is rows

    def test_select_and_slice_preserve_row_identity(self):
        rows = [{"a": [i]} for i in range(5)]
        batch = TupleBatch.from_rows(rows, owned=True)
        picked = batch.select([0, 3])
        assert [env["a"] for env in picked.env_rows()] == [[0], [3]]
        assert picked.env_rows()[1] is rows[3]
        window = batch.slice(1, 3)
        assert len(window) == 2
        assert window.env_rows()[0] is rows[1]

    def test_concat_merges_same_schema_batches(self):
        one = TupleBatch.from_rows([{"a": [1]}], owned=True)
        two = TupleBatch.from_rows([{"a": [2]}, {"a": [3]}], owned=True)
        merged = TupleBatch.concat([one, two])
        assert merged.length == 3
        assert merged.owned
        with pytest.raises(ValueError):
            TupleBatch.concat([one, TupleBatch.from_rows([{"b": [1]}], owned=True)])


class TestBatchBuilder:
    def test_capacity_flush_is_deferred_one_add(self):
        builder = BatchBuilder(capacity=2)
        assert builder.add({"a": [1]}) is None
        assert builder.add({"a": [2]}) is None
        # the full batch is emitted by the add that overflows it
        emitted = builder.add({"a": [3]})
        assert emitted is not None and emitted.length == 2
        tail = builder.flush()
        assert tail is not None and tail.length == 1

    def test_schema_change_flushes_pending_rows(self):
        builder = BatchBuilder(capacity=10)
        builder.add({"a": [1]})
        emitted = builder.add({"a": [1], "b": [2]})
        assert emitted is not None
        assert emitted.names == ("a",) and emitted.length == 1

    def test_rebatch_round_trips_a_row_stream(self):
        rows = [{"a": [i]} for i in range(7)]
        batches = list(rebatch(iter(rows), capacity=3))
        assert [b.length for b in batches] == [3, 3, 1]
        assert [env["a"][0] for b in batches for env in b.env_rows()] == list(range(7))


# ---------------------------------------------------------------------------
# The knob, the stamp, and edge semantics
# ---------------------------------------------------------------------------

def _flwor_nodes(node, out):
    if isinstance(node, ast.FLWOR):
        out.append(node)
    for field in getattr(node, "_fields", ()):
        value = getattr(node, field, None)
        for child in (value if isinstance(value, (list, tuple)) else [value]):
            if isinstance(child, ast.AstNode):
                _flwor_nodes(child, out)
    if isinstance(node, ast.FLWOR):
        for clause in node.clauses:
            for field in getattr(clause, "_fields", ()):
                value = getattr(clause, field, None)
                for child in (value if isinstance(value, (list, tuple)) else [value]):
                    if isinstance(child, ast.AstNode):
                        _flwor_nodes(child, out)


class TestKnobAndStamp:
    def test_default_batch_size(self):
        platform = build_demo_platform(customers=2, orders_per_customer=0)
        assert platform.ctx.batch_size == DEFAULT_BATCH_SIZE == 256

    def test_set_batch_size_validates(self):
        platform = build_demo_platform(customers=2, orders_per_customer=0)
        platform.set_batch_size(1)
        assert platform.ctx.batch_size == 1
        with pytest.raises(ValueError):
            platform.set_batch_size(0)
        with pytest.raises(ValueError):
            platform.set_batch_size(-3)

    def test_compiler_stamps_batch_capability(self):
        platform = build_demo_platform(customers=2, orders_per_customer=0)
        plan = platform.prepare(
            "for $i in (1 to 10) where $i mod 2 eq 0 return $i")
        flwors: list = []
        _flwor_nodes(plan.expr, flwors)
        assert flwors and all(f.batch_capable for f in flwors)

    def test_batch_size_one_never_imports_the_batch_engine(self):
        """n=1 is the honest ablation: the legacy pipeline runs untouched."""
        import sys

        preserved = {name: sys.modules.pop(name) for name in list(sys.modules)
                     if name.endswith(("runtime.batchexec", "runtime.rowcompile"))}
        try:
            platform = build_demo_platform(customers=2, orders_per_customer=1)
            platform.set_batch_size(1)
            platform.execute("for $c in CUSTOMER() order by $c/CID return $c/CID")
            assert not any(name.endswith("runtime.batchexec")
                           for name in sys.modules)
        finally:
            sys.modules.update(preserved)

    def test_idiv_and_mod_match_across_engines(self):
        """Row-compiled arithmetic keeps XQuery (truncating) semantics for
        negative operands — the classic vectorization bug."""
        query = ("for $i in (-7, -1, 1, 7) "
                 "return <R>{$i idiv 2}{$i mod 3}</R>")
        outputs = set()
        for size in (1, 256):
            platform = build_demo_platform(customers=2, orders_per_customer=0)
            platform.set_batch_size(size)
            from repro import serialize
            outputs.add(serialize(platform.execute(query)))
        assert len(outputs) == 1
        assert "<R>-3 -1</R>" in outputs.pop()


# ---------------------------------------------------------------------------
# Batched serialization
# ---------------------------------------------------------------------------

class TestSerializeToSink:
    def test_bytes_identical_across_batch_sizes(self):
        platform = build_demo_platform(customers=3, orders_per_customer=1)
        items = platform.execute("for $c in CUSTOMER() return $c")
        reference = io.StringIO()
        count = serialize_to_sink(iter(items), reference, batch_size=1)
        for size in (2, 7, 256):
            sink = io.StringIO()
            assert serialize_to_sink(iter(items), sink, batch_size=size) == count
            assert sink.getvalue() == reference.getvalue()

    def test_execute_to_file_streams_batched(self, tmp_path):
        platform = build_demo_platform(customers=3, orders_per_customer=1)
        out = tmp_path / "batched.xml"
        count = platform.execute_to_file(
            "for $c in CUSTOMER() return $c/CID", out)
        assert count == 3
        platform.set_batch_size(1)
        single = tmp_path / "single.xml"
        platform.execute_to_file("for $c in CUSTOMER() return $c/CID", single)
        assert out.read_text() == single.read_text()


# ---------------------------------------------------------------------------
# Adaptive PP-k vs the batch clamp (satellite regression)
# ---------------------------------------------------------------------------

class TestAdaptiveClamp:
    def _run(self, batch_size: int) -> int:
        platform = build_demo_platform(
            customers=60, orders_per_customer=0, deploy_profile=False,
            db_latency=LatencyModel(roundtrip_ms=50.0, per_row_ms=0.02),
        )
        platform.set_adaptive_ppk(True)
        platform.set_batch_size(batch_size)
        query = ('for $c in CUSTOMER() '
                 'return <O>{ for $cc in CREDIT_CARD() '
                 'where $cc/CID eq $c/CID return $cc/NUMBER }</O>')
        platform.execute(query)  # cold: seeds the observed-cost model
        platform.reset_stats()
        platform.execute(query)  # warm: the model recommends large k
        return platform.ctx.stats.ppk_blocks

    def test_adaptive_k_is_capped_at_the_batch_size(self):
        # High-latency profile: warm adaptive wants one big block.  With
        # batching on, k is capped at the batch size so a block fills from
        # a single upstream batch — more, smaller blocks.
        unclamped = self._run(batch_size=1)
        clamped = self._run(batch_size=8)
        assert clamped >= -(-60 // 8)  # ceil: k never exceeded 8
        assert unclamped < clamped

    def test_default_sizes_leave_adaptive_untouched(self):
        # k_max (200) < default batch size (256): the cap is inert, so
        # batching does not change adaptive block sizing by default.
        assert self._run(batch_size=1) == self._run(batch_size=256)


# ---------------------------------------------------------------------------
# Observability: BatchProbe, profile batches, metrics instruments
# ---------------------------------------------------------------------------

class TestBatchObservability:
    def test_profile_reports_rows_per_batch(self):
        platform = build_demo_platform(customers=4, orders_per_customer=2)
        profile = platform.profile(
            "for $i in (1 to 600) where $i mod 3 eq 0 return $i")
        assert profile.batches  # per-stage rows/batches under the default 256
        stage = next(iter(profile.batches.values()))
        assert set(stage) == {"batches", "rows", "rows_per_batch"}
        returned = profile.batches.get("return")
        assert returned is not None and returned["rows"] == 200
        # 600 source rows arrive in ceil(600/256) = 3 batches; the filter
        # narrows each batch in place without re-chunking
        assert returned["batches"] == 3

    def test_profile_batches_empty_under_tuple_engine(self):
        platform = build_demo_platform(customers=4, orders_per_customer=2)
        platform.set_batch_size(1)
        profile = platform.profile("for $i in (1 to 50) return $i")
        assert profile.batches == {}

    def test_metrics_gain_batch_instruments(self):
        platform = build_demo_platform(customers=4, orders_per_customer=2)
        platform.execute("for $i in (1 to 600) return $i + 1")
        snapshot = platform.metrics_snapshot()
        assert any(name.startswith("batch.rows") for name in snapshot)
        assert any(name.startswith("batch.count") for name in snapshot)
