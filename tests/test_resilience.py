"""Source resilience layer tests (DESIGN.md R-RESIL).

Scripted fault injection, retry/backoff, circuit breakers, per-source
timeouts and partial-results degradation — plus the clock-accounting
contracts they depend on (connect timeouts are never free, async branches
all complete before an exception propagates, fn-bea:timeout charges the
same across clock modes).
"""

import pytest

from repro.clock import VirtualClock, WallClock
from repro.errors import CircuitOpenError, DynamicError, SourceError
from repro.relational import Database, LatencyModel
from repro.resilience import (
    CircuitBreaker,
    CircuitBreakerConfig,
    FaultInjector,
    ResilienceManager,
    RetryPolicy,
    SourcePolicy,
)
from repro.runtime.asyncexec import AsyncExecutor
from repro.services import Platform
from repro.xml import serialize

from tests.conftest import build_ccdb, build_platform


def make_db(clock, rows=3):
    db = Database("src", clock=clock,
                  latency=LatencyModel(roundtrip_ms=5.0, per_row_ms=1.0,
                                       connect_timeout_ms=10.0))
    db.create_table("T", [("ID", "int"), ("V", "varchar")], primary_key=["ID"])
    db.load("T", [{"ID": i, "V": f"v{i}"} for i in range(rows)])
    return db


class TestFaultInjector:
    def test_fail_first_n_calls(self):
        clock = VirtualClock()
        injector = FaultInjector().fail_first(2, latency_ms=4.0)
        for i in (1, 2):
            with pytest.raises(SourceError, match=f"call #{i}"):
                injector.on_call("src", clock)
        injector.on_call("src", clock)  # third call passes
        assert clock.now_ms() == 8.0  # each injected failure charged 4ms
        assert injector.snapshot() == {
            "seed": 0, "calls": 3, "failures": 2, "spikes": 0, "drops": 0,
        }

    def test_probabilistic_failures_replay_with_same_seed(self):
        def firing_pattern(seed):
            clock = VirtualClock()
            injector = FaultInjector(seed=seed).fail_with_probability(0.4)
            pattern = []
            for _ in range(40):
                try:
                    injector.on_call("src", clock)
                    pattern.append(0)
                except SourceError:
                    pattern.append(1)
            return pattern

        assert firing_pattern(7) == firing_pattern(7)
        assert firing_pattern(7) != firing_pattern(8)

    def test_rng_draws_do_not_depend_on_firing(self):
        # A deterministic rule ahead of a probabilistic one must not shift
        # the probabilistic rule's draw sequence.
        plain = FaultInjector(seed=3).fail_with_probability(0.5)
        mixed = FaultInjector(seed=3).fail_first(5).fail_with_probability(0.5)
        clock = VirtualClock()

        def outcomes(injector):
            seen = []
            for _ in range(20):
                try:
                    injector.on_call("src", clock)
                    seen.append(0)
                except SourceError:
                    seen.append(1)
            return seen

        base = outcomes(plain)
        shifted = outcomes(mixed)
        # After the 5 scripted failures, firing must match the plain run.
        assert shifted[5:] == base[5:]

    def test_latency_spike_every_nth(self):
        clock = VirtualClock()
        injector = FaultInjector().latency_spike(25.0, every=2)
        for _ in range(4):
            injector.on_call("src", clock)
        assert clock.now_ms() == 50.0  # calls 2 and 4 spiked
        assert injector.injected_spikes == 2

    def test_latency_spike_requires_exactly_one_mode(self):
        with pytest.raises(ValueError):
            FaultInjector().latency_spike(10.0)
        with pytest.raises(ValueError):
            FaultInjector().latency_spike(10.0, every=2, probability=0.5)

    def test_drop_mid_result_ships_and_charges_the_prefix(self):
        clock = VirtualClock()
        db = make_db(clock, rows=4)
        FaultInjector().drop_mid_result(keep_rows=2).attach(db)
        from repro.relational.connection import Connection

        with pytest.raises(SourceError, match="dropped mid-result after 2 of 4"):
            Connection(db).execute_query('SELECT t1."ID" AS ID FROM "T" t1')
        # The two shipped rows were charged before the connection died.
        assert db.stats.rows_shipped == 2
        assert clock.now_ms() == 5.0 + 2 * 1.0
        assert db.faults.injected_drops == 1


class TestConnectTimeout:
    def test_unavailable_database_charges_connect_timeout(self):
        clock = VirtualClock()
        db = make_db(clock)
        db.available = False
        with pytest.raises(SourceError, match="unavailable"):
            db.check_call()
        assert clock.now_ms() == 10.0  # a failed connect is never free

    def test_unavailable_adaptor_charges_connect_timeout(self):
        from repro.sources.adaptor import Adaptor

        clock = VirtualClock()
        adaptor = Adaptor("ws", clock)
        adaptor.available = False
        adaptor.connect_timeout_ms = 15.0
        with pytest.raises(SourceError, match="unavailable"):
            adaptor.invoke([])
        assert clock.now_ms() == 15.0
        assert adaptor.invocations == 0


class TestRetryPolicy:
    def test_backoff_schedule_is_charged_to_the_clock(self):
        clock = VirtualClock()
        db = make_db(clock)
        FaultInjector().fail_first(2).attach(db)
        manager = ResilienceManager(clock)
        manager.register_stats("src", db.stats)
        manager.set_policy("src", SourcePolicy(
            retry=RetryPolicy(max_attempts=3, backoff_ms=10.0, multiplier=2.0)
        ))
        result = manager.call("src", lambda: db.check_call() or "ok")
        assert result == "ok"
        # Two failed attempts cost nothing here (check_call with the source
        # up charges nothing; the injected failures carry no latency), so
        # the clock shows exactly the backoff schedule: 10 then 20.
        assert clock.now_ms() == 30.0
        assert db.stats.attempts == 3
        assert db.stats.retries == 2
        assert db.stats.failures == 2

    def test_exhausted_retries_annotate_and_raise(self):
        clock = VirtualClock()
        manager = ResilienceManager(clock)
        manager.set_policy("src", SourcePolicy(retry=RetryPolicy(max_attempts=2)))

        def always_fails():
            raise SourceError("down")

        with pytest.raises(SourceError) as info:
            manager.call("src", always_fails)
        assert info.value.resilience_attempts == 2
        assert info.value.resilience_elapsed_ms == clock.now_ms() == 10.0

    def test_only_source_errors_are_retried(self):
        manager = ResilienceManager(VirtualClock())
        manager.set_policy("src", SourcePolicy(retry=RetryPolicy(max_attempts=3)))
        attempts = []

        def programming_error():
            attempts.append(1)
            raise DynamicError("a bug, not an outage")

        with pytest.raises(DynamicError):
            manager.call("src", programming_error)
        assert len(attempts) == 1

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(backoff_ms=100.0, multiplier=1.0, jitter=0.5, seed=42)
        import random

        delays_a = [policy.delay_ms(1, random.Random(42)) for _ in range(1)]
        delays_b = [policy.delay_ms(1, random.Random(42)) for _ in range(1)]
        assert delays_a == delays_b
        assert 100.0 <= delays_a[0] <= 150.0


class TestCircuitBreaker:
    def test_lifecycle_closed_open_halfopen_closed(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(CircuitBreakerConfig(failure_threshold=2,
                                                      cooldown_ms=100.0), clock)
        breaker.before_call("src")
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.before_call("src")
        clock.charge_ms(100.0)
        breaker.before_call("src")  # cooled down: one probe admitted
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert [(frm, to) for _t, frm, to in breaker.transitions] == [
            ("closed", "open"), ("open", "half-open"), ("half-open", "closed"),
        ]

    def test_failed_probe_reopens(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(CircuitBreakerConfig(failure_threshold=1,
                                                      cooldown_ms=50.0), clock)
        breaker.record_failure()
        clock.charge_ms(50.0)
        breaker.before_call("src")
        breaker.record_failure()
        assert breaker.state == "open"

    def test_open_circuit_sheds_without_retry_or_cost(self):
        clock = VirtualClock()
        manager = ResilienceManager(clock)
        manager.set_policy("src", SourcePolicy(
            retry=RetryPolicy(max_attempts=3, backoff_ms=10.0),
            breaker=CircuitBreakerConfig(failure_threshold=1, cooldown_ms=1e6),
        ))

        def always_fails():
            raise SourceError("down")

        with pytest.raises(SourceError):
            manager.call("src", always_fails)
        tripped_at = clock.now_ms()
        calls = []
        with pytest.raises(CircuitOpenError):
            manager.call("src", lambda: calls.append(1))
        # Shed without invoking the source, retrying, or charging the clock.
        assert calls == []
        assert clock.now_ms() == tripped_at
        assert manager.breaker_state("src") == "open"

    def test_breaker_trips_counted_once_per_open(self):
        clock = VirtualClock()
        db = make_db(clock)
        manager = ResilienceManager(clock)
        manager.register_stats("src", db.stats)
        manager.set_policy("src", SourcePolicy(
            breaker=CircuitBreakerConfig(failure_threshold=2, cooldown_ms=1e6)
        ))

        def always_fails():
            raise SourceError("down")

        for _ in range(2):
            with pytest.raises(SourceError):
                manager.call("src", always_fails)
        assert db.stats.breaker_trips == 1


class TestPerAttemptTimeout:
    def test_slow_attempt_charges_exactly_the_budget(self):
        clock = VirtualClock()
        manager = ResilienceManager(clock)
        manager.set_policy("src", SourcePolicy(timeout_ms=40.0))

        from repro.errors import SourceTimeoutError

        with pytest.raises(SourceTimeoutError, match="40ms budget"):
            manager.call("src", lambda: clock.charge_ms(90.0))
        assert clock.now_ms() == 40.0  # abandoned at the budget, not at 90

    def test_timeout_is_retryable(self):
        clock = VirtualClock()
        manager = ResilienceManager(clock)
        manager.set_policy("src", SourcePolicy(
            retry=RetryPolicy(max_attempts=2, backoff_ms=5.0),
            timeout_ms=40.0,
        ))
        durations = iter([90.0, 10.0])

        def attempt():
            clock.charge_ms(next(durations))
            return "ok"

        assert manager.call("src", attempt) == "ok"
        assert clock.now_ms() == 40.0 + 5.0 + 10.0


class TestPartialResults:
    def test_federated_query_survives_a_dead_source(self):
        platform = build_platform()
        platform.set_partial_results(True)
        platform.set_source_policy("ccdb", retry=2)
        platform.ctx.databases["ccdb"].available = False
        profiles = platform.call("getProfile")
        assert len(profiles) == 2  # every customer still answered
        for profile in profiles:
            cards = [el for el in profile.child_elements()
                     if el.name.local == "CREDIT_CARDS"]
            assert cards and not cards[0].child_elements()  # degraded: empty
        [record] = platform.last_degradations
        assert record.source == "ccdb"
        assert record.attempts == 2
        assert "unavailable" in record.error
        assert record.elapsed_ms > 0
        health = platform.source_health()
        assert health["ccdb"]["degraded"] == 1
        assert health["ccdb"]["retries"] == 1
        assert health["ccdb"]["available"] is False

    def test_without_partial_mode_the_failure_propagates(self):
        platform = build_platform()
        platform.ctx.databases["ccdb"].available = False
        with pytest.raises(SourceError, match="unavailable"):
            platform.call("getProfile")

    def test_degradation_records_reset_per_query(self):
        platform = build_platform()
        platform.set_partial_results(True)
        platform.ctx.databases["ccdb"].available = False
        platform.call("getProfile")
        assert platform.last_degradations
        platform.ctx.databases["ccdb"].available = True
        platform.call("getProfile")
        assert platform.last_degradations == []

    def test_async_branch_degrades_to_empty(self):
        platform = build_platform(deploy_profile=False)
        platform.set_partial_results(True)
        platform.ctx.databases["ccdb"].available = False
        result = platform.execute(
            "<R>{fn-bea:async(CUSTOMER())}{fn-bea:async(CREDIT_CARD())}</R>"
        )
        [element] = result
        names = [el.name.local for el in element.child_elements()]
        assert "CUSTOMER" in names and "CREDIT_CARD" not in names
        assert any(r.source == "fn-bea:async" or r.source == "ccdb"
                   for r in platform.last_degradations)

    def test_flaky_adaptor_recovers_with_retry(self):
        platform = build_platform(deploy_profile=True)
        adaptor = None
        for definition in platform.registry.functions():
            if definition.adaptor is not None:
                adaptor = definition.adaptor
        assert adaptor is not None and adaptor.name == "RatingService.getRating"
        FaultInjector(seed=1).fail_first(1).attach(adaptor)
        platform.set_source_policy("RatingService.getRating", retry=2)
        profiles = platform.call("getProfile")
        assert len(profiles) == 2
        assert all(any(el.name.local == "RATING" for el in p.child_elements())
                   for p in profiles)
        health = platform.source_health()["RatingService.getRating"]
        assert health["kind"] == "webservice"
        assert health["retries"] == 1 and health["failures"] == 1
        assert platform.last_degradations == []

    def test_fail_over_composes_with_open_breaker(self):
        platform = build_platform(deploy_profile=False)
        platform.set_source_policy("ccdb", breaker=1)
        platform.ctx.databases["ccdb"].available = False
        query = 'fn-bea:fail-over(CREDIT_CARD(), <FALLBACK/>)'
        [first] = platform.execute(query)
        assert first.name.local == "FALLBACK"
        assert platform.ctx.resilience.breaker_state("ccdb") == "open"
        before = platform.clock.now_ms()
        [second] = platform.execute(query)
        assert second.name.local == "FALLBACK"
        # The open breaker shed the call without a connect-timeout charge.
        assert platform.clock.now_ms() == before

    def test_submit_never_degrades_but_retries(self):
        platform = build_platform()
        [obj] = platform.read_for_update("ProfileService", "getProfileByID", "C1")
        obj.set("CREDIT_CARDS/CREDIT_CARD/NUMBER", "9999")
        platform.set_partial_results(True)  # must NOT apply to updates
        platform.set_source_policy("ccdb", retry=2)
        FaultInjector().fail_first(1).attach(platform.ctx.databases["ccdb"])
        result = platform.submit(obj)
        assert result.rows_updated == 1
        assert platform.ctx.databases["ccdb"].stats.retries == 1
        rows = platform.ctx.databases["ccdb"].table("CREDIT_CARD").rows
        assert any(row["NUMBER"] == "9999" for row in rows)

    def test_submit_aborts_atomically_when_retries_exhaust(self):
        from repro.errors import TransactionError

        platform = build_platform()
        [obj] = platform.read_for_update("ProfileService", "getProfileByID", "C1")
        obj.setLAST_NAME("Smith")
        obj.set("CREDIT_CARDS/CREDIT_CARD/NUMBER", "9999")
        platform.set_partial_results(True)
        platform.set_source_policy("ccdb", retry=2)
        platform.ctx.databases["ccdb"].available = False
        with pytest.raises(TransactionError):
            platform.submit(obj)
        # Nothing committed anywhere, and nothing was absorbed.
        assert platform.ctx.databases["custdb"].table("CUSTOMER") \
            .lookup_pk(("C1",))["LAST_NAME"] == "Jones"
        assert platform.last_degradations == []


class TestAsyncContract:
    def test_wall_clock_branches_all_complete_before_raise(self):
        clock = WallClock()
        executor = AsyncExecutor(clock)
        log = []

        def fail_fast():
            raise SourceError("first")

        def slow_ok():
            clock.charge_ms(30)
            log.append("ran")

        def fail_late():
            clock.charge_ms(50)
            raise DynamicError("second")

        try:
            with pytest.raises(SourceError, match="first"):
                executor.run_parallel([fail_fast, slow_ok, fail_late])
            # Later branches ran to completion; the FIRST (branch-order)
            # exception propagated even though another also failed.
            assert log == ["ran"]
        finally:
            executor.shutdown()


class TestTimeoutCrossMode:
    """fn-bea:timeout must cost ≈ the limit in BOTH clock modes when the
    primary overruns (the wall-clock path used to wait the primary out and
    then sleep the limit again on top)."""

    LIMIT = 60.0
    SLOW = 200.0
    QUERY = f"fn-bea:timeout(slow(), {LIMIT:g}, 7)"

    def _platform(self, clock):
        platform = Platform(clock=clock)
        platform.register_java_function(
            "slow", lambda: 1, [], "xs:integer", latency_ms=self.SLOW)
        return platform

    def test_virtual_mode_charges_exactly_the_limit(self):
        platform = self._platform(VirtualClock())
        result = platform.execute(self.QUERY)
        assert [item.value for item in result] == [7]
        assert platform.clock.now_ms() == self.LIMIT

    def test_wall_mode_fails_over_at_the_limit_without_double_charge(self):
        platform = self._platform(WallClock())
        start = platform.clock.now_ms()
        result = platform.execute(self.QUERY)
        elapsed = platform.clock.now_ms() - start
        platform.close()
        assert [item.value for item in result] == [7]
        # Failed over around the limit: well before the 200ms primary
        # would have finished, and nowhere near limit+limit.
        assert self.LIMIT <= elapsed < self.SLOW * 0.9


@pytest.mark.chaos
class TestChaosDeterminism:
    """Same seed + virtual clock ⇒ bit-for-bit identical runs."""

    def _run(self, seed):
        platform = build_platform(customers=2)
        platform.set_partial_results(True)
        platform.set_source_policy("*", retry=RetryPolicy(
            max_attempts=3, backoff_ms=5.0, jitter=0.3, seed=seed,
        ), breaker=CircuitBreakerConfig(failure_threshold=3, cooldown_ms=200.0))
        FaultInjector(seed=seed).fail_with_probability(0.4, latency_ms=2.0) \
            .latency_spike(10.0, every=3) \
            .attach(platform.ctx.databases["ccdb"])
        results = [serialize(item) for item in platform.call("getProfile")]
        ccdb = platform.ctx.databases["ccdb"]
        return {
            "results": results,
            "elapsed": platform.clock.now_ms(),
            "stats": ccdb.stats.resilience_snapshot(),
            "faults": ccdb.faults.snapshot(),
            "transitions": platform.ctx.resilience.breaker_transitions("ccdb"),
            "degradations": [r.to_dict() for r in platform.last_degradations],
        }

    def test_two_runs_identical_with_same_seed(self):
        assert self._run(11) == self._run(11)

    def test_different_seed_changes_the_fault_sequence(self):
        runs = {seed: self._run(seed)["faults"]["failures"] for seed in range(6)}
        assert len(set(runs.values())) > 1


class TestObservability:
    def test_source_health_lists_every_source(self):
        platform = build_platform()
        health = platform.source_health()
        assert set(health) == {"custdb", "ccdb", "RatingService.getRating"}
        assert health["custdb"]["kind"] == "database"
        assert health["custdb"]["policy"] is None

    def test_policy_shows_in_health_and_clears(self):
        platform = build_platform()
        platform.set_source_policy("ccdb", retry=4, breaker=2, timeout_ms=80.0)
        policy = platform.source_health()["ccdb"]["policy"]
        assert policy["retry"]["max_attempts"] == 4
        assert policy["breaker"]["failure_threshold"] == 2
        assert policy["timeout_ms"] == 80.0
        platform.set_source_policy("ccdb")  # all None: remove
        assert platform.source_health()["ccdb"]["policy"] is None

    def test_reset_stats_clears_resilience_counters(self):
        platform = build_platform()
        platform.set_partial_results(True)
        platform.ctx.databases["ccdb"].available = False
        platform.call("getProfile")
        assert platform.source_health()["ccdb"]["attempts"] > 0
        platform.reset_stats()
        health = platform.source_health()["ccdb"]
        assert health["attempts"] == health["failures"] == health["degraded"] == 0
        assert platform.last_degradations == []

    def test_no_policy_is_a_pure_pass_through(self):
        # With no policies and partial mode off, two identical federations
        # behave identically whether or not the resilience layer is asked
        # for anything — the guard path is never entered.
        baseline = build_platform()
        wired = build_platform()
        a = [serialize(i) for i in baseline.call("getProfile")]
        b = [serialize(i) for i in wired.call("getProfile")]
        assert a == b
        assert baseline.clock.now_ms() == wired.clock.now_ms()
        assert wired.ctx.resilience._guards == {}


def test_circuit_open_error_is_a_source_error():
    assert issubclass(CircuitOpenError, SourceError)


def test_build_ccdb_helper_importable():
    # build_ccdb is part of the shared fixture surface the chaos suite uses.
    db = build_ccdb(VirtualClock())
    assert "CREDIT_CARD" in db.tables
