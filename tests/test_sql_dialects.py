"""Vendor dialect rendering tests (section 4.4)."""

import pytest

from repro.errors import SQLError
from repro.sql import (
    BinOp,
    CaseExpr,
    ColumnRef,
    Delete,
    ExistsExpr,
    FuncCall,
    Insert,
    Join,
    OrderItem,
    Param,
    Select,
    SelectItem,
    SqlLiteral,
    SqlRenderer,
    SubqueryRef,
    TableRef,
    Update,
    capabilities_for,
    param_order,
    render_sql,
)


def simple_select(**kwargs):
    return Select(
        items=[SelectItem(ColumnRef("t1", "CID"), "c1")],
        from_items=[TableRef("CUSTOMER", "t1")],
        **kwargs,
    )


class TestCapabilities:
    def test_known_vendors(self):
        assert capabilities_for("oracle").pagination == "rownum"
        assert capabilities_for("db2").pagination == "rownumber"
        assert capabilities_for("sqlserver").pagination == "rownumber"
        assert capabilities_for("sybase").pagination is None

    def test_unknown_vendor_gets_sql92(self):
        assert capabilities_for("martian-db").name == "sql92"

    def test_case_insensitive(self):
        assert capabilities_for("Oracle").name == "oracle"


class TestRendering:
    def test_basic_select(self):
        sql = render_sql(simple_select())
        assert sql == 'SELECT t1."CID" AS c1 FROM "CUSTOMER" t1'

    def test_where_and_order(self):
        stmt = simple_select(
            where=BinOp("=", ColumnRef("t1", "CID"), SqlLiteral("C1")),
            order_by=[OrderItem(ColumnRef("t1", "CID"), descending=True)],
        )
        sql = render_sql(stmt)
        assert "WHERE t1.\"CID\" = 'C1'" in sql
        assert sql.endswith('ORDER BY t1."CID" DESC')

    def test_joins(self):
        stmt = Select(
            items=[SelectItem(ColumnRef("t1", "CID"), "c1")],
            from_items=[Join("left", TableRef("CUSTOMER", "t1"), TableRef("ORDER", "t2"),
                             BinOp("=", ColumnRef("t1", "CID"), ColumnRef("t2", "CID")))],
        )
        assert 'LEFT OUTER JOIN "ORDER" t2 ON' in render_sql(stmt)

    def test_case(self):
        expr = CaseExpr([(BinOp("=", ColumnRef("t1", "X"), SqlLiteral(1)), SqlLiteral("a"))],
                        SqlLiteral("b"))
        text = SqlRenderer(capabilities_for("oracle")).expr(expr)
        assert text == "CASE WHEN t1.\"X\" = 1 THEN 'a' ELSE 'b' END"

    def test_exists(self):
        expr = ExistsExpr(simple_select())
        text = SqlRenderer(capabilities_for("oracle")).expr(expr)
        assert text.startswith("EXISTS(SELECT")

    def test_string_escape(self):
        assert SqlRenderer(capabilities_for("oracle")).expr(SqlLiteral("O'Brien")) == "'O''Brien'"

    def test_params_render_as_question_marks(self):
        stmt = simple_select(where=BinOp("=", ColumnRef("t1", "CID"), Param(0)))
        assert render_sql(stmt).count("?") == 1

    def test_insert_update_delete(self):
        assert render_sql(Insert("T", ["A"], [SqlLiteral(1)])) == \
            'INSERT INTO "T" ("A") VALUES (1)'
        assert render_sql(Update("T", [("A", SqlLiteral(2))],
                                 BinOp("=", ColumnRef(None, "ID"), SqlLiteral(1)))) == \
            'UPDATE "T" SET "A" = 2 WHERE "ID" = 1'
        assert render_sql(Delete("T")) == 'DELETE FROM "T"'


class TestVendorDifferences:
    def test_function_name_mapping(self):
        expr = FuncCall("SUBSTR", [ColumnRef("t1", "X"), SqlLiteral(1)])
        assert "SUBSTR(" in SqlRenderer(capabilities_for("oracle")).expr(expr)
        assert "SUBSTRING(" in SqlRenderer(capabilities_for("sqlserver")).expr(expr)

    def test_concat_operator(self):
        expr = BinOp("||", ColumnRef("t1", "A"), ColumnRef("t1", "B"))
        assert "||" in SqlRenderer(capabilities_for("oracle")).expr(expr)
        assert " + " in SqlRenderer(capabilities_for("sybase")).expr(expr)

    def test_sql92_refuses_vendor_functions(self):
        expr = FuncCall("CEIL", [SqlLiteral(1.5)])
        with pytest.raises(SQLError):
            SqlRenderer(capabilities_for("sql92")).expr(expr)

    def test_oracle_pagination_is_double_rownum_wrapper(self):
        stmt = simple_select(order_by=[OrderItem(ColumnRef("t1", "CID"))])
        stmt.fetch = (10, 20)
        sql = render_sql(stmt, "oracle")
        assert sql.count("SELECT") == 3
        assert "ROWNUM AS c2" in sql
        assert "(t4.c2 >= 10 AND t4.c2 < 30)" in sql

    def test_db2_pagination_uses_row_number(self):
        stmt = simple_select(order_by=[OrderItem(ColumnRef("t1", "CID"))])
        stmt.fetch = (1, 5)
        sql = render_sql(stmt, "db2")
        assert "ROW_NUMBER() OVER (ORDER BY" in sql

    def test_sybase_pagination_not_pushable(self):
        stmt = simple_select()
        stmt.fetch = (1, 5)
        with pytest.raises(SQLError):
            render_sql(stmt, "sybase")


class TestParamOrder:
    def test_select_item_params_precede_where_params(self):
        stmt = Select(
            items=[SelectItem(Param(3), "c1")],
            from_items=[TableRef("T", "t1")],
            where=BinOp("=", ColumnRef("t1", "X"), Param(1)),
        )
        assert param_order(stmt) == [3, 1]

    def test_subquery_params_in_from_position(self):
        inner = Select(items=[SelectItem(Param(0), "c1")], from_items=[TableRef("T", "t2")])
        stmt = Select(
            items=[SelectItem(ColumnRef("s", "c1"), "c1")],
            from_items=[SubqueryRef(inner, "s")],
            where=BinOp("=", ColumnRef("s", "c1"), Param(2)),
        )
        assert param_order(stmt) == [0, 2]

    def test_dml_order(self):
        stmt = Update("T", [("A", Param(1))], BinOp("=", ColumnRef(None, "ID"), Param(0)))
        assert param_order(stmt) == [1, 0]
