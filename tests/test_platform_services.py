"""Platform / data-service layer tests: the running example end-to-end
(sections 2, 3.4), introspection, mediator, plan caching."""

import pytest

from repro.errors import StaticError
from repro.schema import leaf, shape
from repro.services import Mediator, RequestConfig
from repro.services.introspect import introspect_database, row_shape
from repro.xml import serialize

from tests.conftest import PROFILE_DS, build_custdb, build_platform


class TestIntrospection:
    def test_one_function_per_table(self, clock):
        definitions, _nav = introspect_database(build_custdb(clock))
        assert {d.name for d in definitions} == {"CUSTOMER", "ORDER"}
        customer = next(d for d in definitions if d.name == "CUSTOMER")
        assert customer.kind == "table"
        assert customer.table_meta.primary_key == ("CID",)
        assert customer.annotations["vendor"] == "oracle"

    def test_row_shape_nullable_columns_optional(self, clock):
        sh = row_shape(build_custdb(clock), "CUSTOMER")
        from repro.schema.builder import find_child_particle

        assert find_child_particle(sh, "CID").occurrence.min_count == 1
        assert find_child_particle(sh, "LAST_NAME").occurrence.min_count == 0

    def test_navigation_functions_generated_from_fks(self, clock):
        _defs, nav = introspect_database(build_custdb(clock))
        assert "declare function getORDER($arg as element(CUSTOMER))" in nav
        assert "declare function getCUSTOMERForORDER" in nav

    def test_navigation_function_usable(self):
        platform = build_platform(deploy_profile=False)
        out = platform.execute('''
            for $c in CUSTOMER() where $c/CID eq "C1"
            return getORDER($c)
        ''')
        assert serialize(out).count("<ORDER>") == 2

    def test_reverse_navigation(self):
        platform = build_platform(deploy_profile=False)
        out = platform.execute('''
            for $o in ORDER() where $o/OID eq "O1"
            return getCUSTOMERForORDER($o)/CID
        ''')
        assert serialize(out) == "<CID>C1</CID>"


class TestRunningExample:
    def test_get_profile_integrates_three_sources(self, platform):
        out = platform.call("getProfile")
        assert len(out) == 2
        text = serialize(out[0])
        assert "<CID>C1</CID>" in text
        assert "<ORDERS><ORDER>" in text
        assert "<CREDIT_CARD>" in text
        assert "<RATING>701</RATING>" in text

    def test_get_profile_by_id_pushes_predicate(self, platform):
        out = platform.call_python("getProfileByID", "C2")
        assert len(out) == 1
        assert "<CID>C2</CID>" in serialize(out[0])
        # only the matching customer was fetched from custdb
        customer_selects = [
            s for s in platform.ctx.databases["custdb"].stats.statements
            if "CUSTOMER" in s and "SELECT" in s
        ]
        assert any("?" in s or "'C2'" in s for s in customer_selects)

    def test_service_metadata(self, platform):
        service = platform.services["ProfileService"]
        assert {m.name for m in service.reads()} == {"getProfile", "getProfileByID"}
        assert service.lineage_provider == "getProfile"

    def test_ad_hoc_query_over_deployed_service(self, platform):
        out = platform.execute('''
            for $p in getProfile()
            where count($p/ORDERS/ORDER) ge 2
            return $p/CID
        ''')
        assert serialize(out) == "<CID>C1</CID><CID>C2</CID>"

    def test_duplicate_deploy_rejected(self, platform):
        with pytest.raises(StaticError):
            platform.deploy(PROFILE_DS, name="Again")

    def test_streaming_api_is_lazy(self, platform):
        stream = platform.stream("for $c in CUSTOMER() return $c/CID")
        first = next(stream)
        assert first.string_value() == "C1"


class TestPlanCache:
    def test_plan_reused_for_repeated_query(self, platform):
        query = "for $c in CUSTOMER() return $c/CID"
        platform.execute(query)
        misses = platform.plan_cache.misses
        platform.execute(query)
        assert platform.plan_cache.hits >= 1
        assert platform.plan_cache.misses == misses

    def test_call_plans_cached(self, platform):
        platform.call("getProfile")
        hits_before = platform.plan_cache.hits
        platform.call("getProfile")
        assert platform.plan_cache.hits > hits_before

    def test_deploy_invalidates_plans(self, platform):
        platform.execute("for $c in CUSTOMER() return $c/CID")
        platform.deploy("declare function extra() { 1 };", name="Extra")
        assert len(platform.plan_cache) == 0


class TestMediator:
    def test_invoke_returns_tracked_sdos(self, platform):
        mediator = Mediator(platform)
        objects = mediator.invoke("ProfileService", "getProfile")
        assert len(objects) == 2
        assert objects[0].get("LAST_NAME") == "Jones"
        assert not objects[0].is_changed()

    def test_filter_criteria(self, platform):
        mediator = Mediator(platform)
        config = RequestConfig().where("LAST_NAME", "eq", "Smith")
        objects = mediator.invoke("ProfileService", "getProfile", config=config)
        assert [o.get("CID") for o in objects] == ["C2"]

    def test_sort_and_limit(self, platform):
        mediator = Mediator(platform)
        config = RequestConfig().sort("RATING", descending=True).take(1)
        objects = mediator.invoke("ProfileService", "getProfile", config=config)
        assert [o.get("CID") for o in objects] == ["C2"]

    def test_numeric_filter(self, platform):
        mediator = Mediator(platform)
        config = RequestConfig().where("RATING", "gt", 701)
        objects = mediator.invoke("ProfileService", "getProfile", config=config)
        assert [o.get("CID") for o in objects] == ["C2"]

    def test_ad_hoc_query(self, platform):
        mediator = Mediator(platform)
        out = mediator.query("1 + 1")
        assert out[0].value == 2

    def test_mediator_submit_roundtrip(self, platform):
        mediator = Mediator(platform)
        [obj] = mediator.invoke(
            "ProfileService", "getProfile",
            config=RequestConfig().where("CID", "eq", "C1"),
        )
        obj.setLAST_NAME("Rebranded")
        result = mediator.submit(obj)
        assert result.rows_updated == 1
        stored = platform.ctx.databases["custdb"].table("CUSTOMER").lookup_pk(("C1",))
        assert stored["LAST_NAME"] == "Rebranded"


class TestFileSourcesOnPlatform:
    def test_registered_csv_queryable(self, tmp_path):
        platform = build_platform(deploy_profile=False)
        path = tmp_path / "regions.csv"
        path.write_text("CID,REGION\nC1,west\nC2,east\n")
        record = shape("REGION_ROW", [leaf("CID", "xs:string"), leaf("REGION", "xs:string")])
        platform.register_csv_file("REGIONS", path, record)
        out = platform.execute('''
            for $c in CUSTOMER(), $r in REGIONS()
            where $r/CID eq $c/CID and $r/REGION eq "west"
            return $c/LAST_NAME
        ''')
        assert serialize(out) == "<LAST_NAME>Jones</LAST_NAME>"


class TestModuleVariables:
    def test_declared_variable_usable_in_queries(self, platform):
        platform.deploy(
            'declare variable $vip as xs:string := "C1";\n'
            "declare function vipProfile() { getProfileByID($vip) };",
            name="Vip",
        )
        out = platform.call("vipProfile")
        assert len(out) == 1
        assert "<CID>C1</CID>" in serialize(out[0])

    def test_external_variable_bound_at_execution(self, platform):
        from repro.xml import AtomicValue

        out = platform.execute(
            "for $c in CUSTOMER() where $c/CID eq $who return $c/LAST_NAME",
            variables={"who": [AtomicValue("C2", "xs:string")]},
        )
        assert serialize(out) == "<LAST_NAME>Smith</LAST_NAME>"

    def test_same_plan_different_bindings(self, platform):
        from repro.xml import AtomicValue

        query = "for $c in CUSTOMER() where $c/CID eq $who return $c/CID"
        first = platform.execute(query, variables={"who": [AtomicValue("C1", "xs:string")]})
        second = platform.execute(query, variables={"who": [AtomicValue("C2", "xs:string")]})
        assert serialize(first) == "<CID>C1</CID>"
        assert serialize(second) == "<CID>C2</CID>"
        assert platform.plan_cache.hits >= 1  # compiled once, executed twice


class TestDataServicePragmas:
    SERVICE = '''
        (::pragma function kind="read" lineage="provider" ::)
        declare function allRows() as element(CUSTOMER)* {
          for $c in CUSTOMER() return $c
        };

        (::pragma function kind="read" cache="true" ::)
        declare function cachedRows() as element(CUSTOMER)* {
          for $c in CUSTOMER() return $c
        };

        (::pragma function kind="navigate" ::)
        declare function hop($c as element(CUSTOMER)) as element(ORDER)* {
          getORDER($c)
        };

        declare function helper() { 1 };
    '''

    def test_method_kinds_from_pragmas(self):
        platform = build_platform(deploy_profile=False)
        service = platform.deploy(self.SERVICE, name="Pragmas")
        kinds = {m.name: m.kind for m in service.methods}
        assert kinds["allRows"] == "read"
        assert kinds["hop"] == "navigate"
        assert kinds["helper"] == "library"

    def test_explicit_lineage_provider_pragma(self):
        platform = build_platform(deploy_profile=False)
        service = platform.deploy(self.SERVICE, name="Pragmas")
        assert service.lineage_provider == "allRows"

    def test_cacheable_functions_recorded(self):
        platform = build_platform(deploy_profile=False)
        service = platform.deploy(self.SERVICE, name="Pragmas")
        assert service.cacheable_functions == {"cachedRows"}

    def test_default_lineage_provider_is_first_read(self):
        platform = build_platform(deploy_profile=False)
        service = platform.deploy(
            '(::pragma function kind="read" ::)\n'
            "declare function readA() { CUSTOMER() };\n"
            '(::pragma function kind="read" ::)\n'
            "declare function readB() { CUSTOMER() };",
            name="TwoReads",
        )
        assert service.lineage_provider == "readA"


class TestNavigationMethods:
    def test_mediator_navigate_customer_to_orders(self, platform):
        mediator = Mediator(platform)
        [customer] = mediator.invoke(
            "custdb", "CUSTOMER",
            config=RequestConfig().where("CID", "eq", "C1"),
        )
        orders = mediator.navigate(customer, "getORDER", target_service="Orders")
        assert [o.get("OID") for o in orders] == ["O1", "O2"]
        assert all(o.service_name == "Orders" for o in orders)

    def test_navigated_object_updatable(self, platform):
        platform.deploy('''
            (::pragma function kind="read" ::)
            declare function orderRows() as element(ORDER)* {
              for $o in ORDER() return $o
            };
        ''', name="Orders")
        mediator = Mediator(platform)
        [customer] = mediator.invoke(
            "custdb", "CUSTOMER", config=RequestConfig().where("CID", "eq", "C1"))
        [first, _second] = mediator.navigate(customer, "getORDER", "Orders")
        first.set("AMOUNT", 77)
        result = mediator.submit(first)
        assert result.rows_updated == 1
        assert platform.ctx.databases["custdb"].table("ORDER") \
            .lookup_pk(("O1",))["AMOUNT"] == 77

    def test_parse_error_reports_position(self):
        from repro.errors import ParseError
        from repro.xquery import parse_expression

        with pytest.raises(ParseError) as err:
            parse_expression("for $x in\n  (1, %%) return $x")
        assert err.value.line == 2
        assert err.value.column is not None
