"""Evaluator tests: expression semantics over the optimized tree."""

import pytest

from repro.compiler import Compiler
from repro.errors import DynamicError, TypeMatchError
from repro.runtime import DynamicContext, Evaluator
from repro.services.metadata import MetadataRegistry
from repro.xml import AtomicValue, serialize
from repro.xquery import parse_expression
from repro.xquery.normalize import normalize


def run(text, env=None, **external):
    """Compile (no sources) and evaluate an expression."""
    compiler = Compiler(registry=MetadataRegistry())
    from repro.schema import ITEM_STAR

    externals = {name: ITEM_STAR for name in external}
    plan = compiler.compile_expression(text, externals=externals or None)
    ctx = DynamicContext(MetadataRegistry())
    ctx.external_variables = {k: v for k, v in external.items()}
    return Evaluator(ctx).eval(plan.expr, env or {})


def values(result):
    return [item.value for item in result]


class TestAtoms:
    def test_arithmetic(self):
        assert values(run("1 + 2 * 3")) == [7]
        assert values(run("7 idiv 2")) == [3]
        assert values(run("7 mod 2")) == [1]
        assert values(run("10 div 4")) == [2.5]

    def test_arithmetic_empty_propagates(self):
        assert run("() + 1") == []

    def test_division_by_zero(self):
        with pytest.raises(DynamicError):
            run("1 div 0")

    def test_unary_minus(self):
        assert values(run("-(3)")) == [-3]

    def test_range(self):
        assert values(run("1 to 4")) == [1, 2, 3, 4]

    def test_comparisons(self):
        assert values(run("1 lt 2")) == [True]
        assert values(run('"a" ne "b"')) == [True]

    def test_general_comparison_existential(self):
        assert values(run("(1, 2, 3) = 2")) == [True]
        assert values(run("(1, 2, 3) = 9")) == [False]

    def test_value_comparison_empty_is_empty(self):
        assert run("() eq 1") == []

    def test_logic_short_forms(self):
        assert values(run("1 eq 1 and 2 eq 2")) == [True]
        assert values(run("1 eq 2 or 2 eq 2")) == [True]

    def test_if(self):
        assert values(run('if (1 eq 1) then "y" else "n"')) == ["y"]

    def test_cast(self):
        assert values(run('"41" cast as xs:integer')) == [41]
        assert values(run('5 instance of xs:integer')) == [True]
        assert values(run('"x" castable as xs:integer')) == [False]
        with pytest.raises(DynamicError):
            run('"x" cast as xs:integer')

    def test_treat_failure(self):
        # disjoint treat is rejected statically; an intersecting one fails
        # at runtime when the value does not match
        from repro.errors import TypeError_

        with pytest.raises((DynamicError, TypeError_)):
            run('"x" treat as xs:integer')


class TestSequencesAndFLWOR:
    def test_flwor_over_range(self):
        assert values(run("for $i in 1 to 3 return $i * 10")) == [10, 20, 30]

    def test_where_filters(self):
        assert values(run("for $i in 1 to 10 where $i mod 2 eq 0 return $i")) == [2, 4, 6, 8, 10]

    def test_let_binding(self):
        assert values(run("for $i in 1 to 3 let $d := $i * $i return $d")) == [1, 4, 9]

    def test_positional_variable(self):
        out = values(run('for $x at $p in ("a","b","c") return $p'))
        assert out == [1, 2, 3]

    def test_order_by(self):
        assert values(run("for $i in (3,1,2) order by $i descending return $i")) == [3, 2, 1]

    def test_order_by_empty_least(self):
        out = values(run(
            "for $p in (1, 2, 3) let $k := if ($p eq 2) then () else $p "
            "order by $k return $p"
        ))
        assert out == [2, 1, 3]  # the empty key sorts least by default

    def test_group_by(self):
        out = run('''
            for $x in (1, 2, 3, 4, 5)
            group $x as $g by $x mod 2 as $k
            order by $k
            return <G k="{$k}">{ count($g) }</G>
        ''')
        assert serialize(out) == '<G k="0">2</G><G k="1">3</G>'

    def test_quantified(self):
        assert values(run("some $x in (1,2,3) satisfies $x gt 2")) == [True]
        assert values(run("every $x in (1,2,3) satisfies $x gt 0")) == [True]
        assert values(run("every $x in (1,2,3) satisfies $x gt 1")) == [False]

    def test_nested_flwor(self):
        out = values(run(
            "for $i in 1 to 2 return (for $j in 1 to 2 return $i * 10 + $j)"
        ))
        assert out == [11, 12, 21, 22]


class TestConstruction:
    def test_element_with_attributes(self):
        out = run('<P id="{1+1}"><X>{"a"}</X></P>')
        assert serialize(out) == '<P id="2"><X>a</X></P>'

    def test_adjacent_atomics_space_separated(self):
        out = run("<P>{1, 2}</P>")
        assert serialize(out) == "<P>1 2</P>"

    def test_optional_attribute_dropped_when_empty(self):
        out = run('<P rating?="{()}"/>')
        assert serialize(out) == "<P/>"

    def test_optional_element_dropped_when_empty(self):
        assert run("<F?>{()}</F>") == []
        assert serialize(run('<F?>{"x"}</F>')) == "<F>x</F>"

    def test_constructed_type_annotation_survives(self):
        # Section 3.1: typed content survives construction.
        [elem] = run("<CID>{5}</CID>")
        assert elem.typed_value()[0].type_name == "xs:integer"

    def test_content_nodes_deep_copied(self):
        out = run("for $i in 1 to 2 return <W>{<I>{$i}</I>}</W>")
        assert serialize(out) == "<W><I>1</I></W><W><I>2</I></W>"


class TestPathsAndFilters:
    def test_child_navigation(self):
        out = run("(<A><B>1</B><B>2</B><C>3</C></A>)/B")
        assert serialize(out) == "<B>1</B><B>2</B>"

    def test_positional_predicate(self):
        out = run("(<A><B>1</B><B>2</B></A>)/B[2]")
        assert serialize(out) == "<B>2</B>"

    def test_boolean_predicate_with_context(self):
        out = run('(<A><B><X>1</X></B><B><X>5</X></B></A>)/B[X gt 3]')
        assert serialize(out) == "<B><X>5</X></B>"

    def test_descendant_axis(self):
        out = run("(<A><B><C>1</C></B></A>)//C")
        assert serialize(out) == "<C>1</C>"

    def test_attribute_axis(self):
        out = run('(<A x="7"/>)/@x')
        assert out[0].string_value() == "7"

    def test_path_on_atomic_errors(self):
        with pytest.raises(DynamicError):
            run("(1)/B")


class TestExternalsAndErrors:
    def test_external_variables(self):
        out = run("$x + 1", x=[AtomicValue(4, "xs:integer")])
        assert values(out) == [5]

    def test_unbound_variable_raises(self):
        compiler = Compiler(registry=MetadataRegistry())
        from repro.schema import ITEM_STAR

        plan = compiler.compile_expression("$nope", externals={"nope": ITEM_STAR})
        ctx = DynamicContext(MetadataRegistry())
        with pytest.raises(DynamicError):
            Evaluator(ctx).eval(plan.expr, {})

    def test_typematch_enforced_at_runtime(self):
        from repro.schema import atomic
        from repro.xquery.ast_nodes import TypeMatch

        expr = TypeMatch(normalize(parse_expression('"text"')), atomic("xs:integer"))
        ctx = DynamicContext(MetadataRegistry())
        with pytest.raises(TypeMatchError):
            Evaluator(ctx).eval(expr, {})


class TestUserFunctions:
    def test_non_inlined_function_called_at_runtime(self):
        from repro.compiler import CompilerOptions
        from repro.xquery.parser import parse_module
        from repro.xquery.normalize import normalize_module

        module = parse_module("declare function double($x) { $x * 2 };")
        normalize_module(module)
        options = CompilerOptions(no_inline={("double", 1)})
        compiler = Compiler(registry=MetadataRegistry(), module=module, options=options)
        plan = compiler.compile_expression("double(21)")
        ctx = DynamicContext(MetadataRegistry(), module=module)
        assert values(Evaluator(ctx).eval(plan.expr, {})) == [42]

    def test_recursion_limit(self):
        from repro.compiler import CompilerOptions
        from repro.xquery.parser import parse_module
        from repro.xquery.normalize import normalize_module

        module = parse_module("declare function loop($x) { loop($x) };")
        normalize_module(module)
        options = CompilerOptions(no_inline={("loop", 1)})
        compiler = Compiler(registry=MetadataRegistry(), module=module, options=options)
        plan = compiler.compile_expression("loop(1)")
        ctx = DynamicContext(MetadataRegistry(), module=module)
        with pytest.raises(DynamicError):
            Evaluator(ctx).eval(plan.expr, {})
