"""Multi-threaded stress harness (A-CONC): one Platform, N request
threads, lockset race detector on — zero races and consistent counters.

Runs under the wall clock with all simulated latencies zeroed, so threads
physically overlap inside the engine instead of sleeping.  One pass per
test by default; ``STRESS_RUNS=20`` soaks for the acceptance gate:

    STRESS_RUNS=20 make test-threaded
"""

from __future__ import annotations

import os
import sys
import threading

import pytest

from repro.analysis import LocksetDetector
from repro.clock import WallClock
from repro.concurrency import set_race_detector
from repro.demo import build_demo_platform
from repro.relational.database import LatencyModel

pytestmark = pytest.mark.threaded

STRESS_RUNS = int(os.environ.get("STRESS_RUNS", "1"))
THREADS = 6
OPS_PER_THREAD = 12

ZERO_LATENCY = LatencyModel(roundtrip_ms=0.0, per_row_ms=0.0, parse_ms=0.0,
                            connect_timeout_ms=0.0)


def build_stress_platform():
    """The demo federation on a wall clock with free sources: contention
    is real (threads overlap in the engine) but nothing sleeps."""
    return build_demo_platform(
        customers=4, orders_per_customer=2, ws_latency_ms=0.0,
        clock=WallClock(), db_latency=ZERO_LATENCY,
    )


def hammer(platform, worker, threads: int = THREADS):
    """Run ``worker(index)`` on N threads against one platform; the GIL
    switch interval is tightened so interleavings are aggressive."""
    errors = []
    barrier = threading.Barrier(threads)

    def wrapped(index):
        try:
            barrier.wait()
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - reported to the test
            errors.append(exc)

    interval = sys.getswitchinterval()
    sys.setswitchinterval(5e-6)
    try:
        pool = [threading.Thread(target=wrapped, args=(i,), name=f"stress-{i}")
                for i in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
    finally:
        sys.setswitchinterval(interval)
    if errors:
        raise errors[0]


@pytest.fixture
def stressed():
    """(platform, detector) with the lockset detector installed; both the
    detector slot and the platform's worker pool are torn down after."""
    platform = build_stress_platform()
    detector = LocksetDetector(capture_stacks=False)
    previous = set_race_detector(detector)
    try:
        yield platform, detector
    finally:
        set_race_detector(previous)
        platform.close()


def assert_race_free(detector):
    assert detector.races == [], detector.report_text()


@pytest.mark.parametrize("round", range(STRESS_RUNS))
class TestStress:
    def test_mixed_query_workload(self, stressed, round):
        platform, detector = stressed
        platform.enable_function_cache("getRating", ttl_ms=60_000.0)
        counts = []

        def worker(index):
            for i in range(OPS_PER_THREAD):
                op = (index + i) % 4
                if op == 0:
                    counts.append(len(platform.call("getProfile")))
                elif op == 1:
                    out = platform.execute(
                        "for $c in CUSTOMER() where $c/CID eq 'C1' "
                        "return $c/LAST_NAME")
                    assert len(out) == 1
                elif op == 2:
                    platform.execute("for $o in ORDER() return $o/AMOUNT")
                else:
                    platform.call("getProfileByID",
                                  [_string(f"C{1 + (index + i) % 4}")])

        hammer(platform, worker)
        assert_race_free(detector)
        assert counts and all(count == 4 for count in counts)

    def test_queries_race_admin_and_introspection(self, stressed, round):
        """Request threads run queries while others flip admin toggles and
        read every stats surface — the serving-layer shape."""
        platform, detector = stressed

        def worker(index):
            for i in range(OPS_PER_THREAD):
                if index == 0:
                    platform.enable_function_cache("getRating",
                                                   ttl_ms=10_000.0)
                    platform.set_function_cache_capacity(8 + i)
                elif index == 1:
                    platform.metrics_snapshot()
                    platform.function_cache_stats()
                    platform.statement_cache_stats()
                    platform.source_health()
                else:
                    platform.call("getProfile")

        hammer(platform, worker)
        assert_race_free(detector)

    def test_batched_operators_under_contention(self, stressed, round):
        """The batch engine's shared surfaces under fire: one thread flips
        the engine between tuple (n=1) and batch (n=256) mid-workload,
        another profiles (per-thread ``BatchProbe`` via the context var),
        the rest hammer the batch group/order/where operators and the
        row-compiler's per-node closure cache — results must stay
        byte-identical to the single-threaded answer throughout."""
        from repro import serialize

        platform, detector = stressed
        query = ("for $i in (1 to 400) let $k := $i mod 5 "
                 "group $i as $is by $k as $g order by $g descending "
                 "return <G>{$g}{fn:count($is)}{fn:sum($is)}</G>")
        expected = serialize(platform.execute(query))

        def worker(index):
            for i in range(OPS_PER_THREAD):
                if index == 0:
                    platform.set_batch_size(1 if i % 2 else 256)
                elif index == 1 and i % 4 == 0:
                    profile = platform.profile(query)
                    assert profile.items == 5
                assert serialize(platform.execute(query)) == expected

        try:
            hammer(platform, worker)
        finally:
            platform.set_batch_size(256)
        assert_race_free(detector)

    def test_cost_based_toggle_under_contention(self, stressed, round):
        """P-COST's knobs under fire: one thread flips cost-based planning
        on and off mid-workload (each flip invalidates the plan cache and
        recompiles with or without the costing pass), another toggles the
        re-plan threshold, the rest hammer the cross-database join the
        pass rewrites — results must stay byte-identical throughout."""
        from repro import serialize

        platform, detector = stressed
        query = ("for $c in CUSTOMER() "
                 "for $cc in CREDIT_CARD() where $cc/CID eq $c/CID "
                 "return $cc/NUMBER")
        expected = serialize(platform.execute(query))

        def worker(index):
            for i in range(OPS_PER_THREAD):
                if index == 0:
                    platform.set_cost_based(i % 2 == 0)
                elif index == 1:
                    platform.set_replan_threshold(None if i % 2 else 4.0)
                assert serialize(platform.execute(query)) == expected

        try:
            hammer(platform, worker)
        finally:
            platform.set_cost_based(False)
            platform.set_replan_threshold(None)
        assert_race_free(detector)

    def test_counters_are_exact_under_contention(self, stressed, round):
        platform, detector = stressed
        runs_per_thread = 8

        def worker(index):
            for _ in range(runs_per_thread):
                platform.execute(
                    "for $c in CUSTOMER() where $c/CID eq 'C2' "
                    "return $c/LAST_NAME")

        before = platform.ctx.stats.pushed_queries
        hammer(platform, worker)
        assert_race_free(detector)
        pushed = platform.ctx.stats.pushed_queries - before
        # one pushed statement per execution: lost updates would show here
        assert pushed == THREADS * runs_per_thread
        snapshot = platform.metrics_snapshot()
        assert snapshot["concurrency.races"] == 0
        assert snapshot["concurrency.guarded_accesses"] > 0


def _string(value: str):
    from repro.xml.items import AtomicValue

    return AtomicValue(value, "xs:string")
