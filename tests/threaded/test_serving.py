"""Serving-layer concurrency tests (R-SERVE × A-CONC): per-request
isolation of degradation records, close() under racing queries, and a
full serving soak — sessions, admission, sheds and deadlines from many
client threads with the lockset race detector on.

One pass per test by default; ``STRESS_RUNS=20 make serve-soak`` soaks
for the acceptance gate.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import AdmissionError, PlatformClosedError
from repro.server import AdmissionController, DataServer, WorkloadDriver
from repro.xml.items import AtomicValue

from .test_stress_platform import (
    STRESS_RUNS,
    assert_race_free,
    build_stress_platform,
    hammer,
    stressed,  # noqa: F401 - fixture re-export
)

pytestmark = pytest.mark.threaded

LOOKUP = "for $c in CUSTOMER() where $c/CID eq $id return $c/LAST_NAME"


def _string(value: str) -> AtomicValue:
    return AtomicValue(value, "xs:string")


@pytest.mark.parametrize("round", range(STRESS_RUNS))
class TestServingConcurrency:
    def test_degradations_are_per_request(self, stressed, round):  # noqa: F811
        """Half the threads run a query that degrades (ccdb killed,
        partial results on); the other half run a clean lookup.  Each
        thread must see exactly its own degradation records — a shared
        list would leak ccdb records into the clean threads."""
        platform, detector = stressed
        platform.set_partial_results(True)
        platform.ctx.databases["ccdb"].available = False
        threads = 6
        barrier = threading.Barrier(threads)

        def worker(index):
            barrier.wait()
            for i in range(8):
                if index % 2 == 0:
                    # touches ccdb -> degrades to an empty CREDIT_CARDS
                    platform.execute(
                        "for $cc in CREDIT_CARD() return $cc/ACCOUNT")
                    records = platform.last_degradations
                    assert records, "degraded thread saw no records"
                    assert {r.source for r in records} == {"ccdb"}
                else:
                    out = platform.execute(
                        LOOKUP, {"id": [_string(f"C{1 + (index + i) % 4}")]})
                    assert len(out) == 1
                    assert platform.last_degradations == [], \
                        "clean thread saw another request's degradations"

        hammer(platform, worker, threads=threads)
        assert_race_free(detector)

    def test_close_races_with_queries(self, round):
        """One thread closes mid-workload: every request either completes
        normally or fails with the clean PlatformClosedError — never an
        executor error — and close() stays idempotent."""
        platform = build_stress_platform()
        outcomes: list[str] = []
        lock = threading.Lock()

        def worker(index):
            if index == 0:
                platform.close()
                platform.close()  # idempotent under the race
                return
            for i in range(10):
                try:
                    platform.execute(
                        LOOKUP, {"id": [_string(f"C{1 + i % 4}")]})
                    outcome = "ok"
                except PlatformClosedError:
                    outcome = "closed"
                with lock:
                    outcomes.append(outcome)

        hammer(platform, worker)
        assert platform.closed
        assert outcomes and set(outcomes) <= {"ok", "closed"}
        with pytest.raises(PlatformClosedError):
            platform.execute("1 + 1")

    def test_serving_soak(self, stressed, round):  # noqa: F811
        """The whole serving stack under fire: closed-loop clients over
        sessions + admission with a tight worker bound, cheap lookups and
        expensive scans mixed, deadlines armed.  Sheds are the only
        acceptable rejection, the admission ledger must balance, and the
        lockset detector must stay silent."""
        platform, detector = stressed
        admission = AdmissionController(
            platform.clock, max_concurrent=2, queue_soft=3, queue_hard=5)
        server = DataServer(platform, admission=admission,
                            default_budget_ms=30_000.0)
        server.register_tenant("acme", "pw", roles=("analyst",))
        server.register_tenant("globex", "pw", roles=("analyst",))
        shapes = [
            (LOOKUP, {"id": [_string(f"C{1 + i}")]}) for i in range(4)
        ] + [("getProfile()", None)]
        driver = WorkloadDriver(
            server, [("acme", "pw"), ("globex", "pw")], shapes)
        result = driver.run_stage(clients=8, duration_s=0.4)

        assert_race_free(detector)
        assert result.errors == 0, "non-shed errors under load"
        assert result.deadline_exceeded == 0
        assert result.completed > 0
        snapshot = server.snapshot()
        assert snapshot["admission"]["depth"] == 0, "leaked tickets"
        assert snapshot["admission"]["admitted"] == result.completed
        assert snapshot["sessions"]["sessions"] == 0, "sessions not closed"
        shed_total = (snapshot["admission"]["shed_cost"]
                      + snapshot["admission"]["shed_overload"]
                      + snapshot["admission"]["shed_quota"])
        assert shed_total == result.shed

    def test_admission_depth_exact_under_contention(self, stressed, round):  # noqa: F811
        """Lost updates on the depth counter would strand the controller
        in shed-expensive/overload forever; hammer admit/release and
        check the ledger."""
        platform, detector = stressed
        controller = AdmissionController(
            platform.clock, max_concurrent=4, queue_soft=64, queue_hard=128)
        per_thread = 50

        def worker(index):
            for _ in range(per_thread):
                try:
                    ticket = controller.admit("t", cost=1.0)
                except AdmissionError:
                    continue
                with ticket:
                    pass

        hammer(platform, worker)
        assert_race_free(detector)
        assert controller.depth == 0
        assert controller.state == "open"
        assert controller.admitted + controller.shed_overload == \
            6 * per_thread
