"""Lockset race detector (A-CONC): eraser-style detection, deterministic
reports under seeded interleaving, and the zero-overhead Noop contract."""

from __future__ import annotations

import pytest

from repro.analysis import VTID_BASE, LocksetDetector, SeededInterleaver
from repro.concurrency import (
    NOOP_DETECTOR,
    RACE,
    NoopRaceDetector,
    TrackedRLock,
    race_detector,
    set_race_detector,
)


@pytest.fixture
def detector():
    """A LocksetDetector installed process-wide, restored afterwards."""
    installed = LocksetDetector()
    previous = set_race_detector(installed)
    try:
        yield installed
    finally:
        set_race_detector(previous)


class RacyBox:
    """Toy shared object: ``unguarded`` has no lock, ``guarded`` does."""

    def __init__(self):
        self._lock = TrackedRLock("RacyBox")
        self.unguarded = 0
        self.guarded = 0

    def bump_unguarded(self):
        self.unguarded += 1
        RACE.detector.on_access(self, "unguarded", True)

    def bump_guarded(self):
        with self._lock:
            self.guarded += 1
            RACE.detector.on_access(self, "guarded", True)

    def read_unguarded(self):
        RACE.detector.on_access(self, "unguarded", False)
        return self.unguarded


def _hammer(box: RacyBox, method: str, steps: int = 4, threads: int = 2,
            seed: int = 7) -> list[int]:
    programs = [[getattr(box, method)] * steps for _ in range(threads)]
    return SeededInterleaver(seed).run(programs)


class TestRaceDetection:
    def test_unguarded_write_reported(self, detector):
        box = RacyBox()
        _hammer(box, "bump_unguarded")
        assert len(detector.races) == 1
        race = detector.races[0]
        assert race.owner == "RacyBox"
        assert race.fieldname == "unguarded"
        assert {race.first.tid, race.second.tid} == {VTID_BASE, VTID_BASE + 1}

    def test_report_carries_both_stacks(self, detector):
        box = RacyBox()
        _hammer(box, "bump_unguarded")
        report = detector.report_text()
        assert "RACE on RacyBox.unguarded" in report
        assert report.count("bump_unguarded") >= 2  # one stack per side
        assert f"thread {VTID_BASE}" in report
        assert f"thread {VTID_BASE + 1}" in report

    def test_report_is_deterministic_for_a_seed(self):
        texts = []
        for _ in range(2):
            installed = LocksetDetector()
            previous = set_race_detector(installed)
            try:
                _hammer(RacyBox(), "bump_unguarded", seed=42)
            finally:
                set_race_detector(previous)
            texts.append(installed.report_text())
        assert texts[0] == texts[1]
        assert "RACE on" in texts[0]

    def test_schedule_is_a_function_of_the_seed(self, detector):
        box = RacyBox()
        first = _hammer(box, "bump_guarded", seed=3)
        second = _hammer(box, "bump_guarded", seed=3)
        third = _hammer(box, "bump_guarded", seed=4)
        assert first == second
        assert first != third

    def test_locked_class_not_reported(self, detector):
        box = RacyBox()
        _hammer(box, "bump_guarded", steps=8, threads=3)
        assert detector.races == []
        assert box.guarded == 24

    def test_read_only_sharing_not_reported(self, detector):
        box = RacyBox()
        _hammer(box, "read_unguarded", steps=4, threads=3)
        assert detector.races == []

    def test_each_racy_field_reported_once(self, detector):
        box = RacyBox()
        _hammer(box, "bump_unguarded", steps=16, threads=4)
        assert len(detector.races) == 1

    def test_single_thread_never_races(self, detector):
        box = RacyBox()
        for _ in range(10):
            box.bump_unguarded()
        assert detector.races == []

    def test_reset_clears_reports_but_not_held_locks(self, detector):
        box = RacyBox()
        _hammer(box, "bump_unguarded")
        assert detector.races
        lock = TrackedRLock("held-across-reset")
        with lock:
            detector.reset()
            assert detector.races == []
            assert detector.guarded_accesses == 0
            box2 = RacyBox()
            box2.bump_guarded()
        # the post-reset access saw the still-held lock: no KeyError, no race
        assert detector.races == []


class TestMutationIsCaught:
    def test_removing_the_lock_from_function_cache_is_detected(self, detector):
        """Seeded runtime mutation: neutralize FunctionCache._lock and the
        detector must flag the now-unguarded entry map."""
        from repro.runtime.cache import FunctionCache

        class _NoLock:
            name = "disabled"

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return None

        cache = FunctionCache()
        cache.enable("f", ttl_ms=10_000.0)
        cache._lock = _NoLock()  # the "mutation": put/get no longer lock
        programs = [
            [lambda i=i: cache.put("f", f"k{i}", []) for i in range(4)]
            for _ in range(2)
        ]
        SeededInterleaver(seed=1).run(programs)
        assert any(r.fieldname == "_entries" for r in detector.races), \
            detector.report_text()

    def test_intact_function_cache_is_race_free(self, detector):
        from repro.runtime.cache import FunctionCache

        cache = FunctionCache()
        cache.enable("f", ttl_ms=10_000.0)
        programs = [
            [lambda i=i: cache.put("f", f"k{i}", []) for i in range(4)]
            + [lambda i=i: cache.get("f", f"k{i}") for i in range(4)]
            for _ in range(2)
        ]
        SeededInterleaver(seed=1).run(programs)
        assert detector.races == [], detector.report_text()


class TestNoopContract:
    def test_default_detector_is_the_noop(self):
        assert race_detector() is NOOP_DETECTOR
        assert RACE.detector.enabled is False

    def test_noop_exposes_the_full_reporting_surface(self):
        noop = NoopRaceDetector()
        assert noop.races == ()
        assert noop.guarded_accesses == 0
        assert noop.lock_acquisitions == 0

    def test_callsites_are_unconditional(self):
        noop = NoopRaceDetector()
        previous = set_race_detector(noop)
        try:
            before = noop.calls
            lock = TrackedRLock("noop-counted")
            with lock:
                RACE.detector.on_access(object(), "field", True)
            assert noop.calls == before + 3  # acquire + access + release
        finally:
            set_race_detector(previous)

    def test_noop_allocates_no_tracking_state(self):
        noop = NoopRaceDetector()
        assert noop.__slots__ == ("calls",)
        # races/guarded_accesses/lock_acquisitions are class attributes:
        # shared, immutable, never grown per-instance
        assert "races" not in NoopRaceDetector.__slots__

    def test_set_race_detector_returns_previous(self):
        first = LocksetDetector(capture_stacks=False)
        previous = set_race_detector(first)
        try:
            assert race_detector() is first
            second = LocksetDetector(capture_stacks=False)
            returned = set_race_detector(second)
            assert returned is first
            assert set_race_detector(None) is second
            assert race_detector() is NOOP_DETECTOR
        finally:
            set_race_detector(previous)


class TestPlatformIntegration:
    def test_platform_toggle_and_metrics(self):
        from tests.conftest import build_platform

        platform = build_platform()
        detector = platform.set_race_detector(True)
        try:
            assert platform.race_detector is detector
            platform.call("getProfile")
            snapshot = platform.metrics_snapshot()
            assert snapshot["concurrency.detector_enabled"] == 1
            assert snapshot["concurrency.races"] == 0
            assert snapshot["concurrency.guarded_accesses"] > 0
            assert snapshot["concurrency.lock_acquisitions"] > 0
            assert platform.race_report() == "no races detected"
        finally:
            platform.set_race_detector(False)
        assert platform.metrics_snapshot()["concurrency.detector_enabled"] == 0
