"""Adaptor-side schema validation tests (section 5.3)."""

import pytest

from repro.errors import SchemaError
from repro.schema import group, leaf, occurs, shape, validate
from repro.schema.builder import find_child_particle
from repro.xml import element, parse_element_text


PROFILE = shape(
    "PROFILE",
    [
        leaf("CID", "xs:string"),
        leaf("LAST_NAME", "xs:string"),
        group("ORDERS", [group("ORDER", [leaf("OID", "xs:string"),
                                         leaf("AMOUNT", "xs:integer")], "*")]),
        leaf("RATING", "xs:integer", "?"),
    ],
)


def good_profile():
    return parse_element_text(
        "<PROFILE><CID>C1</CID><LAST_NAME>Jones</LAST_NAME>"
        "<ORDERS><ORDER><OID>O1</OID><AMOUNT>10</AMOUNT></ORDER></ORDERS>"
        "<RATING>700</RATING></PROFILE>"
    )


class TestValidation:
    def test_valid_document_annotated(self):
        validated = validate(good_profile(), PROFILE)
        cid = validated.child_elements()[0]
        assert cid.type_annotation == "xs:string"
        rating = validated.child_elements()[3]
        assert rating.type_annotation == "xs:integer"
        assert rating.typed_value()[0].value == 700

    def test_optional_leaf_may_be_absent(self):
        doc = parse_element_text(
            "<PROFILE><CID>C1</CID><LAST_NAME>J</LAST_NAME><ORDERS/></PROFILE>"
        )
        validate(doc, PROFILE)  # no exception

    def test_missing_required_child_rejected(self):
        doc = parse_element_text("<PROFILE><CID>C1</CID></PROFILE>")
        with pytest.raises(SchemaError):
            validate(doc, PROFILE)

    def test_unexpected_child_rejected(self):
        doc = good_profile()
        doc.add_child(element("EXTRA", "x"))
        with pytest.raises(SchemaError):
            validate(doc, PROFILE)

    def test_bad_lexical_value_rejected(self):
        doc = parse_element_text(
            "<PROFILE><CID>C1</CID><LAST_NAME>J</LAST_NAME><ORDERS/>"
            "<RATING>seven</RATING></PROFILE>"
        )
        with pytest.raises(SchemaError):
            validate(doc, PROFILE)

    def test_wrong_root_name_rejected(self):
        with pytest.raises(SchemaError):
            validate(element("WRONG"), PROFILE)

    def test_repeated_group_star(self):
        doc = parse_element_text(
            "<PROFILE><CID>C1</CID><LAST_NAME>J</LAST_NAME>"
            "<ORDERS>"
            "<ORDER><OID>O1</OID><AMOUNT>1</AMOUNT></ORDER>"
            "<ORDER><OID>O2</OID><AMOUNT>2</AMOUNT></ORDER>"
            "</ORDERS></PROFILE>"
        )
        validate(doc, PROFILE)

    def test_simple_content_with_children_rejected(self):
        doc = parse_element_text(
            "<PROFILE><CID><NESTED/></CID><LAST_NAME>J</LAST_NAME><ORDERS/></PROFILE>"
        )
        with pytest.raises(SchemaError):
            validate(doc, PROFILE)


class TestBuilders:
    def test_bad_occurrence_rejected(self):
        with pytest.raises(SchemaError):
            occurs("!")

    def test_unknown_leaf_type_rejected(self):
        with pytest.raises(SchemaError):
            leaf("X", "xs:nope")

    def test_find_child_particle(self):
        particle = find_child_particle(PROFILE, "LAST_NAME")
        assert particle is not None
        assert particle.occurrence.min_count == 1
        assert find_child_particle(PROFILE, "NOPE") is None
