"""Tests for the join repertoire, stored procedures and the observed
cost-based optimizer (sections 5.2, 5.3 and the section-9 roadmap)."""

import pytest

from repro.errors import SourceError
from repro.relational import LatencyModel
from repro.runtime.observed import ObservedCostModel
from repro.schema import leaf, shape
from repro.xml import serialize

from tests.conftest import build_platform


class TestIndexNestedLoopJoin:
    """Section 5.2: 'The current join repertoire of ALDSP includes nested
    loop, index nested loop, PP-k using nested loops, and PP-k using index
    nested loops.'  Middleware equi-joins against non-relational sources
    use the hash-index variant."""

    def make_platform(self, tmp_path, rows=50):
        platform = build_platform(customers=3, deploy_profile=False)
        path = tmp_path / "regions.csv"
        lines = ["CID,REGION"] + [f"C{i % 3 + 1},zone{i}" for i in range(rows)]
        path.write_text("\n".join(lines) + "\n")
        record = shape("REGION_ROW", [leaf("CID", "xs:string"),
                                      leaf("REGION", "xs:string")])
        platform.register_csv_file("REGIONS", path, record)
        return platform

    def test_equi_join_builds_index_once(self, tmp_path):
        platform = self.make_platform(tmp_path)
        out = platform.execute('''
            for $c in CUSTOMER(), $r in REGIONS()
            where $r/CID eq $c/CID
            return <M>{ $c/CID }</M>
        ''')
        assert len(out) == 50
        assert platform.ctx.stats.index_joins_built == 1
        assert platform.ctx.stats.middleware_join_probes == 3

    def test_results_match_nested_loop_semantics(self, tmp_path):
        platform = self.make_platform(tmp_path, rows=9)
        query = '''
            for $c in CUSTOMER(), $r in REGIONS()
            where $r/CID eq $c/CID
            return <M>{ $c/CID, $r/REGION }</M>
        '''
        indexed = serialize(platform.execute(query))
        naive = self.make_platform(tmp_path, rows=9)
        naive.set_pushdown_enabled(False)  # also disables index-join rewriting
        assert indexed == serialize(naive.execute(query))

    def test_non_equi_join_stays_nested_loop(self, tmp_path):
        platform = self.make_platform(tmp_path, rows=6)
        platform.execute('''
            for $c in CUSTOMER(), $r in REGIONS()
            where $r/CID ne $c/CID
            return <M>{ $r/REGION }</M>
        ''')
        assert platform.ctx.stats.index_joins_built == 0

    def test_correlated_nested_flwor_unnests_into_index_join(self, tmp_path):
        # unnesting rewrites the correlated inner FLWOR into a clause-level
        # scan + where, which the rewriter then converts to an index join
        platform = self.make_platform(tmp_path, rows=6)
        out = platform.execute('''
            for $c in CUSTOMER(),
                $r in (for $x in REGIONS() where $x/CID eq $c/CID return $x)
            return <M>{ $r/REGION }</M>
        ''')
        assert len(out) == 6
        assert platform.ctx.stats.index_joins_built == 1


class TestStoredProcedures:
    def add_procedure(self, platform):
        def top_orders(db, min_amount):
            from repro.relational import Executor, parse_sql

            stmt = parse_sql(
                'SELECT t1."OID" AS OID, t1."AMOUNT" AS AMOUNT FROM "ORDER" t1 '
                'WHERE t1."AMOUNT" >= ? ORDER BY t1."AMOUNT" DESC'
            )
            return Executor(db, [min_amount]).execute(stmt)

        platform.register_stored_procedure(
            platform.ctx.databases["custdb"], "topOrders", top_orders,
            columns=[("OID", "xs:string"), ("AMOUNT", "xs:int")],
            param_types=["xs:integer"],
        )

    def test_procedure_callable_from_xquery(self):
        platform = build_platform(customers=3, deploy_profile=False)
        self.add_procedure(platform)
        out = platform.execute("topOrders(30)")
        assert serialize(out[0]).startswith("<TOPORDERS><OID>O6</OID>")
        assert all(
            int(item.child_elements()[1].string_value()) >= 30 for item in out
        )

    def test_procedure_results_typed(self):
        platform = build_platform(customers=1, deploy_profile=False)
        self.add_procedure(platform)
        [row] = platform.execute("topOrders(20)")
        amount = row.child_elements()[1]
        assert amount.typed_value()[0].value == 20

    def test_procedure_composable_in_flwor(self):
        platform = build_platform(customers=3, deploy_profile=False)
        self.add_procedure(platform)
        out = platform.execute('''
            for $t in topOrders(30)
            return <BIG>{ data($t/OID) }</BIG>
        ''')
        assert serialize(out) == "<BIG>O6</BIG><BIG>O5</BIG><BIG>O4</BIG><BIG>O3</BIG>"

    def test_unavailable_database_fails_procedure(self):
        platform = build_platform(customers=1, deploy_profile=False)
        self.add_procedure(platform)
        platform.ctx.databases["custdb"].available = False
        with pytest.raises(SourceError):
            platform.execute("topOrders(0)")

    def test_procedure_charges_roundtrip(self):
        platform = build_platform(customers=2, deploy_profile=False)
        self.add_procedure(platform)
        before = platform.ctx.databases["custdb"].stats.roundtrips
        platform.execute("topOrders(0)")
        assert platform.ctx.databases["custdb"].stats.roundtrips == before + 1


class TestObservedCostModel:
    def test_fit_recovers_latency_model(self):
        model = ObservedCostModel()
        # elapsed = 10 + 0.5 * rows
        for rows in (0, 10, 20, 40):
            model.record("db", rows, 10 + 0.5 * rows)
        estimate = model.estimate("db")
        assert estimate.roundtrip_ms == pytest.approx(10, abs=0.01)
        assert estimate.per_row_ms == pytest.approx(0.5, abs=0.01)

    def test_uniform_rows_attributed_to_roundtrip(self):
        model = ObservedCostModel()
        model.record("db", 5, 12)
        model.record("db", 5, 12)
        estimate = model.estimate("db")
        assert estimate.per_row_ms == 0.0
        assert estimate.roundtrip_ms == 12

    def test_no_samples_no_estimate(self):
        assert ObservedCostModel().estimate("db") is None

    def test_recommendation_scales_with_latency(self):
        slow, fast = ObservedCostModel(), ObservedCostModel()
        for rows in (0, 10, 20):
            slow.record("db", rows, 50 + 0.5 * rows)   # remote: 50ms roundtrip
            fast.record("db", rows, 1 + 0.5 * rows)    # local: 1ms roundtrip
        assert slow.recommend_ppk("db") > fast.recommend_ppk("db")

    def test_recommendation_bounded(self):
        model = ObservedCostModel()
        for rows in (0, 100):
            model.record("db", rows, 1000 + 0.001 * rows)
        assert model.recommend_ppk("db", k_max=200) == 200

    def test_sample_window_bounded(self):
        model = ObservedCostModel(max_samples=10)
        for i in range(100):
            model.record("db", i, float(i))
        assert len(model._samples["db"]) == 10

    def test_platform_observes_and_adapts(self):
        platform = build_platform(customers=30, deploy_profile=False)
        for db in platform.ctx.databases.values():
            db.latency = LatencyModel(roundtrip_ms=40.0, per_row_ms=0.5)
        # generate observations with varying result sizes
        platform.execute("for $c in CUSTOMER() return $c/CID")
        platform.execute('for $c in CUSTOMER() where $c/CID eq "C1" return $c')
        platform.execute("for $cc in CREDIT_CARD() return $cc/CID")
        platform.execute('for $cc in CREDIT_CARD() where $cc/CID eq "C1" return $cc')
        chosen = platform.adapt_ppk()
        assert chosen is not None
        assert chosen > 20  # high-latency sources justify bigger blocks
        assert platform.options.push.ppk_block_size == chosen

    def test_adapt_without_data_is_noop(self):
        platform = build_platform(deploy_profile=False)
        default = platform.options.push.ppk_block_size
        assert platform.adapt_ppk() is None
        assert platform.options.push.ppk_block_size == default
