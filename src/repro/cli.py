"""Command-line interface: explore the engine against the demo federation.

    python -m repro demo                 # run the running example
    python -m repro query  "<xquery>"    # execute against the demo platform
    python -m repro explain "<xquery>"   # show the distributed plan
    python -m repro lint "<xquery>"      # static analysis: all diagnostics
    python -m repro sql "<xquery>"       # show the SQL shipped to sources
    python -m repro lineage              # lineage map of the profile service

All subcommands build the Figure-3 federation of :mod:`repro.demo`
(``--customers`` controls its size).
"""

from __future__ import annotations

import argparse
import sys

from .demo import build_demo_platform
from .xml import serialize


def _build(args) -> object:
    return build_demo_platform(
        customers=args.customers,
        orders_per_customer=args.orders,
        ws_latency_ms=args.ws_latency,
    )


def _cmd_demo(args) -> int:
    platform = _build(args)
    for profile in platform.call("getProfile"):
        print(serialize(profile, indent=2))
        print()
    stats = platform.ctx.stats
    print(f"pushed SQL queries: {stats.pushed_queries}  "
          f"PP-k blocks: {stats.ppk_blocks}  "
          f"web-service calls: {stats.service_calls}")
    print(f"simulated time: {platform.clock.now_ms():.1f} ms")
    return 0


def _cmd_query(args) -> int:
    platform = _build(args)
    try:
        for item in platform.stream(args.xquery):
            print(serialize(item))
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_explain(args) -> int:
    platform = _build(args)
    try:
        print(platform.explain(args.xquery))
    except Exception as exc:  # noqa: BLE001
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args) -> int:
    """Run every plan-verifier pass and print the diagnostics.

    Exit status is 1 iff any error-severity diagnostic was found
    (warnings and notes are informational).
    """
    platform = _build(args)
    report = platform.lint(args.xquery)
    if args.json:
        print(report.render_json())
    elif len(report):
        print(report.render_text())
        print(report.summary())
    else:
        print("clean: no diagnostics")
    return 1 if report.has_errors else 0


def _cmd_sql(args) -> int:
    platform = _build(args)
    try:
        platform.execute(args.xquery)
    except Exception as exc:  # noqa: BLE001
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for name, database in sorted(platform.ctx.databases.items()):
        for statement in database.stats.statements:
            print(f"[{name}] {statement}")
    return 0


def _cmd_lineage(args) -> int:
    platform = _build(args)
    lineage = platform.lineage("ProfileService")
    for path, entry in sorted(lineage.entries.items()):
        origin = f"{entry.database}.{entry.table}.{entry.column}"
        note = f" (via {entry.transform})" if entry.transform else ""
        print(f"{'/'.join(path):45s} <- {origin}{note}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ALDSP reproduction: query the demo federation "
                    "(two databases + a credit-rating web service).",
    )
    parser.add_argument("--customers", type=int, default=4)
    parser.add_argument("--orders", type=int, default=3,
                        help="orders per customer")
    parser.add_argument("--ws-latency", type=float, default=30.0,
                        help="web-service latency in simulated ms")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="run the Figure-3 running example") \
        .set_defaults(fn=_cmd_demo)
    query = commands.add_parser("query", help="execute an XQuery")
    query.add_argument("xquery")
    query.set_defaults(fn=_cmd_query)
    explain = commands.add_parser("explain", help="show the distributed plan")
    explain.add_argument("xquery")
    explain.set_defaults(fn=_cmd_explain)
    lint = commands.add_parser(
        "lint", help="run the plan verifier and print all diagnostics")
    lint.add_argument("xquery")
    lint.add_argument("--json", action="store_true",
                      help="render the diagnostic report as JSON")
    lint.set_defaults(fn=_cmd_lint)
    sql = commands.add_parser("sql", help="show the SQL shipped to the sources")
    sql.add_argument("xquery")
    sql.set_defaults(fn=_cmd_sql)
    commands.add_parser("lineage", help="lineage map of the profile service") \
        .set_defaults(fn=_cmd_lineage)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    raise SystemExit(main())
