"""Command-line interface: explore the engine against the demo federation.

    python -m repro demo                 # run the running example
    python -m repro query  "<xquery>"    # execute against the demo platform
    python -m repro explain "<xquery>"   # show the distributed plan
    python -m repro lint "<xquery>"      # static analysis: all diagnostics
    python -m repro lint --concurrency   # lint engine source for races
    python -m repro sql "<xquery>"       # show the SQL shipped to sources
    python -m repro trace "<xquery>"     # Chrome trace JSON for a query
    python -m repro stats ["<xquery>"]   # unified metrics snapshot
    python -m repro lineage              # lineage map of the profile service
    python -m repro serve                # serving demo: sessions + admission
    python -m repro bench-serve          # closed-loop overload ramp
    python -m repro flight               # request flight recorder (O-CONT)

All subcommands build the Figure-3 federation of :mod:`repro.demo`
(``--customers`` controls its size).
"""

from __future__ import annotations

import argparse
import sys

from .demo import build_demo_platform
from .xml import serialize


def _build(args) -> object:
    platform = build_demo_platform(
        customers=args.customers,
        orders_per_customer=args.orders,
        ws_latency_ms=args.ws_latency,
    )
    if args.async_workers:
        platform.set_async_workers(args.async_workers)
    if args.ppk_window != 1:
        platform.set_ppk_prefetch_window(args.ppk_window)
    if args.adaptive_ppk:
        platform.set_adaptive_ppk(True)
    if args.no_parallel_regions:
        platform.set_parallel_regions(False)
    if args.batch_size:
        platform.set_batch_size(args.batch_size)
    if args.cost_based or args.force_strategy:
        platform.set_cost_based(True, force=args.force_strategy or None)
    if args.replan_threshold:
        platform.set_replan_threshold(args.replan_threshold)
    if args.no_tracing:
        platform.set_tracing_allowed(False)
    return platform


def _cmd_demo(args) -> int:
    platform = _build(args)
    for profile in platform.call("getProfile"):
        print(serialize(profile, indent=2))
        print()
    stats = platform.ctx.stats
    print(f"pushed SQL queries: {stats.pushed_queries}  "
          f"PP-k blocks: {stats.ppk_blocks}  "
          f"web-service calls: {stats.service_calls}")
    print(f"simulated time: {platform.clock.now_ms():.1f} ms")
    return 0


def _cmd_query(args) -> int:
    platform = _build(args)
    try:
        for item in platform.stream(args.xquery):
            print(serialize(item))
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_explain(args) -> int:
    platform = _build(args)
    try:
        print(platform.explain(args.xquery))
    except Exception as exc:  # noqa: BLE001
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args) -> int:
    """Run every plan-verifier pass and print the diagnostics.

    With ``--concurrency`` the engine's own source is linted instead
    (ALDSP-C4xx: unguarded shared-state mutations); no query or demo
    platform is involved.  Exit status is 1 iff any error-severity
    diagnostic was found (warnings and notes are informational).
    """
    if args.concurrency:
        from .analysis import run_concurrency_lint

        report = run_concurrency_lint(strict=args.strict)
    elif args.xquery is None:
        print("error: provide an XQuery to lint, or --concurrency "
              "to lint the engine source", file=sys.stderr)
        return 2
    else:
        platform = _build(args)
        report = platform.lint(args.xquery)
    if args.json:
        print(report.render_json())
    elif len(report):
        print(report.render_text())
        print(report.summary())
    else:
        print("clean: no diagnostics")
    return 1 if report.has_errors else 0


def _cmd_sql(args) -> int:
    platform = _build(args)
    try:
        platform.execute(args.xquery)
    except Exception as exc:  # noqa: BLE001
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for name, database in sorted(platform.ctx.databases.items()):
        for statement in database.stats.statements:
            print(f"[{name}] {statement}")
    return 0


def _find_adaptor(platform, name: str):
    for definition in platform.registry.functions():
        adaptor = definition.adaptor
        if adaptor is not None and adaptor.name == name:
            return adaptor
    return None


def _cmd_health(args) -> int:
    """Run the running example in partial-results mode under scripted
    faults and report per-source health (R-RESIL observability)."""
    import json

    from .resilience import FaultInjector

    platform = _build(args)
    platform.set_partial_results(True)
    if args.retry or args.breaker or args.timeout:
        platform.set_source_policy(
            "*", retry=args.retry or None, breaker=args.breaker or None,
            timeout_ms=args.timeout or None,
        )
    for name in args.kill:
        if name in platform.ctx.databases:
            platform.ctx.databases[name].available = False
        else:
            adaptor = _find_adaptor(platform, name)
            if adaptor is None:
                print(f"error: no source named {name}", file=sys.stderr)
                return 1
            adaptor.available = False
    for name in args.flaky:
        injector = FaultInjector(seed=args.seed).fail_with_probability(0.5)
        if name in platform.ctx.databases:
            injector.attach(platform.ctx.databases[name])
        else:
            adaptor = _find_adaptor(platform, name)
            if adaptor is None:
                print(f"error: no source named {name}", file=sys.stderr)
                return 1
            injector.attach(adaptor)
    results = platform.call("getProfile")
    health = platform.source_health()
    degradations = [record.to_dict() for record in platform.last_degradations]
    if args.json:
        print(json.dumps({
            "results": len(results),
            "elapsed_ms": round(platform.clock.now_ms(), 3),
            "sources": health,
            "degradations": degradations,
        }, indent=2))
        return 0
    print(f"profiles returned: {len(results)}   "
          f"simulated time: {platform.clock.now_ms():.1f} ms")
    print()
    for name, entry in sorted(health.items()):
        state = "up" if entry["available"] else "DOWN"
        breaker = entry["breaker"] or "-"
        print(f"{name:30s} {entry['kind']:11s} {state:5s} "
              f"breaker={breaker:9s} attempts={entry['attempts']:<4d} "
              f"retries={entry['retries']:<3d} failures={entry['failures']:<3d} "
              f"degraded={entry['degraded']}")
    if degradations:
        print()
        print("degradations (partial results):")
        for record in degradations:
            print(f"  {record['source']}: {record['error']} "
                  f"(attempts={record['attempts']}, "
                  f"elapsed={record['elapsed_ms']}ms)")
    return 0


def _cmd_trace(args) -> int:
    """Execute a query with tracing on and emit the trace (O-OBS).

    Default output is Chrome ``trace_event`` JSON (load it in
    ``chrome://tracing`` / Perfetto); ``--tree`` prints the span tree and
    ``--profile`` the plan annotated with per-operator actuals.
    """
    from .observability import chrome_trace_json, render_span_tree

    platform = _build(args)
    try:
        if args.profile:
            print(platform.profile(args.xquery).text)
            return 0
        platform.set_tracing(True)
        platform.execute(args.xquery)
        if args.tree:
            for root in platform.tracer.roots:
                print(render_span_tree(root))
        else:
            print(chrome_trace_json(platform.tracer.roots))
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_stats(args) -> int:
    """Run a query (default: the running example) and render the unified
    metrics snapshot — runtime, per-source, cache, resilience and trace
    series in one plane (O-OBS).  With ``--window`` the rolling-window
    plane is rendered instead: rates and percentiles over the last N
    seconds of the clock (O-CONT), fed by continuous sampled tracing."""
    import json

    from .observability import render_metrics, render_window

    platform = _build(args)
    try:
        if args.window:
            platform.set_continuous(sample_rate=1.0)
        else:
            platform.set_tracing(True)
        if args.xquery:
            platform.execute(args.xquery)
        else:
            platform.call("getProfile")
    except Exception as exc:  # noqa: BLE001
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.window:
        snapshot = platform.window_snapshot()
        renderer = render_window
    else:
        snapshot = platform.metrics_snapshot()
        renderer = render_metrics
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(renderer(snapshot))
    return 0


def _serving_world(args):
    """A wall-clock demo federation fronted by a DataServer (R-SERVE):
    zero simulated source latencies so concurrency is real, two tenants,
    a small worker bound so overload is reachable."""
    from .clock import WallClock
    from .relational.database import LatencyModel
    from .server import AdmissionController, DataServer, TenantQuota

    zero = LatencyModel(roundtrip_ms=0.0, per_row_ms=0.0, parse_ms=0.0,
                        connect_timeout_ms=0.0)
    platform = build_demo_platform(
        customers=args.customers, orders_per_customer=args.orders,
        ws_latency_ms=0.0, clock=WallClock(), db_latency=zero,
    )
    admission = AdmissionController(
        platform.clock, max_concurrent=args.max_concurrent,
        queue_soft=args.queue_soft, queue_hard=args.queue_hard,
    )
    server = DataServer(platform, admission=admission,
                        default_budget_ms=args.budget)
    server.register_tenant("acme", "acme-secret", roles=("analyst",),
                           quota=TenantQuota(capacity=args.quota,
                                             refill_per_s=args.quota))
    server.register_tenant("globex", "globex-secret", roles=("analyst",),
                           quota=TenantQuota(capacity=args.quota,
                                             refill_per_s=args.quota))
    return platform, server


_SERVE_QUERIES = [
    # cheap keyed lookup: one pushed parameterized statement
    ("for $c in CUSTOMER() where $c/CID eq $id return $c/LAST_NAME",
     "lookup"),
    # expensive scan: the full federation join
    ("getProfile()", "scan"),
]


def _cmd_serve(args) -> int:
    """In-process serving demo: open sessions for both tenants, serve a
    small mixed workload and print the serving-plane snapshot."""
    import json

    from .errors import AdmissionError
    from .xml.items import AtomicValue

    platform, server = _serving_world(args)
    try:
        outcomes = {"completed": 0, "shed": 0}
        for tenant, secret in (("acme", "acme-secret"),
                               ("globex", "globex-secret")):
            session = server.open_session(tenant, secret)
            for i in range(args.requests):
                query, kind = _SERVE_QUERIES[i % len(_SERVE_QUERIES)]
                variables = (
                    {"id": [AtomicValue(f"C{1 + i % args.customers}",
                                        "xs:string")]}
                    if kind == "lookup" else None)
                try:
                    response = server.execute(session.session_id, query,
                                              variables)
                    outcomes["completed"] += 1
                    print(f"[{tenant}] {kind:6s} cost={response.cost:<5g} "
                          f"items={len(response.items):<3d} "
                          f"{response.elapsed_ms:.2f}ms")
                except AdmissionError as exc:
                    outcomes["shed"] += 1
                    print(f"[{tenant}] {kind:6s} SHED ({exc.reason}, "
                          f"retry after {exc.retry_after_ms:.1f}ms)")
        print()
        print(json.dumps(server.snapshot(), indent=2))
        print(f"completed={outcomes['completed']} shed={outcomes['shed']}")
        return 0
    finally:
        platform.close()


def _cmd_bench_serve(args) -> int:
    """Closed-loop overload ramp against the serving layer; writes the
    per-stage QPS/latency/shed report to ``BENCH_serving.json``."""
    import json

    from .server import WorkloadDriver
    from .xml.items import AtomicValue

    platform, server = _serving_world(args)
    try:
        lookup, _ = _SERVE_QUERIES[0]
        scan, _ = _SERVE_QUERIES[1]
        shapes = [
            (lookup, {"id": [AtomicValue(f"C{1 + i}", "xs:string")]})
            for i in range(min(4, args.customers))
        ] + [(scan, None)]
        driver = WorkloadDriver(
            server,
            [("acme", "acme-secret"), ("globex", "globex-secret")],
            shapes, budget_ms=args.budget,
        )
        stages = [int(n) for n in args.stages.split(",")]
        results = driver.ramp(stages, stage_duration_s=args.stage_seconds)
        report = {
            "benchmark": "serving-overload-ramp",
            "config": {
                "max_concurrent": args.max_concurrent,
                "queue_soft": args.queue_soft,
                "queue_hard": args.queue_hard,
                "quota_per_s": args.quota,
                "budget_ms": args.budget,
                "stage_seconds": args.stage_seconds,
            },
            "stages": [result.to_dict() for result in results],
            "serving": server.snapshot(),
        }
        with open(args.output, "w") as sink:
            json.dump(report, sink, indent=2)
            sink.write("\n")
        for result in results:
            stage = result.to_dict()
            print(f"clients={stage['clients']:<5d} "
                  f"offered={stage['offered_qps']:<8g} "
                  f"goodput={stage['goodput_qps']:<8g} "
                  f"shed={stage['shed_rate']:<7.2%} "
                  f"p50={stage['p50_ms']}ms p99={stage['p99_ms']}ms")
        print(f"wrote {args.output}")
        return 0
    finally:
        platform.close()


def _cmd_flight(args) -> int:
    """Serve a mixed workload with continuous tracing on, then query the
    request flight recorder (O-CONT): one structured record per request —
    admitted, shed or failed — with its per-phase latency breakdown, and
    the ledger that reconciles against the admission counters."""
    import json

    from .errors import AdmissionError
    from .xml.items import AtomicValue

    platform, server = _serving_world(args)
    try:
        platform.set_continuous(sample_rate=args.sample_rate, seed=args.seed,
                                slow_ms=args.slow_ms)
        for tenant, secret in (("acme", "acme-secret"),
                               ("globex", "globex-secret")):
            session = server.open_session(tenant, secret)
            for i in range(args.requests):
                query, kind = _SERVE_QUERIES[i % len(_SERVE_QUERIES)]
                variables = (
                    {"id": [AtomicValue(f"C{1 + i % args.customers}",
                                        "xs:string")]}
                    if kind == "lookup" else None)
                try:
                    server.execute(session.session_id, query, variables)
                except AdmissionError:
                    pass  # shed: recorded in the flight ledger
        records = server.flight(tenant=args.tenant, outcome=args.outcome,
                                limit=args.limit)
        if args.json:
            print(json.dumps({
                "records": [record.to_dict() for record in records],
                "flight": server.flight_recorder.snapshot(),
                "admission": server.admission.snapshot(),
                "continuous": platform.continuous.snapshot(),
            }, indent=2, sort_keys=True))
            return 0
        for record in records:
            phases = " ".join(f"{name}={ms:.2f}" for name, ms
                              in sorted(record.phases.items()))
            flags = ("S" if record.sampled else "-") + \
                ("R" if record.retained else "-")
            print(f"#{record.seq:<4d} [{record.tenant}] "
                  f"{record.outcome:9s} {record.admission:13s} "
                  f"cost={record.cost:<6g} {record.elapsed_ms:8.2f}ms "
                  f"{flags} fp={record.fingerprint} {phases}")
        print()
        print(json.dumps(server.flight_recorder.snapshot(), indent=2))
        return 0
    finally:
        platform.close()


def _cmd_lineage(args) -> int:
    platform = _build(args)
    lineage = platform.lineage("ProfileService")
    for path, entry in sorted(lineage.entries.items()):
        origin = f"{entry.database}.{entry.table}.{entry.column}"
        note = f" (via {entry.transform})" if entry.transform else ""
        print(f"{'/'.join(path):45s} <- {origin}{note}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ALDSP reproduction: query the demo federation "
                    "(two databases + a credit-rating web service).",
    )
    parser.add_argument("--customers", type=int, default=4)
    parser.add_argument("--orders", type=int, default=3,
                        help="orders per customer")
    parser.add_argument("--ws-latency", type=float, default=30.0,
                        help="web-service latency in simulated ms")
    parser.add_argument("--async-workers", type=int, default=0,
                        help="async executor worker-pool size (0 = default)")
    parser.add_argument("--ppk-window", type=int, default=1,
                        help="PP-k prefetch window W (block fetches in flight)")
    parser.add_argument("--adaptive-ppk", action="store_true",
                        help="re-size PP-k blocks from observed source costs")
    parser.add_argument("--no-parallel-regions", action="store_true",
                        help="disable scatter execution of independent regions")
    parser.add_argument("--batch-size", type=int, default=0,
                        help="rows per batch for the batch engine "
                             "(1 = tuple-at-a-time, 0 = default 256)")
    parser.add_argument("--cost-based", action="store_true",
                        help="choose join strategies and join order from "
                             "statistics instead of the fixed heuristics "
                             "(P-COST)")
    parser.add_argument("--force-strategy", default="",
                        choices=["", "ppk", "index-join", "ship-all"],
                        help="pin every convertible join region to one "
                             "strategy (implies --cost-based; for ablation)")
    parser.add_argument("--replan-threshold", type=float, default=0.0,
                        help="mid-query re-plan when observed cardinality "
                             "diverges from the estimate by this factor "
                             "(> 1.0; 0 = off)")
    parser.add_argument("--no-tracing", action="store_true",
                        help="administratively disallow tracing on this "
                             "platform (enabling it fails with ALDSP-E501)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="run the Figure-3 running example") \
        .set_defaults(fn=_cmd_demo)
    query = commands.add_parser("query", help="execute an XQuery")
    query.add_argument("xquery")
    query.set_defaults(fn=_cmd_query)
    explain = commands.add_parser("explain", help="show the distributed plan")
    explain.add_argument("xquery")
    explain.set_defaults(fn=_cmd_explain)
    lint = commands.add_parser(
        "lint", help="run the plan verifier and print all diagnostics")
    lint.add_argument("xquery", nargs="?", default=None,
                      help="query to lint (omit with --concurrency)")
    lint.add_argument("--concurrency", action="store_true",
                      help="lint the engine source for unguarded shared-state "
                           "mutations (ALDSP-C4xx) instead of a query")
    lint.add_argument("--strict", action="store_true",
                      help="with --concurrency, also flag unguarded reads")
    lint.add_argument("--json", action="store_true",
                      help="render the diagnostic report as JSON")
    lint.set_defaults(fn=_cmd_lint)
    sql = commands.add_parser("sql", help="show the SQL shipped to the sources")
    sql.add_argument("xquery")
    sql.set_defaults(fn=_cmd_sql)
    trace = commands.add_parser(
        "trace", help="execute with tracing and emit Chrome trace JSON")
    trace.add_argument("xquery")
    trace.add_argument("--tree", action="store_true",
                       help="print the span tree instead of Chrome JSON")
    trace.add_argument("--profile", action="store_true",
                       help="print the plan annotated with operator actuals")
    trace.set_defaults(fn=_cmd_trace)
    stats = commands.add_parser(
        "stats", help="run a query and render the unified metrics snapshot")
    stats.add_argument("xquery", nargs="?", default=None,
                       help="query to run (default: the running example)")
    stats.add_argument("--json", action="store_true",
                       help="dump the snapshot as JSON")
    stats.add_argument("--window", action="store_true",
                       help="render the rolling-window plane (last-N-seconds "
                            "rates and percentiles) instead of cumulative")
    stats.set_defaults(fn=_cmd_stats)
    commands.add_parser("lineage", help="lineage map of the profile service") \
        .set_defaults(fn=_cmd_lineage)

    def serving_args(sub):
        sub.add_argument("--max-concurrent", type=int, default=4,
                         help="admitted requests executing at once")
        sub.add_argument("--queue-soft", type=int, default=8,
                         help="depth at which expensive requests are shed")
        sub.add_argument("--queue-hard", type=int, default=16,
                         help="depth at which everything is shed")
        sub.add_argument("--quota", type=float, default=10_000.0,
                         help="per-tenant token-bucket rate (requests/s)")
        sub.add_argument("--budget", type=float, default=2_000.0,
                         help="per-request deadline budget in ms")

    serve = commands.add_parser(
        "serve", help="in-process serving demo: sessions + admission "
                      "control over the demo federation")
    serving_args(serve)
    serve.add_argument("--requests", type=int, default=8,
                       help="requests per tenant session")
    serve.set_defaults(fn=_cmd_serve)
    bench_serve = commands.add_parser(
        "bench-serve", help="closed-loop overload ramp; writes "
                            "BENCH_serving.json")
    serving_args(bench_serve)
    bench_serve.add_argument("--stages", default="4,16,48",
                             help="comma-separated client counts per stage")
    bench_serve.add_argument("--stage-seconds", type=float, default=1.0,
                             help="wall seconds per ramp stage")
    bench_serve.add_argument("--output", default="BENCH_serving.json",
                             help="report path")
    bench_serve.set_defaults(fn=_cmd_bench_serve)
    flight = commands.add_parser(
        "flight", help="serve a workload with continuous tracing and query "
                       "the request flight recorder")
    serving_args(flight)
    flight.add_argument("--requests", type=int, default=8,
                        help="requests per tenant session")
    flight.add_argument("--sample-rate", type=float, default=1.0,
                        help="head-sampling probability for the continuous "
                             "tracer")
    flight.add_argument("--seed", type=int, default=0,
                        help="trace-sampler RNG seed")
    flight.add_argument("--slow-ms", type=float, default=250.0,
                        help="tail-retention slow-request threshold in ms")
    flight.add_argument("--tenant", default=None,
                        help="only records for this tenant")
    flight.add_argument("--outcome", default=None,
                        help="only records with this outcome (completed, "
                             "shed, deadline, error, invalid)")
    flight.add_argument("--limit", type=int, default=None,
                        help="at most N most recent records")
    flight.add_argument("--json", action="store_true",
                        help="dump records + ledger + snapshots as JSON")
    flight.set_defaults(fn=_cmd_flight)
    health = commands.add_parser(
        "health", help="run the demo under faults and report source health")
    health.add_argument("--kill", action="append", default=[], metavar="SOURCE",
                        help="mark a source unavailable (repeatable)")
    health.add_argument("--flaky", action="append", default=[], metavar="SOURCE",
                        help="attach a 50%%-failure fault plan (repeatable)")
    health.add_argument("--seed", type=int, default=0,
                        help="fault-injection RNG seed")
    health.add_argument("--retry", type=int, default=0,
                        help="retry budget (attempts) for every source")
    health.add_argument("--breaker", type=int, default=0,
                        help="circuit-breaker failure threshold")
    health.add_argument("--timeout", type=float, default=0.0,
                        help="per-attempt time budget in simulated ms")
    health.add_argument("--json", action="store_true",
                        help="render the health report as JSON")
    health.set_defaults(fn=_cmd_health)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    raise SystemExit(main())
