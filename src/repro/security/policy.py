"""Data security (section 7).

Two granularities of access control:

* **function level** — who may call which data-service functions;
* **element/attribute level** — a subtree of a data-service shape is a
  labeled *security resource* with an access policy; unauthorized callers
  either see nothing (silent removal, when the subtree is optional in the
  schema) or an administratively-specified replacement value.

Fine-grained filtering runs at a late stage — *after* the function cache —
so plans and cached results stay shared across users (section 7); the
platform enforces that ordering.  An audit trail records security
decisions when enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..errors import SecurityError
from ..xml.items import AtomicValue, ElementNode, Item, Node, TextNode


@dataclass(frozen=True)
class User:
    name: str
    roles: frozenset[str] = frozenset()

    @staticmethod
    def of(name: str, *roles: str) -> "User":
        return User(name, frozenset(roles))


#: the implicit caller when none is given: an administrator seeing everything
ADMIN = User("system", frozenset({"admin"}))


@dataclass
class ElementResource:
    """A labeled subtree of a data-service shape (section 7).

    ``path`` addresses the subtree from the shape's root element, e.g.
    ``("PROFILE", "SSN")``.  ``action`` is ``"remove"`` (the data is
    silently removed — chosen when the subtree is optional in the schema)
    or ``"replace"`` with a replacement value.
    """

    path: tuple[str, ...]
    allowed_roles: frozenset[str]
    action: str = "remove"  # "remove" | "replace"
    replacement: object = None

    def permits(self, user: User) -> bool:
        return "admin" in user.roles or bool(self.allowed_roles & user.roles)


@dataclass
class AuditRecord:
    kind: str  # "function-call" | "element-filter"
    subject: str
    user: str
    decision: str  # "allow" | "deny" | "redact" | "remove"


class SecurityService:
    """Access-control policies plus the auditing service (section 7)."""

    def __init__(self):
        self._function_roles: dict[str, frozenset[str]] = {}
        self._resources: list[ElementResource] = []
        self.auditing_enabled = False
        self.audit_log: list[AuditRecord] = []

    # -- administration -----------------------------------------------------------

    def protect_function(self, function_name: str, roles: Iterable[str]) -> None:
        self._function_roles[function_name] = frozenset(roles)

    def protect_element(
        self,
        path: tuple[str, ...] | list[str],
        roles: Iterable[str],
        action: str = "remove",
        replacement: object = None,
    ) -> ElementResource:
        if action not in ("remove", "replace"):
            raise SecurityError(f"unknown resource action {action!r}")
        resource = ElementResource(tuple(path), frozenset(roles), action, replacement)
        self._resources.append(resource)
        return resource

    def enable_auditing(self) -> None:
        self.auditing_enabled = True

    def _audit(self, kind: str, subject: str, user: User, decision: str) -> None:
        if self.auditing_enabled:
            self.audit_log.append(AuditRecord(kind, subject, user.name, decision))

    # -- function-level enforcement ---------------------------------------------------

    def check_call(self, function_name: str, user: User) -> None:
        required = self._function_roles.get(function_name)
        if required is None or "admin" in user.roles or required & user.roles:
            self._audit("function-call", function_name, user, "allow")
            return
        self._audit("function-call", function_name, user, "deny")
        raise SecurityError(
            f"user {user.name} may not call {function_name}"
        )

    # -- element-level filtering --------------------------------------------------------

    def has_element_policies(self) -> bool:
        return bool(self._resources)

    def filter_items(self, items: list[Item], user: User) -> list[Item]:
        """Apply element-level policies; returns filtered copies (cached
        originals are never mutated — the cache is shared across users)."""
        if not self._resources or "admin" in user.roles:
            return items
        result: list[Item] = []
        for item in items:
            if isinstance(item, ElementNode):
                filtered = self._filter_element(item.deep_copy(), (item.name.local,), user)
                if filtered is not None:
                    result.append(filtered)
            else:
                result.append(item)
        return result

    def _filter_element(self, element: ElementNode, path: tuple[str, ...],
                        user: User) -> Optional[ElementNode]:
        for resource in self._resources:
            if resource.path == path and not resource.permits(user):
                if resource.action == "remove":
                    self._audit("element-filter", "/".join(path), user, "remove")
                    return None
                self._audit("element-filter", "/".join(path), user, "redact")
                return _replace_content(element, resource.replacement)
        kept: list[Node] = []
        for child in list(element.children()):
            if isinstance(child, ElementNode):
                filtered = self._filter_element(child, path + (child.name.local,), user)
                if filtered is not None:
                    kept.append(filtered)
            else:
                kept.append(child)
        element._children = kept
        for child in kept:
            child.parent = element
        return element


def _replace_content(element: ElementNode, replacement) -> ElementNode:
    value = replacement if replacement is not None else ""
    text = AtomicValue(value).string_value() if not isinstance(value, str) else value
    element._children = [TextNode(text)]
    element._children[0].parent = element
    return element
