"""Data security: function- and element-level access control, auditing
(section 7)."""

from .policy import ADMIN, AuditRecord, ElementResource, SecurityService, User

__all__ = ["ADMIN", "AuditRecord", "ElementResource", "SecurityService", "User"]
