"""Structural subtyping and intersection over sequence types.

These two relations drive ALDSP's static analysis (section 4.1):

* ``is_subtype(a, b)`` — if it holds for an argument/parameter pair the
  call is statically safe and no runtime check is needed;
* ``intersects(a, b)`` — ALDSP's *optimistic* rule: the call is accepted
  iff the intersection is non-empty, and a ``typematch`` operator enforces
  the XQuery semantics at runtime.

Structural typing means ``element(E, C)`` relationships are computed from
the structure ``C`` itself, so wrapping an expression in a constructor and
then navigating back into it is type-preserving — the property that makes
view unfolding sound (section 3.1).
"""

from __future__ import annotations

from typing import Optional

from .types import (
    AnyItemType,
    AnyNodeType,
    AtomicItemType,
    AttributeItemType,
    ComplexContent,
    ContentType,
    ElementItemType,
    ItemType,
    MixedContent,
    Occurrence,
    Particle,
    SequenceType,
    SimpleContent,
    TextItemType,
    is_atomic_subtype,
)


# ---------------------------------------------------------------------------
# Item-type relations
# ---------------------------------------------------------------------------


def item_subtype(sub: ItemType, sup: ItemType) -> bool:
    if isinstance(sup, AnyItemType):
        return True
    if isinstance(sub, AnyItemType):
        return False
    if isinstance(sup, AnyNodeType):
        return isinstance(sub, (ElementItemType, AttributeItemType, TextItemType, AnyNodeType))
    if isinstance(sub, AnyNodeType):
        return False
    if isinstance(sub, AtomicItemType) and isinstance(sup, AtomicItemType):
        return is_atomic_subtype(sub.name, sup.name)
    if isinstance(sub, TextItemType) and isinstance(sup, TextItemType):
        return True
    if isinstance(sub, AttributeItemType) and isinstance(sup, AttributeItemType):
        name_ok = sup.name is None or sup.name == sub.name
        return name_ok and is_atomic_subtype(sub.type_name, sup.type_name)
    if isinstance(sub, ElementItemType) and isinstance(sup, ElementItemType):
        if sup.name is not None and sup.name != sub.name:
            return False
        return content_subtype(sub.content, sup.content)
    return False


def item_intersects(a: ItemType, b: ItemType) -> bool:
    if isinstance(a, AnyItemType) or isinstance(b, AnyItemType):
        return True
    if isinstance(a, AnyNodeType):
        return isinstance(b, (ElementItemType, AttributeItemType, TextItemType, AnyNodeType))
    if isinstance(b, AnyNodeType):
        return item_intersects(b, a)
    if isinstance(a, AtomicItemType) and isinstance(b, AtomicItemType):
        # untyped values may carry any lexical value: optimistically they
        # intersect every atomic type (a typematch guards at runtime).
        if "xs:untypedAtomic" in (a.name, b.name):
            return True
        return is_atomic_subtype(a.name, b.name) or is_atomic_subtype(b.name, a.name)
    if isinstance(a, TextItemType) and isinstance(b, TextItemType):
        return True
    if isinstance(a, AttributeItemType) and isinstance(b, AttributeItemType):
        if a.name is not None and b.name is not None and a.name != b.name:
            return False
        return is_atomic_subtype(a.type_name, b.type_name) or is_atomic_subtype(
            b.type_name, a.type_name
        )
    if isinstance(a, ElementItemType) and isinstance(b, ElementItemType):
        if a.name is not None and b.name is not None and a.name != b.name:
            return False
        return content_intersects(a.content, b.content)
    return False


# ---------------------------------------------------------------------------
# Content-type relations (structural core)
# ---------------------------------------------------------------------------


def content_subtype(sub: Optional[ContentType], sup: Optional[ContentType]) -> bool:
    """Is content ``sub`` acceptable wherever ``sup`` is expected?

    ``None`` and :class:`MixedContent` both mean ANYTYPE content, the top of
    the content lattice.
    """
    if sup is None or isinstance(sup, MixedContent):
        return True
    if sub is None or isinstance(sub, MixedContent):
        return False
    if isinstance(sub, SimpleContent) and isinstance(sup, SimpleContent):
        return is_atomic_subtype(sub.type_name, sup.type_name)
    if isinstance(sub, ComplexContent) and isinstance(sup, ComplexContent):
        return _particles_subtype(sub.particles, sup.particles)
    return False


def content_intersects(a: Optional[ContentType], b: Optional[ContentType]) -> bool:
    if a is None or b is None or isinstance(a, MixedContent) or isinstance(b, MixedContent):
        return True
    if isinstance(a, SimpleContent) and isinstance(b, SimpleContent):
        if "xs:untypedAtomic" in (a.type_name, b.type_name):
            return True
        return is_atomic_subtype(a.type_name, b.type_name) or is_atomic_subtype(
            b.type_name, a.type_name
        )
    if isinstance(a, ComplexContent) and isinstance(b, ComplexContent):
        return _particles_intersect(a.particles, b.particles)
    return False


def _particles_subtype(sub: tuple[Particle, ...], sup: tuple[Particle, ...]) -> bool:
    """Positional matching of particle sequences.

    A simple structural discipline adequate for data-service shapes (which
    are ordered all-singular or star sequences, not general regular
    expressions): match particles pairwise; extra supertype particles must
    be optional, extra subtype particles are not allowed.
    """
    i = j = 0
    while i < len(sub) and j < len(sup):
        sp, pp = sub[i], sup[j]
        if item_subtype(sp.item_type, pp.item_type):
            if not _occurrence_within(sp.occurrence, pp.occurrence):
                return False
            i += 1
            j += 1
            continue
        # supertype particle may be skipped if it admits empty
        if pp.occurrence.min_count == 0:
            j += 1
            continue
        return False
    if i < len(sub):
        return False
    return all(p.occurrence.min_count == 0 for p in sup[j:])


def _particles_intersect(a: tuple[Particle, ...], b: tuple[Particle, ...]) -> bool:
    i = j = 0
    while i < len(a) and j < len(b):
        pa, pb = a[i], b[j]
        if item_intersects(pa.item_type, pb.item_type):
            if pa.occurrence.intersect(pb.occurrence) is None:
                return False
            i += 1
            j += 1
            continue
        if pa.occurrence.min_count == 0:
            i += 1
            continue
        if pb.occurrence.min_count == 0:
            j += 1
            continue
        return False
    return all(p.occurrence.min_count == 0 for p in a[i:]) and all(
        p.occurrence.min_count == 0 for p in b[j:]
    )


def _occurrence_within(sub: Occurrence, sup: Occurrence) -> bool:
    if sub.min_count < sup.min_count:
        return False
    if sup.max_count is None:
        return True
    return sub.max_count is not None and sub.max_count <= sup.max_count


# ---------------------------------------------------------------------------
# Sequence-type relations
# ---------------------------------------------------------------------------


def is_subtype(sub: SequenceType, sup: SequenceType) -> bool:
    """Structural sequence-type subtyping."""
    if sub.is_empty:
        return sup.is_empty or sup.occurrence.min_count == 0
    if sup.is_empty:
        return False
    if not _occurrence_within(sub.occurrence, sup.occurrence):
        return False
    return all(
        any(item_subtype(sa, su) for su in sup.alternatives) for sa in sub.alternatives
    )


def intersects(a: SequenceType, b: SequenceType) -> bool:
    """ALDSP's optimistic compatibility test (section 4.1).

    Two sequence types intersect when some value inhabits both: either both
    admit the empty sequence, or their occurrences overlap and some pair of
    item-type alternatives intersects.
    """
    if a.is_empty or b.is_empty:
        return (a.is_empty or a.occurrence.min_count == 0) and (
            b.is_empty or b.occurrence.min_count == 0
        )
    if a.allows_empty() and b.allows_empty():
        return True
    if a.occurrence.intersect(b.occurrence) is None:
        return False
    return any(
        item_intersects(ia, ib) for ia in a.alternatives for ib in b.alternatives
    )


def needs_typematch(argument: SequenceType, parameter: SequenceType) -> bool:
    """Whether a runtime ``typematch`` must guard this argument.

    Per section 4.1: if subtyping can be shown at compile time the operator
    is omitted; otherwise (intersection non-empty) it is inserted.
    """
    return not is_subtype(argument, parameter)
