"""Helpers for building element shapes and validating source data.

Data services describe their "shape" with XML Schema (section 2.1).  For
this reproduction, shapes are built programmatically (introspection builds
them from source metadata) using the small combinators here; ``validate``
annotates a parsed item tree against a shape, producing the *typed* token
stream that adaptors feed into the runtime (section 5.3).
"""

from __future__ import annotations

from typing import Sequence

from ..errors import SchemaError
from ..xml.items import ElementNode, _parse_lexical
from .types import (
    ComplexContent,
    ElementItemType,
    Occurrence,
    Particle,
    SequenceType,
    SimpleContent,
    is_known_atomic,
)

_OCCURRENCE_BY_INDICATOR = {occ.indicator: occ for occ in Occurrence}


def occurs(indicator: str) -> Occurrence:
    try:
        return _OCCURRENCE_BY_INDICATOR[indicator]
    except KeyError:
        raise SchemaError(f"bad occurrence indicator {indicator!r}") from None


def leaf(name: str, type_name: str, occurrence: str = "") -> Particle:
    """A simple-content child element, e.g. ``leaf("CID", "xs:string")``."""
    if not is_known_atomic(type_name):
        raise SchemaError(f"unknown atomic type {type_name}")
    return Particle(ElementItemType(name, SimpleContent(type_name)), occurs(occurrence))


def group(name: str, children: Sequence[Particle], occurrence: str = "") -> Particle:
    """A complex-content child element with the given child particles."""
    return Particle(
        ElementItemType(name, ComplexContent(tuple(children))), occurs(occurrence)
    )


def shape(name: str, children: Sequence[Particle]) -> ElementItemType:
    """The root element type of a data-service shape."""
    return ElementItemType(name, ComplexContent(tuple(children)))


def shape_sequence(element_type: ElementItemType, occurrence: str = "*") -> SequenceType:
    return SequenceType((element_type,), occurs(occurrence))


def find_child_particle(element_type: ElementItemType, child_name: str) -> Particle | None:
    """Look up the particle for a named child in a structural element type."""
    if not isinstance(element_type.content, ComplexContent):
        return None
    for particle in element_type.content.particles:
        it = particle.item_type
        if isinstance(it, ElementItemType) and it.name == child_name:
            return particle
    return None


def validate(elem: ElementNode, element_type: ElementItemType) -> ElementNode:
    """Validate and annotate an element tree against a structural type.

    Returns the same tree with type annotations set on leaf elements so
    that downstream atomization yields properly typed values.  Raises
    :class:`SchemaError` on mismatch.  This implements the adaptor-side
    validation of Web-service results and registered files (section 5.3).
    """
    if element_type.name is not None and elem.name.local != element_type.name:
        raise SchemaError(f"expected element {element_type.name}, found {elem.name.local}")
    content = element_type.content
    if content is None:
        return elem
    if isinstance(content, SimpleContent):
        if any(isinstance(c, ElementNode) for c in elem.children()):
            raise SchemaError(f"element {elem.name.local} must have simple content")
        text = elem.string_value()
        try:
            _parse_lexical(text, content.type_name)
        except Exception as exc:
            raise SchemaError(
                f"element {elem.name.local}: {text!r} is not a valid "
                f"{content.type_name}"
            ) from exc
        elem.type_annotation = content.type_name
        return elem
    if isinstance(content, ComplexContent):
        children = [c for c in elem.children() if isinstance(c, ElementNode)]
        idx = 0
        for particle in content.particles:
            matched = 0
            max_count = particle.occurrence.max_count
            child_type = particle.item_type
            while idx < len(children) and (max_count is None or matched < max_count):
                child = children[idx]
                if (
                    isinstance(child_type, ElementItemType)
                    and child_type.name is not None
                    and child.name.local != child_type.name
                ):
                    break
                if isinstance(child_type, ElementItemType):
                    validate(child, child_type)
                idx += 1
                matched += 1
            if matched < particle.occurrence.min_count:
                name = getattr(child_type, "name", None) or "<wildcard>"
                raise SchemaError(
                    f"element {elem.name.local}: required child {name} missing"
                )
        if idx != len(children):
            raise SchemaError(
                f"element {elem.name.local}: unexpected child {children[idx].name.local}"
            )
        return elem
    raise SchemaError(f"cannot validate against content {content!r}")
