"""Dynamic type matching: does a runtime value match a sequence type?

Used by the ``typematch`` runtime operator that ALDSP inserts when its
optimistic static rule accepted a call whose argument type only *intersects*
the parameter type (section 4.1), and by ``instance of`` evaluation.
"""

from __future__ import annotations

from typing import Sequence

from ..xml.items import AtomicValue, AttributeNode, ElementNode, Item, Node, TextNode
from .types import (
    AnyItemType,
    AnyNodeType,
    AtomicItemType,
    AttributeItemType,
    ComplexContent,
    ElementItemType,
    ItemType,
    MixedContent,
    SequenceType,
    SimpleContent,
    TextItemType,
    is_atomic_subtype,
)


def item_matches(item: Item, item_type: ItemType) -> bool:
    if isinstance(item_type, AnyItemType):
        return True
    if isinstance(item_type, AnyNodeType):
        return isinstance(item, Node)
    if isinstance(item_type, AtomicItemType):
        if not isinstance(item, AtomicValue):
            return False
        return is_atomic_subtype(item.type_name, item_type.name)
    if isinstance(item_type, TextItemType):
        return isinstance(item, TextNode)
    if isinstance(item_type, AttributeItemType):
        if not isinstance(item, AttributeNode):
            return False
        if item_type.name is not None and item.name.local != item_type.name:
            return False
        return is_atomic_subtype(item.value.type_name, item_type.type_name)
    if isinstance(item_type, ElementItemType):
        if not isinstance(item, ElementNode):
            return False
        if item_type.name is not None and item.name.local != item_type.name:
            return False
        return _content_matches(item, item_type.content)
    return False


def _content_matches(elem: ElementNode, content) -> bool:
    if content is None or isinstance(content, MixedContent):
        return True
    if isinstance(content, SimpleContent):
        if any(isinstance(c, ElementNode) for c in elem.children()):
            return False
        # Check annotation compatibility when the element carries one.
        if elem.type_annotation not in ("xs:anyType", "xs:untyped"):
            return is_atomic_subtype(elem.type_annotation, content.type_name) or (
                elem.type_annotation == "xs:untypedAtomic"
            )
        return True
    if isinstance(content, ComplexContent):
        children = [c for c in elem.children() if isinstance(c, ElementNode)]
        return _match_particles(children, content.particles)
    return False


def _match_particles(children: list[ElementNode], particles) -> bool:
    """Greedy positional matching of element children against particles."""
    idx = 0
    for particle in particles:
        count = 0
        max_count = particle.occurrence.max_count
        while idx < len(children) and (max_count is None or count < max_count):
            if item_matches(children[idx], particle.item_type):
                idx += 1
                count += 1
            else:
                break
        if count < particle.occurrence.min_count:
            return False
    return idx == len(children)


def value_matches(items: Sequence[Item], sequence_type: SequenceType) -> bool:
    """Does this sequence of items match the sequence type?"""
    count = len(items)
    if sequence_type.is_empty:
        return count == 0
    occ = sequence_type.occurrence
    if count < occ.min_count:
        return False
    if occ.max_count is not None and count > occ.max_count:
        return False
    return all(
        any(item_matches(item, alt) for alt in sequence_type.alternatives)
        for item in items
    )
