"""XML Schema type system subset used by the ALDSP compiler.

The compiler needs (section 3.1 / 4.1):

* the atomic type hierarchy (``xs:integer`` is-a ``xs:decimal`` ...),
* *structural* element types — an element type is a name plus a structural
  content type, not merely a schema-type name,
* sequence types with occurrence indicators,
* ``subtype`` and ``intersects`` tests: ALDSP's optimistic static typing
  accepts ``f($x)`` iff the static type of ``$x`` has a non-empty
  intersection with ``f``'s parameter type, inserting a runtime
  ``typematch`` unless subtyping already holds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..errors import SchemaError

# ---------------------------------------------------------------------------
# Atomic type hierarchy
# ---------------------------------------------------------------------------

#: child -> parent in the xs: atomic hierarchy (subset relevant to ALDSP).
_ATOMIC_PARENTS = {
    "xs:anySimpleType": "xs:anyType",
    "xs:anyAtomicType": "xs:anySimpleType",
    "xs:untypedAtomic": "xs:anyAtomicType",
    "xs:string": "xs:anyAtomicType",
    "xs:boolean": "xs:anyAtomicType",
    "xs:decimal": "xs:anyAtomicType",
    "xs:float": "xs:anyAtomicType",
    "xs:double": "xs:anyAtomicType",
    "xs:duration": "xs:anyAtomicType",
    "xs:dateTime": "xs:anyAtomicType",
    "xs:date": "xs:anyAtomicType",
    "xs:time": "xs:anyAtomicType",
    "xs:anyURI": "xs:anyAtomicType",
    "xs:QName": "xs:anyAtomicType",
    "xs:hexBinary": "xs:anyAtomicType",
    "xs:base64Binary": "xs:anyAtomicType",
    "xs:integer": "xs:decimal",
    "xs:nonPositiveInteger": "xs:integer",
    "xs:negativeInteger": "xs:nonPositiveInteger",
    "xs:long": "xs:integer",
    "xs:int": "xs:long",
    "xs:short": "xs:int",
    "xs:byte": "xs:short",
    "xs:nonNegativeInteger": "xs:integer",
    "xs:unsignedLong": "xs:nonNegativeInteger",
    "xs:unsignedInt": "xs:unsignedLong",
    "xs:unsignedShort": "xs:unsignedInt",
    "xs:unsignedByte": "xs:unsignedShort",
    "xs:positiveInteger": "xs:nonNegativeInteger",
    "xs:normalizedString": "xs:string",
    "xs:token": "xs:normalizedString",
}

NUMERIC_TYPES = frozenset({"xs:decimal", "xs:float", "xs:double"})


def atomic_ancestors(name: str) -> list[str]:
    """The chain from ``name`` up to ``xs:anyType`` (inclusive of name)."""
    chain = [name]
    while name in _ATOMIC_PARENTS:
        name = _ATOMIC_PARENTS[name]
        chain.append(name)
    return chain


def is_atomic_subtype(sub: str, sup: str) -> bool:
    return sup in atomic_ancestors(sub)


def is_known_atomic(name: str) -> bool:
    return name in _ATOMIC_PARENTS or name == "xs:anyType"


def is_numeric(name: str) -> bool:
    return any(anc in NUMERIC_TYPES for anc in atomic_ancestors(name))


def numeric_promote(left: str, right: str) -> str:
    """Result type of arithmetic on two numeric (or untyped) operands."""
    order = ["xs:integer", "xs:decimal", "xs:float", "xs:double"]

    def rank(name: str) -> int:
        if name == "xs:untypedAtomic":
            return order.index("xs:double")
        for i, candidate in enumerate(order):
            if is_atomic_subtype(name, candidate):
                return i
        raise SchemaError(f"{name} is not numeric")

    return order[max(rank(left), rank(right))]


# ---------------------------------------------------------------------------
# Item types
# ---------------------------------------------------------------------------


class ItemType:
    """Base class for item types."""

    def __repr__(self) -> str:
        return self.show()

    def show(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class AnyItemType(ItemType):
    def show(self) -> str:
        return "item()"


@dataclass(frozen=True)
class AnyNodeType(ItemType):
    def show(self) -> str:
        return "node()"


@dataclass(frozen=True)
class AtomicItemType(ItemType):
    """A named atomic type, e.g. ``xs:integer``."""

    name: str

    def __post_init__(self):
        if not is_known_atomic(self.name):
            raise SchemaError(f"unknown atomic type {self.name}")

    def show(self) -> str:
        return self.name


@dataclass(frozen=True)
class TextItemType(ItemType):
    def show(self) -> str:
        return "text()"


@dataclass(frozen=True)
class ElementItemType(ItemType):
    """A structural element type: ``element(NAME, content)``.

    ``name`` of ``None`` means the wildcard ``element()``.  ``content`` is a
    :class:`ContentType`; ``None`` means ANYTYPE content.  This is where
    ALDSP departs from the spec: constructed elements keep the structural
    content type of their content (section 3.1).
    """

    name: Optional[str] = None
    content: "Optional[ContentType]" = None

    def show(self) -> str:
        if self.name is None:
            return "element()"
        if self.content is None:
            return f"element({self.name})"
        return f"element({self.name}, {self.content.show()})"


@dataclass(frozen=True)
class AttributeItemType(ItemType):
    name: Optional[str] = None
    type_name: str = "xs:anyAtomicType"

    def show(self) -> str:
        if self.name is None:
            return "attribute()"
        return f"attribute({self.name}, {self.type_name})"


# ---------------------------------------------------------------------------
# Content types (structural)
# ---------------------------------------------------------------------------


class ContentType:
    def show(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class SimpleContent(ContentType):
    """Element contains a single atomic value of the named type."""

    type_name: str

    def show(self) -> str:
        return self.type_name


@dataclass(frozen=True)
class MixedContent(ContentType):
    """Anything goes (corresponds to ANYTYPE content)."""

    def show(self) -> str:
        return "mixed"


@dataclass(frozen=True)
class ComplexContent(ContentType):
    """An ordered sequence of child particles."""

    particles: tuple["Particle", ...] = ()

    def show(self) -> str:
        inner = ", ".join(p.show() for p in self.particles)
        return f"({inner})"


@dataclass(frozen=True)
class Particle:
    """One child slot in complex content: an item type with occurrence."""

    item_type: ItemType
    occurrence: "Occurrence"

    def show(self) -> str:
        return f"{self.item_type.show()}{self.occurrence.indicator}"


# ---------------------------------------------------------------------------
# Sequence types
# ---------------------------------------------------------------------------


class Occurrence(enum.Enum):
    ONE = ""
    OPTIONAL = "?"
    STAR = "*"
    PLUS = "+"

    @property
    def indicator(self) -> str:
        return self.value

    @property
    def min_count(self) -> int:
        return 0 if self in (Occurrence.OPTIONAL, Occurrence.STAR) else 1

    @property
    def max_count(self) -> Optional[int]:
        return 1 if self in (Occurrence.ONE, Occurrence.OPTIONAL) else None

    def union(self, other: "Occurrence") -> "Occurrence":
        lo = min(self.min_count, other.min_count)
        ones = [o.max_count for o in (self, other)]
        hi = None if None in ones else max(ones)  # type: ignore[type-var]
        return _occurrence_of(lo, hi)

    def intersect(self, other: "Occurrence") -> Optional["Occurrence"]:
        lo = max(self.min_count, other.min_count)
        maxes = [o.max_count for o in (self, other)]
        finite = [m for m in maxes if m is not None]
        hi = min(finite) if finite else None
        if hi is not None and lo > hi:
            return None
        return _occurrence_of(lo, hi)


def _occurrence_of(lo: int, hi: Optional[int]) -> Occurrence:
    if lo == 0:
        return Occurrence.OPTIONAL if hi == 1 else Occurrence.STAR
    return Occurrence.ONE if hi == 1 else Occurrence.PLUS


@dataclass(frozen=True)
class SequenceType:
    """``item-type occurrence`` or the empty sequence.

    ``alternatives`` allows a union of item types (needed when typing
    conditional expressions); most sequence types have one alternative.
    ``allows_empty`` subsumes ``empty-sequence()`` when no alternatives.
    """

    alternatives: tuple[ItemType, ...]
    occurrence: Occurrence = Occurrence.ONE

    def show(self) -> str:
        if not self.alternatives:
            return "empty-sequence()"
        inner = " | ".join(a.show() for a in self.alternatives)
        if len(self.alternatives) > 1:
            inner = f"({inner})"
        return f"{inner}{self.occurrence.indicator}"

    def __repr__(self) -> str:
        return f"SequenceType[{self.show()}]"

    @property
    def is_empty(self) -> bool:
        return not self.alternatives

    def allows_empty(self) -> bool:
        return self.is_empty or self.occurrence.min_count == 0

    def with_occurrence(self, occurrence: Occurrence) -> "SequenceType":
        return SequenceType(self.alternatives, occurrence)


# Convenience constructors -------------------------------------------------

EMPTY = SequenceType(())
ITEM_STAR = SequenceType((AnyItemType(),), Occurrence.STAR)
ITEM_SEQ = ITEM_STAR


def atomic(name: str, occurrence: Occurrence = Occurrence.ONE) -> SequenceType:
    return SequenceType((AtomicItemType(name),), occurrence)


def element_type(
    name: Optional[str],
    content: Optional[ContentType] = None,
    occurrence: Occurrence = Occurrence.ONE,
) -> SequenceType:
    return SequenceType((ElementItemType(name, content),), occurrence)


def one(item_type: ItemType) -> SequenceType:
    return SequenceType((item_type,), Occurrence.ONE)


def union(left: SequenceType, right: SequenceType) -> SequenceType:
    """Type of ``if (...) then left else right`` and similar joins."""
    if left.is_empty and right.is_empty:
        return EMPTY
    if left.is_empty:
        occ = right.occurrence.union(Occurrence.STAR if right.is_empty else Occurrence.OPTIONAL)
        return SequenceType(right.alternatives, _optionalize(right.occurrence))
    if right.is_empty:
        return SequenceType(left.alternatives, _optionalize(left.occurrence))
    alts = list(left.alternatives)
    for alt in right.alternatives:
        if alt not in alts:
            alts.append(alt)
    return SequenceType(tuple(alts), left.occurrence.union(right.occurrence))


def _optionalize(occ: Occurrence) -> Occurrence:
    return occ.union(Occurrence.OPTIONAL) if occ.min_count > 0 else occ


def sequence_concat(left: SequenceType, right: SequenceType) -> SequenceType:
    """Type of the comma operator."""
    if left.is_empty:
        return right
    if right.is_empty:
        return left
    alts = list(left.alternatives)
    for alt in right.alternatives:
        if alt not in alts:
            alts.append(alt)
    lo = left.occurrence.min_count + right.occurrence.min_count
    maxes = (left.occurrence.max_count, right.occurrence.max_count)
    hi = None if None in maxes else maxes[0] + maxes[1]  # type: ignore[operator]
    if hi is not None and hi > 1:
        hi = None
    occ = Occurrence.PLUS if lo >= 1 else Occurrence.STAR
    if lo == 1 and hi == 1:
        occ = Occurrence.ONE
    elif lo == 0 and hi == 1:
        occ = Occurrence.OPTIONAL
    return SequenceType(tuple(alts), occ)
