"""The paper's running-example federation, packaged for reuse.

Builds the world of Figure 3: an Oracle-flavoured ``custdb`` holding
CUSTOMER and ORDER, a DB2-flavoured ``ccdb`` holding CREDIT_CARD, a
document-style credit-rating Web service, and the ``getProfile`` logical
data service composing all three.  Used by the examples, the benchmark
harness and the integration tests.
"""

from __future__ import annotations

from .clock import Clock, VirtualClock
from .relational import Database, ForeignKey, LatencyModel
from .schema import leaf, shape
from .services import Platform
from .sources import WebServiceDescriptor, WebServiceOperation
from .xml import element

FIRST_NAMES = ["Al", "Bo", "Cy", "Di", "Ed", "Flo", "Gus", "Hal"]
LAST_NAMES = ["Jones", "Smith", "Nguyen", "Garcia", "Chen", "Okafor"]

PROFILE_SERVICE_XQUERY = '''
xquery version "1.0" encoding "UTF8";
declare namespace tns="urn:profile";

(::pragma function kind="read" ::)
declare function tns:getProfile() as element(PROFILE)* {
  for $CUSTOMER in CUSTOMER()
  return
    <PROFILE>
      <CID>{fn:data($CUSTOMER/CID)}</CID>
      <LAST_NAME>{fn:data($CUSTOMER/LAST_NAME)}</LAST_NAME>
      <ORDERS>{ getORDER($CUSTOMER) }</ORDERS>
      <CREDIT_CARDS>{ CREDIT_CARD()[CID eq $CUSTOMER/CID] }</CREDIT_CARDS>
      <RATING>{
        fn:data(getRating(
          <getRating>
            <lName>{ data($CUSTOMER/LAST_NAME) }</lName>
            <ssn>{ data($CUSTOMER/SSN) }</ssn>
          </getRating>)/getRatingResult)
      }</RATING>
    </PROFILE>
};

(::pragma function kind="read" ::)
declare function tns:getProfileByID($id as xs:string) as element(PROFILE)* {
  tns:getProfile()[CID eq $id]
};
'''

RATING_REQUEST_SHAPE = shape(
    "getRating", [leaf("lName", "xs:string"), leaf("ssn", "xs:string")]
)
RATING_RESPONSE_SHAPE = shape(
    "getRatingResponse", [leaf("getRatingResult", "xs:integer")]
)


def build_custdb(
    clock: Clock,
    customers: int = 4,
    orders_per_customer: int = 3,
    vendor: str = "oracle",
    latency: LatencyModel | None = None,
) -> Database:
    """CUSTOMER + ORDER with a foreign key (ORDER.CID -> CUSTOMER.CID)."""
    db = Database("custdb", vendor=vendor, clock=clock, latency=latency)
    db.create_table(
        "CUSTOMER",
        [("CID", "VARCHAR", False), ("FIRST_NAME", "VARCHAR"),
         ("LAST_NAME", "VARCHAR"), ("SSN", "VARCHAR"), ("SINCE", "INTEGER")],
        primary_key=["CID"],
    )
    db.create_table(
        "ORDER",
        [("OID", "VARCHAR", False), ("CID", "VARCHAR"), ("AMOUNT", "INTEGER")],
        primary_key=["OID"],
        foreign_keys=[ForeignKey(("CID",), "CUSTOMER", ("CID",))],
    )
    oid = 0
    for i in range(1, customers + 1):
        db.table("CUSTOMER").insert({
            "CID": f"C{i}",
            "FIRST_NAME": FIRST_NAMES[(i - 1) % len(FIRST_NAMES)],
            "LAST_NAME": LAST_NAMES[(i - 1) % len(LAST_NAMES)],
            "SSN": f"{100 + i}",
            "SINCE": 864000 * i,
        })
        for _j in range(orders_per_customer):
            oid += 1
            db.table("ORDER").insert(
                {"OID": f"O{oid}", "CID": f"C{i}", "AMOUNT": 10 * oid}
            )
    return db


def build_ccdb(
    clock: Clock,
    customers: int = 4,
    vendor: str = "db2",
    latency: LatencyModel | None = None,
) -> Database:
    db = Database("ccdb", vendor=vendor, clock=clock, latency=latency)
    db.create_table(
        "CREDIT_CARD",
        [("CCID", "VARCHAR", False), ("CID", "VARCHAR"), ("NUMBER", "VARCHAR")],
        primary_key=["CCID"],
    )
    for i in range(1, customers + 1):
        db.table("CREDIT_CARD").insert(
            {"CCID": f"CC{i}", "CID": f"C{i}", "NUMBER": f"44{i:04d}"}
        )
    return db


def rating_service(latency_ms: float = 30.0, call_log: list | None = None
                   ) -> WebServiceDescriptor:
    """The credit-rating Web service: rating = 600 + ssn."""

    def handler(doc):
        if call_log is not None:
            call_log.append(doc.child_elements()[0].string_value())
        ssn = doc.child_elements()[1].string_value()
        return element("getRatingResponse", element("getRatingResult", 600 + int(ssn)))

    return WebServiceDescriptor(
        "RatingService",
        [WebServiceOperation("getRating", RATING_REQUEST_SHAPE,
                             RATING_RESPONSE_SHAPE, handler, latency_ms=latency_ms)],
    )


def build_demo_platform(
    customers: int = 4,
    orders_per_customer: int = 3,
    ws_latency_ms: float = 30.0,
    clock: Clock | None = None,
    deploy_profile: bool = True,
    db_latency: LatencyModel | None = None,
    ws_call_log: list | None = None,
) -> Platform:
    """Assemble the full running-example federation."""
    clock = clock or VirtualClock()
    platform = Platform(clock=clock)
    platform.register_database(
        build_custdb(clock, customers, orders_per_customer, latency=db_latency)
    )
    platform.register_database(build_ccdb(clock, customers, latency=db_latency))
    platform.register_web_service(rating_service(ws_latency_ms, ws_call_log))
    if deploy_profile:
        platform.deploy(PROFILE_SERVICE_XQUERY, name="ProfileService")
    return platform
