"""Virtual and wall clocks.

The latency model of the simulated data sources (network roundtrips,
per-row transfer cost, service response times) charges time to a clock.
Benchmarks use :class:`VirtualClock` so results are deterministic and fast;
the asynchronous-execution machinery (section 5.4) can use
:class:`WallClock` to demonstrate real overlap.
"""

from __future__ import annotations

import time

from .concurrency import TrackedRLock, guarded_by


class Clock:
    """Abstract clock measured in milliseconds."""

    def now_ms(self) -> float:
        raise NotImplementedError

    def charge_ms(self, millis: float) -> None:
        """Record that ``millis`` of latency elapsed."""
        raise NotImplementedError


@guarded_by("_lock")
class VirtualClock(Clock):
    """Deterministic clock: ``charge_ms`` advances simulated time.

    Supports *branch accounting* for simulated parallelism: inside a
    branch, charges accumulate into the branch rather than advancing the
    main clock; when a parallel group of branches joins, the main clock
    advances by the **maximum** branch total — the latency-overlap
    semantics of asynchronous execution (section 5.4).

    Field access is lock-disciplined, but the branch *stack* makes this
    clock single-query by design: concurrent queries would interleave
    their branch accounting.  Multi-threaded work uses :class:`WallClock`
    (the threaded stress harness does).
    """

    def __init__(self):
        self._now = 0.0
        self._branches: list[float] = []
        self._lock = TrackedRLock("VirtualClock")

    def now_ms(self) -> float:
        with self._lock:
            return self._now + sum(self._branches)

    def charge_ms(self, millis: float) -> None:
        with self._lock:
            if self._branches:
                self._branches[-1] += millis
            else:
                self._now += millis

    def set_ms(self, millis: float) -> None:
        with self._lock:
            self._now = max(self._now, millis)

    # -- branch accounting ---------------------------------------------------

    def begin_branch(self) -> None:
        with self._lock:
            self._branches.append(0.0)

    def end_branch(self) -> float:
        """Close the innermost branch and return its accumulated charge
        (the caller decides how to account for it)."""
        with self._lock:
            return self._branches.pop()


class WallClock(Clock):
    """Real time; ``charge_ms`` sleeps, so latencies are physically real
    and thread overlap behaves like production."""

    def now_ms(self) -> float:
        return time.monotonic() * 1000.0

    def charge_ms(self, millis: float) -> None:
        if millis > 0:
            time.sleep(millis / 1000.0)
