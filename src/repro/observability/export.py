"""Exporters for traces and metrics (O-OBS).

* :func:`chrome_trace` / :func:`chrome_trace_json` — the span tree as
  Chrome ``trace_event`` JSON (open in ``chrome://tracing`` or Perfetto).
  Events are complete-events (``"ph": "X"``) in span-id order with
  timestamps in microseconds; overlapping branches are laid out on
  separate deterministic ``tid`` lanes.  The JSON is rendered with sorted
  keys and fixed separators, so a deterministic run exports
  byte-identical text.
* :func:`render_span_tree` — an indented text rendering of one trace.
* :func:`render_metrics` — the unified metrics snapshot as a text
  dashboard (``repro stats``).
"""

from __future__ import annotations

import json

from .tracer import Span

#: span kinds that always get their own timeline lane (they overlap their
#: siblings by construction)
_BRANCH_KINDS = frozenset({"async.branch"})


def chrome_trace(roots: list[Span], process_name: str = "repro") -> dict:
    """The Chrome ``trace_event`` payload for one or more trace roots."""
    events: list[dict] = [{
        "args": {"name": process_name},
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "tid": 0,
        "ts": 0,
    }]
    lanes = _Lanes()
    for root in roots:
        _emit(root, 0, lanes, events)
    return {"displayTimeUnit": "ms", "traceEvents": events}


def chrome_trace_json(roots: list[Span], process_name: str = "repro") -> str:
    """Byte-stable JSON text of :func:`chrome_trace`."""
    return json.dumps(chrome_trace(roots, process_name),
                      sort_keys=True, separators=(",", ":"))


class _Lanes:
    """Deterministic ``tid`` allocation: spans inherit their parent's lane
    unless they are branch spans, which each get the next fresh lane."""

    def __init__(self) -> None:
        self.next_lane = 1

    def lane_for(self, span: Span, parent_lane: int) -> int:
        if span.kind in _BRANCH_KINDS:
            lane = self.next_lane
            self.next_lane += 1
            return lane
        return parent_lane


def _emit(span: Span, parent_lane: int, lanes: _Lanes, events: list[dict]) -> None:
    lane = lanes.lane_for(span, parent_lane)
    end = span.end_ms if span.end_ms is not None else span.start_ms
    events.append({
        "args": _json_args(span),
        "cat": span.kind,
        "dur": round((end - span.start_ms) * 1000.0, 3),
        "name": span.name or span.kind,
        "ph": "X",
        "pid": 1,
        "tid": lane,
        "ts": round(span.start_ms * 1000.0, 3),
    })
    for child in span.children:
        _emit(child, lane, lanes, events)


def _json_args(span: Span) -> dict:
    args: dict = {"sid": span.sid, "kind": span.kind}
    for key, value in span.attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            args[key] = value
        else:
            args[key] = str(value)
    return args


# ---------------------------------------------------------------------------
# Text renderings
# ---------------------------------------------------------------------------


def render_span_tree(root: Span) -> str:
    """An indented, readable text rendering of one trace."""
    lines: list[str] = []
    _tree_lines(root, 0, lines)
    return "\n".join(lines)


def _tree_lines(span: Span, depth: int, lines: list[str]) -> None:
    label = span.kind if span.name is None else f"{span.kind} {span.name}"
    attrs = " ".join(
        f"{key}={value}" for key, value in span.attrs.items() if key != "op"
    )
    suffix = f"  [{attrs}]" if attrs else ""
    lines.append(f"{'  ' * depth}{label}  {span.elapsed_ms:.3f}ms{suffix}")
    for child in span.children:
        _tree_lines(child, depth + 1, lines)


def render_metrics(snapshot: dict) -> str:
    """The metrics snapshot as an aligned text dashboard.

    Histogram series render their count/sum/avg; empty series are shown —
    a zero counter is information (the path was never taken).
    """
    if not snapshot:
        return "(no metrics)"
    width = max(len(name) for name in snapshot)
    lines = []
    for name, value in snapshot.items():
        if isinstance(value, dict):
            rendered = (f"count={value.get('count', 0)} "
                        f"sum={value.get('sum', 0)}ms avg={value.get('avg')}ms "
                        f"min={value.get('min')} max={value.get('max')}")
        else:
            rendered = str(value)
        lines.append(f"{name:<{width}}  {rendered}")
    return "\n".join(lines)


def render_window(snapshot: dict) -> str:
    """The rolling-window snapshot as an aligned text dashboard (O-CONT).

    Windowed counters render their in-window total and per-second rate;
    windowed histograms their count/avg and nearest-rank percentiles over
    the live buckets.
    """
    if not snapshot:
        return "(no windowed metrics)"
    width = max(len(name) for name in snapshot)
    lines = []
    for name, value in snapshot.items():
        if "window_total" in value:
            rendered = (f"total={value['window_total']:g} "
                        f"rate={value['rate_per_s']:g}/s")
        else:
            rendered = (f"count={value.get('count', 0)} "
                        f"avg={value.get('avg')}ms p50={value.get('p50')} "
                        f"p95={value.get('p95')} p99={value.get('p99')}")
        lines.append(f"{name:<{width}}  {rendered}")
    return "\n".join(lines)
