"""Continuous production observability (O-CONT).

The PR-4 plane is all-or-nothing: ``set_tracing(True)`` records every
span of every query, which is exactly right for debugging one query and
exactly wrong under the serving layer's sustained concurrent load.  This
module makes observation *continuous* — always on, bounded, and cheap —
in four pieces:

* :class:`TraceSampler` — seeded head sampling.  One RNG draw per
  request decides whether a full span tree is recorded; the stream is
  drawn under a lock in request order, so virtual-clock runs (which are
  serial) make byte-identical decisions every time.
* :class:`ContinuousTracer` — the tracer installed by
  ``Platform.set_continuous()``.  Unsampled requests cross every
  instrumentation point on the :data:`~repro.observability.tracer.
  NOOP_SPAN` fast path (a counter bump, no allocation); sampled requests
  get a private per-request :class:`~repro.observability.tracer.
  QueryTracer` carried in a ``ContextVar`` so concurrent requests —
  and their async-pool branches, which inherit the caller's context —
  never interleave span trees.  **Tail-based retention** then decides
  what to keep: slow (over ``slow_ms``), errored, degraded or shed
  requests keep their full tree in a bounded ring; fast-and-healthy
  trees are summarized (plan stats, windowed latency) and dropped.
* :class:`WindowedMetrics` — a ring-of-buckets rolling window next to
  the cumulative registry.  Bucket ``epoch = floor(now_ms / bucket_ms)``
  maps to slot ``epoch % nbuckets``; writes lazily reset a slot whose
  recorded epoch is stale, and reads sum only slots whose epoch falls in
  ``(current - nbuckets, current]`` — so ``server.*`` rates and
  percentiles reflect the last ``window_s`` seconds, not process
  lifetime.
* :class:`FlightRecorder` — a lock-guarded ring of structured
  per-request :class:`FlightRecord`\\ s (tenant, plan fingerprint, cost,
  admission decision, per-phase latency, outcome, degradations) for
  *every* request, sampled or not.  Cumulative per-outcome counters sit
  next to the ring so the ledger reconciles exactly with the admission
  counters even after eviction.
* :class:`PlanStatsStore` — the §9 observed-cost feedback store: EWMA
  rows/elapsed/roundtrips keyed by ``(plan fingerprint, operator id)``,
  fed from every retained *or* summarized trace and from ``profile()``,
  with the admission-path cost estimate recorded alongside so a
  cost-based optimizer can consume estimated-vs-actual deltas.

Thread-safety (A-CONC): every class here is crossed by request threads
and pool threads; all shared state is lock-disciplined (``@guarded_by``,
``TrackedRLock``, detector hooks), and the windowed instruments share
their registry's lock exactly like the cumulative ones do.
"""

from __future__ import annotations

import contextvars
import hashlib
import random
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..clock import Clock
from ..concurrency import RACE, TrackedRLock, guarded_by
from .metrics import Histogram, nearest_rank, series_name
from .profile import aggregate_operators
from .tracer import NOOP_SPAN, QueryTracer, Span

if TYPE_CHECKING:
    from .metrics import MetricsRegistry
    from .profile import OperatorActuals


def plan_fingerprint(plan_key: str) -> str:
    """A short stable identifier for a compiled plan: the truncated
    SHA-256 of its plan-cache key (query text + sorted external names).
    Deterministic across processes and runs — safe to persist."""
    return hashlib.sha256(plan_key.encode("utf-8")).hexdigest()[:12]


@dataclass
class ContinuousConfig:
    """Knobs for the continuous plane (``Platform.set_continuous``)."""

    #: head-sampling probability per request (1.0 = trace everything)
    sample_rate: float = 1.0 / 16.0
    #: sampler RNG seed — same seed, same request order => same decisions
    seed: int = 0
    #: tail retention: a sampled request at/over this elapsed is "slow"
    slow_ms: float = 250.0
    #: bounded ring of retained span trees
    retain_capacity: int = 64

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        if self.retain_capacity < 1:
            raise ValueError("retain_capacity must be >= 1")


@guarded_by("_lock")
class TraceSampler:
    """Seeded head sampling: one draw per request, drawn under a lock so
    the decision stream is a pure function of (seed, request order)."""

    def __init__(self, rate: float = 1.0 / 16.0, seed: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("sample rate must be in [0, 1]")
        self.rate = rate
        self.seed = seed
        self._lock = TrackedRLock("TraceSampler")
        self._rng = random.Random(seed)
        self.decisions = 0
        self.sampled = 0

    def decide(self) -> bool:
        """True iff this request should record a full span tree."""
        with self._lock:
            self.decisions += 1
            hit = self._rng.random() < self.rate
            if hit:
                self.sampled += 1
            RACE.detector.on_access(self, "decisions", True)
            return hit

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "rate": self.rate,
                "seed": self.seed,
                "decisions": self.decisions,
                "sampled": self.sampled,
            }


# ---------------------------------------------------------------------------
# Windowed metrics: ring-of-buckets counters and histograms
# ---------------------------------------------------------------------------


@guarded_by("_lock")
class WindowedCounter:
    """A counter over the last ``nbuckets * bucket_ms`` milliseconds.

    One slot per bucket epoch modulo ``nbuckets``; a write into a slot
    whose recorded epoch is stale resets it first (lazy rotation), and a
    read sums only slots whose epoch is still inside the window."""

    def __init__(self, clock: Clock, bucket_ms: float, nbuckets: int,
                 lock: TrackedRLock | None = None):
        self.clock = clock
        self.bucket_ms = bucket_ms
        self._lock = lock if lock is not None else TrackedRLock("WindowedCounter")
        self._counts = [0.0] * nbuckets
        self._epochs = [-1] * nbuckets

    def _slot(self, now_ms: float) -> int:  # caller-holds: _lock
        epoch = int(now_ms // self.bucket_ms)
        index = epoch % len(self._counts)
        if self._epochs[index] != epoch:
            self._counts[index] = 0.0
            self._epochs[index] = epoch
        return index

    def inc_at(self, now_ms: float, n: float = 1) -> None:  # caller-holds: _lock
        index = self._slot(now_ms)
        self._counts[index] += n
        RACE.detector.on_access(self, "_counts", True)

    def inc(self, n: float = 1) -> None:
        now = self.clock.now_ms()
        with self._lock:
            self.inc_at(now, n)

    def total(self) -> float:
        """Sum over the live window (stale slots excluded, not rotated)."""
        now = self.clock.now_ms()
        with self._lock:
            epoch = int(now // self.bucket_ms)
            n = len(self._counts)
            return sum(self._counts[i] for i in range(n)
                       if self._epochs[i] > epoch - n)

    @property
    def window_ms(self) -> float:
        return self.bucket_ms * len(self._counts)

    def reset(self) -> None:
        with self._lock:
            self._counts = [0.0] * len(self._counts)
            self._epochs = [-1] * len(self._epochs)

    def snapshot(self) -> dict:
        total = self.total()
        return {
            "window_total": round(total, 3),
            "rate_per_s": round(total / (self.window_ms / 1000.0), 3),
        }


@guarded_by("_lock")
class WindowedHistogram:
    """A histogram over the rolling window: one bounded deterministic
    :class:`~repro.observability.metrics.Histogram` reservoir per bucket,
    merged at read time (counts/sums add; percentiles run nearest-rank
    over the concatenated live reservoirs)."""

    def __init__(self, clock: Clock, bucket_ms: float, nbuckets: int,
                 lock: TrackedRLock | None = None):
        self.clock = clock
        self.bucket_ms = bucket_ms
        self._lock = lock if lock is not None else TrackedRLock("WindowedHistogram")
        # bucket reservoirs share this window's lock (one acquisition
        # covers rotation + the observe)
        self._hists = [Histogram(self._lock) for _ in range(nbuckets)]
        self._epochs = [-1] * nbuckets

    def _slot(self, now_ms: float) -> int:  # caller-holds: _lock
        epoch = int(now_ms // self.bucket_ms)
        index = epoch % len(self._hists)
        if self._epochs[index] != epoch:
            self._hists[index].reset()
            self._epochs[index] = epoch
        return index

    def observe_at(self, now_ms: float, value: float) -> None:  # caller-holds: _lock
        index = self._slot(now_ms)
        self._hists[index].observe(value)
        RACE.detector.on_access(self, "_epochs", True)

    def observe(self, value: float) -> None:
        now = self.clock.now_ms()
        with self._lock:
            self.observe_at(now, value)

    def _live(self) -> "list[Histogram]":  # caller-holds: _lock
        epoch = int(self.clock.now_ms() // self.bucket_ms)
        n = len(self._hists)
        return [self._hists[i] for i in range(n)
                if self._epochs[i] > epoch - n]

    def percentile(self, q: float) -> float | None:
        with self._lock:
            merged: list[float] = []
            for hist in self._live():
                merged.extend(hist.samples())
            return nearest_rank(sorted(merged), q)

    @property
    def window_ms(self) -> float:
        return self.bucket_ms * len(self._hists)

    def reset(self) -> None:
        with self._lock:
            for hist in self._hists:
                hist.reset()
            self._epochs = [-1] * len(self._epochs)

    def snapshot(self) -> dict:
        with self._lock:
            live = self._live()
            count = sum(h.count for h in live)
            total = sum(h.total for h in live)
            mins = [h.min for h in live if h.min is not None]
            maxs = [h.max for h in live if h.max is not None]
            merged: list[float] = []
            for hist in live:
                merged.extend(hist.samples())
            ordered = sorted(merged)

            def rank(q: float) -> float | None:
                value = nearest_rank(ordered, q)
                return round(value, 3) if value is not None else None

            return {
                "count": count,
                "sum": round(total, 3),
                "min": round(min(mins), 3) if mins else None,
                "max": round(max(maxs), 3) if maxs else None,
                "avg": round(total / count, 3) if count else None,
                "p50": rank(50),
                "p95": rank(95),
                "p99": rank(99),
            }


@guarded_by("_lock")
class WindowedMetrics:
    """The rolling-window registry: labeled windowed counters/histograms
    sharing one lock (mirroring :class:`~repro.observability.metrics.
    MetricsRegistry`), read as one sorted snapshot."""

    def __init__(self, clock: Clock, window_s: float = 60.0,
                 nbuckets: int = 12):
        if window_s <= 0 or nbuckets < 1:
            raise ValueError("need window_s > 0 and nbuckets >= 1")
        self.clock = clock
        self.window_s = float(window_s)
        self.nbuckets = int(nbuckets)
        self.bucket_ms = self.window_s * 1000.0 / self.nbuckets
        self._lock = TrackedRLock("WindowedMetrics")
        self._instruments: dict[str, object] = {}

    def _instrument(self, factory, name: str, labels: dict[str, str]):
        key = series_name(name, labels)
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory(self.clock, self.bucket_ms,
                                     self.nbuckets, self._lock)
                self._instruments[key] = instrument
                RACE.detector.on_access(self, "_instruments", True)
            return instrument

    def counter(self, name: str, **labels) -> WindowedCounter:
        return self._instrument(WindowedCounter, name, labels)

    def histogram(self, name: str, **labels) -> WindowedHistogram:
        return self._instrument(WindowedHistogram, name, labels)

    def observe_request(self, elapsed_ms: float,
                        outcome: str = "completed") -> None:
        """The always-on per-request fast path: bump ``trace.requests``
        and observe ``trace.latency_ms`` under ONE lock acquisition (the
        instruments share the registry lock), with one clock read."""
        now = self.clock.now_ms()
        with self._lock:
            counter = self._instruments.get("trace.requests")
            if counter is None:
                counter = WindowedCounter(self.clock, self.bucket_ms,
                                          self.nbuckets, self._lock)
                self._instruments["trace.requests"] = counter
            hist = self._instruments.get("trace.latency_ms")
            if hist is None:
                hist = WindowedHistogram(self.clock, self.bucket_ms,
                                         self.nbuckets, self._lock)
                self._instruments["trace.latency_ms"] = hist
            counter.inc_at(now)
            hist.observe_at(now, elapsed_ms)
            RACE.detector.on_access(self, "_instruments", True)
        if outcome != "completed":
            self.counter("trace.failed", outcome=outcome).inc()

    def snapshot(self) -> dict:
        with self._lock:
            instruments = dict(self._instruments)
        return {key: instrument.snapshot()
                for key, instrument in sorted(instruments.items())}

    def reset(self) -> None:
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


@dataclass
class FlightRecord:
    """One request as the server saw it — recorded for *every* request
    (the flight recorder is not sampled; only span trees are)."""

    tenant: str
    session_id: str
    fingerprint: str
    cost: float
    admission: str          # "admitted" | "shed:<reason>" | "rejected"
    outcome: str            # completed | shed | deadline | error | invalid
    elapsed_ms: float
    ts_ms: float
    phases: dict[str, float] = field(default_factory=dict)
    degradations: int = 0
    items: int = 0
    error: str | None = None
    sampled: bool = False
    retained: bool = False
    seq: int = 0

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "ts_ms": round(self.ts_ms, 3),
            "tenant": self.tenant,
            "session_id": self.session_id,
            "fingerprint": self.fingerprint,
            "cost": self.cost,
            "admission": self.admission,
            "outcome": self.outcome,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "phases": {name: round(ms, 3)
                       for name, ms in sorted(self.phases.items())},
            "degradations": self.degradations,
            "items": self.items,
            "error": self.error,
            "sampled": self.sampled,
            "retained": self.retained,
        }


@guarded_by("_lock")
class FlightRecorder:
    """A bounded ring of :class:`FlightRecord`\\ s plus cumulative
    per-outcome counters (the ring forgets, the ledger does not)."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._lock = TrackedRLock("FlightRecorder")
        self._ring: deque[FlightRecord] = deque(maxlen=capacity)
        self.recorded = 0
        self.outcomes: dict[str, int] = {}

    def record(self, record: FlightRecord) -> FlightRecord:
        with self._lock:
            self.recorded += 1
            record.seq = self.recorded
            self.outcomes[record.outcome] = \
                self.outcomes.get(record.outcome, 0) + 1
            self._ring.append(record)
            RACE.detector.on_access(self, "recorded", True)
        return record

    def records(self, tenant: str | None = None, outcome: str | None = None,
                limit: int | None = None) -> list[FlightRecord]:
        """Matching records, oldest first (most recent ``limit`` kept)."""
        with self._lock:
            out = list(self._ring)
        if tenant is not None:
            out = [r for r in out if r.tenant == tenant]
        if outcome is not None:
            out = [r for r in out if r.outcome == outcome]
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "recorded": self.recorded,
                "retained": len(self._ring),
                "dropped": self.recorded - len(self._ring),
                "outcomes": dict(sorted(self.outcomes.items())),
            }


# ---------------------------------------------------------------------------
# Plan-stats feedback store
# ---------------------------------------------------------------------------


#: smoothing factor for the per-operator EWMAs (matches the admission
#: controller's service-time smoothing)
EWMA_ALPHA = 0.2


@dataclass
class PlanOperatorStats:
    """EWMA actuals for one (plan fingerprint, operator id) pair."""

    observations: int = 0
    ewma_rows: float = 0.0
    ewma_elapsed_ms: float = 0.0
    ewma_roundtrips: float = 0.0

    def update(self, rows: float, elapsed_ms: float, roundtrips: float) -> None:
        self.observations += 1
        if self.observations == 1:
            self.ewma_rows = float(rows)
            self.ewma_elapsed_ms = float(elapsed_ms)
            self.ewma_roundtrips = float(roundtrips)
        else:
            self.ewma_rows += EWMA_ALPHA * (rows - self.ewma_rows)
            self.ewma_elapsed_ms += EWMA_ALPHA * (elapsed_ms - self.ewma_elapsed_ms)
            self.ewma_roundtrips += EWMA_ALPHA * (roundtrips - self.ewma_roundtrips)

    def to_dict(self) -> dict:
        return {
            "observations": self.observations,
            "ewma_rows": round(self.ewma_rows, 3),
            "ewma_elapsed_ms": round(self.ewma_elapsed_ms, 3),
            "ewma_roundtrips": round(self.ewma_roundtrips, 3),
        }


@guarded_by("_lock")
class PlanStatsStore:
    """Per-plan, per-operator observed actuals next to the admission
    path's cost estimate — the store ROADMAP item 1's cost-based
    optimizer reads estimated-vs-actual deltas from."""

    def __init__(self):
        self._lock = TrackedRLock("PlanStatsStore")
        self._operators: dict[tuple[str, int], PlanOperatorStats] = {}
        self._estimates: dict[str, float] = {}
        self.traces_observed = 0

    def observe(self, fingerprint: str,
                aggregates: "dict[int, OperatorActuals]") -> None:
        """Fold one trace's per-operator actuals into the EWMAs."""
        if not aggregates:
            return
        with self._lock:
            self.traces_observed += 1
            for op_id, actuals in aggregates.items():
                stats = self._operators.setdefault(
                    (fingerprint, op_id), PlanOperatorStats())
                stats.update(actuals.rows, actuals.elapsed_ms,
                             actuals.roundtrips)
            RACE.detector.on_access(self, "_operators", True)

    def set_estimate(self, fingerprint: str, cost: float) -> None:
        """Record the plan's static cost estimate (admission path)."""
        with self._lock:
            self._estimates[fingerprint] = cost
            RACE.detector.on_access(self, "_estimates", True)

    def operators(self, fingerprint: str) -> dict[int, PlanOperatorStats]:
        with self._lock:
            return {op_id: stats
                    for (fp, op_id), stats in self._operators.items()
                    if fp == fingerprint}

    def snapshot(self) -> dict:
        with self._lock:
            fingerprints = sorted(
                {fp for fp, _ in self._operators} | set(self._estimates))
            return {
                "traces_observed": self.traces_observed,
                "plans": {
                    fp: {
                        "estimate": self._estimates.get(fp),
                        "operators": {
                            op_id: self._operators[(fp, op_id)].to_dict()
                            for _fp, op_id in sorted(self._operators)
                            if _fp == fp
                        },
                    }
                    for fp in fingerprints
                },
            }


# ---------------------------------------------------------------------------
# The continuous tracer
# ---------------------------------------------------------------------------


#: the per-request tracer for the *calling context*; async-pool branches
#: inherit it because the executor runs thunks in a copy of the caller's
#: context (the same mechanism that carries external-variable bindings).
#: Three states: None = no open request; UNSAMPLED = a request is open
#: but head sampling declined it (instrumentation stays on the no-op
#: fast path, and nested begin_request calls know not to re-draw);
#: a QueryTracer = open and sampled.
_ACTIVE_TRACER: contextvars.ContextVar = contextvars.ContextVar(
    "repro.continuous_tracer", default=None
)

#: sentinel marking "request open, not sampled" in _ACTIVE_TRACER
UNSAMPLED = object()


class RequestTrace:
    """The handle ``begin_request`` returns; pass it to ``end_request``."""

    __slots__ = ("fingerprint", "sampled", "start_ms", "tracer", "_token")

    def __init__(self, fingerprint: str | None, sampled: bool,
                 start_ms: float, tracer: QueryTracer | None, token):
        self.fingerprint = fingerprint
        self.sampled = sampled
        self.start_ms = start_ms
        self.tracer = tracer
        self._token = token


@guarded_by("_lock")
class ContinuousTracer:
    """Always-on sampled tracing with tail-based retention.

    Implements the tracer protocol (``start``/``instant``/``current``/
    ``roots``/``last_root``), so every existing instrumentation point
    works unchanged: calls outside a sampled request return
    :data:`~repro.observability.tracer.NOOP_SPAN`; calls inside one
    delegate to that request's private :class:`QueryTracer`.
    """

    enabled = True

    def __init__(self, clock: Clock, sampler: TraceSampler,
                 config: ContinuousConfig, plan_stats: PlanStatsStore,
                 window: WindowedMetrics | None = None,
                 metrics: "Optional[MetricsRegistry]" = None):
        self.clock = clock
        self.sampler = sampler
        self.config = config
        self.plan_stats = plan_stats
        self.window = window
        self.metrics = metrics
        self._lock = TrackedRLock("ContinuousTracer")
        self._retained: deque[Span] = deque(maxlen=config.retain_capacity)
        #: unsampled instrumentation crossings (the NOOP_SPAN fast path);
        #: approximate by design — see NoopTracer.calls
        self.calls = 0
        self.spans_allocated = 0
        self.traces_retained = 0
        self.traces_summarized = 0

    # -- the tracer protocol (unconditional callsites) -----------------------

    def start(self, kind: str, name: str | None = None,
              parent: Span | None = None, **attrs):
        tracer = _ACTIVE_TRACER.get()
        if tracer is None or tracer is UNSAMPLED:
            self.calls += 1  # race-ok: monitoring counter; same contract as NoopTracer.calls
            return NOOP_SPAN
        return tracer.start(kind, name, parent, **attrs)

    def instant(self, kind: str, name: str | None = None, **attrs):
        tracer = _ACTIVE_TRACER.get()
        if tracer is None or tracer is UNSAMPLED:
            self.calls += 1  # race-ok: monitoring counter; same contract as NoopTracer.calls
            return NOOP_SPAN
        return tracer.instant(kind, name, **attrs)

    def current(self) -> Span | None:
        tracer = _ACTIVE_TRACER.get()
        if tracer is None or tracer is UNSAMPLED:
            return None
        return tracer.current()

    # -- request lifecycle ---------------------------------------------------

    def in_request(self) -> bool:
        """True iff this context is inside an open request (sampled or
        not) — callers skip fingerprinting work when it would be nested."""
        return _ACTIVE_TRACER.get() is not None

    def begin_request(self, fingerprint: str | None = None) -> RequestTrace | None:
        """Start one request's observation; returns None when called
        inside an already-open request (the server wraps the platform's
        own query path — the outer request owns the trace and the one
        sampling decision)."""
        if _ACTIVE_TRACER.get() is not None:
            return None
        # request counts fall out of the sampler's own counters
        # (requests == decisions), so this path takes exactly one lock
        sampled = self.sampler.decide()
        tracer = None
        if sampled:
            # a private tracer per request: span ids restart at 1, so a
            # retained tree is identical no matter what ran concurrently
            tracer = QueryTracer(self.clock, None)
            token = _ACTIVE_TRACER.set(tracer)
        else:
            # mark the request open even when unsampled, so the nested
            # platform-level begin_request neither re-draws the sampler
            # nor double-counts the request
            token = _ACTIVE_TRACER.set(UNSAMPLED)
        return RequestTrace(fingerprint, sampled, self.clock.now_ms(),
                            tracer, token)

    def end_request(self, handle: RequestTrace | None,
                    outcome: str = "completed", degraded: int = 0,
                    force_retain: bool = False) -> bool:
        """Close one request: feed summary stats, then apply tail
        retention.  Returns True iff the span tree was retained."""
        if handle is None:
            return False
        if handle._token is not None:
            _ACTIVE_TRACER.reset(handle._token)
        elapsed = self.clock.now_ms() - handle.start_ms
        window = self.window
        if window is not None:
            window.observe_request(elapsed, outcome)
        if not handle.sampled:
            return False
        tracer = handle.tracer
        if handle.fingerprint is not None:
            self.plan_stats.observe(handle.fingerprint,
                                    aggregate_operators(tracer.roots))
        slow = elapsed >= self.config.slow_ms
        retain = (force_retain or slow or degraded > 0
                  or outcome != "completed")
        with self._lock:
            self.spans_allocated += tracer.spans_allocated
            if retain and tracer.roots:
                self.traces_retained += 1
                for root in tracer.roots:
                    self._retained.append(root)
            else:
                retain = False
                self.traces_summarized += 1
            RACE.detector.on_access(self, "spans_allocated", True)
        return retain

    # -- introspection -------------------------------------------------------

    def retained_roots(self) -> list[Span]:
        """The retained span trees, oldest first (bounded ring)."""
        with self._lock:
            return list(self._retained)

    @property
    def roots(self) -> list[Span]:
        return self.retained_roots()

    @property
    def last_root(self) -> Span | None:
        with self._lock:
            return self._retained[-1] if self._retained else None

    def snapshot(self) -> dict:
        sampler = self.sampler.snapshot()
        with self._lock:
            return {
                "sampler": sampler,
                "slow_ms": self.config.slow_ms,
                "requests": sampler["decisions"],
                "requests_sampled": sampler["sampled"],
                "traces_retained": self.traces_retained,
                "traces_summarized": self.traces_summarized,
                "retained_in_ring": len(self._retained),
                "spans_allocated": self.spans_allocated,
                "unsampled_calls": self.calls,
            }
