"""Observability plane (O-OBS): query tracing, operator profiling, the
unified metrics registry, and the continuous production plane (O-CONT:
sampled tracing, windowed metrics, flight recorder, plan stats).  See
DESIGN.md sections O-OBS and O-CONT."""

from .continuous import (
    ContinuousConfig,
    ContinuousTracer,
    FlightRecord,
    FlightRecorder,
    PlanOperatorStats,
    PlanStatsStore,
    RequestTrace,
    TraceSampler,
    WindowedCounter,
    WindowedHistogram,
    WindowedMetrics,
    plan_fingerprint,
)
from .export import (
    chrome_trace,
    chrome_trace_json,
    render_metrics,
    render_span_tree,
    render_window,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    nearest_rank,
    series_name,
)
from .profile import (
    OperatorActuals,
    QueryProfile,
    aggregate_operators,
    make_annotator,
    profile_render,
)
from .tracer import NOOP_SPAN, NoopTracer, QueryTracer, Span

__all__ = [
    "NOOP_SPAN",
    "ContinuousConfig",
    "ContinuousTracer",
    "Counter",
    "FlightRecord",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopTracer",
    "OperatorActuals",
    "PlanOperatorStats",
    "PlanStatsStore",
    "QueryProfile",
    "QueryTracer",
    "RequestTrace",
    "Span",
    "TraceSampler",
    "WindowedCounter",
    "WindowedHistogram",
    "WindowedMetrics",
    "aggregate_operators",
    "chrome_trace",
    "chrome_trace_json",
    "make_annotator",
    "nearest_rank",
    "plan_fingerprint",
    "profile_render",
    "render_metrics",
    "render_span_tree",
    "render_window",
    "series_name",
]
