"""Observability plane (O-OBS): query tracing, operator profiling, and the
unified metrics registry.  See DESIGN.md section O-OBS."""

from .export import (
    chrome_trace,
    chrome_trace_json,
    render_metrics,
    render_span_tree,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, series_name
from .profile import (
    OperatorActuals,
    QueryProfile,
    aggregate_operators,
    make_annotator,
    profile_render,
)
from .tracer import NOOP_SPAN, NoopTracer, QueryTracer, Span

__all__ = [
    "NOOP_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopTracer",
    "OperatorActuals",
    "QueryProfile",
    "QueryTracer",
    "Span",
    "aggregate_operators",
    "chrome_trace",
    "chrome_trace_json",
    "make_annotator",
    "profile_render",
    "render_metrics",
    "render_span_tree",
    "series_name",
]
