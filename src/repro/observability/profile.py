"""``explain analyze``: the plan render annotated with observed actuals.

``Platform.profile(query)`` executes the query with a fresh
:class:`~repro.observability.tracer.QueryTracer` installed and re-renders
the compiled plan through :func:`repro.compiler.explain.explain`, passing
an annotator that joins the span tree back to the plan by **operator id**
— the stable pre-order ids the compiler stamps on operator nodes
(:func:`repro.compiler.explain.assign_operator_ids`), recorded as the
``op`` attribute on each operator's spans.

Events below an operator span (source roundtrips, retry attempts, breaker
rejections, cache lookups) are attributed to the *nearest enclosing*
operator, so a PP-k clause's retries do not leak into the region that
happens to surround it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tracer import QueryTracer, Span


@dataclass
class OperatorActuals:
    """Aggregated observations for one plan operator."""

    spans: int = 0
    elapsed_ms: float = 0.0
    #: kind -> [span count, summed elapsed] (e.g. PP-k fetch vs join)
    by_kind: dict = field(default_factory=dict)
    rows: int = 0
    roundtrips: int = 0
    retries: int = 0
    breaker_rejections: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    degraded: int = 0
    #: summed numeric facts reported by the operator (groups, index size...)
    facts: dict = field(default_factory=dict)


#: span attrs that aggregate into ``facts`` when present
_FACT_ATTRS = ("groups", "tuples", "index_size", "blocks", "branches", "k")


def aggregate_operators(roots: list[Span]) -> dict[int, OperatorActuals]:
    """Fold a span forest into per-operator actuals keyed by operator id."""
    out: dict[int, OperatorActuals] = {}
    for root in roots:
        _fold(root, None, out)
    return out


def _fold(span: Span, enclosing: int | None, out: dict[int, OperatorActuals]) -> None:
    op = span.attrs.get("op")
    if op is not None:
        acts = out.setdefault(op, OperatorActuals())
        acts.spans += 1
        acts.elapsed_ms += span.elapsed_ms
        entry = acts.by_kind.setdefault(span.kind, [0, 0.0])
        entry[0] += 1
        entry[1] += span.elapsed_ms
        acts.rows += span.attrs.get("rows", 0)
        if span.attrs.get("degraded"):
            acts.degraded += 1  # race-ok: OperatorActuals is a snapshot-time local accumulator
        if span.attrs.get("hit") is True:
            acts.cache_hits += 1
        elif span.attrs.get("hit") is False:
            acts.cache_misses += 1
        for fact in _FACT_ATTRS:
            value = span.attrs.get(fact)
            if isinstance(value, (int, float)):
                acts.facts[fact] = acts.facts.get(fact, 0) + value
        enclosing = op
    elif enclosing is not None:
        acts = out[enclosing]
        if span.kind == "source.roundtrip":
            acts.roundtrips += 1  # race-ok: OperatorActuals is a snapshot-time local accumulator
        elif span.kind == "source.attempt" and span.attrs.get("attempt", 1) > 1:
            acts.retries += 1  # race-ok: OperatorActuals is a snapshot-time local accumulator
        elif span.kind == "breaker.rejected":
            acts.breaker_rejections += 1
    for child in span.children:
        _fold(child, enclosing, out)


def format_actuals(op: int, acts: OperatorActuals | None,
                   est_rows: float | None = None) -> str:
    """The ``[actual: ...]`` suffix for one plan line.  When the costing
    pass stamped an estimate, it renders next to the actual
    (``est_rows=… act_rows=…``) so estimate/actual divergence is visible
    in place; plans without stamps render exactly as before."""
    if acts is None:
        return f"  [#{op} actual: not executed]"
    parts = [f"{acts.spans} span(s)", f"{acts.elapsed_ms:.3f}ms"]
    if est_rows is not None:
        parts.append(f"est_rows={est_rows:.0f}")
        parts.append(f"act_rows={acts.rows}")
    elif acts.rows:
        parts.append(f"rows={acts.rows}")
    if acts.roundtrips:
        parts.append(f"roundtrips={acts.roundtrips}")
    if acts.retries:
        parts.append(f"retries={acts.retries}")
    if acts.breaker_rejections:
        parts.append(f"breaker_rejected={acts.breaker_rejections}")
    if acts.cache_hits or acts.cache_misses:
        parts.append(f"cache={acts.cache_hits}/{acts.cache_hits + acts.cache_misses}")
    if acts.degraded:
        parts.append(f"degraded={acts.degraded}")
    for fact, value in sorted(acts.facts.items()):
        parts.append(f"{fact}={value:g}")
    if len(acts.by_kind) > 1:
        breakdown = " ".join(
            f"{kind}:{count}x/{elapsed:.3f}ms"
            for kind, (count, elapsed) in sorted(acts.by_kind.items())
        )
        parts.append(f"({breakdown})")
    return f"  [#{op} actual: {', '.join(parts)}]"


def make_annotator(aggregates: dict[int, OperatorActuals]):
    """An ``annotate(node)`` callback for :func:`repro.compiler.explain.explain`."""
    from ..compiler.algebra import SourceCall
    from ..xquery import ast_nodes as ast

    def annotate(node) -> str:
        op = getattr(node, "op_id", None)
        if op is None:
            return ""
        acts = aggregates.get(op)
        if acts is None and isinstance(node, ast.FunctionCall) \
                and not isinstance(node, SourceCall):
            # A plain user call leaves no spans unless cached/async — an
            # absent aggregate is not evidence it never ran.
            return ""
        return format_actuals(op, acts, getattr(node, "est_rows", None))

    return annotate


@dataclass
class QueryProfile:
    """The result of ``Platform.profile``: the annotated plan render plus
    the raw trace for programmatic inspection."""

    text: str
    root: Span | None
    tracer: QueryTracer
    items: int
    elapsed_ms: float
    aggregates: dict[int, OperatorActuals]
    #: rows-per-batch by operator label (P-BATCH) — kept out of ``text``
    #: so the rendered plan stays byte-identical across batch sizes
    batches: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return self.text


def profile_render(plan_expr, tracer: QueryTracer) -> tuple[str, dict[int, OperatorActuals]]:
    """Render ``plan_expr`` annotated with the tracer's recorded actuals."""
    from ..compiler.explain import explain

    aggregates = aggregate_operators(tracer.roots)
    text = explain(plan_expr, annotate=make_annotator(aggregates))
    return text, aggregates
