"""The unified metrics plane (O-OBS).

One :class:`MetricsRegistry` per server absorbs what used to be four
unrelated stats surfaces — ``RuntimeStats``, per-source ``SourceStats``
(including the statement-cache and resilience counters), ``CacheStats``
and ``GroupStats`` — behind a single snapshot API with labeled series.

Two kinds of series co-exist:

* **instruments** — counters/gauges/histograms created through the
  registry (e.g. the tracer's per-operator-kind ``trace.span_ms``
  histograms).  These are live objects updated at event time.
* **collectors** — callbacks that read the *existing* stats objects at
  snapshot time.  The legacy counters stay where they are (their hot-path
  cost is already paid); the registry is the one read surface over them,
  so nothing is double-counted and migration costs zero on the hot path.

Series names are flattened Prometheus-style: ``name{label=value,...}``
with labels sorted, and the whole snapshot is returned sorted by series
name, so renderings and JSON exports are deterministic.

Thread-safety (A-CONC): the registry and every instrument it creates
share one lock — get-or-create and instrument updates arrive from
request threads, pool threads and the tracer concurrently.  Snapshot
copies the instrument/collector maps under the lock, then reads them
*outside* it: a collector is arbitrary code (it may itself take stats
locks), and calling it while holding the registry lock invites lock-order
cycles.
"""

from __future__ import annotations

import math
from typing import Callable

from ..concurrency import RACE, TrackedRLock, guarded_by


def series_name(name: str, labels: dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def nearest_rank(ordered: list[float], q: float) -> float | None:
    """Nearest-rank percentile (``q`` in [0, 100]) of a pre-sorted sample
    list — the one percentile definition every surface shares (histogram
    reservoirs, windowed buckets, the workload driver)."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    if not ordered:
        return None
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@guarded_by("_lock")
class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: TrackedRLock | None = None) -> None:
        self._lock = lock if lock is not None else TrackedRLock("Counter")
        self.value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n
            RACE.detector.on_access(self, "value", True)

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def snapshot(self):
        return self.value


@guarded_by("_lock")
class Gauge:
    """A point-in-time value."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: TrackedRLock | None = None) -> None:
        self._lock = lock if lock is not None else TrackedRLock("Gauge")
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            RACE.detector.on_access(self, "value", True)

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0

    def snapshot(self):
        return round(self.value, 3) if isinstance(self.value, float) else self.value


@guarded_by("_lock")
class Histogram:
    """Count/sum/min/max/avg over observed values (span durations), plus
    approximate percentiles from a bounded deterministic reservoir."""

    __slots__ = ("count", "total", "min", "max", "_samples", "_stride",
                 "_lock")

    #: reservoir bound; past it, retention decimates deterministically
    RESERVOIR = 512

    def __init__(self, lock: TrackedRLock | None = None) -> None:
        self._lock = lock if lock is not None else TrackedRLock("Histogram")
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        # Deterministic stride reservoir: keep every k-th observation,
        # doubling k (and halving the kept set) whenever the buffer
        # fills.  No RNG, so repeated runs see identical percentiles.
        self._samples: list[float] = []
        self._stride = 1

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if (self.count - 1) % self._stride == 0:
                self._samples.append(value)
                if len(self._samples) >= self.RESERVOIR:
                    self._samples = self._samples[::2]
                    self._stride *= 2
            RACE.detector.on_access(self, "count", True)

    def percentile(self, q: float) -> float | None:
        """Nearest-rank percentile (``q`` in [0, 100]) over the
        reservoir — approximate once decimation kicks in.  Raises
        :class:`ValueError` for ``q`` outside [0, 100]."""
        with self._lock:
            return nearest_rank(sorted(self._samples), q)

    def samples(self) -> list[float]:
        """A copy of the current reservoir (observation order)."""
        with self._lock:
            return list(self._samples)

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None
            self._samples = []
            self._stride = 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "count": self.count,
                "sum": round(self.total, 3),
                "min": round(self.min, 3) if self.min is not None else None,
                "max": round(self.max, 3) if self.max is not None else None,
                "avg": round(self.total / self.count, 3) if self.count else None,
            }


@guarded_by("_lock")
class MetricsRegistry:
    """Labeled counters/gauges/histograms plus snapshot-time collectors."""

    def __init__(self) -> None:
        self._lock = TrackedRLock("MetricsRegistry")
        self._instruments: dict[str, object] = {}
        self._collectors: list[Callable[[], dict]] = []

    # -- instruments ---------------------------------------------------------

    def _instrument(self, factory, name: str, labels: dict[str, str]):
        key = series_name(name, labels)
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                # instruments share the registry lock: one acquisition
                # covers get-or-create and the first update
                instrument = factory(self._lock)
                self._instruments[key] = instrument
                RACE.detector.on_access(self, "_instruments", True)
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._instrument(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._instrument(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._instrument(Histogram, name, labels)

    # -- collectors ----------------------------------------------------------

    def add_collector(self, collect: Callable[[], dict]) -> None:
        """Register a callback returning ``{series_name: value}`` read at
        snapshot time (the bridge from the legacy stats objects)."""
        with self._lock:
            self._collectors.append(collect)

    # -- the one read surface ------------------------------------------------

    def snapshot(self) -> dict:
        """Every series — instruments and collected — sorted by name."""
        with self._lock:
            instruments = dict(self._instruments)
            collectors = list(self._collectors)
        merged: dict[str, object] = {}
        for key, instrument in instruments.items():
            merged[key] = instrument.snapshot()
        for collect in collectors:
            merged.update(collect())
        return dict(sorted(merged.items()))

    def reset(self) -> None:
        """Zero the instruments (collector-backed series reset with their
        owning stats objects — ``Platform.reset_stats`` does both)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()
