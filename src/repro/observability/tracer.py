"""Query tracing: a span tree mirroring the executed plan (O-OBS).

Section 9's "observed cost" pitch is about *instrumenting the system* and
optimizing from what is actually measured.  The tracer is that
instrumentation: when enabled, every operator instance the runtime
executes — pushed SQL region, PP-k block fetch/join, index join build,
group-by, async branch, cache lookup, SDO submit — records a
:class:`Span`, with child spans for each source roundtrip, retry attempt
and breaker rejection.  Timestamps come from the platform's active
:class:`~repro.clock.Clock`, so traces are **deterministic** under the
virtual clock (same query + same seed => byte-identical export) and real
under a wall clock.

Overhead contract
-----------------
Tracing is off by default.  The disabled path is a :class:`NoopTracer`
whose ``start``/``instant`` methods allocate **nothing**: they return a
module-level immutable :data:`NOOP_SPAN` singleton and bump a plain
integer call counter.  That counter is the auditable part of the
contract: benchmarks assert ``calls > 0 and spans_allocated == 0`` to
prove the hot path crossed the instrumentation points without creating a
single span object (``benchmarks/test_observability.py``).

Thread model
------------
Span parenting normally follows a per-thread cursor stack.  Crossing the
:class:`~repro.runtime.asyncexec.AsyncExecutor` pool boundary is the one
place that must NOT rely on ambient state: the executor captures the
active span *before* submitting and passes it as the explicit ``parent``
of each branch span, so branches nest under the query span even when they
run on pool threads (and under the virtual clock, where they run inline).
Spans may close out of order relative to their siblings — streaming
operators interleave — so closing removes the span from wherever it sits
in its cursor rather than asserting LIFO.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

from ..clock import Clock
from ..concurrency import TrackedRLock, guarded_by

if TYPE_CHECKING:
    from .metrics import MetricsRegistry


class Span:
    """One timed operation in the executed plan."""

    __slots__ = ("sid", "kind", "name", "start_ms", "end_ms", "attrs",
                 "children", "parent", "_tracer", "_tid")

    def __init__(self, sid: int, kind: str, name: str | None,
                 start_ms: float, tracer: "QueryTracer", tid: int):
        self.sid = sid
        self.kind = kind
        self.name = name
        self.start_ms = start_ms
        self.end_ms: float | None = None
        self.attrs: dict = {}
        self.children: list[Span] = []
        self.parent: Span | None = None
        self._tracer = tracer
        self._tid = tid

    # -- annotation ----------------------------------------------------------

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def add(self, key: str, n: int = 1) -> None:
        self.attrs[key] = self.attrs.get(key, 0) + n

    # -- lifecycle -----------------------------------------------------------

    def end(self) -> None:
        if self.end_ms is None:
            self._tracer._close(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None and "error" not in self.attrs:
            self.attrs["error"] = type(exc).__name__
        self.end()
        return False

    # -- introspection -------------------------------------------------------

    @property
    def elapsed_ms(self) -> float:
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    def walk(self):
        """Pre-order traversal including self."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, kind: str) -> "list[Span]":
        return [span for span in self.walk() if span.kind == kind]

    def __repr__(self) -> str:
        return (f"Span#{self.sid}({self.kind}"
                + (f" {self.name!r}" if self.name else "")
                + f" {self.elapsed_ms:.3f}ms)")


class _NoopSpan:
    """The shared do-nothing span: every method is a no-op, so disabled
    tracing costs a method call and nothing else."""

    __slots__ = ()

    kind = "noop"
    name = None
    start_ms = 0.0
    end_ms = 0.0
    elapsed_ms = 0.0
    attrs: dict = {}
    children: list = []
    parent = None

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def add(self, key: str, n: int = 1) -> None:
        pass

    def end(self) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: the singleton every NoopTracer.start() returns — no allocation, ever
NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """Tracing disabled: zero span allocation, one counter.

    ``calls`` counts how many times the hot path *would* have started a
    span; paired with ``spans_allocated`` (always 0) it makes the
    overhead-off contract checkable instead of hand-waved.
    """

    __slots__ = ("calls",)

    enabled = False
    spans_allocated = 0
    roots: list = []

    def __init__(self) -> None:
        self.calls = 0

    def start(self, kind: str, name: str | None = None,
              parent: object | None = None, **attrs) -> _NoopSpan:
        self.calls += 1
        return NOOP_SPAN

    def instant(self, kind: str, name: str | None = None, **attrs) -> None:
        self.calls += 1

    def current(self) -> None:
        return None


@guarded_by("_lock")
class QueryTracer:
    """Tracing enabled: records a span tree per query.

    Spans started on a thread parent to that thread's innermost open span;
    a span started with an explicit ``parent`` (the async-pool handoff)
    parents there instead and seeds its own thread's cursor.  Span ids are
    allocated sequentially under a lock, so virtual-clock runs (which are
    sequential) produce identical ids every time.
    """

    enabled = True

    def __init__(self, clock: Clock, metrics: "Optional[MetricsRegistry]" = None):
        self.clock = clock
        self.metrics = metrics
        self.roots: list[Span] = []
        self.calls = 0
        self.spans_allocated = 0
        self._next_id = 1
        self._cursors: dict[int, list[Span]] = {}
        self._lock = TrackedRLock("QueryTracer")

    # -- span lifecycle ------------------------------------------------------

    def start(self, kind: str, name: str | None = None,
              parent: Span | None = None, **attrs) -> Span:
        tid = threading.get_ident()
        with self._lock:
            self.calls += 1
            self.spans_allocated += 1
            span = Span(self._next_id, kind, name, self.clock.now_ms(), self, tid)
            self._next_id += 1
            if attrs:
                # None-valued attrs are "not applicable" (e.g. a missing
                # operator id) and are simply not recorded.
                span.attrs.update(
                    {key: value for key, value in attrs.items() if value is not None}
                )
            stack = self._cursors.setdefault(tid, [])
            if parent is None and stack:
                parent = stack[-1]
            span.parent = parent
            if parent is None:
                self.roots.append(span)
            else:
                parent.children.append(span)
            stack.append(span)
        return span

    def instant(self, kind: str, name: str | None = None, **attrs) -> Span:
        """A zero-duration event span (e.g. a breaker rejection)."""
        span = self.start(kind, name, **attrs)
        span.end()
        return span

    def _close(self, span: Span) -> None:
        with self._lock:
            span.end_ms = self.clock.now_ms()
            stack = self._cursors.get(span._tid)
            if stack is not None:
                try:
                    stack.remove(span)
                except ValueError:
                    pass  # closed from a different scope; tree is intact
                if not stack:
                    del self._cursors[span._tid]
        if self.metrics is not None:
            self.metrics.histogram("trace.span_ms", kind=span.kind) \
                .observe(span.end_ms - span.start_ms)

    # -- introspection -------------------------------------------------------

    def current(self) -> Span | None:
        """The calling thread's innermost open span (explicitly capture
        this before handing work to another thread)."""
        stack = self._cursors.get(threading.get_ident())
        return stack[-1] if stack else None

    @property
    def last_root(self) -> Span | None:
        return self.roots[-1] if self.roots else None
