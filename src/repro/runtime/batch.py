"""The batch-at-a-time tuple container (P-BATCH).

The paper's runtime streams binding tuples through token iterators
(section 5.2); the batch engine keeps that pull-based shape but moves
*batches* of tuples per pull, amortizing Python's per-tuple dispatch the
way Apache VXQuery's batched columnar execution does for XQuery.

A :class:`TupleBatch` is a fixed schema (``names``, the bound variable
names in binding order) over column-major lists keyed by variable name.
Two physical views co-exist and convert lazily:

* the **columnar view** — one list per variable.  Derived batches share
  parent column lists outright (copy-on-write: extending a batch with a
  new variable touches no existing column), which is what makes
  ``let``-style extension O(1) per column instead of O(rows) dict copies;
* the **row view** — one environment dict per tuple, the currency the
  expression evaluator speaks.  It is materialized once per batch and
  cached; ``owned`` marks row dicts created by the batch pipeline itself
  (never seen by user code that could retain them), which extension is
  allowed to reuse *in place* — the "reused frames" path that eliminates
  the per-tuple ``dict(env)`` copy of the tuple-at-a-time engine.

Batches are immutable once emitted downstream except through
:meth:`extended`, which documents itself as *consuming* the receiver.
A batch never mutates a column list another batch can see.
"""

from __future__ import annotations

from typing import Iterable, Iterator

#: default rows per batch (``Platform.set_batch_size``); 1 disables the
#: batch engine entirely and reproduces the tuple-at-a-time runtime
DEFAULT_BATCH_SIZE = 256

Env = dict


class TupleBatch:
    """A batch of binding tuples with one column list per variable."""

    __slots__ = ("names", "length", "owned", "_columns", "_envs")

    def __init__(self, names: tuple[str, ...], length: int, owned: bool,
                 columns: dict[str, list] | None, envs: list[Env] | None):
        self.names = names
        self.length = length
        self.owned = owned
        self._columns = columns
        self._envs = envs

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_columns(cls, names: tuple[str, ...], columns: dict[str, list],
                     length: int) -> "TupleBatch":
        return cls(names, length, True, columns, None)

    @classmethod
    def from_rows(cls, envs: list[Env], owned: bool,
                  names: tuple[str, ...] | None = None) -> "TupleBatch":
        if names is None:
            names = tuple(envs[0]) if envs else ()
        return cls(names, len(envs), owned, None, envs)

    @classmethod
    def initial(cls, env: Env) -> "TupleBatch":
        """The FLWOR's initial single-tuple batch.  The dict belongs to
        the caller, so it is never reused in place (``owned=False``)."""
        return cls.from_rows([env], owned=False)

    # -- views -------------------------------------------------------------

    def env_rows(self) -> list[Env]:
        """The row view (cached): one environment dict per tuple."""
        envs = self._envs
        if envs is None:
            columns = self._columns
            assert columns is not None
            names = self.names
            envs = [dict(zip(names, row))
                    for row in zip(*(columns[name] for name in names))]
            if not names:  # zip(*()) yields nothing; keep the row count
                envs = [{} for _ in range(self.length)]
            self._envs = envs
        return envs

    def column(self, name: str) -> list:
        """One column (value sequences for ``name``, row order)."""
        columns = self._columns
        if columns is not None and name in columns:
            return columns[name]
        if name not in self.names:
            raise KeyError(name)
        column = [env[name] for env in self.env_rows()]
        if columns is None:
            self._columns = columns = {}
        columns[name] = column
        return column

    def columns(self) -> dict[str, list]:
        """The full columnar view (materialized on demand)."""
        return {name: self.column(name) for name in self.names}

    # -- transforms --------------------------------------------------------

    def extended(self, additions: list[tuple[str, list]]) -> "TupleBatch":
        """A batch with the given ``(name, column)`` bindings added (or
        replaced).  **Consumes the receiver**: the owned row path reuses
        the row dicts in place, so the original batch must not be read
        afterwards.  Each column list must have ``length`` entries."""
        names = self.names
        new_names = names + tuple(n for n, _c in additions if n not in names)
        envs = self._envs
        if envs is not None:
            if self.owned:
                # Reused frames: the pipeline created these dicts, nothing
                # else can hold them — extend without copying.
                for name, column in additions:
                    for env, value in zip(envs, column):
                        env[name] = value
                return TupleBatch(new_names, self.length, True, None, envs)
            rows = [dict(env) for env in envs]
            for name, column in additions:
                for env, value in zip(rows, column):
                    env[name] = value
            return TupleBatch(new_names, self.length, True, None, rows)
        # Columnar copy-on-write: share every existing column untouched.
        columns = dict(self._columns)  # type: ignore[arg-type]
        for name, column in additions:
            columns[name] = column
        return TupleBatch(new_names, self.length, True, columns, None)

    def select(self, indices: list[int]) -> "TupleBatch":
        """The sub-batch at the given row indices (in order)."""
        envs = self._envs
        if envs is not None:
            return TupleBatch(self.names, len(indices), self.owned, None,
                              [envs[i] for i in indices])
        columns = {name: [column[i] for i in indices]
                   for name, column in self._columns.items()}  # type: ignore[union-attr]
        return TupleBatch(self.names, len(indices), True, columns, None)

    def slice(self, start: int, stop: int) -> "TupleBatch":
        """Rows ``start:stop`` — cheap list slices, shared row dicts."""
        envs = self._envs
        if envs is not None:
            part = envs[start:stop]
            return TupleBatch(self.names, len(part), self.owned, None, part)
        columns = {name: column[start:stop]
                   for name, column in self._columns.items()}  # type: ignore[union-attr]
        length = max((len(c) for c in columns.values()), default=0)
        return TupleBatch(self.names, length, True, columns, None)

    @classmethod
    def concat(cls, batches: "Iterable[TupleBatch]") -> "TupleBatch":
        """One batch holding every row of ``batches`` (same schema)."""
        batches = list(batches)
        if not batches:
            return cls.from_rows([], owned=True)
        names = batches[0].names
        rows: list[Env] = []
        owned = True
        for batch in batches:
            if batch.names != names:
                raise ValueError("concat over mismatched batch schemas")
            rows.extend(batch.env_rows())
            owned = owned and batch.owned
        return cls.from_rows(rows, owned, names)

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TupleBatch({self.length}x{list(self.names)!r})"


class BatchBuilder:
    """Accumulates row dicts into batches of at most ``capacity`` rows.

    Rows with different schemas never share a batch: a schema change
    (e.g. group-by emitting heterogeneous surviving bindings) flushes the
    pending rows first, so every emitted batch has one ``names`` tuple.
    ``owned`` declares whether the rows fed to this builder are
    pipeline-created dicts (reusable frames) — the default, since every
    multiplying operator constructs fresh dicts per output row.
    """

    __slots__ = ("capacity", "owned", "_rows", "_names")

    def __init__(self, capacity: int, owned: bool = True):
        self.capacity = capacity
        self.owned = owned
        self._rows: list[Env] = []
        self._names: tuple[str, ...] | None = None

    def add(self, env: Env, names: tuple[str, ...] | None = None) -> TupleBatch | None:
        """Append one row; returns the completed previous batch when the
        buffer was full or the schema changed, else None.  (Emission is
        deferred to the next ``add``/``flush`` so a schema change and a
        capacity fill can never both complete a batch in one call.)"""
        if names is None:
            names = tuple(env)
        out = None
        if self._rows and (len(self._rows) >= self.capacity
                           or names != self._names):
            out = TupleBatch.from_rows(self._rows, self.owned, self._names)
            self._rows = []
        self._names = names
        self._rows.append(env)
        return out

    def flush(self) -> TupleBatch | None:
        """The pending partial batch, if any."""
        if not self._rows:
            return None
        batch = TupleBatch.from_rows(self._rows, self.owned, self._names)
        self._rows = []
        return batch


def rebatch(rows: Iterator[Env], capacity: int,
            owned: bool = True) -> Iterator[TupleBatch]:
    """Chop a row-dict stream into schema-uniform batches lazily."""
    builder = BatchBuilder(capacity, owned)
    for env in rows:
        batch = builder.add(env)
        if batch is not None:
            yield batch
    tail = builder.flush()
    if tail is not None:
        yield tail
