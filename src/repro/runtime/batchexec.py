"""Batch-at-a-time FLWOR execution (P-BATCH).

``eval_flwor_batched`` mirrors :meth:`Evaluator._eval_flwor` with
:class:`~repro.runtime.batch.TupleBatch` flowing between clause operators
instead of single binding tuples.  Laziness is preserved at batch
granularity: each operator is a generator of batches that pulls from
upstream on demand, so LIMIT-style early exit stops the pipeline after at
most one in-flight batch per stage.

Byte-identity with the tuple engine is structural, not asserted per call:

* the **narrowing/extending** clauses (for / let / where and the return
  stage) evaluate their expressions through the row-expression compiler
  (:mod:`repro.runtime.rowcompile`), whose closures reuse the
  interpreter's own helpers and bridge anything they don't understand;
* the **source-touching and stateful** operators (PP-k, pushed tuple
  joins, index joins, scatter groups, grouping) reuse the interpreter's
  tuple implementations verbatim over a lazily flattened row stream and
  rebatch their output — identical SQL, spans, virtual-clock charges and
  stats by construction (PP-k additionally batches its outer-key
  extraction internally when ``ctx.batch_size > 1``);
* spans open and close at the same pipeline points: order-by drains its
  upstream inside the ``order-by`` span, group-by holds its span open
  across emitted groups, exactly as the tuple operators do.

Per-operator batch shape (``batch.rows`` / ``batch.count`` instruments
and the profile's rows-per-batch table) is recorded *outside* the span
tree so profile/trace output stays byte-identical across batch sizes.
"""

from __future__ import annotations

from typing import Iterator

from ..concurrency import RACE, TrackedRLock, guarded_by
from ..errors import DynamicError
from ..xquery import ast_nodes as ast
from ..xquery.functions import atomize, effective_boolean_value
from .batch import BatchBuilder, TupleBatch
from .evaluate import Env, Evaluator, _clause_groups, _OrderKey
from .operators.group import clustered_groups, sorted_groups
from .operators.ppk import ppk_extend
from .rowcompile import rowfn

try:
    from ..compiler.algebra import (
        IndexJoinForClause,
        PPkLetClause,
        PushedTupleForClause,
    )
except ImportError:  # pragma: no cover - algebra is a hard dependency
    raise


@guarded_by("_lock")
class BatchProbe:
    """Per-query collector of rows-per-batch by operator label.

    Installed by :meth:`Platform.profile` through the dynamic context;
    one probe may be shared by parallel scatter branches, so access is
    lock-guarded (A-CONC discipline)."""

    def __init__(self) -> None:
        self._lock = TrackedRLock("BatchProbe")
        self.stages: dict[str, list[int]] = {}

    def add(self, label: str, rows: int) -> None:
        with self._lock:
            RACE.detector.on_access(self, "stages", True)
            self.stages.setdefault(label, [0, 0])
            cell = self.stages[label]
            cell[0] += 1
            cell[1] += rows

    def snapshot(self) -> dict[str, dict[str, float]]:
        """{label: {batches, rows, rows_per_batch}} (rounded)."""
        with self._lock:
            RACE.detector.on_access(self, "stages", False)
            return {
                label: {
                    "batches": batches,
                    "rows": rows,
                    "rows_per_batch": round(rows / batches, 2) if batches else 0.0,
                }
                for label, (batches, rows) in sorted(self.stages.items())
            }


class _BatchRun:
    """Per-FLWOR-invocation state: batch size, cached instruments, probe."""

    __slots__ = ("ev", "ctx", "size", "probe", "_instruments")

    def __init__(self, evaluator: Evaluator):
        self.ev = evaluator
        self.ctx = evaluator.ctx
        self.size = self.ctx.batch_size
        self.probe = self.ctx.batch_probe()
        self._instruments: dict = {}

    def observe(self, label: str, rows: int) -> None:
        pair = self._instruments.get(label)
        if pair is None:
            metrics = self.ctx.metrics
            pair = (metrics.histogram("batch.rows", op=label),
                    metrics.counter("batch.count", op=label))
            self._instruments[label] = pair
        pair[0].observe(rows)
        pair[1].inc()
        if self.probe is not None:
            self.probe.add(label, rows)

    def instrumented(self, label: str,
                     batches: Iterator[TupleBatch]) -> Iterator[TupleBatch]:
        for batch in batches:
            self.observe(label, batch.length)
            yield batch


def eval_flwor_batched(evaluator: Evaluator, node: ast.FLWOR,
                       env: Env) -> Iterator:
    """Batch-protocol twin of ``Evaluator._eval_flwor``."""
    run = _BatchRun(evaluator)
    batches: Iterator[TupleBatch] = iter([TupleBatch.initial(env)])
    ordinal = 0
    for group in _clause_groups(node.clauses, run.ctx.parallel_regions):
        ordinal += 1
        if len(group) == 1:
            clause = group[0]
            label = f"{_clause_label(clause)}#{ordinal}"
            batches = _apply_batch_clause(run, clause, batches)
        else:
            label = f"scatter#{ordinal}"
            batches = _rebatched(run, evaluator._scatter_tuples(
                group, _flatten(batches)))
        batches = run.instrumented(label, batches)
    ret_fn = rowfn(node.return_expr)
    stats = run.ctx.stats
    for batch in batches:
        stats.bump(tuples_flowed=batch.length)
        run.observe("return", batch.length)
        for row_env in batch.env_rows():
            yield from ret_fn(evaluator, row_env)


_CLAUSE_LABELS = {
    "ForClause": "for",
    "LetClause": "let",
    "WhereClause": "where",
    "OrderByClause": "order-by",
    "GroupByClause": "group-by",
    "PPkLetClause": "ppk",
    "PushedTupleForClause": "pushed-join",
    "IndexJoinForClause": "index-join",
}


def _clause_label(clause) -> str:
    return _CLAUSE_LABELS.get(type(clause).__name__,
                              type(clause).__name__.lower())


def _apply_batch_clause(run: _BatchRun, clause,
                        batches: Iterator[TupleBatch]) -> Iterator[TupleBatch]:
    if isinstance(clause, ast.ForClause):
        return _for_batches(run, clause, batches)
    if isinstance(clause, ast.LetClause):
        return _let_batches(run, clause, batches)
    if isinstance(clause, ast.WhereClause):
        return _where_batches(run, clause, batches)
    if isinstance(clause, ast.OrderByClause):
        return _order_batches(run, clause, batches)
    if isinstance(clause, ast.GroupByClause):
        return _group_batches(run, clause, batches)
    # Source-touching operators: reuse the tuple implementations over a
    # lazily flattened stream (identical spans/SQL/stats), rebatch after.
    if isinstance(clause, PPkLetClause):
        return _rebatched(run, ppk_extend(clause, _flatten(batches), run.ev))
    if isinstance(clause, PushedTupleForClause):
        return _rebatched(run, run.ev._pushed_tuple_for(clause, _flatten(batches)))
    if isinstance(clause, IndexJoinForClause):
        if (run.ctx.replan_threshold is not None
                and getattr(clause, "replan_ppk", None) is not None
                and getattr(clause, "est_outer", None) is not None):
            # re-planning armed (P-COST): the tuple implementation owns the
            # buffer-then-commit decision; rebatch its output
            return _rebatched(
                run, run.ev._index_join_tuples(clause, _flatten(batches)))
        return _index_join_batches(run, clause, batches)
    raise DynamicError(f"cannot execute clause {type(clause).__name__}")


def _flatten(batches: Iterator[TupleBatch]) -> Iterator[Env]:
    for batch in batches:
        yield from batch.env_rows()


def _rebatched(run: _BatchRun, rows: Iterator[Env],
               owned: bool = True) -> Iterator[TupleBatch]:
    builder = BatchBuilder(run.size, owned)
    for env in rows:
        batch = builder.add(env)
        if batch is not None:
            yield batch
    tail = builder.flush()
    if tail is not None:
        yield tail


# -- narrowing / extending clauses (row-compiled inner loops) ---------------


def _for_batches(run: _BatchRun, clause: ast.ForClause,
                 batches: Iterator[TupleBatch]) -> Iterator[TupleBatch]:
    expr_fn = rowfn(clause.expr)
    ev, size = run.ev, run.size
    var, pos_var = clause.var, clause.pos_var
    builder = BatchBuilder(size, owned=True)
    for batch in batches:
        for env in batch.env_rows():
            items = expr_fn(ev, env)
            if pos_var:
                for position, item in enumerate(items, start=1):
                    extended = dict(env)
                    extended[var] = [item]
                    extended[pos_var] = [_position_value(position)]
                    out = builder.add(extended)
                    if out is not None:
                        yield out
            else:
                for item in items:
                    extended = dict(env)
                    extended[var] = [item]
                    out = builder.add(extended)
                    if out is not None:
                        yield out
    tail = builder.flush()
    if tail is not None:
        yield tail


def _position_value(position: int):
    from ..xml.items import AtomicValue

    return AtomicValue(position, "xs:integer")


def _let_batches(run: _BatchRun, clause: ast.LetClause,
                 batches: Iterator[TupleBatch]) -> Iterator[TupleBatch]:
    expr_fn = rowfn(clause.expr)
    ev, var = run.ev, clause.var
    for batch in batches:
        column = [expr_fn(ev, env) for env in batch.env_rows()]
        yield batch.extended([(var, column)])


def _where_batches(run: _BatchRun, clause: ast.WhereClause,
                   batches: Iterator[TupleBatch]) -> Iterator[TupleBatch]:
    condition_fn = rowfn(clause.condition)
    ev = run.ev
    for batch in batches:
        envs = batch.env_rows()
        kept = [i for i, env in enumerate(envs)
                if effective_boolean_value(condition_fn(ev, env))]
        if not kept:
            continue
        if len(kept) == batch.length:
            yield batch
        else:
            yield batch.select(kept)


def _index_join_batches(run: _BatchRun, clause,
                        batches: Iterator[TupleBatch]) -> Iterator[TupleBatch]:
    """Batch twin of ``Evaluator._index_join_tuples``: identical index
    build (span, facts, stats), row-compiled probe keys, and one
    ``middleware_join_probes`` bump per batch instead of per tuple."""
    ev, ctx = run.ev, run.ctx
    var = clause.var
    probe_fn = rowfn(clause.outer_key)
    inner_fn = rowfn(clause.inner_key)
    index: dict | None = None
    builder = BatchBuilder(run.size, owned=True)
    for batch in batches:
        envs = batch.env_rows()
        if envs and index is None:
            index = {}
            ctx.stats.bump(index_joins_built=1)
            with ctx.tracer.start(
                    "index-join.build", var,
                    op=getattr(clause, "op_id", None)) as span:
                for item in ev.iter_eval(clause.expr, envs[0]):
                    key_atoms = atomize(inner_fn(ev, {var: [item]}))
                    if len(key_atoms) != 1:
                        continue  # empty/multi keys never equi-join
                    index.setdefault(key_atoms[0].value, []).append(item)
                span.set(index_size=sum(len(v) for v in index.values()))
        ctx.stats.bump(middleware_join_probes=len(envs))
        for env in envs:
            probe_atoms = atomize(probe_fn(ev, env))
            if len(probe_atoms) != 1:
                continue
            for item in index.get(probe_atoms[0].value, []):  # type: ignore[union-attr]
                extended = dict(env)
                extended[var] = [item]
                out = builder.add(extended)
                if out is not None:
                    yield out
    tail = builder.flush()
    if tail is not None:
        yield tail


# -- blocking clauses (span placement mirrors the tuple operators) ----------


def _order_batches(run: _BatchRun, clause: ast.OrderByClause,
                   batches: Iterator[TupleBatch]) -> Iterator[TupleBatch]:
    ev = run.ev
    key_fns = [(rowfn(spec.key), spec.descending, spec.empty_greatest)
               for spec in clause.specs]
    with ev.ctx.tracer.start("order-by",
                             op=getattr(clause, "op_id", None)) as span:
        materialized: list[Env] = []
        owned = True
        for batch in batches:  # upstream drains inside the span, as the
            owned = owned and batch.owned  # tuple operator's list() does
            materialized.extend(batch.env_rows())

        def sort_key(env: Env):
            keys = []
            for key_fn, descending, empty_greatest in key_fns:
                atoms = atomize(key_fn(ev, env))
                if len(atoms) > 1:
                    raise DynamicError("order by key with more than one item")
                value = atoms[0].value if atoms else None
                keys.append(_OrderKey(value, descending, empty_greatest))
            return keys

        materialized.sort(key=sort_key)
        span.set(tuples=len(materialized))
    yield from _rebatched(run, iter(materialized), owned=owned)


def _group_batches(run: _BatchRun, clause: ast.GroupByClause,
                   batches: Iterator[TupleBatch]) -> Iterator[TupleBatch]:
    ev = run.ev
    key_fns = [rowfn(expr) for expr, _var in clause.keys]

    def key_of(env_and_keys):
        return env_and_keys[1]

    def annotated():
        for batch in batches:
            for env in batch.env_rows():
                key_values = []
                for key_fn in key_fns:
                    atoms = atomize(key_fn(ev, env))
                    if len(atoms) > 1:
                        raise DynamicError("group by key with more than one item")
                    key_values.append(atoms[0].value if atoms else None)
                yield env, tuple(key_values)

    base_grouper = clustered_groups if getattr(clause, "pre_clustered", False) \
        else sorted_groups

    def grouper(stream, key_fn, stats):
        # amortize_stats: identical peak_resident, O(groups) locking
        return base_grouper(stream, key_fn, stats, amortize_stats=True)
    emitted_before = ev.group_stats.groups_emitted
    span = ev.ctx.tracer.start("group-by", op=getattr(clause, "op_id", None))
    try:
        # The span stays open across emitted batches, exactly like the
        # tuple operator's generator suspends inside its span.
        yield from _rebatched(
            run, ev._grouped_tuples(clause, grouper, annotated(), key_of))
    finally:
        span.set(groups=ev.group_stats.groups_emitted - emitted_before)
        span.end()
