"""Runtime operators: grouping, PP-k joins, pushed-SQL execution."""

from .group import GroupStats, clustered_groups, sorted_groups
from .ppk import ppk_extend
from .pushedsql import apply_template, execute_pushed

__all__ = [
    "GroupStats",
    "clustered_groups",
    "sorted_groups",
    "ppk_extend",
    "apply_template",
    "execute_pushed",
]
