"""Grouping operators (sections 4.2 and 5.2).

"The ALDSP runtime has just one implementation of the grouping operator
[which] relies on input that is pre-clustered with respect to the grouping
expression(s).  Its job is thus to simply form groups while watching for
the grouping expression(s) to change ... If the input would not otherwise
be clustered, a sort operator is used to provide the required clustering."

Both paths are streaming generators; :class:`GroupStats` records the peak
number of tuples resident in the operator, making the constant-memory
property of the clustered path observable (the streaming-group benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, TypeVar

from ...concurrency import SyncCounters

T = TypeVar("T")
Key = tuple


@dataclass
class GroupStats(SyncCounters):
    peak_resident: int = 0
    groups_emitted: int = 0

    def __post_init__(self) -> None:
        self._init_lock("GroupStats")

    def observe(self, resident: int) -> None:
        with self._lock:
            if resident > self.peak_resident:
                self.peak_resident = resident

    def reset(self) -> None:
        with self._lock:
            self.peak_resident = 0
            self.groups_emitted = 0


def clustered_groups(
    stream: Iterable[T],
    key_of: Callable[[T], Key],
    stats: GroupStats | None = None,
    amortize_stats: bool = False,
) -> Iterator[tuple[Key, list[T]]]:
    """Form groups from pre-clustered input: one group is resident at a
    time (constant memory in the number of groups).

    ``amortize_stats`` (the batch engine's mode) records residency once
    per *group* instead of once per appended tuple — the running maximum
    over a group's appends equals its final length, so ``peak_resident``
    is identical while the locked observe drops from O(tuples) to
    O(groups)."""
    current_key: Key | None = None
    current: list[T] = []
    started = False
    for item in stream:
        key = key_of(item)
        if started and key != current_key:
            if stats is not None:
                if amortize_stats:
                    stats.observe(len(current))
                stats.bump(groups_emitted=1)
            yield current_key, current  # type: ignore[misc]
            current = []
        current_key = key
        current.append(item)
        started = True
        if stats is not None and not amortize_stats:
            stats.observe(len(current))
    if started:
        if stats is not None:
            if amortize_stats:
                stats.observe(len(current))
            stats.bump(groups_emitted=1)
        yield current_key, current  # type: ignore[misc]


def sorted_groups(
    stream: Iterable[T],
    key_of: Callable[[T], Key],
    stats: GroupStats | None = None,
    amortize_stats: bool = False,
) -> Iterator[tuple[Key, list[T]]]:
    """The fallback: sort to provide clustering, then stream groups.

    The sort necessarily materializes the input, which is exactly the
    memory cost the optimizer tries to avoid by choosing pre-clustered
    plans (section 4.2).
    """
    materialized = list(stream)
    if stats is not None:
        stats.observe(len(materialized))
    materialized.sort(key=lambda item: _orderable(key_of(item)))
    yield from clustered_groups(materialized, key_of, stats, amortize_stats)


def _orderable(key: Key) -> tuple:
    """Make mixed-type/None keys sortable deterministically."""
    normalized = []
    for part in key:
        if part is None:
            normalized.append((0, ""))
        elif isinstance(part, bool):
            normalized.append((1, str(part)))
        elif isinstance(part, (int, float)):
            normalized.append((2, part))
        else:
            normalized.append((3, str(part)))
    return tuple(normalized)
