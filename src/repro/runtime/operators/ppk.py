"""The PP-k distributed join operator (section 4.2).

"k tuples are fetched from source A, a request is issued to fetch from B
all those tuples that would join with any of the k tuples from A, and then
a middleware join is performed between the k tuples from A and the tuples
fetched from B. ... The request for B tuples takes the form of a
parameterized disjunctive SQL query with k parameters ... A small value of
k means many roundtrips, while large k approximates a full middleware
index join."

Implemented as a tuple-stream transformer: it consumes the incoming
binding-tuple stream in blocks of ``k``, issues one disjunctive query per
block, hash-partitions the fetched rows by the correlation column, and
extends each tuple with its (possibly empty — left-outer semantics)
sequence of reconstructed items.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Iterator

from ...compiler.algebra import PPkLetClause, PushedSQL
from ...sql.ast_nodes import BinOp, Param, Select
from ...xml.items import Item
from ...xquery.functions import atomize
from .pushedsql import apply_template, bind_parameters

if TYPE_CHECKING:
    from ..evaluate import Evaluator


def ppk_extend(
    clause: PPkLetClause,
    tuples: Iterator[dict],
    evaluator: "Evaluator",
) -> Iterator[dict]:
    """Extend each incoming tuple with ``clause.var`` bound via PP-k."""
    pushed = clause.pushed
    assert pushed.correlation is not None
    block: list[dict] = []
    for env in tuples:
        block.append(env)
        if len(block) >= clause.k:
            yield from _process_block(clause, block, evaluator)
            block = []
    if block:
        yield from _process_block(clause, block, evaluator)


def _process_block(clause: PPkLetClause, block: list[dict],
                   evaluator: "Evaluator") -> Iterator[dict]:
    pushed = clause.pushed
    correlation = pushed.correlation
    assert correlation is not None
    ctx = evaluator.ctx
    ctx.stats.ppk_blocks += 1
    ctx.stats.ppk_tuples += len(block)

    # Compute each tuple's join key in the middleware.
    keys = []
    for env in block:
        atoms = atomize(evaluator.eval(correlation.outer_key, env))
        keys.append(atoms[0].value if atoms else None)

    distinct_keys = [key for key in dict.fromkeys(keys) if key is not None]
    rows_by_key: dict[object, list[dict]] = {}
    if distinct_keys:
        from ...sql.ast_nodes import param_order

        select, base_param_count = _disjunctive_select(pushed, correlation, len(distinct_keys))
        sql = ctx.renderer(pushed.vendor).render(select)
        # Non-correlation parameters are constant across the block
        # (otherwise the rewriter forced k=1).
        values = bind_parameters(pushed, block[0], evaluator) + distinct_keys
        params = [values[i] for i in param_order(select)]
        rows = ctx.connection(pushed.database).execute_query(sql, params)
        ctx.stats.pushed_queries += 1
        # Hash join: partition the fetched rows by the correlation column.
        for row in rows:
            rows_by_key.setdefault(row[correlation.column_alias], []).append(row)

    for env, key in zip(block, keys):
        matches = rows_by_key.get(key, [])
        items: list[Item] = []
        for row in matches:
            items.extend(apply_template(pushed.template, row, [row], evaluator))
        extended = dict(env)
        extended[clause.var] = items
        yield extended


def _disjunctive_select(pushed: PushedSQL, correlation, key_count: int) -> tuple[Select, int]:
    """Clone the base select and add ``(col = ?) OR (col = ?) ...`` with
    ``key_count`` parameters after the base parameters."""
    select = copy.deepcopy(pushed.select)
    base_param_count = len(pushed.param_exprs)
    disjunction = None
    for i in range(key_count):
        clause = BinOp("=", copy.deepcopy(correlation.column_expr),
                       Param(base_param_count + i))
        disjunction = clause if disjunction is None else BinOp("OR", disjunction, clause)
    assert disjunction is not None
    if select.where is None:
        select.where = disjunction
    else:
        select.where = BinOp("AND", select.where, disjunction)
    return select, base_param_count
