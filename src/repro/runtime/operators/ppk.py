"""The PP-k distributed join operator (section 4.2).

"k tuples are fetched from source A, a request is issued to fetch from B
all those tuples that would join with any of the k tuples from A, and then
a middleware join is performed between the k tuples from A and the tuples
fetched from B. ... The request for B tuples takes the form of a
parameterized disjunctive SQL query with k parameters ... A small value of
k means many roundtrips, while large k approximates a full middleware
index join."

Implemented as a tuple-stream transformer: it consumes the incoming
binding-tuple stream in blocks of ``k``, issues one disjunctive query per
block, hash-partitions the fetched rows by the correlation column, and
extends each tuple with its (possibly empty — left-outer semantics)
sequence of reconstructed items.

Two roundtrip-path optimizations ride on top of the paper's operator:

* **Bucketed statement reuse** — the disjunctive select is built and
  rendered once per *bucket* (key counts padded up to the next power of
  two, capped at ``k``) and memoized on the pushed region, so the
  per-database statement cache sees one SQL text per (region, bucket)
  instead of one per block.  Padding parameters are bound to NULL, which
  can never satisfy ``col = ?`` under three-valued logic, so padded
  queries return exactly the unpadded rows.
* **Block pipelining** — block N+1's source query is prefetched through
  the :class:`~repro.runtime.asyncexec.AsyncExecutor` while the
  middleware joins block N: physically overlapped under a wall clock, and
  accounted as overlap (the join advances by the *maximum* branch charge)
  under the virtual clock, so benchmarks show the win deterministically.

Two adaptive behaviours generalize that further (P-ADAPT):

* **Adaptive block sizing** — when ``ctx.adaptive_ppk`` is enabled, each
  block's capacity is re-derived from
  :meth:`~repro.runtime.observed.ObservedCostModel.recommend_ppk` as
  roundtrip observations accumulate: each block's elapsed feeds the model
  that sizes the next, with the compiler's static ``k`` as the cold-start
  value.  The chosen capacity is recorded per block as a tracer span fact
  (``k=``) and in the ``ppk.chosen_k`` histogram; re-sizes count on the
  source's ``ppk_k_adjustments``.
* **Deep prefetch window** — ``ctx.ppk_prefetch_window`` (W, clamped to
  the executor's worker pool) keeps W block fetches in flight while the
  pending window joins.  Rounds execute as one parallel group — one
  branch joining the W pending blocks, W branches fetching the next
  window — so the virtual clock charges ``max(W·join, fetch)`` per round
  (per block: ``max(join, fetch/W)``) and blocks still yield strictly in
  arrival order, degraded blocks included (left-outer semantics).
  ``W == 1`` is exactly the single-block pipelining above.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Iterator

from ...compiler.algebra import PPkLetClause, PushedSQL
from ...errors import DynamicError, SourceError
from ...sql.ast_nodes import BinOp, Param, Select, param_order
from ...xml.items import Item
from ...xquery.functions import atomize
from .pushedsql import apply_template, bind_parameters

if TYPE_CHECKING:
    from ..evaluate import Evaluator


def ppk_extend(
    clause: PPkLetClause,
    tuples: Iterator[dict],
    evaluator: "Evaluator",
) -> Iterator[dict]:
    """Extend each incoming tuple with ``clause.var`` bound via PP-k."""
    assert clause.pushed.correlation is not None
    ctx = evaluator.ctx
    blocks = _blocks(tuples, _block_sizer(clause, ctx))
    threshold = ctx.replan_threshold
    if (threshold is not None
            and getattr(clause, "est_replan_scan", False)
            and getattr(clause, "est_outer", None) is not None):
        # Mid-query re-planning is armed for this region (P-COST).  Blocks
        # run sequentially — the block boundary is the safe switch point,
        # and the decision must see every tuple the operator consumed.
        yield from _extend_with_replan(clause, blocks, threshold, evaluator)
        return
    if not ctx.ppk_pipeline:
        for block, capacity in blocks:
            fetched = _fetch_block(clause, block, capacity, evaluator)
            yield from _join_block(clause, block, fetched, evaluator)
        return

    # Pipelined: while the pending window's rows are hash-joined in the
    # middleware, the next W disjunctive queries are already in flight.
    window = max(1, min(ctx.ppk_prefetch_window, ctx.async_exec.max_workers))
    pending = _take(blocks, window)
    if not pending:
        return
    fetched = ctx.async_exec.run_parallel(
        [_fetch_thunk(clause, block, capacity, evaluator)
         for block, capacity in pending]
    )
    while True:
        upcoming = _take(blocks, window)
        if not upcoming:
            break
        outcomes = ctx.async_exec.run_parallel(
            [_join_thunk(clause, pending, fetched, evaluator)]
            + [_fetch_thunk(clause, block, capacity, evaluator)
               for block, capacity in upcoming]
        )
        yield from outcomes[0]
        pending, fetched = upcoming, outcomes[1:]
    for (block, _capacity), fetch in zip(pending, fetched):
        yield from _join_block(clause, block, fetch, evaluator)


def _extend_with_replan(clause: PPkLetClause, blocks, threshold: float,
                        evaluator: "Evaluator") -> Iterator[dict]:
    """PP-k with a mid-query escape hatch: once the consumed outer tuples
    exceed ``threshold``× the costed estimate, abandon the per-block
    disjunctive queries at the block boundary and switch to the runner-up
    — one full scan of the region's base select, hash-joined against all
    remaining tuples.  The first block always runs as PP-k (the trigger
    compares consumption against the estimate, so the decision is
    deterministic in tuple counts, not in time)."""
    ctx = evaluator.ctx
    budget = threshold * max(getattr(clause, "est_outer", 1.0), 1.0)
    seen = 0
    for block, capacity in blocks:
        if seen > 0 and seen + len(block) > budget:
            rows_by_key = _replan_fetch_scan(clause, block[0], evaluator)
            yield from _join_scan(clause, block, rows_by_key, evaluator)
            for later, _capacity in blocks:
                yield from _join_scan(clause, later, rows_by_key, evaluator)
            return
        seen += len(block)
        fetched = _fetch_block(clause, block, capacity, evaluator)
        yield from _join_block(clause, block, fetched, evaluator)


def _replan_fetch_scan(clause: PPkLetClause, env: dict,
                       evaluator: "Evaluator") -> dict:
    """Fetch the region's base select once (the correlation disjunction is
    added per block, so the base select *is* the full scan) and partition
    the rows by the correlation column — the index-join build, done as a
    re-plan."""
    from .pushedsql import render_pushed

    pushed = clause.pushed
    correlation = pushed.correlation
    ctx = evaluator.ctx
    ctx.stats.bump(replans=1)
    rows_by_key: dict[object, list[dict]] = {}
    with ctx.tracer.start("replan", pushed.database,
                          op=getattr(clause, "op_id", None),
                          strategy_from="ppk", strategy_to="scan") as span:
        sql = render_pushed(pushed, evaluator)
        values = bind_parameters(pushed, env, evaluator)
        params = [values[i] for i in param_order(pushed.select)]
        try:
            rows = ctx.connection(pushed.database).execute_query(sql, params)
        except SourceError as exc:
            if not ctx.resilience.absorb(pushed.database, exc):
                raise
            # degraded scan: every remaining tuple left-outer joins to
            # nothing, exactly like a degraded PP-k block
            span.set(degraded=True)
            rows = []
        else:
            ctx.stats.bump(pushed_queries=1)
            span.set(rows=len(rows))
        for row in rows:
            if correlation.column_alias not in row:
                raise DynamicError(
                    f"PP-k correlation alias {correlation.column_alias!r} "
                    f"missing from fetched row (columns: {sorted(row)})"
                )
            rows_by_key.setdefault(row[correlation.column_alias], []).append(row)
    return rows_by_key


def _join_scan(clause: PPkLetClause, block: list[dict], rows_by_key: dict,
               evaluator: "Evaluator") -> Iterator[dict]:
    """Join one block of tuples against the re-plan scan's partitioned
    rows — key computation and per-key row order match the PP-k blocks,
    so the output stream is item-identical to the abandoned strategy."""
    correlation = clause.pushed.correlation
    keys = []
    for env in block:
        atoms = atomize(evaluator.eval(correlation.outer_key, env))
        keys.append(atoms[0].value if atoms else None)
    yield from _join_block(clause, block, (keys, rows_by_key), evaluator)


def _block_sizer(clause: PPkLetClause, ctx):
    """``next_k()`` callback deciding the next block's capacity.

    With adaptation off this is the compiler's static ``clause.k``.  With
    it on, each call consults the observed cost model — by construction
    *after* the previous round's fetches were recorded, which closes the
    observe→decide loop at block granularity."""
    config = ctx.adaptive_ppk
    if not config.enabled:
        return lambda: clause.k
    pushed = clause.pushed
    state = {"last": None}

    def next_k() -> int:
        recommended = ctx.observed.recommend_ppk(
            pushed.database, k_min=config.k_min, k_max=config.k_max,
            overhead_target=config.overhead_target,
        )
        chosen = recommended if recommended is not None else clause.k
        chosen = max(config.k_min, min(config.k_max, chosen))
        if ctx.batch_size > 1:
            # Batching delivers tuples upstream in batch_size chunks.  An
            # adaptive block larger than one batch cannot fill without
            # draining several upstream batches first, which stalls the
            # prefetch pipeline and defeats batch-granularity laziness —
            # the two knobs fight.  Cap k at the batch size (never below
            # the configured floor); with the default batch of 256 and
            # k_max 200 the cap is inert.
            chosen = min(chosen, max(config.k_min, ctx.batch_size))
        if state["last"] is not None and chosen != state["last"]:
            database = ctx.databases.get(pushed.database)
            if database is not None:
                database.stats.bump(ppk_k_adjustments=1)
        state["last"] = chosen
        ctx.metrics.histogram("ppk.chosen_k", source=pushed.database).observe(chosen)
        return chosen

    return next_k


def _blocks(tuples: Iterator[dict], next_k) -> Iterator[tuple[list[dict], int]]:
    """Chop the tuple stream into ``(block, capacity)`` pairs, asking
    ``next_k`` for each new block's capacity as the previous one closes."""
    block: list[dict] = []
    capacity = next_k()
    for env in tuples:
        block.append(env)
        if len(block) >= capacity:
            yield block, capacity
            block = []
            capacity = next_k()
    if block:
        yield block, capacity


def _take(blocks: Iterator[tuple[list[dict], int]], n: int) -> list[tuple[list[dict], int]]:
    taken: list[tuple[list[dict], int]] = []
    for entry in blocks:
        taken.append(entry)
        if len(taken) >= n:
            break
    return taken


def _fetch_thunk(clause: PPkLetClause, block: list[dict], capacity: int,
                 evaluator: "Evaluator"):
    return lambda: _fetch_block(clause, block, capacity, evaluator)


def _join_thunk(clause: PPkLetClause, pending: list[tuple[list[dict], int]],
                fetched: list, evaluator: "Evaluator"):
    """One branch joining the whole pending window in block order, so the
    round's virtual-clock charge is max(sum-of-joins, slowest fetch)."""

    def join_all() -> list[dict]:
        joined: list[dict] = []
        for (block, _capacity), fetch in zip(pending, fetched):
            joined.extend(_join_block(clause, block, fetch, evaluator))
        return joined

    return join_all


def _fetch_block(clause: PPkLetClause, block: list[dict], capacity: int,
                 evaluator: "Evaluator") -> tuple[list, dict]:
    """Issue the block's disjunctive query; returns the per-tuple join keys
    and the fetched rows hash-partitioned by the correlation column."""
    pushed = clause.pushed
    correlation = pushed.correlation
    assert correlation is not None
    ctx = evaluator.ctx
    ctx.stats.bump(ppk_blocks=1, ppk_tuples=len(block))

    with ctx.tracer.start("ppk.fetch", pushed.database,
                          op=getattr(clause, "op_id", None),
                          tuples=len(block), k=capacity) as span:
        # Compute each tuple's join key in the middleware.  Under the
        # batch engine the key expression is row-compiled once and swept
        # over the block in one pass (identical values: the compiled
        # closure bridges to the interpreter for anything non-trivial).
        if ctx.batch_size > 1:
            from ..rowcompile import rowfn  # function-level: avoids an
            # import cycle (evaluate -> ppk at module load)

            key_fn = rowfn(correlation.outer_key)
            keys = [atoms[0].value if atoms else None
                    for atoms in (atomize(key_fn(evaluator, env))
                                  for env in block)]
        else:
            keys = []
            for env in block:
                atoms = atomize(evaluator.eval(correlation.outer_key, env))
                keys.append(atoms[0].value if atoms else None)

        distinct_keys = [key for key in dict.fromkeys(keys) if key is not None]
        rows_by_key: dict[object, list[dict]] = {}
        if distinct_keys:
            bucket = _bucket_size(len(distinct_keys), capacity)
            sql, order = _bucketed_sql(pushed, correlation, bucket, evaluator)
            # Non-correlation parameters are constant across the block
            # (otherwise the rewriter forced k=1); pad the key list with NULLs
            # up to the bucket size — NULL never equals anything, so padding
            # cannot match rows.
            values = (bind_parameters(pushed, block[0], evaluator)
                      + distinct_keys + [None] * (bucket - len(distinct_keys)))
            params = [values[i] for i in order]
            try:
                rows = ctx.connection(pushed.database).execute_query(sql, params)
            except SourceError as exc:
                if ctx.resilience.absorb(pushed.database, exc):
                    # Degraded block: every tuple left-outer joins to nothing.
                    span.set(degraded=True)
                    return keys, rows_by_key
                raise
            ctx.stats.bump(pushed_queries=1)
            span.set(rows=len(rows))
            # Hash join: partition the fetched rows by the correlation column.
            for row in rows:
                if correlation.column_alias not in row:
                    raise DynamicError(
                        f"PP-k correlation alias {correlation.column_alias!r} missing "
                        f"from fetched row (columns: {sorted(row)})"
                    )
                rows_by_key.setdefault(row[correlation.column_alias], []).append(row)
    return keys, rows_by_key


def _join_block(clause: PPkLetClause, block: list[dict],
                fetched: tuple[list, dict],
                evaluator: "Evaluator") -> Iterator[dict]:
    keys, rows_by_key = fetched
    ctx = evaluator.ctx
    # The span covers only the middleware join charge, not the downstream
    # consumption of the joined tuples, so its elapsed time is exactly the
    # operator's own work.
    with ctx.tracer.start("ppk.join", op=getattr(clause, "op_id", None),
                          tuples=len(block)):
        ctx.clock.charge_ms(ctx.middleware.ppk_join_ms_per_tuple * len(block))
    for env, key in zip(block, keys):
        matches = rows_by_key.get(key, [])
        items: list[Item] = []
        for row in matches:
            items.extend(apply_template(clause.pushed.template, row, [row], evaluator))
        extended = dict(env)
        extended[clause.var] = items
        yield extended


def _bucket_size(key_count: int, k: int) -> int:
    """Pad ``key_count`` up to the next power of two, capped at the block
    size ``k`` (a full block is its own bucket)."""
    size = 1
    while size < key_count:
        size <<= 1
    return max(min(size, k), key_count)


def _bucketed_sql(pushed: PushedSQL, correlation, bucket: int,
                  evaluator: "Evaluator") -> tuple[str, list[int]]:
    """The rendered disjunctive SQL and its parameter permutation for one
    bucket size, memoized on the pushed region so repeated blocks reuse
    both the rendering work and the source's statement cache."""
    cache = getattr(pushed, "_ppk_sql_cache", None)
    if cache is None:
        cache = {}
        pushed._ppk_sql_cache = cache
    entry = cache.get(bucket)
    if entry is None:
        select = _disjunctive_select(pushed, correlation, bucket)
        sql = evaluator.ctx.renderer(pushed.vendor).render(select)
        entry = (sql, param_order(select))
        cache[bucket] = entry
    return entry


def _disjunctive_select(pushed: PushedSQL, correlation, key_count: int) -> Select:
    """Clone the base select and add ``(col = ?) OR (col = ?) ...`` with
    ``key_count`` parameters after the base parameters."""
    select = copy.deepcopy(pushed.select)
    base_param_count = len(pushed.param_exprs)
    disjunction = None
    for i in range(key_count):
        clause = BinOp("=", copy.deepcopy(correlation.column_expr),
                       Param(base_param_count + i))
        disjunction = clause if disjunction is None else BinOp("OR", disjunction, clause)
    assert disjunction is not None
    if select.where is None:
        select.where = disjunction
    else:
        select.where = BinOp("AND", select.where, disjunction)
    return select
