"""Execution of pushed SQL regions and their reconstruction templates.

A :class:`~repro.compiler.algebra.PushedSQL` node is evaluated by binding
its middleware parameters, rendering the select for the target vendor,
shipping it through the JDBC-style connection, and rebuilding XML mid-tier
from the template — per row, or per cluster of rows when the region
contains a regrouped (left outer join / group-scan) shape.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ...compiler.algebra import ColumnSlot, GroupSlot, NestedSlot, PushedSQL
from ...errors import DynamicError, SourceError
from ...xml.items import AtomicValue, AttributeNode, ElementNode, Item, TextNode
from ...xml.qname import QName
from ...xquery import ast_nodes as ast
from ..operators.group import clustered_groups

if TYPE_CHECKING:
    from ..evaluate import Evaluator


def execute_pushed(pushed: PushedSQL, env: dict, evaluator: "Evaluator") -> Iterator[Item]:
    """Evaluate a pushed region (no PP-k correlation) lazily."""
    from ...sql.ast_nodes import param_order

    ctx = evaluator.ctx
    values = bind_parameters(pushed, env, evaluator)
    params = [values[i] for i in param_order(pushed.select)]
    sql = render_pushed(pushed, evaluator)
    # The span covers the source fetch; XML rebuild streams to the
    # consumer afterwards (the region's own work is the shipped query).
    with ctx.tracer.start("pushed-sql", pushed.database,
                          op=getattr(pushed, "op_id", None)) as span:
        try:
            rows = ctx.connection(pushed.database).execute_query(sql, params)
        except SourceError as exc:
            if ctx.resilience.absorb(pushed.database, exc):
                span.set(degraded=True)
                return  # degraded: the region contributes no items
            raise
        span.set(rows=len(rows))
    ctx.stats.bump(pushed_queries=1)
    yield from rebuild(pushed, rows, evaluator)


def bind_parameters(pushed: PushedSQL, env: dict, evaluator: "Evaluator") -> list:
    """Middleware parameter values in creation-index order (reorder with
    :func:`repro.sql.ast_nodes.param_order` before shipping)."""
    params = []
    for expr in pushed.param_exprs:
        params.append(single_param_value(evaluator.eval(expr, env)))
    return params


def single_param_value(items: list[Item]):
    """Project one middleware value onto a SQL parameter."""
    from ...xquery.functions import atomize

    atoms = atomize(items)
    if not atoms:
        return None
    if len(atoms) > 1:
        raise DynamicError("SQL parameter bound to a multi-item sequence")
    return atoms[0].value


def render_pushed(pushed: PushedSQL, evaluator: "Evaluator") -> str:
    """Render (and memoize) the SQL text for the region's vendor."""
    cached = getattr(pushed, "_sql_text", None)
    if cached is not None:
        return cached
    text = evaluator.ctx.renderer(pushed.vendor).render(pushed.select)
    pushed._sql_text = text
    return text


def rebuild(pushed: PushedSQL, rows: list[dict], evaluator: "Evaluator") -> Iterator[Item]:
    """Apply the reconstruction template to the fetched rows."""
    if pushed.regroup is None:
        template = pushed.template
        size = evaluator.ctx.batch_size
        if size > 1 and len(rows) > 1:
            # Batch-protocol materialization: rebuild batch_size rows per
            # pull into one flat item list (identical stream, one
            # generator resumption per batch instead of per row).
            for start in range(0, len(rows), size):
                items: list[Item] = []
                for row in rows[start:start + size]:
                    items.extend(apply_template(template, row, [row], evaluator))
                yield from items
            return
        for row in rows:
            yield from apply_template(template, row, [row], evaluator)
        return
    keys = pushed.regroup
    for _key, group in clustered_groups(rows, lambda r: tuple(r[a] for a in keys)):
        yield from apply_template(pushed.template, group[0], group, evaluator)


def apply_template(template: ast.AstNode, row: dict, group: list[dict],
                   evaluator: "Evaluator") -> list[Item]:
    """Rebuild data-model items from one row (or row group)."""
    if isinstance(template, ColumnSlot):
        return _column_value(template, row)
    if isinstance(template, NestedSlot):
        items: list[Item] = []
        for member in group:
            if member.get(template.probe_alias) is None:
                continue
            items.extend(apply_template(template.template, member, [member], evaluator))
        return items
    if isinstance(template, GroupSlot):
        items = []
        for member in group:
            items.extend(apply_template(template.template, member, [member], evaluator))
        return items
    if isinstance(template, ast.Literal):
        return [template.value]
    if isinstance(template, ast.EmptySequence):
        return []
    if isinstance(template, ast.SequenceExpr):
        items = []
        for part in template.items:
            items.extend(apply_template(part, row, group, evaluator))
        return items
    if isinstance(template, ast.ElementCtor):
        return [_build_element(template, row, group, evaluator)]
    raise DynamicError(f"unexpected template node {type(template).__name__}")


def _column_value(slot: ColumnSlot, row: dict) -> list[Item]:
    value = row.get(slot.alias)
    if value is None:
        return []  # NULLs are missing elements/values (section 4.4)
    atom = AtomicValue(value, slot.xs_type)
    if slot.element_name is None:
        return [atom]
    element = ElementNode(QName(slot.element_name), type_annotation=slot.xs_type)
    element.add_child(TextNode(atom.string_value()))
    return [element]


def _build_element(template: ast.ElementCtor, row: dict, group: list[dict],
                   evaluator: "Evaluator") -> ElementNode:
    from ..evaluate import construct_element_content

    attributes = []
    for attr in template.attributes:
        values = apply_template(attr.value, row, group, evaluator)
        if not values:
            if attr.optional:
                continue
            attributes.append(AttributeNode(QName(attr.name), AtomicValue("", "xs:string")))
            continue
        from ...xquery.functions import atomize

        atoms = atomize(values)
        text = " ".join(a.string_value() for a in atoms)
        type_name = atoms[0].type_name if len(atoms) == 1 else "xs:string"
        attributes.append(AttributeNode(QName(attr.name), AtomicValue(text, type_name)))
    content: list[Item] = []
    for part in template.content:
        content.extend(apply_template(part, row, group, evaluator))
    return construct_element_content(template.name, attributes, content)
