"""Row-expression compiler (P-BATCH): AST shapes become closures.

The tuple-at-a-time interpreter pays a ``getattr`` dispatch, a generator
wrap and a ``list()`` materialization on *every* sub-expression of every
row.  The batch engine amortizes per-clause setup across a whole batch,
so it can afford to compile each clause expression **once** into a chain
of plain closures ``f(evaluator, env) -> list[Item]`` and call that per
row — no dispatch, no generator frames.

Semantics are byte-identical to the interpreter by construction: every
compiled shape reuses the *same* helper functions the interpreter calls
(:func:`~repro.xquery.functions.atomize`, ``compare_atomics``,
``effective_boolean_value``, ``_coerce``, ``_axis``,
``construct_element_content``, the evaluator's ``_filter``), and every
shape the compiler does not understand falls back to a bridge closure
that simply calls ``evaluator.eval`` — the interpreter itself.  The
equivalence suite (``tests/test_batch_equivalence.py``) asserts the
end-to-end identity.

Compiled closures are cached on the AST node (``node._rowfn``), like the
memoized SQL renderings on pushed regions (``_sql_text``).  Closures
capture no evaluator or context, so plans shared through the plan cache
reuse them safely across platforms and threads; concurrent first
compilations produce equivalent closures and the last write wins (benign,
same contract as ``_sql_text``).

Every compiled closure returns a **fresh list** per call — callers (and
builtin evaluators) may extend or hold the result.
"""

from __future__ import annotations

import math
from typing import Callable

from ..errors import DynamicError
from ..xml.items import AtomicValue, AttributeNode, ElementNode, Node
from ..xml.qname import QName
from ..xquery import ast_nodes as ast
from ..xquery.functions import (
    all_builtins,
    atomize,
    compare_atomics,
    effective_boolean_value,
    numeric_value,
)

RowFn = Callable


def rowfn(node: ast.AstNode) -> RowFn:
    """The compiled row function for ``node`` (cached on the node).

    Always succeeds: unsupported shapes get the interpreter bridge."""
    fn = getattr(node, "_rowfn", None)
    if fn is None:
        fn = compile_rowfn(node)
        if fn is None:
            fn = _bridge(node)
        node._rowfn = fn
    return fn


def compile_rowfn(node: ast.AstNode) -> RowFn | None:
    """Compile ``node`` if its *root* shape is supported, else None.
    Unsupported sub-expressions inside a supported root are bridged
    individually, so partial compilation still pays off."""
    handler = _COMPILERS.get(type(node).__name__)
    if handler is None:
        return None
    return handler(node)


def _bridge(node: ast.AstNode) -> RowFn:
    """Fallback: defer to the interpreter (exact by definition)."""

    def call(evaluator, env):
        return evaluator.eval(node, env)

    return call


def _sub(node: ast.AstNode) -> RowFn:
    return rowfn(node)


# ---------------------------------------------------------------------------
# Shape compilers.  Each mirrors the corresponding Evaluator._eval_* method
# line for line; when editing one, edit both.
# ---------------------------------------------------------------------------


def _c_Literal(node: ast.Literal) -> RowFn:
    value = node.value
    return lambda evaluator, env: [value]


def _c_EmptySequence(node) -> RowFn:
    return lambda evaluator, env: []


def _c_VarRef(node: ast.VarRef) -> RowFn:
    name = node.name

    def call(evaluator, env):
        if name in env:
            return list(env[name])
        # external / module variables: rare, interpreter handles them
        return evaluator._eval_VarRef(node, env)

    return call


def _c_ContextItem(node) -> RowFn:
    def call(evaluator, env):
        if "." not in env:
            raise DynamicError("no context item")
        return list(env["."])

    return call


def _c_SequenceExpr(node: ast.SequenceExpr) -> RowFn | None:
    from .evaluate import _async_call_of

    if sum(1 for part in node.items if _async_call_of(part) is not None) > 1:
        return None  # sibling async overlap: interpreter only
    fns = [_sub(part) for part in node.items]

    def call(evaluator, env):
        items = []
        for fn in fns:
            items.extend(fn(evaluator, env))
        return items

    return call


def _single_numeric(evaluator, fn: RowFn, env, op: str):
    atoms = atomize(fn(evaluator, env))
    if not atoms:
        return None
    if len(atoms) > 1:
        raise DynamicError(f"{op}: operand has more than one item")
    return numeric_value(atoms[0])


def _c_RangeTo(node: ast.RangeTo) -> RowFn:
    start_fn, end_fn = _sub(node.start), _sub(node.end)

    def call(evaluator, env):
        start = _single_numeric(evaluator, start_fn, env, "range")
        end = _single_numeric(evaluator, end_fn, env, "range")
        if start is None or end is None:
            return []
        return [AtomicValue(i, "xs:integer") for i in range(int(start), int(end) + 1)]

    return call


def _c_Arithmetic(node: ast.Arithmetic) -> RowFn:
    left_fn, right_fn = _sub(node.left), _sub(node.right)
    op = node.op

    def call(evaluator, env):
        left = _single_numeric(evaluator, left_fn, env, op)
        right = _single_numeric(evaluator, right_fn, env, op)
        if left is None or right is None:
            return []
        if op == "+":
            value = left + right
        elif op == "-":
            value = left - right
        elif op == "*":
            value = left * right
        elif op == "div":
            if right == 0:
                raise DynamicError("division by zero")
            value = left / right
        elif op == "idiv":
            if right == 0:
                raise DynamicError("division by zero")
            value = int(left / right) if (left < 0) != (right < 0) and left % right else left // right
            value = int(value)
        elif op == "mod":
            if right == 0:
                raise DynamicError("division by zero")
            value = math.fmod(left, right)
            if isinstance(left, int) and isinstance(right, int):
                value = int(value)
        else:
            raise DynamicError(f"unknown arithmetic operator {op}")
        type_name = "xs:integer" if isinstance(value, int) else "xs:double"
        return [AtomicValue(value, type_name)]

    return call


def _c_UnaryMinus(node: ast.UnaryMinus) -> RowFn:
    operand_fn = _sub(node.operand)

    def call(evaluator, env):
        value = _single_numeric(evaluator, operand_fn, env, "unary -")
        if value is None:
            return []
        return [AtomicValue(-value, "xs:integer" if isinstance(value, int) else "xs:double")]

    return call


def _c_Comparison(node: ast.Comparison) -> RowFn:
    from .evaluate import _coerce

    left_fn, right_fn = _sub(node.left), _sub(node.right)
    op, general = node.op, node.general

    def call(evaluator, env):
        left = atomize(left_fn(evaluator, env))
        right = atomize(right_fn(evaluator, env))
        if general:
            result = any(
                compare_atomics(op, _coerce(a, b), _coerce(b, a))
                for a in left
                for b in right
            )
            return [AtomicValue(result, "xs:boolean")]
        if not left or not right:
            return []
        if len(left) > 1 or len(right) > 1:
            raise DynamicError("value comparison over multi-item sequence")
        return [AtomicValue(compare_atomics(op, left[0], right[0]), "xs:boolean")]

    return call


def _c_AndExpr(node: ast.AndExpr) -> RowFn:
    left_fn, right_fn = _sub(node.left), _sub(node.right)

    def call(evaluator, env):
        value = effective_boolean_value(left_fn(evaluator, env)) and \
            effective_boolean_value(right_fn(evaluator, env))
        return [AtomicValue(value, "xs:boolean")]

    return call


def _c_OrExpr(node: ast.OrExpr) -> RowFn:
    left_fn, right_fn = _sub(node.left), _sub(node.right)

    def call(evaluator, env):
        value = effective_boolean_value(left_fn(evaluator, env)) or \
            effective_boolean_value(right_fn(evaluator, env))
        return [AtomicValue(value, "xs:boolean")]

    return call


def _c_IfExpr(node: ast.IfExpr) -> RowFn:
    condition_fn = _sub(node.condition)
    then_fn, else_fn = _sub(node.then_branch), _sub(node.else_branch)

    def call(evaluator, env):
        if effective_boolean_value(condition_fn(evaluator, env)):
            return then_fn(evaluator, env)
        return else_fn(evaluator, env)

    return call


def _c_PathExpr(node: ast.PathExpr) -> RowFn:
    base_fn = _sub(node.base)
    step_fns = [_c_step(step) for step in node.steps]

    def call(evaluator, env):
        current = base_fn(evaluator, env)
        for step_fn in step_fns:
            current = step_fn(evaluator, env, current)
        return current

    return call


def _c_step(step: ast.Step):
    from .evaluate import _axis

    predicates = step.predicates
    if (step.axis == "child" and isinstance(step.test, ast.NameTest)
            and step.test.name != "*" and not predicates):
        # The hot shape ($var/CHILD): inline the axis + name test.
        name = step.test.name

        def fast(evaluator, env, items):
            results = []
            for item in items:
                if not isinstance(item, Node):
                    raise DynamicError("path step applied to an atomic value")
                results.extend(
                    c for c in item.children()
                    if isinstance(c, ElementNode) and c.name.local == name
                )
            return results

        return fast

    def generic(evaluator, env, items):
        results = []
        for item in items:
            if not isinstance(item, Node):
                raise DynamicError("path step applied to an atomic value")
            results.extend(_axis(item, step))
        for predicate in predicates:
            results = evaluator._filter(results, predicate, env)
        return results

    return generic


def _c_FilterExpr(node: ast.FilterExpr) -> RowFn:
    base_fn = _sub(node.base)
    predicates = node.predicates

    def call(evaluator, env):
        items = base_fn(evaluator, env)
        for predicate in predicates:
            items = evaluator._filter(items, predicate, env)
        return items

    return call


def _c_AttributeCtor(node: ast.AttributeCtor) -> RowFn:
    value_fn = _sub(node.value)
    qname, optional = QName(node.name), node.optional

    def call(evaluator, env):
        atoms = atomize(value_fn(evaluator, env))
        if not atoms and optional:
            return []
        text = " ".join(a.string_value() for a in atoms)
        type_name = atoms[0].type_name if len(atoms) == 1 else "xs:string"
        return [AttributeNode(qname, AtomicValue(text, type_name))]

    return call


def _c_ElementCtor(node: ast.ElementCtor) -> RowFn | None:
    from .evaluate import _async_call_of, construct_element_content

    if sum(1 for part in node.content if _async_call_of(part) is not None) > 1:
        return None  # sibling async overlap: interpreter only
    attr_specs = [(QName(attr.name), attr.optional, _sub(attr.value))
                  for attr in node.attributes]
    content_fns = [_sub(part) for part in node.content]
    name, optional = node.name, node.optional

    def call(evaluator, env):
        attributes = []
        for qname, attr_optional, value_fn in attr_specs:
            atoms = atomize(value_fn(evaluator, env))
            if not atoms:
                if attr_optional:
                    continue  # ALDSP's attr?="" semantics (section 3.1)
                attributes.append(AttributeNode(qname, AtomicValue("", "xs:string")))
                continue
            text = " ".join(a.string_value() for a in atoms)
            type_name = atoms[0].type_name if len(atoms) == 1 else "xs:string"
            attributes.append(AttributeNode(qname, AtomicValue(text, type_name)))
        content = []
        for content_fn in content_fns:
            content.extend(content_fn(evaluator, env))
        element = construct_element_content(name, attributes, content)
        if optional and not element.children():
            return []
        return [element]

    return call


_SPECIAL_CALLS = frozenset({"fn-bea:async", "fn-bea:fail-over", "fn-bea:timeout"})


def _c_FunctionCall(node: ast.FunctionCall) -> RowFn | None:
    name = node.name
    if name in ("fn:position", "fn:last"):
        key = "#position" if name == "fn:position" else "#last"

        def focus(evaluator, env):
            if key not in env:
                raise DynamicError(f"{name}() used outside a predicate focus")
            return [env[key]]

        return focus
    if name in _SPECIAL_CALLS:
        return None  # service-quality calls: spans/branch accounting
    builtin = all_builtins().get(name)
    if builtin is None or builtin.evaluator is None or builtin.lazy:
        return None  # user functions (cache/recursion) and lazy builtins
    if not builtin.min_args <= len(node.args) <= builtin.max_args:
        return None  # let the interpreter raise its arity error
    arg_fns = [_sub(arg) for arg in node.args]
    evaluator_fn = builtin.evaluator
    if len(arg_fns) == 1:
        arg0 = arg_fns[0]
        return lambda evaluator, env: evaluator_fn(arg0(evaluator, env))

    def call(evaluator, env):
        return evaluator_fn(*[fn(evaluator, env) for fn in arg_fns])

    return call


_COMPILERS: dict[str, Callable] = {
    "Literal": _c_Literal,
    "EmptySequence": _c_EmptySequence,
    "VarRef": _c_VarRef,
    "ContextItem": _c_ContextItem,
    "SequenceExpr": _c_SequenceExpr,
    "RangeTo": _c_RangeTo,
    "Arithmetic": _c_Arithmetic,
    "UnaryMinus": _c_UnaryMinus,
    "Comparison": _c_Comparison,
    "AndExpr": _c_AndExpr,
    "OrExpr": _c_OrExpr,
    "IfExpr": _c_IfExpr,
    "PathExpr": _c_PathExpr,
    "FilterExpr": _c_FilterExpr,
    "AttributeCtor": _c_AttributeCtor,
    "ElementCtor": _c_ElementCtor,
    "FunctionCall": _c_FunctionCall,
}
