"""Observed cost-based optimization (section 9, future work).

"We are starting work on an observed cost-based approach to optimization
and tuning; the idea is to skip past 'old school' techniques that rely on
static cost models and difficult-to-obtain statistics, instead
instrumenting the system and basing its optimization decisions ... only on
actually observed data characteristics and data source behavior."

This module implements that idea for the decision ALDSP actually exposes a
knob for — the PP-k block size.  Every source roundtrip is observed as an
(elapsed time, rows shipped) sample; a per-source least-squares fit
recovers the roundtrip overhead and per-row cost, from which the
recommended block size follows: k large enough that the per-block
roundtrip overhead stops dominating the row-shipping cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..concurrency import RACE, TrackedRLock, guarded_by


@dataclass
class Observation:
    rows: int
    elapsed_ms: float


@dataclass
class CostEstimate:
    """Fitted cost of one source: ``elapsed ≈ roundtrip + rows * per_row``."""

    roundtrip_ms: float
    per_row_ms: float
    samples: int

    def predict_ppk_ms(self, n_tuples: int, k: int) -> float:
        blocks = -(-n_tuples // k)
        return blocks * self.roundtrip_ms + n_tuples * self.per_row_ms


@guarded_by("_lock")
class ObservedCostModel:
    """Per-source observations and fits.

    Thread-safety (A-CONC): :meth:`record` is called from async-executor
    pool threads (the connection observer fires inside parallel branches),
    while :meth:`estimate` runs on request threads — both the sample map
    and the per-source lists are guarded by ``_lock``."""

    def __init__(self, max_samples: int = 256):
        self.max_samples = max_samples
        self._lock = TrackedRLock("ObservedCostModel")
        self._samples: dict[str, list[Observation]] = {}

    # -- instrumentation -----------------------------------------------------

    def record(self, source: str, rows: int, elapsed_ms: float) -> None:
        with self._lock:
            samples = self._samples.setdefault(source, [])
            samples.append(Observation(rows, elapsed_ms))
            if len(samples) > self.max_samples:
                del samples[: len(samples) - self.max_samples]
            RACE.detector.on_access(self, "_samples", True)

    def sources(self) -> list[str]:
        with self._lock:
            return sorted(self._samples)

    def clear(self) -> None:
        """Drop all observations (e.g. after a latency-regime change)."""
        with self._lock:
            self._samples.clear()
            RACE.detector.on_access(self, "_samples", True)

    # -- fitting ---------------------------------------------------------------

    def estimate(self, source: str) -> CostEstimate | None:
        """Least-squares fit of elapsed = a + b * rows for one source.

        Needs at least two samples with distinct row counts; with uniform
        row counts the whole cost is attributed to the roundtrip (the
        conservative reading).
        """
        with self._lock:
            samples = list(self._samples.get(source) or ())
        if not samples:
            return None
        n = len(samples)
        mean_rows = sum(s.rows for s in samples) / n
        mean_ms = sum(s.elapsed_ms for s in samples) / n
        var_rows = sum((s.rows - mean_rows) ** 2 for s in samples)
        if var_rows == 0:
            return CostEstimate(roundtrip_ms=mean_ms, per_row_ms=0.0, samples=n)
        cov = sum((s.rows - mean_rows) * (s.elapsed_ms - mean_ms) for s in samples)
        per_row = max(cov / var_rows, 0.0)
        roundtrip = max(mean_ms - per_row * mean_rows, 0.0)
        return CostEstimate(roundtrip, per_row, n)

    # -- decisions --------------------------------------------------------------

    def recommend_ppk(self, source: str, k_min: int = 1, k_max: int = 200,
                      overhead_target: float = 0.5) -> int | None:
        """Block size at which the per-tuple roundtrip share drops below
        ``overhead_target`` of the per-tuple total.

        Per tuple, PP-k costs roundtrip/k + per_row; solving
        (roundtrip/k) / (roundtrip/k + per_row) <= target gives
        k >= roundtrip * (1 - target) / (target * per_row).
        High-latency sources get large blocks; cheap local sources do not
        need them.
        """
        estimate = self.estimate(source)
        if estimate is None or estimate.samples < 2:
            return None
        if estimate.per_row_ms <= 0:
            return k_max  # pure-roundtrip source: batch as much as possible
        ideal = estimate.roundtrip_ms * (1 - overhead_target) / (
            overhead_target * estimate.per_row_ms
        )
        return max(k_min, min(k_max, math.ceil(ideal)))
