"""The plan interpreter: evaluates optimized expression trees.

The optimized/pushed tree *is* the executable plan (code generation in
ALDSP produces "a data structure that can be interpreted efficiently at
runtime", section 3.3).  FLWOR pipelines are evaluated as streams of
binding tuples flowing through clause operators — Python generators give
the same pull-based, pipelined behaviour as the token-iterator runtime of
section 5.2 — with dedicated operators for pushed SQL regions, PP-k
blocks, grouping, and the service-quality functions (async / fail-over /
timeout / cache).
"""

from __future__ import annotations

import math
from typing import Iterator

from ..clock import VirtualClock
from ..compiler.algebra import (
    IndexJoinForClause,
    PPkLetClause,
    PushedSQL,
    PushedTupleForClause,
    SourceCall,
)
from ..errors import DynamicError, SourceError, TypeMatchError
from ..schema.dynamic import value_matches
from ..xml.items import (
    AtomicValue,
    AttributeNode,
    DocumentNode,
    ElementNode,
    Item,
    Node,
    TextNode,
    iter_descendants,
)
from ..xml.qname import QName
from ..xquery import ast_nodes as ast
from ..xquery.functions import (
    all_builtins,
    atomize,
    compare_atomics,
    effective_boolean_value,
    numeric_value,
)
from .context import DynamicContext
from .operators.group import GroupStats, clustered_groups, sorted_groups
from .operators.ppk import ppk_extend
from .operators.pushedsql import apply_template, execute_pushed

Env = dict


def _clause_groups(clauses: list[ast.Clause],
                   parallel_regions: bool) -> list[list[ast.Clause]]:
    """Partition a FLWOR's clauses into singleton groups plus runs of
    consecutive clauses sharing a compiler-stamped ``scatter_group`` id
    (empty when scatter execution is administratively disabled)."""
    groups: list[list[ast.Clause]] = []
    for clause in clauses:
        group_id = getattr(clause, "scatter_group", None) if parallel_regions else None
        if (group_id is not None and groups
                and getattr(groups[-1][0], "scatter_group", None) == group_id):
            groups[-1].append(clause)
        else:
            groups.append([clause])
    return groups


class Evaluator:
    def __init__(self, ctx: DynamicContext):
        self.ctx = ctx
        self._depth = 0
        self.group_stats = GroupStats()

    # -- entry points ----------------------------------------------------------

    def eval(self, node: ast.AstNode, env: Env) -> list[Item]:
        return list(self.iter_eval(node, env))

    def iter_eval(self, node: ast.AstNode, env: Env) -> Iterator[Item]:
        """Lazy evaluation; FLWORs and pushed regions stream."""
        if isinstance(node, ast.FLWOR):
            yield from self._eval_flwor(node, env)
            return
        if isinstance(node, PushedSQL):
            yield from execute_pushed(node, env, self)
            return
        yield from self._eval_strict(node, env)

    # -- strict node dispatch -----------------------------------------------------

    def _eval_strict(self, node: ast.AstNode, env: Env) -> list[Item]:
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            raise DynamicError(f"cannot evaluate {type(node).__name__}")
        return method(node, env)

    def _eval_Literal(self, node: ast.Literal, env: Env) -> list[Item]:
        return [node.value]

    def _eval_EmptySequence(self, node, env) -> list[Item]:
        return []

    def _eval_VarRef(self, node: ast.VarRef, env: Env) -> list[Item]:
        if node.name in env:
            return list(env[node.name])
        if node.name in self.ctx.external_variables:
            return list(self.ctx.external_variables[node.name])
        # Module-level variable declarations (evaluated lazily, cached).
        if self.ctx.module is not None and node.name in self.ctx.module.variables:
            decl = self.ctx.module.variables[node.name]
            cached = getattr(decl, "_cached_value", None)
            if cached is None:
                if decl.value is None:
                    raise DynamicError(
                        f"external variable ${node.name} was not bound"
                    )
                cached = self.eval(decl.value, {})
                decl._cached_value = cached
            return list(cached)
        raise DynamicError(f"unbound variable ${node.name}")

    def _eval_ContextItem(self, node, env) -> list[Item]:
        if "." not in env:
            raise DynamicError("no context item")
        return list(env["."])

    def _eval_SequenceExpr(self, node: ast.SequenceExpr, env: Env) -> list[Item]:
        return self._eval_parts(node.items, env)

    def _eval_RangeTo(self, node: ast.RangeTo, env: Env) -> list[Item]:
        start = self._single_numeric(node.start, env, "range")
        end = self._single_numeric(node.end, env, "range")
        if start is None or end is None:
            return []
        return [AtomicValue(i, "xs:integer") for i in range(int(start), int(end) + 1)]

    def _eval_Arithmetic(self, node: ast.Arithmetic, env: Env) -> list[Item]:
        left = self._single_numeric(node.left, env, node.op)
        right = self._single_numeric(node.right, env, node.op)
        if left is None or right is None:
            return []
        op = node.op
        if op == "+":
            value = left + right
        elif op == "-":
            value = left - right
        elif op == "*":
            value = left * right
        elif op == "div":
            if right == 0:
                raise DynamicError("division by zero")
            value = left / right
        elif op == "idiv":
            if right == 0:
                raise DynamicError("division by zero")
            value = int(left / right) if (left < 0) != (right < 0) and left % right else left // right
            value = int(value)
        elif op == "mod":
            if right == 0:
                raise DynamicError("division by zero")
            value = math.fmod(left, right)
            if isinstance(left, int) and isinstance(right, int):
                value = int(value)
        else:
            raise DynamicError(f"unknown arithmetic operator {op}")
        type_name = "xs:integer" if isinstance(value, int) else "xs:double"
        return [AtomicValue(value, type_name)]

    def _eval_UnaryMinus(self, node: ast.UnaryMinus, env: Env) -> list[Item]:
        value = self._single_numeric(node.operand, env, "unary -")
        if value is None:
            return []
        return [AtomicValue(-value, "xs:integer" if isinstance(value, int) else "xs:double")]

    def _single_numeric(self, expr: ast.AstNode, env: Env, op: str):
        atoms = atomize(self.eval(expr, env))
        if not atoms:
            return None
        if len(atoms) > 1:
            raise DynamicError(f"{op}: operand has more than one item")
        return numeric_value(atoms[0])

    def _eval_Comparison(self, node: ast.Comparison, env: Env) -> list[Item]:
        left = atomize(self.eval(node.left, env))
        right = atomize(self.eval(node.right, env))
        if node.general:
            result = any(
                compare_atomics(node.op, _coerce(a, b), _coerce(b, a))
                for a in left
                for b in right
            )
            return [AtomicValue(result, "xs:boolean")]
        if not left or not right:
            return []
        if len(left) > 1 or len(right) > 1:
            raise DynamicError("value comparison over multi-item sequence")
        return [AtomicValue(compare_atomics(node.op, left[0], right[0]), "xs:boolean")]

    def _eval_AndExpr(self, node: ast.AndExpr, env: Env) -> list[Item]:
        value = effective_boolean_value(self.eval(node.left, env)) and \
            effective_boolean_value(self.eval(node.right, env))
        return [AtomicValue(value, "xs:boolean")]

    def _eval_OrExpr(self, node: ast.OrExpr, env: Env) -> list[Item]:
        value = effective_boolean_value(self.eval(node.left, env)) or \
            effective_boolean_value(self.eval(node.right, env))
        return [AtomicValue(value, "xs:boolean")]

    def _eval_IfExpr(self, node: ast.IfExpr, env: Env) -> list[Item]:
        if effective_boolean_value(self.eval(node.condition, env)):
            return self.eval(node.then_branch, env)
        return self.eval(node.else_branch, env)

    def _eval_Quantified(self, node: ast.Quantified, env: Env) -> list[Item]:
        result = self._quantify(node, env, 0)
        return [AtomicValue(result, "xs:boolean")]

    def _quantify(self, node: ast.Quantified, env: Env, index: int) -> bool:
        if index == len(node.bindings):
            return effective_boolean_value(self.eval(node.satisfies, env))
        var, expr = node.bindings[index]
        some = node.kind == "some"
        for item in self.iter_eval(expr, env):
            extended = dict(env)
            extended[var] = [item]
            matched = self._quantify(node, extended, index + 1)
            if some and matched:
                return True
            if not some and not matched:
                return False
        return not some

    def _eval_TypeswitchExpr(self, node: ast.TypeswitchExpr, env: Env) -> list[Item]:
        value = self.eval(node.operand, env)
        for var, case_type, expr in node.cases:
            if value_matches(value, case_type):
                inner = dict(env)
                if var is not None:
                    inner[var] = value
                return self.eval(expr, inner)
        inner = dict(env)
        if node.default_var is not None:
            inner[node.default_var] = value
        return self.eval(node.default_expr, inner)

    def _eval_AttributeCtor(self, node: ast.AttributeCtor, env: Env) -> list[Item]:
        """Computed attribute constructor: yields an attribute node (picked
        up by an enclosing element construction)."""
        atoms = atomize(self.eval(node.value, env))
        if not atoms and node.optional:
            return []
        text = " ".join(a.string_value() for a in atoms)
        type_name = atoms[0].type_name if len(atoms) == 1 else "xs:string"
        from ..xml.items import AttributeNode as _AttributeNode

        return [_AttributeNode(QName(node.name), AtomicValue(text, type_name))]

    def _eval_CastExpr(self, node: ast.CastExpr, env: Env) -> list[Item]:
        value = self.eval(node.operand, env)
        if node.kind == "instance":
            return [AtomicValue(value_matches(value, node.target), "xs:boolean")]
        if node.kind == "treat":
            if not value_matches(value, node.target):
                raise DynamicError(
                    f"treat as {node.target.show()}: value does not match"
                )
            return value
        # cast / castable
        try:
            result = self._cast_value(value, node)
        except DynamicError:
            if node.kind == "castable":
                return [AtomicValue(False, "xs:boolean")]
            raise
        if node.kind == "castable":
            return [AtomicValue(True, "xs:boolean")]
        return result

    def _cast_value(self, value: list[Item], node: ast.CastExpr) -> list[Item]:
        atoms = atomize(value)
        if not atoms:
            if node.target.allows_empty():
                return []
            raise DynamicError("cast of empty sequence to non-optional type")
        if len(atoms) > 1:
            raise DynamicError("cast of multi-item sequence")
        target = node.target.alternatives[0]
        type_name = getattr(target, "name", "xs:string")
        return [_convert_atomic(atoms[0], type_name)]

    def _eval_TypeMatch(self, node: ast.TypeMatch, env: Env) -> list[Item]:
        value = self.eval(node.operand, env)
        if not value_matches(value, node.target):
            raise TypeMatchError(
                f"runtime type check failed: value does not match {node.target.show()}"
            )
        return value

    def _eval_ErrorExpr(self, node: ast.ErrorExpr, env: Env) -> list[Item]:
        raise DynamicError(f"evaluation of erroneous expression: {node.message}")

    # -- paths -------------------------------------------------------------------------

    def _eval_PathExpr(self, node: ast.PathExpr, env: Env) -> list[Item]:
        current: list[Item] = self.eval(node.base, env)
        for step in node.steps:
            current = self._apply_step(current, step, env)
        return current

    def _apply_step(self, items: list[Item], step: ast.Step, env: Env) -> list[Item]:
        results: list[Item] = []
        for item in items:
            if not isinstance(item, Node):
                raise DynamicError("path step applied to an atomic value")
            results.extend(_axis(item, step))
        for predicate in step.predicates:
            results = self._filter(results, predicate, env)
        return results

    def _eval_FilterExpr(self, node: ast.FilterExpr, env: Env) -> list[Item]:
        items = self.eval(node.base, env)
        for predicate in node.predicates:
            items = self._filter(items, predicate, env)
        return items

    def _filter(self, items: list[Item], predicate: ast.AstNode, env: Env) -> list[Item]:
        kept: list[Item] = []
        size = AtomicValue(len(items), "xs:integer")
        for position, item in enumerate(items, start=1):
            inner = dict(env)
            inner["."] = [item]
            inner["#position"] = AtomicValue(position, "xs:integer")
            inner["#last"] = size
            value = self.eval(predicate, inner)
            if len(value) == 1 and isinstance(value[0], AtomicValue) and \
                    isinstance(value[0].value, (int, float)) and \
                    not isinstance(value[0].value, bool):
                if value[0].value == position:
                    kept.append(item)
            elif effective_boolean_value(value):
                kept.append(item)
        return kept

    # -- constructors ----------------------------------------------------------------------

    def _eval_ElementCtor(self, node: ast.ElementCtor, env: Env,
                          precomputed_content: list[Item] | None = None) -> list[Item]:
        attributes: list[AttributeNode] = []
        for attr in node.attributes:
            value = self.eval(attr.value, env)
            atoms = atomize(value)
            if not atoms:
                if attr.optional:
                    continue  # ALDSP's attr?="" semantics (section 3.1)
                attributes.append(
                    AttributeNode(QName(attr.name), AtomicValue("", "xs:string"))
                )
                continue
            text = " ".join(a.string_value() for a in atoms)
            type_name = atoms[0].type_name if len(atoms) == 1 else "xs:string"
            attributes.append(AttributeNode(QName(attr.name), AtomicValue(text, type_name)))
        if precomputed_content is None:
            content = self._eval_parts(node.content, env)
        else:
            content = precomputed_content
        element = construct_element_content(node.name, attributes, content)
        if node.optional and not element.children():
            # Residual optional constructors (outside normalized pipelines).
            return []
        return [element]

    def _eval_parts(self, parts: list[ast.AstNode], env: Env) -> list[Item]:
        """Evaluate sibling expressions; sibling ``fn-bea:async`` calls are
        overlapped (section 5.4).

        A sibling counts as asynchronous if it *is* an ``fn-bea:async``
        call or is a constructor whose sole content is one — the common
        ``<X>{fn-bea:async(...)}</X>`` dashboard pattern.
        """
        async_targets: dict[int, ast.FunctionCall] = {}
        for i, part in enumerate(parts):
            target = _async_call_of(part)
            if target is not None:
                async_targets[i] = target
        async_results: dict[int, list[Item]] = {}
        if len(async_targets) > 1:
            order = list(async_targets)
            thunks = [
                self._async_thunk(async_targets[i].args[0], env) for i in order
            ]
            for i, result in zip(order, self.ctx.async_exec.run_parallel(thunks)):
                async_results[i] = result
        items: list[Item] = []
        for i, part in enumerate(parts):
            if i in async_results:
                if part is async_targets[i]:
                    items.extend(async_results[i])
                else:
                    assert isinstance(part, ast.ElementCtor)
                    items.extend(
                        self._eval_ElementCtor(part, env, precomputed_content=async_results[i])
                    )
            else:
                items.extend(self.eval(part, env))
        return items

    # -- function calls --------------------------------------------------------------------

    def _eval_FunctionCall(self, node: ast.FunctionCall, env: Env) -> list[Item]:
        name = node.name
        if name in ("fn:position", "fn:last"):
            key = "#position" if name == "fn:position" else "#last"
            if key not in env:
                raise DynamicError(f"{name}() used outside a predicate focus")
            return [env[key]]
        if name == "fn-bea:async":
            with self.ctx.tracer.start("async.call", name,
                                       op=getattr(node, "op_id", None)):
                return self.ctx.async_exec.run_parallel(
                    [self._async_thunk(node.args[0], env)]
                )[0]
        if name == "fn-bea:fail-over":
            return self._fail_over(node, env)
        if name == "fn-bea:timeout":
            return self._timeout(node, env)
        builtins = all_builtins()
        if name in builtins:
            builtin = builtins[name]
            if not builtin.min_args <= len(node.args) <= builtin.max_args:
                raise DynamicError(f"{name}: wrong number of arguments")
            args = [self.eval(arg, env) for arg in node.args]
            assert builtin.evaluator is not None
            return builtin.evaluator(*args)
        return self._call_user_function(node, env)

    def _async_thunk(self, expr: ast.AstNode, env: Env):
        """A branch thunk for ``fn-bea:async``.  In partial-results mode a
        branch whose source fails degrades to the empty sequence (with a
        DegradationRecord) instead of sinking the whole parallel group."""

        def thunk() -> list[Item]:
            try:
                return self.eval(expr, env)
            except SourceError as exc:
                if self.ctx.resilience.absorb("fn-bea:async", exc):
                    return []
                raise

        return thunk

    def _fail_over(self, node: ast.FunctionCall, env: Env) -> list[Item]:
        with self.ctx.tracer.start("fail-over", node.name,
                                   op=getattr(node, "op_id", None)) as span:
            try:
                result = self.eval(node.args[0], env)
                span.set(failed_over=False)
                return result
            except SourceError:
                span.set(failed_over=True)
                return self.eval(node.args[1], env)

    def _timeout(self, node: ast.FunctionCall, env: Env) -> list[Item]:
        with self.ctx.tracer.start("timeout", node.name,
                                   op=getattr(node, "op_id", None)):
            return self._timeout_inner(node, env)

    def _timeout_inner(self, node: ast.FunctionCall, env: Env) -> list[Item]:
        millis_atoms = atomize(self.eval(node.args[1], env))
        if len(millis_atoms) != 1:
            raise DynamicError("fn-bea:timeout: bad time limit")
        limit = float(numeric_value(millis_atoms[0]))
        # Only the virtual clock needs explicit charges: the branch's time
        # was *unwound* by measure().  In wall mode the time has physically
        # passed — charging again would double-count it — and measure()
        # itself bounds the wait at the limit.
        virtual = isinstance(self.ctx.clock, VirtualClock)
        result, elapsed, failed = self.ctx.async_exec.measure(
            lambda: self.eval(node.args[0], env),
            limit_ms=None if virtual else limit,
        )
        if failed:
            if isinstance(result, (SourceError, TimeoutError)):
                if virtual:
                    self.ctx.clock.charge_ms(min(elapsed, limit))
                return self.eval(node.args[2], env)
            assert isinstance(result, BaseException)
            raise result
        if elapsed > limit:
            # The primary took too long: the system fails over after the
            # time limit has elapsed (section 5.6).
            if virtual:
                self.ctx.clock.charge_ms(limit)
            return self.eval(node.args[2], env)
        if virtual:
            self.ctx.clock.charge_ms(elapsed)
        return result  # type: ignore[return-value]

    def _call_user_function(self, node: ast.FunctionCall, env: Env) -> list[Item]:
        decl = self.ctx.user_function(node.name, len(node.args))
        if decl is None or decl.body is None:
            raise DynamicError(f"unknown function {node.name}#{len(node.args)}")
        args = [self.eval(arg, env) for arg in node.args]
        cache = self.ctx.cache
        use_cache = cache is not None and cache.is_enabled(node.name)
        if use_cache:
            key = cache.argument_key(args)
            with self.ctx.tracer.start("cache.lookup", node.name,
                                       op=getattr(node, "op_id", None)) as span:
                hit = cache.get(node.name, key)
                span.set(hit=hit is not None)
            if hit is not None:
                return hit
        if self._depth >= self.ctx.max_recursion:
            raise DynamicError(f"recursion limit exceeded calling {node.name}")
        call_env: Env = {}
        for param, value in zip(decl.params, args):
            call_env[param.name] = value
        self._depth += 1
        try:
            result = self.eval(decl.body, call_env)
        finally:
            self._depth -= 1
        if use_cache:
            cache.put(node.name, key, result)
        return result

    # -- data sources -----------------------------------------------------------------------

    def _eval_SourceCall(self, node: SourceCall, env: Env) -> list[Item]:
        definition = self.ctx.registry.lookup(node.name, len(node.args))
        if definition is None:
            raise SourceError(f"source function {node.name} is not registered")
        if node.kind == "table":
            return self._scan_table(node)
        args = [self.eval(arg, env) for arg in node.args]
        cache = self.ctx.cache
        use_cache = cache is not None and cache.is_enabled(node.name)
        op_id = getattr(node, "op_id", None)
        if use_cache:
            key = cache.argument_key(args)
            with self.ctx.tracer.start("cache.lookup", node.name,
                                       op=op_id) as span:
                hit = cache.get(node.name, key)
                span.set(hit=hit is not None)
            if hit is not None:
                return hit
        assert definition.invoke is not None
        self.ctx.stats.bump(service_calls=1)
        resilience = self.ctx.resilience
        adaptor = definition.adaptor
        source = adaptor.name if adaptor is not None else node.name
        stats = adaptor.stats if adaptor is not None else None
        with self.ctx.tracer.start("source-call", source, op=op_id) as span:
            try:
                result = resilience.call(source, lambda: definition.invoke(args),
                                         stats=stats)
            except SourceError as exc:
                if resilience.absorb(source, exc):
                    span.set(degraded=True)
                    return []  # degraded: empty sequence, never cached
                raise
            span.set(rows=len(result))
        if use_cache:
            cache.put(node.name, key, result)
        return result

    def _scan_table(self, node: SourceCall) -> list[Item]:
        """Fallback full scan for an unpushed table function."""
        meta = node.table_meta
        assert meta is not None
        columns = ", ".join(f't1."{name}" AS {name}' for name, _t in meta.columns)
        sql = f'SELECT {columns} FROM "{meta.table}" t1'
        with self.ctx.tracer.start("table-scan", meta.table,
                                   op=getattr(node, "op_id", None)) as span:
            try:
                rows = self.ctx.connection(meta.database).execute_query(sql)
            except SourceError as exc:
                if self.ctx.resilience.absorb(meta.database, exc):
                    span.set(degraded=True)
                    return []
                raise
            span.set(rows=len(rows))
        items: list[Item] = []
        for row in rows:
            items.append(_row_element(meta, row))
        return items

    # -- FLWOR pipeline -------------------------------------------------------------------------

    def _eval_flwor(self, node: ast.FLWOR, env: Env) -> Iterator[Item]:
        if self.ctx.batch_size > 1 and getattr(node, "batch_capable", False):
            from .batchexec import eval_flwor_batched

            yield from eval_flwor_batched(self, node, env)
            return
        tuples: Iterator[Env] = iter([env])
        for group in _clause_groups(node.clauses, self.ctx.parallel_regions):
            if len(group) == 1:
                tuples = self._apply_clause(group[0], tuples)
            else:
                tuples = self._scatter_tuples(group, tuples)
        for tuple_env in tuples:
            self.ctx.stats.bump(tuples_flowed=1)
            yield from self.iter_eval(node.return_expr, tuple_env)

    def _scatter_tuples(self, clauses: list[ast.LetClause],
                        tuples: Iterator[Env]) -> Iterator[Env]:
        """Evaluate a compiler-stamped scatter group (P-ADAPT): the lets are
        data independent, so their source fetches run as one parallel group
        — the virtual clock charges the max of the branches, not the sum.
        Per-source errors degrade inside each branch exactly as they would
        serially (``execute_pushed`` / table scans absorb their own faults)."""
        for env in tuples:
            values = self.ctx.async_exec.run_parallel(
                [lambda c=clause: self.eval(c.expr, env) for clause in clauses]
            )
            extended = dict(env)
            for clause, value in zip(clauses, values):
                extended[clause.var] = value
            yield extended

    def _apply_clause(self, clause: ast.Clause, tuples: Iterator[Env]) -> Iterator[Env]:
        if isinstance(clause, ast.ForClause):
            return self._for_tuples(clause, tuples)
        if isinstance(clause, ast.LetClause):
            return self._let_tuples(clause, tuples)
        if isinstance(clause, ast.WhereClause):
            return self._where_tuples(clause, tuples)
        if isinstance(clause, ast.OrderByClause):
            return self._order_tuples(clause, tuples)
        if isinstance(clause, ast.GroupByClause):
            return self._group_tuples(clause, tuples)
        if isinstance(clause, PPkLetClause):
            return ppk_extend(clause, tuples, self)
        if isinstance(clause, PushedTupleForClause):
            return self._pushed_tuple_for(clause, tuples)
        if isinstance(clause, IndexJoinForClause):
            return self._index_join_tuples(clause, tuples)
        raise DynamicError(f"cannot execute clause {type(clause).__name__}")

    def _index_join_tuples(self, clause: IndexJoinForClause,
                           tuples: Iterator[Env]) -> Iterator[Env]:
        """Index nested-loop join (section 5.2): hash the loop-invariant
        inner sequence once, then probe per outer tuple (order-preserving)."""
        replan = getattr(clause, "replan_ppk", None)
        threshold = self.ctx.replan_threshold
        est_outer = getattr(clause, "est_outer", None)
        if replan is not None and threshold is not None and est_outer is not None:
            # Mid-query re-planning (P-COST): the index join was chosen for
            # a large estimated outer.  Hold the build until the outer has
            # produced at least est/threshold tuples; if the stream ends
            # first, the estimate was off by more than the threshold and
            # the runner-up PP-k twin serves the buffered tuples instead —
            # no source query has been issued yet, so the switch is free.
            from itertools import chain, islice

            commit_at = max(1, math.ceil(est_outer / threshold))
            buffered = list(islice(tuples, commit_at))
            if len(buffered) < commit_at:
                if buffered:
                    yield from self._replan_index_to_ppk(
                        clause, replan, buffered)
                return
            tuples = chain(buffered, tuples)
        index: dict | None = None
        for env in tuples:
            if index is None:
                index = {}
                self.ctx.stats.bump(index_joins_built=1)
                with self.ctx.tracer.start(
                        "index-join.build", clause.var,
                        op=getattr(clause, "op_id", None)) as span:
                    for item in self.iter_eval(clause.expr, env):
                        key_atoms = atomize(self.eval(clause.inner_key, {clause.var: [item]}))
                        if len(key_atoms) != 1:
                            continue  # empty/multi keys never equi-join
                        index.setdefault(key_atoms[0].value, []).append(item)
                    span.set(index_size=sum(len(v) for v in index.values()))
            self.ctx.stats.bump(middleware_join_probes=1)
            probe_atoms = atomize(self.eval(clause.outer_key, env))
            if len(probe_atoms) != 1:
                continue
            for item in index.get(probe_atoms[0].value, []):
                extended = dict(env)
                extended[clause.var] = [item]
                yield extended

    def _replan_index_to_ppk(self, clause: IndexJoinForClause,
                             replan: PPkLetClause,
                             buffered: list[Env]) -> Iterator[Env]:
        """Serve a too-small outer through the region's PP-k twin: one
        disjunctive block instead of a full inner scan.  The twin's output
        (group var bound to matched items, table order per key) unnests to
        exactly the tuples the index join would have produced."""
        self.ctx.stats.bump(replans=1)
        with self.ctx.tracer.start("replan", replan.pushed.database,
                                   op=getattr(clause, "op_id", None),
                                   strategy_from="index-join",
                                   strategy_to="ppk"):
            pass
        for env in ppk_extend(replan, iter(buffered), self):
            items = env.get(replan.var, [])
            for item in items:
                extended = dict(env)
                del extended[replan.var]
                extended[clause.var] = [item]
                yield extended

    def _for_tuples(self, clause: ast.ForClause, tuples: Iterator[Env]) -> Iterator[Env]:
        for env in tuples:
            for position, item in enumerate(self.iter_eval(clause.expr, env), start=1):
                extended = dict(env)
                extended[clause.var] = [item]
                if clause.pos_var:
                    extended[clause.pos_var] = [AtomicValue(position, "xs:integer")]
                yield extended

    def _let_tuples(self, clause: ast.LetClause, tuples: Iterator[Env]) -> Iterator[Env]:
        for env in tuples:
            extended = dict(env)
            extended[clause.var] = self.eval(clause.expr, env)
            yield extended

    def _where_tuples(self, clause: ast.WhereClause, tuples: Iterator[Env]) -> Iterator[Env]:
        for env in tuples:
            if effective_boolean_value(self.eval(clause.condition, env)):
                yield env

    def _order_tuples(self, clause: ast.OrderByClause, tuples: Iterator[Env]) -> Iterator[Env]:
        with self.ctx.tracer.start("order-by",
                                   op=getattr(clause, "op_id", None)) as span:
            materialized = list(tuples)

            def sort_key(env: Env):
                keys = []
                for spec in clause.specs:
                    atoms = atomize(self.eval(spec.key, env))
                    if len(atoms) > 1:
                        raise DynamicError("order by key with more than one item")
                    value = atoms[0].value if atoms else None
                    keys.append(_OrderKey(value, spec.descending, spec.empty_greatest))
                return keys

            materialized.sort(key=sort_key)
            span.set(tuples=len(materialized))
        return iter(materialized)

    def _group_tuples(self, clause: ast.GroupByClause, tuples: Iterator[Env]) -> Iterator[Env]:
        """The FLWGOR group-by (section 3.1): cluster the tuple stream by
        the key expressions (sorting first — the generic fallback of
        section 4.2), then emit one binding tuple per group."""

        def key_of(env_and_keys):
            return env_and_keys[1]

        def annotated() -> Iterator[tuple[Env, tuple]]:
            for env in tuples:
                key_values = []
                for expr, _var in clause.keys:
                    atoms = atomize(self.eval(expr, env))
                    if len(atoms) > 1:
                        raise DynamicError("group by key with more than one item")
                    key_values.append(atoms[0].value if atoms else None)
                yield env, tuple(key_values)

        grouper = clustered_groups if getattr(clause, "pre_clustered", False) else sorted_groups
        emitted_before = self.group_stats.groups_emitted
        span = self.ctx.tracer.start("group-by",
                                     op=getattr(clause, "op_id", None))
        try:
            yield from self._grouped_tuples(clause, grouper, annotated(), key_of)
        finally:
            span.set(groups=self.group_stats.groups_emitted - emitted_before)
            span.end()

    def _grouped_tuples(self, clause: ast.GroupByClause, grouper, stream,
                        key_of) -> Iterator[Env]:
        for key, members in grouper(stream, key_of, self.group_stats):
            result: Env = {}
            for (_expr, var), value in zip(clause.keys, key):
                result[var] = [] if value is None else [_as_atomic_value(value)]
            # Single pass over the members: hoist the annotated-pair
            # unpacking out of the per-variable loops.
            envs = [env for env, _k in members]
            for source, target in clause.grouped:
                collected: list[Item] = []
                for env in envs:
                    collected.extend(env.get(source, []))
                result[target] = collected
            # Variables not re-exposed by the group clause go out of scope;
            # outer bindings shared by every member survive.
            base = envs[0]
            for name, value in base.items():
                if name not in result and all(
                    env.get(name) is value for env in envs
                ):
                    result[name] = value
            yield result

    def _pushed_tuple_for(self, clause: PushedTupleForClause,
                          tuples: Iterator[Env]) -> Iterator[Env]:
        from ..sql.ast_nodes import param_order
        from .operators.pushedsql import bind_parameters, render_pushed

        pushed = clause.pushed
        for env in tuples:
            values = bind_parameters(pushed, env, self)
            params = [values[i] for i in param_order(pushed.select)]
            sql = render_pushed(pushed, self)
            with self.ctx.tracer.start("pushed-join", pushed.database,
                                       op=getattr(clause, "op_id", None)) as span:
                try:
                    rows = self.ctx.connection(pushed.database).execute_query(sql, params)
                except SourceError as exc:
                    if self.ctx.resilience.absorb(pushed.database, exc):
                        span.set(degraded=True)
                        continue  # degraded: this outer tuple joins to nothing
                    raise
                span.set(rows=len(rows))
            self.ctx.stats.bump(pushed_queries=1)
            for row in rows:
                extended = dict(env)
                for var, template in clause.var_templates:
                    extended[var] = apply_template(template, row, [row], self)
                yield extended

    # -- pushed region as an expression ----------------------------------------------------------

    def _eval_PushedSQL(self, node: PushedSQL, env: Env) -> list[Item]:
        return list(execute_pushed(node, env, self))


# ---------------------------------------------------------------------------
# Shared construction / value helpers
# ---------------------------------------------------------------------------


def construct_element_content(name: str, attributes: list[AttributeNode],
                              content: list[Item]) -> ElementNode:
    """XQuery element construction: attribute nodes in content become
    attributes, adjacent atomic values merge into one text node separated
    by spaces, nodes are deep-copied."""
    element = ElementNode(QName(name))
    for attr in attributes:
        element.add_attribute(AttributeNode(attr.name, attr.value))
    pending_atoms: list[AtomicValue] = []
    simple_type: str | None = None

    def flush() -> None:
        nonlocal simple_type
        if pending_atoms:
            element.add_child(
                TextNode(" ".join(a.string_value() for a in pending_atoms))
            )
            if len(pending_atoms) == 1 and not element.child_elements():
                simple_type = pending_atoms[0].type_name
            else:
                simple_type = None
            pending_atoms.clear()

    only_text = True
    for item in content:
        if isinstance(item, AtomicValue):
            pending_atoms.append(item)
        elif isinstance(item, AttributeNode):
            flush()
            element.add_attribute(AttributeNode(item.name, item.value))
        elif isinstance(item, TextNode):
            flush()
            element.add_child(TextNode(item.content))
            only_text = only_text and True
        elif isinstance(item, ElementNode):
            flush()
            element.add_child(item.deep_copy())
            only_text = False
        elif isinstance(item, DocumentNode):
            flush()
            for child in item.children():
                if isinstance(child, ElementNode):
                    element.add_child(child.deep_copy())
                    only_text = False
        else:
            raise DynamicError(f"cannot construct content from {type(item).__name__}")
    flush()
    # Preserve the content's type annotation for single typed values so that
    # re-atomization keeps its type (ALDSP's typed token streams survive
    # construction, section 3.1).
    if simple_type is not None and only_text and simple_type != "xs:untypedAtomic":
        element.type_annotation = simple_type
    return element


def _async_call_of(part: ast.AstNode) -> ast.FunctionCall | None:
    """The fn-bea:async call this sibling runs, if any (direct or as the
    sole content of a constructor)."""
    if isinstance(part, ast.FunctionCall) and part.name == "fn-bea:async":
        return part
    if isinstance(part, ast.ElementCtor) and len(part.content) == 1:
        inner = part.content[0]
        if isinstance(inner, ast.FunctionCall) and inner.name == "fn-bea:async":
            return inner
    return None


def _axis(node: Node, step: ast.Step) -> list[Item]:
    if step.axis == "attribute":
        if not isinstance(node, ElementNode):
            return []
        if isinstance(step.test, ast.NameTest):
            if step.test.name == "*":
                return list(node.attributes)
            attr = node.attribute(QName(step.test.name))
            return [attr] if attr is not None else []
        return list(node.attributes)
    if step.axis == "self":
        return [node] if _node_test(node, step) else []
    if step.axis == "descendant":
        return [d for d in iter_descendants(node) if _node_test(d, step)]
    # child axis
    return [c for c in node.children() if _node_test(c, step)]


def _node_test(node: Node, step: ast.Step) -> bool:
    if isinstance(step.test, ast.KindTest):
        if step.test.kind == "text":
            return isinstance(node, TextNode)
        if step.test.kind == "node":
            return True
        if step.test.kind == "element":
            return isinstance(node, ElementNode)
        return False
    name = step.test.name
    if not isinstance(node, ElementNode):
        return False
    return name == "*" or node.name.local == name


def _coerce(atom: AtomicValue, other: AtomicValue) -> AtomicValue:
    """General-comparison coercion: untyped adapts to the other operand."""
    if atom.type_name != "xs:untypedAtomic":
        return atom
    if isinstance(other.value, bool):
        return AtomicValue(atom.string_value().strip() in ("true", "1"), "xs:boolean")
    if isinstance(other.value, (int, float)):
        return AtomicValue(numeric_value(atom), "xs:double")
    return AtomicValue(atom.string_value(), "xs:string")


def _convert_atomic(atom: AtomicValue, type_name: str) -> AtomicValue:
    base = type_name.split(":")[-1]
    text = atom.string_value()
    try:
        if base in ("integer", "int", "long", "short", "byte"):
            return AtomicValue(int(float(text)) if "." in text else int(text), type_name)
        if base in ("decimal", "double", "float"):
            return AtomicValue(float(text), type_name)
        if base == "boolean":
            if text.strip() in ("true", "1"):
                return AtomicValue(True, type_name)
            if text.strip() in ("false", "0"):
                return AtomicValue(False, type_name)
            raise ValueError(text)
        return AtomicValue(text, type_name)
    except ValueError as exc:
        raise DynamicError(f"cannot cast {text!r} to {type_name}") from exc


def _as_atomic_value(value) -> AtomicValue:
    if isinstance(value, AtomicValue):
        return value
    if isinstance(value, bool):
        return AtomicValue(value, "xs:boolean")
    if isinstance(value, int):
        return AtomicValue(value, "xs:integer")
    if isinstance(value, float):
        return AtomicValue(value, "xs:double")
    return AtomicValue(str(value), "xs:string")


def _row_element(meta, row: dict) -> ElementNode:
    element = ElementNode(QName(meta.element_name))
    for column, xs_type in meta.columns:
        value = row.get(column)
        if value is None:
            continue
        child = ElementNode(QName(column), type_annotation=xs_type)
        child.add_child(TextNode(AtomicValue(value, xs_type).string_value()))
        element.add_child(child)
    return element


class _OrderKey:
    """Order-by sort key honouring direction and empty-greatest/least."""

    __slots__ = ("value", "descending", "empty_greatest")

    def __init__(self, value, descending: bool, empty_greatest: bool):
        self.value = value
        self.descending = descending
        self.empty_greatest = empty_greatest

    def __lt__(self, other: "_OrderKey") -> bool:
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            empty_first = not self.empty_greatest
            return empty_first != self.descending
        if b is None:
            empty_first = not self.empty_greatest
            return (not empty_first) != self.descending
        if isinstance(a, bool) or isinstance(b, bool):
            a, b = str(a), str(b)
        if isinstance(a, str) != isinstance(b, str):
            a, b = str(a), str(b)
        if self.descending:
            return b < a
        return a < b

    def __eq__(self, other) -> bool:
        return isinstance(other, _OrderKey) and self.value == other.value
