"""Runtime system: evaluator, operators, async/failover/cache (section 5)."""

from .asyncexec import AsyncExecutor
from .cache import CacheStats, FunctionCache
from .context import DynamicContext, RuntimeStats
from .evaluate import Evaluator, construct_element_content
from .observed import CostEstimate, ObservedCostModel

__all__ = [
    "AsyncExecutor",
    "CacheStats",
    "FunctionCache",
    "DynamicContext",
    "RuntimeStats",
    "Evaluator",
    "CostEstimate",
    "ObservedCostModel",
    "construct_element_content",
]
