"""Dynamic evaluation context: everything a running plan needs."""

from __future__ import annotations

import contextvars
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..clock import Clock, VirtualClock
from ..concurrency import SyncCounters
from ..errors import SourceError
from ..observability import MetricsRegistry, NoopTracer, WindowedMetrics
from ..relational.connection import Connection
from ..relational.database import Database
from ..resilience import ResilienceManager
from ..services.metadata import MetadataRegistry
from ..sql.dialects import SqlRenderer, capabilities_for
from .asyncexec import AsyncExecutor
from .batch import DEFAULT_BATCH_SIZE
from .cache import FunctionCache
from .observed import ObservedCostModel

if TYPE_CHECKING:
    from ..xquery.ast_nodes import Module


@dataclass
class RuntimeStats(SyncCounters):
    """Middleware-side counters (source-side counters live on each
    database's :class:`~repro.relational.database.SourceStats`).

    Shared by every request thread on the context, so all updates go
    through the synchronized :meth:`~SyncCounters.bump` path (A-CONC)."""

    pushed_queries: int = 0
    ppk_blocks: int = 0
    ppk_tuples: int = 0
    middleware_join_probes: int = 0
    index_joins_built: int = 0
    service_calls: int = 0
    tuples_flowed: int = 0
    #: mid-query strategy switches (P-COST re-planning)
    replans: int = 0

    def __post_init__(self) -> None:
        self._init_lock("RuntimeStats")

    def reset(self) -> None:
        with self._lock:
            self.pushed_queries = 0
            self.ppk_blocks = 0
            self.ppk_tuples = 0
            self.middleware_join_probes = 0
            self.index_joins_built = 0
            self.service_calls = 0
            self.tuples_flowed = 0
            self.replans = 0


@dataclass
class AdaptivePPkConfig:
    """Closed-loop PP-k block sizing (P-ADAPT).

    When enabled, :func:`~repro.runtime.operators.ppk.ppk_extend` re-sizes
    each block from :meth:`ObservedCostModel.recommend_ppk` as roundtrip
    observations accumulate — the compiler's static k is only the
    cold-start value.  ``overhead_target`` is the share of the per-tuple
    cost allowed to go to roundtrip overhead; the default is far stricter
    than the diagnostic default (0.5) because the adaptive loop *acts* on
    the recommendation rather than merely reporting it.
    """

    enabled: bool = False
    k_min: int = 1
    k_max: int = 200
    overhead_target: float = 0.05


@dataclass
class MiddlewareCostModel:
    """CPU cost of mid-tier operator work, charged to the clock.

    Source latencies dominate, but the middleware's share is what overlap
    optimizations (pipelined PP-k, async branches) hide latency *behind* —
    charging it keeps the virtual clock honest about the win while staying
    small relative to a source roundtrip.
    """

    #: hash-join + template-reconstruction cost per PP-k block tuple
    ppk_join_ms_per_tuple: float = 0.01


class DynamicContext:
    """Shared services for one ALDSP server instance's runtime."""

    def __init__(
        self,
        registry: MetadataRegistry,
        module: "Optional[Module]" = None,
        clock: Clock | None = None,
        cache: FunctionCache | None = None,
    ):
        self.registry = registry
        self.module = module
        self.clock = clock or VirtualClock()
        self.databases: dict[str, Database] = {}
        self._connections: dict[str, Connection] = {}
        self._renderers: dict[str, SqlRenderer] = {}
        self.cache = cache
        self.async_exec = AsyncExecutor(self.clock)
        self.stats = RuntimeStats()
        self.middleware = MiddlewareCostModel()
        #: prefetch block N+1 while block N joins (section 5.4 overlap)
        self.ppk_pipeline = True
        #: PP-k prefetch depth: W block fetches in flight while the pending
        #: window joins; clamped to the async worker pool size at execution
        self.ppk_prefetch_window = 1
        #: closed-loop PP-k block sizing from observed source behaviour
        self.adaptive_ppk = AdaptivePPkConfig()
        #: scatter-execute compiler-stamped independent let-bound regions
        self.parallel_regions = True
        #: mid-query re-planning divergence factor (P-COST); None = off.
        #: A plain GIL-atomic flag like ``ppk_pipeline``: operators read
        #: it once per region
        self.replan_threshold: float | None = None
        #: default for the per-database prepared-statement caches
        self.statement_cache_enabled = True
        #: observed per-source cost samples (section 9's future-work
        #: optimizer — populated by the connections' instrumentation hook)
        self.observed = ObservedCostModel()
        #: bound external variables for the current execution — stored in a
        #: ContextVar so concurrent request threads each see their own
        #: bindings (A-CONC); the async executor copies the caller's
        #: context into pool threads, so branches inherit the bindings
        self._externals: contextvars.ContextVar = contextvars.ContextVar(
            "repro.external_variables", default=None
        )
        #: rows per batch for the batch-at-a-time engine (P-BATCH); 1
        #: disables batching and runs the tuple-at-a-time pipeline
        self.batch_size = DEFAULT_BATCH_SIZE
        #: rows-per-batch probe installed by ``Platform.profile`` — a
        #: ContextVar so a profiling run never sees batches of a query
        #: racing on another thread
        self._batch_probe: contextvars.ContextVar = contextvars.ContextVar(
            "repro.batch_probe", default=None
        )
        #: per-source retry/breaker/timeout policies + partial-results mode
        self.resilience = ResilienceManager(self.clock)
        #: functions for which caching is administratively enabled
        self.max_recursion = 64
        #: the unified metrics plane (O-OBS): one snapshot over every
        #: stats surface, plus live instruments the tracer feeds
        self.metrics = MetricsRegistry()
        #: the rolling-window plane (O-CONT): ring-of-buckets counters
        #: and histograms so rates/percentiles reflect the last N seconds
        #: of this clock, not process lifetime; always on (writes are a
        #: lock + an array slot)
        self.window = WindowedMetrics(self.clock)
        #: query tracer — a no-op by default (tracing is opt-in); install
        #: a QueryTracer via :meth:`set_tracer` / ``Platform.set_tracing``
        self.tracer = NoopTracer()
        self.async_exec.tracer = self.tracer
        self.resilience.tracer = self.tracer

    # -- per-execution bindings -----------------------------------------------

    @property
    def external_variables(self) -> dict[str, list]:
        """External-variable bindings for the *calling thread's* execution.

        Each request thread (strictly: each ``contextvars`` context) sees
        only the bindings it set — concurrent queries on one shared context
        cannot clobber each other's parameters.  Async branch threads
        inherit the submitting thread's bindings because
        :class:`AsyncExecutor` runs every pool thunk inside a copy of the
        caller's context.
        """
        value = self._externals.get()
        return value if value is not None else {}

    @external_variables.setter
    def external_variables(self, value: dict[str, list]) -> None:
        self._externals.set(dict(value))

    def batch_probe(self):
        """The calling context's rows-per-batch probe, if one is installed."""
        return self._batch_probe.get()

    def set_batch_probe(self, probe) -> object:
        """Install ``probe`` for this context; returns a reset token."""
        return self._batch_probe.set(probe)

    def reset_batch_probe(self, token) -> None:
        self._batch_probe.reset(token)

    # -- databases ----------------------------------------------------------------

    def attach_database(self, database: Database) -> None:
        AsyncExecutor.assert_owner("DynamicContext.attach_database")
        database.clock = self.clock
        database.statements.enabled = self.statement_cache_enabled
        self.databases[database.name] = database
        connection = Connection(database)
        connection.observer = self.observed.record
        connection.resilience = self.resilience
        connection.tracer = self.tracer
        self.resilience.register_stats(database.name, database.stats)
        self._connections[database.name] = connection

    def set_tracer(self, tracer) -> None:
        """Install a tracer on every instrumentation point in one step —
        the async executor, the resilience guards and each connection hold
        their own reference (no thread-local ambient state)."""
        AsyncExecutor.assert_owner("DynamicContext.set_tracer")
        self.tracer = tracer
        self.async_exec.tracer = tracer
        self.resilience.tracer = tracer
        for connection in self._connections.values():
            connection.tracer = tracer

    def connection(self, database_name: str) -> Connection:
        try:
            return self._connections[database_name]
        except KeyError:
            raise SourceError(f"no connection registered for database {database_name}") from None

    def close(self) -> None:
        """Release runtime resources: joins the async executor's worker
        threads so a discarded context cannot leak them, and marks the
        executor closed so late parallel work cannot re-create the pool.
        Idempotent and safe to race with in-flight queries."""
        self.async_exec.shutdown(final=True)

    def renderer(self, vendor: str) -> SqlRenderer:
        if vendor not in self._renderers:
            self._renderers[vendor] = SqlRenderer(capabilities_for(vendor))
        return self._renderers[vendor]

    # -- user functions --------------------------------------------------------------

    def user_function(self, name: str, arity: int):
        if self.module is None:
            return None
        return self.module.function(name, arity)
