"""The ALDSP mid-tier function cache (section 5.5).

"A persistent, distributed map that maps a function and a set of argument
values to the corresponding function result" — caching is permitted
statically per function by the data-service designer, then enabled
administratively with a TTL.  The production cache used a relational
database for persistence/distribution; this implementation is an in-memory
map by default and can optionally be backed by a simulated database table
(exercising the same single-row-lookup pattern the paper describes).

Security filtering happens *after* cache lookup (section 7), so entries are
shared across users; nothing user-specific may be stored here.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass

from ..clock import Clock, VirtualClock
from ..concurrency import RACE, SyncCounters, TrackedRLock, guarded_by
from ..relational.database import Database
from ..xml.items import AtomicValue, Item
from ..xml.serialize import serialize

#: default LRU bound for the in-memory entry map
DEFAULT_FUNCTION_CACHE_CAPACITY = 512


@dataclass
class CacheStats(SyncCounters):
    hits: int = 0
    misses: int = 0
    expirations: int = 0
    #: entries dropped by the LRU bound (never by TTL — those are expirations)
    evictions: int = 0

    def __post_init__(self) -> None:
        self._init_lock("CacheStats")

    def reset(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.expirations = 0
            self.evictions = 0


@guarded_by("_lock")
class FunctionCache:
    """TTL cache over (function name, argument values), bounded by a
    least-recently-used entry limit (the production cache was backed by a
    database; the in-memory map must not grow without limit).

    Thread-safety (A-CONC): ``_lock`` guards the entry map, the TTL map and
    the capacity bound.  Backing-store roundtrips run *outside* the lock —
    a cache probe against the persistence database must not serialize every
    other thread's in-memory hits behind simulated I/O."""

    def __init__(self, clock: Clock | None = None, backing: Database | None = None,
                 max_entries: int = DEFAULT_FUNCTION_CACHE_CAPACITY):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.clock = clock or VirtualClock()
        self.max_entries = max_entries
        self._lock = TrackedRLock("FunctionCache")
        self._ttl_ms: dict[str, float] = {}
        self._entries: OrderedDict[tuple[str, str], tuple[list[Item], float]] = OrderedDict()
        self.stats = CacheStats()
        self._backing = backing
        if backing is not None and "FN_CACHE" not in backing.tables:
            backing.create_table(
                "FN_CACHE",
                [("FNAME", "VARCHAR", False), ("ARGKEY", "VARCHAR", False),
                 ("RESULT", "VARCHAR"), ("EXPIRY", "DOUBLE")],
                primary_key=["FNAME", "ARGKEY"],
            )

    # -- administration ---------------------------------------------------------

    def enable(self, function_name: str, ttl_ms: float) -> None:
        """Administratively enable caching for a function with a TTL."""
        with self._lock:
            self._ttl_ms[function_name] = ttl_ms

    def disable(self, function_name: str) -> None:
        with self._lock:
            self._ttl_ms.pop(function_name, None)
            stale = [key for key in self._entries if key[0] == function_name]
            for key in stale:
                del self._entries[key]
            if stale:
                RACE.detector.on_access(self, "_entries", True)

    def is_enabled(self, function_name: str) -> bool:
        return function_name in self._ttl_ms

    def set_capacity(self, max_entries: int) -> None:
        """Re-bound the in-memory map, evicting LRU entries if it shrank."""
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        with self._lock:
            self.max_entries = max_entries
            self._evict_over_capacity()

    def snapshot(self) -> dict:
        """Size, capacity and counters in one dict (``Platform.function_cache_stats``)."""
        with self._lock:
            size = len(self._entries)
            capacity = self.max_entries
        return {
            "size": size,
            "capacity": capacity,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "expirations": self.stats.expirations,
            "evictions": self.stats.evictions,
        }

    # -- lookup / store ------------------------------------------------------------

    @staticmethod
    def argument_key(args: list[list[Item]]) -> str:
        parts = []
        for arg in args:
            parts.append("|".join(serialize(item) for item in arg))
        return json.dumps(parts)

    def get(self, function_name: str, arg_key: str) -> list[Item] | None:
        key = (function_name, arg_key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                RACE.detector.on_access(self, "_entries", True)
        if entry is None and self._backing is not None:
            entry = self._backing_get(function_name, arg_key)
        if entry is None:
            self.stats.bump(misses=1)
            return None
        value, expiry = entry
        if self.clock.now_ms() >= expiry:
            self.stats.bump(expirations=1, misses=1)
            with self._lock:
                self._entries.pop(key, None)
                RACE.detector.on_access(self, "_entries", True)
            return None
        self.stats.bump(hits=1)
        return list(value)

    def put(self, function_name: str, arg_key: str, value: list[Item]) -> None:
        ttl = self._ttl_ms.get(function_name)
        if ttl is None:
            return
        expiry = self.clock.now_ms() + ttl
        stored = list(value)
        with self._lock:
            self._entries[(function_name, arg_key)] = (stored, expiry)
            self._entries.move_to_end((function_name, arg_key))
            RACE.detector.on_access(self, "_entries", True)
            self._evict_over_capacity()
        if self._backing is not None:
            self._backing_put(function_name, arg_key, value, expiry)

    def _evict_over_capacity(self) -> None:  # caller-holds: _lock
        evicted = 0
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            evicted += 1
        if evicted:
            RACE.detector.on_access(self, "_entries", True)
            self.stats.bump(evictions=evicted)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            RACE.detector.on_access(self, "_entries", True)

    # -- optional relational backing (the paper's persistence strategy) -------------

    def _backing_get(self, function_name: str, arg_key: str) -> tuple[list[Item], float] | None:
        assert self._backing is not None
        table = self._backing.table("FN_CACHE")
        row = table.lookup_pk((function_name, arg_key))
        self._backing.charge_roundtrip(1 if row else 0, "SELECT FN_CACHE (cache probe)")
        if row is None:
            return None
        items = _deserialize_items(row["RESULT"])
        return items, row["EXPIRY"]

    def _backing_put(self, function_name: str, arg_key: str,
                     value: list[Item], expiry: float) -> None:
        assert self._backing is not None
        table = self._backing.table("FN_CACHE")
        payload = _serialize_items(value)
        existing = table.lookup_pk((function_name, arg_key))
        if existing is None:
            table.insert({"FNAME": function_name, "ARGKEY": arg_key,
                          "RESULT": payload, "EXPIRY": expiry})
        else:
            for index, row in enumerate(table.rows):
                if row["FNAME"] == function_name and row["ARGKEY"] == arg_key:
                    table.update_at(index, {"RESULT": payload, "EXPIRY": expiry})
                    break
        self._backing.charge_roundtrip(1, "UPSERT FN_CACHE (cache store)")


def _serialize_items(items: list[Item]) -> str:
    """Persist the *typed* token stream (section 5.1): type annotations must
    survive the cache database, or re-atomized values change type."""
    from ..xml.qname import QName
    from ..xml.tokens import TokenType, items_to_tokens

    tokens = []
    for token in items_to_tokens(items):
        entry: dict = {"t": token.type.value}
        if token.name is not None:
            entry["n"] = [token.name.local, token.name.namespace, token.name.prefix]
        if isinstance(token.value, AtomicValue):
            entry["a"] = [token.value.value, token.value.type_name]
        elif token.value is not None:
            entry["v"] = token.value
        tokens.append(entry)
    return json.dumps(tokens)


def _deserialize_items(payload: str) -> list[Item]:
    from ..xml.qname import QName
    from ..xml.tokens import Token, TokenType, tokens_to_items

    tokens = []
    for entry in json.loads(payload):
        name = QName(*entry["n"]) if "n" in entry else None
        if "a" in entry:
            value: object = AtomicValue(entry["a"][0], entry["a"][1])
        else:
            value = entry.get("v")
        tokens.append(Token(TokenType(entry["t"]), name, value))
    return tokens_to_items(tokens)
