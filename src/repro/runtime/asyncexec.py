"""Asynchronous execution support for ``fn-bea:async`` (section 5.4).

"A large part of the overall query execution time is usually the time to
access external data sources ... to allow large latencies to be
overlapped, ALDSP extends the built-in XQuery function library with a
function that provides XQuery-based control over asynchronous execution."

Two execution modes:

* **wall clock** — real threads; latencies physically overlap;
* **virtual clock** — branches run sequentially with per-branch charge
  accounting, and the join advances the clock by the *maximum* branch
  charge, which is the defining property of overlap.  Deterministic, so
  benchmarks are stable.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Callable, TypeVar

from ..clock import Clock, VirtualClock
from ..observability.tracer import NoopTracer

T = TypeVar("T")


class AsyncExecutor:
    def __init__(self, clock: Clock, max_workers: int = 8):
        self.clock = clock
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        #: how many parallel groups were executed (bench observability)
        self.groups_run = 0
        self.branches_run = 0
        #: query tracer (DynamicContext.set_tracer installs the real one)
        self.tracer = NoopTracer()

    def set_max_workers(self, max_workers: int) -> None:
        """Re-size the worker pool.  The existing pool (if any) is joined
        and discarded so the next parallel group runs at the new width."""
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_workers == self.max_workers:
            return
        self.max_workers = max_workers
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def run_parallel(self, thunks: list[Callable[[], T]]) -> list[T]:
        """Evaluate the thunks 'concurrently' and return results in order.

        Exceptions propagate after all branches complete (the first raised,
        in branch order), so a failing branch cannot leave siblings
        half-accounted.

        Tracing: the group span is opened on the calling thread and passed
        as the branch spans' parent *explicitly* — pool threads have no
        ambient cursor for this trace, so relying on thread-local parenting
        would orphan every branch (O-OBS satellite fix).
        """
        if not thunks:
            return []
        self.groups_run += 1
        self.branches_run += len(thunks)
        if len(thunks) == 1:
            with self.tracer.start("async.branch", "branch-0"):
                return [thunks[0]()]
        group = self.tracer.start("async.group", branches=len(thunks))
        try:
            wrapped = [self._traced(thunk, i, group)
                       for i, thunk in enumerate(thunks)]
            if isinstance(self.clock, VirtualClock):
                return self._run_virtual(wrapped)
            return self._run_threads(wrapped)
        finally:
            # Closed after the join (virtual: after the max-branch charge),
            # so the group's elapsed time is the overlapped total.
            group.end()

    def _traced(self, thunk: Callable[[], T], index: int, group) -> Callable[[], T]:
        tracer = self.tracer

        def run() -> T:
            with tracer.start("async.branch", f"branch-{index}", parent=group):
                return thunk()

        return run

    def _run_virtual(self, thunks: list[Callable[[], T]]) -> list[T]:
        results: list[T | None] = []
        errors: list[BaseException | None] = []
        charges: list[float] = []
        for thunk in thunks:
            self.clock.begin_branch()  # type: ignore[attr-defined]
            try:
                results.append(thunk())
                errors.append(None)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                results.append(None)
                errors.append(exc)
            finally:
                charges.append(self.clock.end_branch())  # type: ignore[attr-defined]
        self.clock.charge_ms(max(charges))
        for error in errors:
            if error is not None:
                raise error
        return results  # type: ignore[return-value]

    def _run_threads(self, thunks: list[Callable[[], T]]) -> list[T]:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        futures = [self._pool.submit(thunk) for thunk in thunks]
        # Same contract as _run_virtual: every branch runs to completion
        # before the first exception (in branch order) propagates, so a
        # failing branch cannot leave siblings half-accounted.
        outcomes: list[tuple[T | None, BaseException | None]] = []
        for future in futures:
            try:
                outcomes.append((future.result(), None))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                outcomes.append((None, exc))
        for _, error in outcomes:
            if error is not None:
                raise error
        return [result for result, _ in outcomes]  # type: ignore[misc]

    def measure(
        self, thunk: Callable[[], T], limit_ms: float | None = None
    ) -> tuple[T | BaseException, float, bool]:
        """Run a thunk measuring its latency charge; returns
        (result-or-exception, elapsed_ms, failed).  Used by
        ``fn-bea:timeout``.  In wall-clock mode a ``limit_ms`` bounds the
        *wait*: the thunk runs on the worker pool and an overrun returns a
        :class:`TimeoutError` outcome after ~``limit_ms``, matching the
        virtual clock's abandon-at-the-budget semantics (the worker is left
        to finish in the background, as a real cancellation would be)."""
        if isinstance(self.clock, VirtualClock):
            self.clock.begin_branch()  # type: ignore[attr-defined]
            try:
                result: T | BaseException = thunk()
                failed = False
            except BaseException as exc:  # noqa: BLE001
                result = exc
                failed = True
            elapsed = self.clock.end_branch()  # type: ignore[attr-defined]
            return result, elapsed, failed
        start = self.clock.now_ms()
        if limit_ms is not None:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
            future = self._pool.submit(thunk)
            try:
                result = future.result(timeout=limit_ms / 1000.0)
                failed = False
            except FuturesTimeoutError:
                result = TimeoutError(f"branch exceeded {limit_ms:g}ms")
                failed = True
            except BaseException as exc:  # noqa: BLE001
                result = exc
                failed = True
            return result, self.clock.now_ms() - start, failed
        try:
            result = thunk()
            failed = False
        except BaseException as exc:  # noqa: BLE001
            result = exc
            failed = True
        return result, self.clock.now_ms() - start, failed

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker pool.  Waits for workers by default — a
        fire-and-forget shutdown leaks threads across Platform resets."""
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            self._pool = None
