"""Asynchronous execution support for ``fn-bea:async`` (section 5.4).

"A large part of the overall query execution time is usually the time to
access external data sources ... to allow large latencies to be
overlapped, ALDSP extends the built-in XQuery function library with a
function that provides XQuery-based control over asynchronous execution."

Two execution modes:

* **wall clock** — real threads; latencies physically overlap;
* **virtual clock** — branches run sequentially with per-branch charge
  accounting, and the join advances the clock by the *maximum* branch
  charge, which is the defining property of overlap.  Deterministic, so
  benchmarks are stable.

Thread-ownership contract (A-CONC)
----------------------------------
Branch thunks run on pool threads.  A pool thread may *use* shared engine
services that are themselves synchronized (charge roundtrips, record cost
observations, hit the caches) but must **not** mutate context-level
topology — attaching databases, swapping tracers, invalidating plan caches.
Those operations belong to the thread that owns the ``DynamicContext``;
they iterate structures a branch may be reading.  The contract is
enforceable: code inside a branch can test :meth:`AsyncExecutor.in_branch`
and context-mutating entry points call :meth:`AsyncExecutor.assert_owner`,
which raises ``RuntimeError`` from a branch.  Updates a branch *does* need
to make (cost observations, stats counters) are merged through the
synchronized ``bump()`` / ``record()`` paths instead.
"""

from __future__ import annotations

import contextvars
import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Callable, TypeVar

from ..clock import Clock, VirtualClock
from ..concurrency import TrackedRLock, guarded_by
from ..errors import PlatformClosedError
from ..observability.tracer import NoopTracer

T = TypeVar("T")

#: thread-local marker: depth of async-branch nesting on this thread
_BRANCH = threading.local()


@guarded_by("_lock")
class AsyncExecutor:
    """Thread-safety (A-CONC): ``_lock`` guards the counters, the pool
    reference and the worker-count bound.  Pool shutdown happens *outside*
    the lock — a worker draining its queue may re-enter the executor, and
    joining it while holding ``_lock`` would deadlock."""

    def __init__(self, clock: Clock, max_workers: int = 8):
        self.clock = clock
        self.max_workers = max_workers
        self._lock = TrackedRLock("AsyncExecutor")
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False
        #: how many parallel groups were executed (bench observability)
        self.groups_run = 0
        self.branches_run = 0
        #: query tracer (DynamicContext.set_tracer installs the real one)
        self.tracer = NoopTracer()

    # -- thread-ownership contract -------------------------------------------

    @staticmethod
    def in_branch() -> bool:
        """True when the calling thread is executing an async branch."""
        return getattr(_BRANCH, "depth", 0) > 0

    @staticmethod
    def assert_owner(what: str) -> None:
        """Guard for context-topology mutations: raises from a branch."""
        if AsyncExecutor.in_branch():
            raise RuntimeError(
                f"{what} must not be called from an async branch thread; "
                f"context-level topology belongs to the owning thread "
                f"(see AsyncExecutor thread-ownership contract)"
            )

    def reset_counters(self) -> None:
        with self._lock:
            self.groups_run = 0
            self.branches_run = 0

    def set_max_workers(self, max_workers: int) -> None:
        """Re-size the worker pool.  The existing pool (if any) is joined
        and discarded so the next parallel group runs at the new width."""
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        with self._lock:
            if max_workers == self.max_workers:
                return
            self.max_workers = max_workers
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def run_parallel(self, thunks: list[Callable[[], T]]) -> list[T]:
        """Evaluate the thunks 'concurrently' and return results in order.

        Exceptions propagate after all branches complete (the first raised,
        in branch order), so a failing branch cannot leave siblings
        half-accounted.

        Tracing: the group span is opened on the calling thread and passed
        as the branch spans' parent *explicitly* — pool threads have no
        ambient cursor for this trace, so relying on thread-local parenting
        would orphan every branch (O-OBS satellite fix).
        """
        if not thunks:
            return []
        with self._lock:
            self.groups_run += 1
            self.branches_run += len(thunks)
        if len(thunks) == 1:
            with self.tracer.start("async.branch", "branch-0"):
                return [self._in_branch(thunks[0])]
        group = self.tracer.start("async.group", branches=len(thunks))
        try:
            wrapped = [self._traced(thunk, i, group)
                       for i, thunk in enumerate(thunks)]
            if isinstance(self.clock, VirtualClock):
                return self._run_virtual(wrapped)
            return self._run_threads(wrapped)
        finally:
            # Closed after the join (virtual: after the max-branch charge),
            # so the group's elapsed time is the overlapped total.
            group.end()

    @staticmethod
    def _in_branch(thunk: Callable[[], T]) -> T:
        """Run a thunk with the branch marker set on the current thread."""
        _BRANCH.depth = getattr(_BRANCH, "depth", 0) + 1
        try:
            return thunk()
        finally:
            _BRANCH.depth -= 1

    def _traced(self, thunk: Callable[[], T], index: int, group) -> Callable[[], T]:
        tracer = self.tracer

        def run() -> T:
            with tracer.start("async.branch", f"branch-{index}", parent=group):
                return AsyncExecutor._in_branch(thunk)

        return run

    def _run_virtual(self, thunks: list[Callable[[], T]]) -> list[T]:
        results: list[T | None] = []
        errors: list[BaseException | None] = []
        charges: list[float] = []
        for thunk in thunks:
            self.clock.begin_branch()  # type: ignore[attr-defined]
            try:
                results.append(thunk())
                errors.append(None)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                results.append(None)
                errors.append(exc)
            finally:
                charges.append(self.clock.end_branch())  # type: ignore[attr-defined]
        self.clock.charge_ms(max(charges))
        for error in errors:
            if error is not None:
                raise error
        return results  # type: ignore[return-value]

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise PlatformClosedError(
                    "async executor is closed: the owning Platform was "
                    "close()d; submit no new parallel work"
                )
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
            return self._pool

    def _run_threads(self, thunks: list[Callable[[], T]]) -> list[T]:
        pool = self._ensure_pool()
        # Each branch runs inside a copy of the submitting thread's
        # contextvars context, so per-execution state (the context's
        # external-variable bindings) is visible on the pool thread.
        futures = [pool.submit(contextvars.copy_context().run, thunk)
                   for thunk in thunks]
        # Same contract as _run_virtual: every branch runs to completion
        # before the first exception (in branch order) propagates, so a
        # failing branch cannot leave siblings half-accounted.
        outcomes: list[tuple[T | None, BaseException | None]] = []
        for future in futures:
            try:
                outcomes.append((future.result(), None))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                outcomes.append((None, exc))
        for _, error in outcomes:
            if error is not None:
                raise error
        return [result for result, _ in outcomes]  # type: ignore[misc]

    def measure(
        self, thunk: Callable[[], T], limit_ms: float | None = None
    ) -> tuple[T | BaseException, float, bool]:
        """Run a thunk measuring its latency charge; returns
        (result-or-exception, elapsed_ms, failed).  Used by
        ``fn-bea:timeout``.  In wall-clock mode a ``limit_ms`` bounds the
        *wait*: the thunk runs on the worker pool and an overrun returns a
        :class:`TimeoutError` outcome after ~``limit_ms``, matching the
        virtual clock's abandon-at-the-budget semantics (the worker is left
        to finish in the background, as a real cancellation would be)."""
        if isinstance(self.clock, VirtualClock):
            self.clock.begin_branch()  # type: ignore[attr-defined]
            try:
                result: T | BaseException = thunk()
                failed = False
            except BaseException as exc:  # noqa: BLE001
                result = exc
                failed = True
            elapsed = self.clock.end_branch()  # type: ignore[attr-defined]
            return result, elapsed, failed
        start = self.clock.now_ms()
        if limit_ms is not None:
            pool = self._ensure_pool()
            future = pool.submit(contextvars.copy_context().run, thunk)
            try:
                result = future.result(timeout=limit_ms / 1000.0)
                failed = False
            except FuturesTimeoutError:
                result = TimeoutError(f"branch exceeded {limit_ms:g}ms")
                failed = True
            except BaseException as exc:  # noqa: BLE001
                result = exc
                failed = True
            return result, self.clock.now_ms() - start, failed
        try:
            result = thunk()
            failed = False
        except BaseException as exc:  # noqa: BLE001
            result = exc
            failed = True
        return result, self.clock.now_ms() - start, failed

    def shutdown(self, wait: bool = True, final: bool = False) -> None:
        """Stop the worker pool.  Waits for workers by default — a
        fire-and-forget shutdown leaks threads across Platform resets.

        ``final=True`` (``Platform.close``) additionally marks the
        executor closed: a later parallel group raises
        :class:`PlatformClosedError` instead of silently re-creating a
        pool the closed platform would leak.  Idempotent and safe under
        concurrent callers — exactly one takes the pool reference."""
        with self._lock:
            if final:
                self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)
