"""repro — a reproduction of "Query Processing in the AquaLogic Data
Services Platform" (VLDB 2006).

A federated XQuery data-services engine: declarative data services over
relational databases (simulated), Web services, Java functions and files;
an optimizing compiler with view unfolding, structural typing and inverse
functions; vendor-specific SQL pushdown; PP-k distributed joins; streaming
group-by; async/failover/caching; lineage-driven updates through SDO
change logs; and fine-grained security.

Start with :class:`repro.Platform` — see ``examples/quickstart.py``.
"""

from .clock import Clock, VirtualClock, WallClock
from .diagnostics import Diagnostic, DiagnosticReport, Severity
from .errors import (
    ConcurrencyError,
    DynamicError,
    LineageError,
    ParseError,
    PlanVerificationError,
    ReproError,
    SchemaError,
    SecurityError,
    SourceError,
    SourceTimeoutError,
    SQLError,
    StaticError,
    TransactionError,
    TypeMatchError,
    UpdateError,
    XMLError,
)
from .errors import CircuitOpenError
from .relational import Column, Database, ForeignKey, LatencyModel
from .resilience import (
    CircuitBreakerConfig,
    DegradationRecord,
    FaultInjector,
    RetryPolicy,
    SourcePolicy,
)
from .sdo import ConcurrencyPolicy, DataGraph, DataObject
from .security import SecurityService, User
from .services import Mediator, Platform, RequestConfig
from .sources import WebServiceDescriptor, WebServiceOperation
from .xml import AtomicValue, ElementNode, element, serialize

__version__ = "1.0.0"

__all__ = [
    "Clock",
    "VirtualClock",
    "WallClock",
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "ConcurrencyError",
    "DynamicError",
    "LineageError",
    "ParseError",
    "PlanVerificationError",
    "ReproError",
    "SchemaError",
    "SecurityError",
    "SourceError",
    "SourceTimeoutError",
    "SQLError",
    "StaticError",
    "TransactionError",
    "TypeMatchError",
    "UpdateError",
    "XMLError",
    "CircuitOpenError",
    "Column",
    "Database",
    "ForeignKey",
    "LatencyModel",
    "CircuitBreakerConfig",
    "DegradationRecord",
    "FaultInjector",
    "RetryPolicy",
    "SourcePolicy",
    "ConcurrencyPolicy",
    "DataGraph",
    "DataObject",
    "SecurityService",
    "User",
    "Mediator",
    "Platform",
    "RequestConfig",
    "WebServiceDescriptor",
    "WebServiceOperation",
    "AtomicValue",
    "ElementNode",
    "element",
    "serialize",
    "__version__",
]
