"""Static analysis stage 4: type checking and inference (sections 3.1, 4.1).

Implements ALDSP's departures from the XQuery specification:

* **Structural typing of constructors** — ``<E>{expr}</E>`` gets static type
  ``element(E, C)`` where ``C`` is the structural type of the content, so
  child navigation through a constructor recovers the content's type (the
  property enabling view unfolding and source-access elimination).
* **Optimistic function application** — ``f($x)`` is accepted iff the static
  type of ``$x`` has a non-empty intersection with the parameter type; a
  runtime :class:`~repro.xquery.ast_nodes.TypeMatch` guard is inserted
  unless subtyping already holds.
* **Error recovery** — in design mode, a type error assigns the *error
  type* to the offending expression and analysis continues; in runtime
  mode the first error raises (section 4.1).
"""

from __future__ import annotations

from typing import Optional

from ..errors import TypeError_
from ..schema.structural import intersects, needs_typematch
from ..schema.types import (
    EMPTY,
    ITEM_STAR,
    AnyItemType,
    AtomicItemType,
    AttributeItemType,
    ComplexContent,
    ElementItemType,
    ItemType,
    MixedContent,
    Occurrence,
    Particle,
    SequenceType,
    SimpleContent,
    TextItemType,
    atomic,
    is_numeric,
    numeric_promote,
    sequence_concat,
    union,
)
from . import ast_nodes as ast
from .functions import all_builtins, is_builtin

BOOLEAN = atomic("xs:boolean")
INTEGER = atomic("xs:integer")
STRING = atomic("xs:string")

#: the "error type": analysis continues but the expression is poisoned.
ERROR_TYPE = SequenceType((AnyItemType(),), Occurrence.STAR)


class FunctionSignature:
    """Signature of a callable function: user-declared, builtin-resolved, or
    an external source function registered by introspection."""

    def __init__(self, name: str, params: list[SequenceType], result: SequenceType):
        self.name = name
        self.params = params
        self.result = result

    def __repr__(self) -> str:
        params = ", ".join(p.show() for p in self.params)
        return f"{self.name}({params}) as {self.result.show()}"


class FunctionTable:
    """Resolves function names to signatures during analysis.

    Sources, in priority order: user declarations in the module being
    compiled, externally registered functions (physical data services and
    registered Java functions), builtins.
    """

    def __init__(self, module: "ast.Module | list[ast.Module] | None" = None,
                 externals: dict[tuple[str, int], FunctionSignature] | None = None):
        if module is None:
            self.modules: list[ast.Module] = []
        elif isinstance(module, list):
            self.modules = [m for m in module if m is not None]
        else:
            self.modules = [module]
        self.externals = externals or {}

    @property
    def module(self) -> Optional[ast.Module]:
        return self.modules[0] if self.modules else None

    def resolve(self, name: str, arity: int) -> Optional[FunctionSignature]:
        for module in self.modules:
            decl = module.function(name, arity)
            if decl is not None:
                params = [p.declared_type or ITEM_STAR for p in decl.params]
                result = decl.return_type or decl.inferred_type or ITEM_STAR
                return FunctionSignature(name, params, result)
        if (name, arity) in self.externals:
            return self.externals[(name, arity)]
        if is_builtin(name):
            builtin = all_builtins()[name]
            if builtin.min_args <= arity <= builtin.max_args:
                params = [ITEM_STAR] * arity
                result = builtin.result_type if isinstance(builtin.result_type, SequenceType) else ITEM_STAR
                return FunctionSignature(name, params, result)
        return None


class TypeChecker:
    """Infers and annotates static types over a normalized tree."""

    def __init__(self, functions: FunctionTable, mode: str = "runtime"):
        self.functions = functions
        self.mode = mode
        self.errors: list[str] = []

    # -- error handling ------------------------------------------------------

    def _error(self, node: ast.AstNode, message: str) -> SequenceType:
        if self.mode == "runtime":
            raise TypeError_(message, node.line)
        self.errors.append(message)
        node.static_type = ERROR_TYPE
        return ERROR_TYPE

    # -- entry points ---------------------------------------------------------

    def check_module(self, module: ast.Module) -> None:
        """Analyze every function; in design mode, errors are collected per
        function and error-free signatures remain usable (section 4.1)."""
        module_env: dict[str, SequenceType] = {}
        for name, var in module.variables.items():
            module_env[name] = var.declared_type or ITEM_STAR
        for table_module in getattr(self.functions, "modules", []):
            for name, var in table_module.variables.items():
                module_env.setdefault(name, var.declared_type or ITEM_STAR)
        for decl in module.functions.values():
            if decl.body is None:
                continue
            env = dict(module_env)
            env.update(
                {param.name: (param.declared_type or ITEM_STAR) for param in decl.params}
            )
            before = len(self.errors)
            try:
                inferred = self.infer(decl.body, env)
            except TypeError_ as exc:
                if self.mode == "runtime":
                    raise
                decl.errors.append(str(exc))
                continue
            decl.inferred_type = inferred
            decl.errors.extend(self.errors[before:])
            if decl.return_type is not None and not inferred.is_empty:
                if not intersects(inferred, decl.return_type):
                    message = (
                        f"function {decl.name}: body type {inferred.show()} is "
                        f"incompatible with declared return type {decl.return_type.show()}"
                    )
                    self._error(decl.body, message)
                    decl.errors.append(message)
        if module.query_body is not None:
            self.infer(module.query_body, dict(module_env))

    # -- inference -------------------------------------------------------------

    def infer(self, node: ast.AstNode, env: dict[str, SequenceType]) -> SequenceType:
        method = getattr(self, f"_infer_{type(node).__name__}", None)
        if method is None:
            result = ITEM_STAR
            for child in node.children():
                self.infer(child, env)
        else:
            result = method(node, env)
        node.static_type = result
        return result

    # individual node rules --------------------------------------------------

    def _infer_Literal(self, node: ast.Literal, env) -> SequenceType:
        return atomic(node.value.type_name)

    def _infer_EmptySequence(self, node, env) -> SequenceType:
        return EMPTY

    def _infer_VarRef(self, node: ast.VarRef, env) -> SequenceType:
        if node.name not in env:
            return self._error(node, f"undefined variable ${node.name}")
        return env[node.name]

    def _infer_ContextItem(self, node, env) -> SequenceType:
        return env.get(".", SequenceType((AnyItemType(),), Occurrence.ONE))

    def _infer_SequenceExpr(self, node: ast.SequenceExpr, env) -> SequenceType:
        result = EMPTY
        for item in node.items:
            result = sequence_concat(result, self.infer(item, env))
        return result

    def _infer_RangeTo(self, node: ast.RangeTo, env) -> SequenceType:
        self.infer(node.start, env)
        self.infer(node.end, env)
        return SequenceType((AtomicItemType("xs:integer"),), Occurrence.STAR)

    def _infer_Arithmetic(self, node: ast.Arithmetic, env) -> SequenceType:
        left = self.infer(node.left, env)
        right = self.infer(node.right, env)
        result_name = "xs:double"
        names = []
        for side in (left, right):
            if len(side.alternatives) == 1 and isinstance(side.alternatives[0], AtomicItemType):
                names.append(side.alternatives[0].name)
            else:
                names.append("xs:untypedAtomic")
        try:
            result_name = numeric_promote(names[0], names[1])
        except Exception:
            if all(n != "xs:untypedAtomic" and not is_numeric(n) and n != "xs:anyAtomicType"
                   for n in names):
                return self._error(node, f"arithmetic on non-numeric types {names}")
        if node.op in ("div",):
            result_name = "xs:double" if result_name == "xs:integer" else result_name
        if node.op == "idiv":
            result_name = "xs:integer"
        occ = Occurrence.OPTIONAL if (left.allows_empty() or right.allows_empty()) else Occurrence.ONE
        return SequenceType((AtomicItemType(result_name),), occ)

    def _infer_UnaryMinus(self, node: ast.UnaryMinus, env) -> SequenceType:
        return self.infer(node.operand, env)

    def _infer_Comparison(self, node: ast.Comparison, env) -> SequenceType:
        self.infer(node.left, env)
        self.infer(node.right, env)
        return BOOLEAN

    def _infer_AndExpr(self, node: ast.AndExpr, env) -> SequenceType:
        self.infer(node.left, env)
        self.infer(node.right, env)
        return BOOLEAN

    def _infer_OrExpr(self, node: ast.OrExpr, env) -> SequenceType:
        self.infer(node.left, env)
        self.infer(node.right, env)
        return BOOLEAN

    def _infer_Quantified(self, node: ast.Quantified, env) -> SequenceType:
        inner = dict(env)
        for var, expr in node.bindings:
            seq = self.infer(expr, inner)
            inner[var] = _item_of(seq)
        self.infer(node.satisfies, inner)
        return BOOLEAN

    def _infer_IfExpr(self, node: ast.IfExpr, env) -> SequenceType:
        self.infer(node.condition, env)
        then_type = self.infer(node.then_branch, env)
        else_type = self.infer(node.else_branch, env)
        return union(then_type, else_type)

    def _infer_CastExpr(self, node: ast.CastExpr, env) -> SequenceType:
        operand = self.infer(node.operand, env)
        if node.kind in ("instance", "castable"):
            return BOOLEAN
        if node.kind == "cast":
            return node.target
        # treat as
        if not intersects(operand, node.target) and not operand.is_empty:
            return self._error(
                node, f"treat as: {operand.show()} cannot match {node.target.show()}"
            )
        return node.target

    def _infer_TypeswitchExpr(self, node: ast.TypeswitchExpr, env) -> SequenceType:
        operand = self.infer(node.operand, env)
        result: SequenceType | None = None
        for var, case_type, expr in node.cases:
            inner = dict(env)
            if var is not None:
                inner[var] = case_type
            branch = self.infer(expr, inner)
            result = branch if result is None else union(result, branch)
        inner = dict(env)
        if node.default_var is not None:
            inner[node.default_var] = operand
        branch = self.infer(node.default_expr, inner)
        return branch if result is None else union(result, branch)

    def _infer_AttributeCtor(self, node: ast.AttributeCtor, env) -> SequenceType:
        self.infer(node.value, env)
        return SequenceType((AttributeItemType(node.name),), Occurrence.ONE)

    def _infer_TypeMatch(self, node: ast.TypeMatch, env) -> SequenceType:
        self.infer(node.operand, env)
        return node.target

    def _infer_ErrorExpr(self, node: ast.ErrorExpr, env) -> SequenceType:
        for child in node.inputs:
            self.infer(child, env)
        if self.mode == "runtime":
            raise TypeError_(node.message, node.line)
        return ERROR_TYPE

    def _infer_FunctionCall(self, node: ast.FunctionCall, env) -> SequenceType:
        arg_types = [self.infer(arg, env) for arg in node.args]
        signature = self.functions.resolve(node.name, len(node.args))
        if signature is None:
            return self._error(
                node, f"unknown function {node.name}#{len(node.args)}"
            )
        new_args: list[ast.AstNode] = []
        for i, (arg, arg_type) in enumerate(zip(node.args, arg_types)):
            param = signature.params[i] if i < len(signature.params) else ITEM_STAR
            if arg_type is ERROR_TYPE:
                new_args.append(arg)
                continue
            # Function conversion rule: atomize the argument when the
            # parameter expects atomic values (implicit fn:data, stage 3).
            if (
                param.alternatives
                and all(isinstance(alt, AtomicItemType) for alt in param.alternatives)
                and any(not isinstance(alt, AtomicItemType) for alt in arg_type.alternatives)
            ):
                arg = ast.FunctionCall("fn:data", [arg])
                arg_type = _atomized_type(arg_type)
                arg.static_type = arg_type
            if not intersects(arg_type, param):
                self._error(
                    node,
                    f"{node.name}: argument {i + 1} type {arg_type.show()} does not "
                    f"intersect parameter type {param.show()}",
                )
                new_args.append(arg)
                continue
            # Optimistic typing: guard with typematch unless subtype holds.
            if needs_typematch(arg_type, param) and not _is_universal(param):
                guard = ast.TypeMatch(arg, param)
                guard.static_type = param
                new_args.append(guard)
            else:
                new_args.append(arg)
        node.args = new_args
        if node.name in ("fn:data",):
            return _atomized_type(arg_types[0]) if arg_types else ITEM_STAR
        if is_builtin(node.name):
            builtin = all_builtins()[node.name]
            return builtin.static_result_type(arg_types)
        return signature.result

    def _infer_PathExpr(self, node: ast.PathExpr, env) -> SequenceType:
        current = self.infer(node.base, env)
        for step in node.steps:
            current = self._step_type(current, step, env)
            for predicate in step.predicates:
                inner = dict(env)
                inner["."] = _item_of(current)
                self.infer(predicate, inner)
                current = current.with_occurrence(
                    current.occurrence.union(Occurrence.OPTIONAL)
                    if current.occurrence.min_count
                    else current.occurrence
                )
        return current

    def _infer_FilterExpr(self, node: ast.FilterExpr, env) -> SequenceType:
        base = self.infer(node.base, env)
        for predicate in node.predicates:
            inner = dict(env)
            inner["."] = _item_of(base)
            self.infer(predicate, inner)
        if base.is_empty:
            return base
        occ = Occurrence.OPTIONAL if base.occurrence.max_count == 1 else Occurrence.STAR
        return base.with_occurrence(occ)

    def _step_type(self, base: SequenceType, step: ast.Step, env) -> SequenceType:
        """Navigate the structural type through one step.

        This is where structural typing pays off: navigating into a
        constructed element's type yields the (typed) content rather than
        ANYTYPE.
        """
        if base.is_empty:
            return EMPTY
        results: list[SequenceType] = []
        for alt in base.alternatives:
            results.append(self._step_item_type(alt, step))
        combined = results[0]
        for extra in results[1:]:
            combined = union(combined, extra)
        # Multiply occurrence: base* / child? -> child*
        if base.occurrence.max_count is None:
            if combined.is_empty:
                return EMPTY
            combined = combined.with_occurrence(
                Occurrence.STAR if combined.occurrence.min_count == 0 or base.occurrence.min_count == 0
                else Occurrence.PLUS
            )
        elif base.occurrence.min_count == 0 and not combined.is_empty:
            combined = combined.with_occurrence(combined.occurrence.union(Occurrence.OPTIONAL))
        return combined

    def _step_item_type(self, item: ItemType, step: ast.Step) -> SequenceType:
        if isinstance(step.test, ast.KindTest):
            if step.test.kind == "text":
                return SequenceType((TextItemType(),), Occurrence.STAR)
            return ITEM_STAR
        name = step.test.name
        if step.axis == "attribute":
            if isinstance(item, ElementItemType):
                return SequenceType(
                    (AttributeItemType(None if name == "*" else name),), Occurrence.OPTIONAL
                )
            return SequenceType((AttributeItemType(None),), Occurrence.STAR)
        if not isinstance(item, ElementItemType):
            # Navigating atomic values is an error; navigating item()/node()
            # yields unknown elements.
            if isinstance(item, (AnyItemType,)) or item.__class__.__name__ == "AnyNodeType":
                return SequenceType((ElementItemType(None if name == "*" else name),), Occurrence.STAR)
            return EMPTY
        content = item.content
        if content is None or isinstance(content, MixedContent):
            return SequenceType(
                (ElementItemType(None if name == "*" else name),), Occurrence.STAR
            )
        if isinstance(content, SimpleContent):
            return EMPTY
        assert isinstance(content, ComplexContent)
        matches: list[Particle] = []
        for particle in content.particles:
            it = particle.item_type
            if isinstance(it, ElementItemType) and (name == "*" or it.name == name or it.name is None):
                matches.append(particle)
        if not matches:
            return EMPTY
        result = SequenceType((matches[0].item_type,), matches[0].occurrence)
        for extra in matches[1:]:
            result = union(result, SequenceType((extra.item_type,), extra.occurrence))
        return result

    def _infer_ElementCtor(self, node: ast.ElementCtor, env) -> SequenceType:
        for attr in node.attributes:
            self.infer(attr.value, env)
        content_types = [self.infer(part, env) for part in node.content]
        content = _structural_content(content_types)
        return SequenceType((ElementItemType(node.name, content),), Occurrence.ONE)

    def _infer_FLWOR(self, node: ast.FLWOR, env) -> SequenceType:
        inner = dict(env)
        loop_multiplies = False
        for clause in node.clauses:
            if isinstance(clause, ast.ForClause):
                seq = self.infer(clause.expr, inner)
                item_type = _item_of(seq)
                if clause.declared_type is not None:
                    if not intersects(item_type, clause.declared_type) and not seq.is_empty:
                        self._error(
                            clause,
                            f"for ${clause.var}: binding type {item_type.show()} does not "
                            f"intersect declared type {clause.declared_type.show()}",
                        )
                    item_type = clause.declared_type
                inner[clause.var] = item_type
                if clause.pos_var:
                    inner[clause.pos_var] = INTEGER
                if seq.occurrence.max_count != 1:
                    loop_multiplies = True
                if seq.allows_empty():
                    loop_multiplies = True
            elif isinstance(clause, ast.LetClause):
                seq = self.infer(clause.expr, inner)
                if clause.declared_type is not None:
                    seq = clause.declared_type
                inner[clause.var] = seq
            elif isinstance(clause, ast.WhereClause):
                self.infer(clause.condition, inner)
                loop_multiplies = True
            elif isinstance(clause, ast.GroupByClause):
                key_types = {}
                for expr, var in clause.keys:
                    key_types[var] = self.infer(expr, inner)
                grouped_types = {}
                for source, target in clause.grouped:
                    source_type = inner.get(source, ITEM_STAR)
                    grouped_types[target] = source_type.with_occurrence(Occurrence.STAR) \
                        if not source_type.is_empty else source_type
                # After grouping only the as-variables remain bound.
                inner = dict(env)
                inner.update(key_types)
                inner.update(grouped_types)
                loop_multiplies = True
            elif isinstance(clause, ast.OrderByClause):
                for spec in clause.specs:
                    self.infer(spec.key, inner)
        body = self.infer(node.return_expr, inner)
        if body.is_empty:
            return EMPTY
        if loop_multiplies or True:
            # A FLWOR yields zero or more results in general.
            return body.with_occurrence(
                Occurrence.STAR if body.occurrence.min_count == 0 or loop_multiplies
                else Occurrence.PLUS
            )
        return body


def _item_of(seq: SequenceType) -> SequenceType:
    """The type of one item drawn from a sequence (for-binding type)."""
    if seq.is_empty:
        return EMPTY
    return SequenceType(seq.alternatives, Occurrence.ONE)


def _atomized_type(seq: SequenceType) -> SequenceType:
    """Static type of fn:data($e) for static type of $e."""
    if seq.is_empty:
        return EMPTY
    alts: list[ItemType] = []
    for alt in seq.alternatives:
        if isinstance(alt, AtomicItemType):
            alts.append(alt)
        elif isinstance(alt, ElementItemType) and isinstance(alt.content, SimpleContent):
            alts.append(AtomicItemType(alt.content.type_name))
        elif isinstance(alt, AttributeItemType):
            alts.append(AtomicItemType(alt.type_name))
        else:
            alts.append(AtomicItemType("xs:anyAtomicType"))
    deduped = tuple(dict.fromkeys(alts))
    return SequenceType(deduped, seq.occurrence)


def _structural_content(content_types: list[SequenceType]):
    """Compute the structural content type of a constructed element."""
    particles: list[Particle] = []
    atomic_only = True
    atomic_name: str | None = None
    has_any = False
    for seq in content_types:
        if seq.is_empty:
            continue
        for alt in seq.alternatives:
            if isinstance(alt, ElementItemType):
                atomic_only = False
                particles.append(Particle(alt, seq.occurrence))
            elif isinstance(alt, AtomicItemType):
                atomic_name = alt.name if atomic_name in (None, alt.name) else "xs:anyAtomicType"
            elif isinstance(alt, (TextItemType,)):
                atomic_name = "xs:untypedAtomic"
            else:
                has_any = True
    if has_any:
        return MixedContent()
    if atomic_only:
        if atomic_name is None:
            return ComplexContent(())
        return SimpleContent(atomic_name)
    if atomic_name is not None:
        return MixedContent()
    return ComplexContent(tuple(particles))


def _is_universal(seq: SequenceType) -> bool:
    return (
        len(seq.alternatives) == 1
        and isinstance(seq.alternatives[0], AnyItemType)
        and seq.occurrence is Occurrence.STAR
    )
