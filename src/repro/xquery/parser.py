"""Recursive-descent parser for the ALDSP XQuery dialect.

Supports the data-centric subset of the July 2004 XQuery working draft used
throughout the paper, plus ALDSP's extensions (section 3.1):

* FLWGOR: the ``group ... by ...`` clause;
* optional construction ``<E?>`` / ``attr?="..."``;
* pragma comments ``(::pragma ... ::)`` attached to declarations;
* data-service files: a prolog full of function declarations with no query
  body.

Two error-handling modes (section 4.1): ``runtime`` fails on the first
error; ``design`` recovers — on a syntax error inside a prolog declaration
it skips to the next ``;`` and keeps going, retaining error-free function
signatures for use when analyzing other functions.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools

from ..errors import ParseError
from ..schema.types import (
    AnyItemType,
    AnyNodeType,
    AtomicItemType,
    AttributeItemType,
    ElementItemType,
    Occurrence,
    SequenceType,
    TextItemType,
    is_known_atomic,
)
from ..xml.items import AtomicValue
from . import ast_nodes as ast
from .lexer import DECIMAL, DOUBLE, EOF, INTEGER, NAME, STRING, SYMBOL, Lexer, LexToken

_COMPARISON_OPS = {
    "eq": ("eq", False), "ne": ("ne", False), "lt": ("lt", False),
    "le": ("le", False), "gt": ("gt", False), "ge": ("ge", False),
    "=": ("eq", True), "!=": ("ne", True), "<": ("lt", True),
    "<=": ("le", True), ">": ("gt", True), ">=": ("ge", True),
}

_RESERVED_FUNCTION_NAMES = {
    "if", "typeswitch", "element", "attribute", "text", "node", "item",
    "empty-sequence", "schema-element",
}

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}

#: process-global fallback counter, used only *outside* a compilation
#: scope (ad hoc parsing in tests, deploy-time initializer optimization)
_gensym = itertools.count(1)

#: per-compilation counter: installed by :func:`gensym_scope` at each
#: outermost compile so numbering restarts at 1 per compilation (and per
#: contextvars context, so concurrent compiles don't interleave draws)
_gensym_scope: contextvars.ContextVar = contextvars.ContextVar(
    "repro.gensym_scope", default=None
)


def fresh_var(prefix: str = "g") -> str:
    """Generate a compiler-internal variable name.

    Inside a :func:`gensym_scope` (any compiler entry point) numbering is
    scoped to the compilation; the process-global counter only backs
    direct parser/optimizer use outside a compile.
    """
    counter = _gensym_scope.get()
    if counter is None:
        counter = _gensym
    return f"#{prefix}{next(counter)}"


@contextlib.contextmanager
def gensym_scope():
    """Fresh, deterministic gensym numbering for one compilation.

    Only the *outermost* entry installs a new counter — nested compiles
    (view sub-optimization, module-variable initializers) keep drawing
    from the enclosing scope, so names stay unique within the compilation.
    """
    if _gensym_scope.get() is not None:
        yield
        return
    token = _gensym_scope.set(itertools.count(1))
    try:
        yield
    finally:
        _gensym_scope.reset(token)


def reset_gensym_scope(next_n: int) -> None:
    """Restart the active compilation scope's counter at ``next_n``.

    Called after gensym canonicalization so post-canonicalization passes
    (SQL pushdown's ``#ppk``/``#row`` variables) draw numbers that are a
    pure function of the canonical tree — independent of how many names
    earlier passes burned (e.g. cold vs warm view-plan cache)."""
    if _gensym_scope.get() is not None:
        _gensym_scope.set(itertools.count(next_n))


class Parser:
    def __init__(self, text: str, mode: str = "runtime"):
        if mode not in ("runtime", "design"):
            raise ValueError(f"bad parser mode {mode!r}")
        self.lexer = Lexer(text)
        self.mode = mode
        self.tok: LexToken = self.lexer.next_token()

    # -- token plumbing -----------------------------------------------------

    def _advance(self) -> LexToken:
        previous = self.tok
        self.tok = self.lexer.next_token()
        return previous

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self.tok.line, self.tok.column)

    def _at_symbol(self, *symbols: str) -> bool:
        return self.tok.kind == SYMBOL and self.tok.value in symbols

    def _at_name(self, *names: str) -> bool:
        return self.tok.kind == NAME and self.tok.value in names

    def _expect_symbol(self, symbol: str) -> LexToken:
        if not self._at_symbol(symbol):
            raise self._error(f"expected {symbol!r}, found {self.tok.value!r}")
        return self._advance()

    def _expect_name(self, *names: str) -> LexToken:
        if names and not self._at_name(*names):
            raise self._error(f"expected {' or '.join(names)}, found {self.tok.value!r}")
        if self.tok.kind != NAME:
            raise self._error(f"expected name, found {self.tok.value!r}")
        return self._advance()

    def _accept_symbol(self, symbol: str) -> bool:
        if self._at_symbol(symbol):
            self._advance()
            return True
        return False

    def _accept_name(self, *names: str) -> bool:
        if self._at_name(*names):
            self._advance()
            return True
        return False

    def _resync_to_semicolon(self) -> None:
        """Design-mode recovery: skip to just past the next ``;``."""
        while self.tok.kind != EOF:
            if self._at_symbol(";"):
                self._advance()
                return
            advanced = False
            while not advanced:
                try:
                    self._advance()
                    advanced = True
                except ParseError:
                    # Skip the offending character entirely.
                    self.lexer.seek(self.lexer.char_pos + 1)

    # -- module / prolog ----------------------------------------------------

    def parse_module(self) -> ast.Module:
        module = ast.Module()
        self._maybe_version_decl()
        while True:
            pragmas = self.lexer.drain_pragmas()
            if self.tok.kind == EOF:
                module.pragmas.extend(pragmas)
                return module
            if not self._at_name("declare", "import"):
                break
            try:
                self._parse_declaration(module, pragmas)
                self._expect_symbol(";")
            except ParseError as exc:
                if self.mode == "runtime":
                    raise
                module.errors.append(str(exc))
                self._resync_to_semicolon()
        if self.tok.kind != EOF:
            pragmas = self.lexer.drain_pragmas()
            module.pragmas.extend(pragmas)
            try:
                module.query_body = self.parse_expr()
            except ParseError:
                if self.mode == "runtime":
                    raise
                module.errors.append("unparsable query body")
                module.query_body = ast.ErrorExpr("unparsable query body")
                return module
            if self.tok.kind != EOF:
                error = self._error(f"unexpected trailing token {self.tok.value!r}")
                if self.mode == "runtime":
                    raise error
                module.errors.append(str(error))
        return module

    def parse_main_expression(self) -> ast.AstNode:
        """Parse a stand-alone expression (ad hoc query body)."""
        self._maybe_version_decl()
        expr = self.parse_expr()
        if self.tok.kind != EOF:
            raise self._error(f"unexpected trailing token {self.tok.value!r}")
        return expr

    def _maybe_version_decl(self) -> None:
        if self._at_name("xquery"):
            self._advance()
            self._expect_name("version")
            if self.tok.kind != STRING:
                raise self._error("expected version string")
            self._advance()
            if self._accept_name("encoding"):
                if self.tok.kind != STRING:
                    raise self._error("expected encoding string")
                self._advance()
            self._expect_symbol(";")

    def _parse_declaration(self, module: ast.Module, pragmas) -> None:
        if self._accept_name("import"):
            self._expect_name("schema")
            if self._accept_name("namespace"):
                prefix = self._expect_name().value
                self._expect_symbol("=")
            else:
                prefix = None
            if self.tok.kind != STRING:
                raise self._error("expected namespace URI string")
            uri = self._advance().value
            if prefix:
                module.namespaces[prefix] = uri
            module.schema_imports.append(uri)
            while self._accept_name("at"):
                if self.tok.kind != STRING:
                    raise self._error("expected location string")
                self._advance()
            return
        self._expect_name("declare")
        if self._accept_name("namespace"):
            prefix = self._expect_name().value
            self._expect_symbol("=")
            if self.tok.kind != STRING:
                raise self._error("expected namespace URI string")
            module.namespaces[prefix] = self._advance().value
            return
        if self._accept_name("default"):
            self._expect_name("element")
            self._expect_name("namespace")
            if self.tok.kind != STRING:
                raise self._error("expected namespace URI string")
            module.namespaces[""] = self._advance().value
            return
        if self._accept_name("variable"):
            self._expect_symbol("$")
            name = ast.local_name(self._expect_name().value)
            declared = self._parse_optional_type()
            if self._accept_name("external"):
                module.variables[name] = ast.VariableDecl(name, declared, None, True)
                return
            self._expect_symbol(":=")
            value = self.parse_expr_single()
            module.variables[name] = ast.VariableDecl(name, declared, value, False)
            return
        if self._accept_name("function"):
            decl = self._parse_function_decl(pragmas)
            module.declare_function(decl)
            return
        if self._accept_name("boundary-space", "construction", "ordering"):
            self._expect_name()  # the chosen policy word
            return
        raise self._error(f"unsupported declaration {self.tok.value!r}")

    def _parse_function_decl(self, pragmas) -> ast.FunctionDecl:
        name = ast.local_name(self._expect_name().value)
        self._expect_symbol("(")
        params: list[ast.Param] = []
        if not self._at_symbol(")"):
            while True:
                self._expect_symbol("$")
                pname = ast.local_name(self._expect_name().value)
                ptype = self._parse_optional_type()
                params.append(ast.Param(pname, ptype))
                if not self._accept_symbol(","):
                    break
        self._expect_symbol(")")
        return_type = self._parse_optional_type()
        if self._accept_name("external"):
            return ast.FunctionDecl(name, params, return_type, None, pragmas, external=True)
        self._expect_symbol("{")
        body = self.parse_expr()
        self._expect_symbol("}")
        return ast.FunctionDecl(name, params, return_type, body, pragmas)

    def _parse_optional_type(self) -> SequenceType | None:
        if self._accept_name("as"):
            return self.parse_sequence_type()
        return None

    # -- sequence types -----------------------------------------------------

    def parse_sequence_type(self) -> SequenceType:
        if self._at_name("empty-sequence"):
            self._advance()
            self._expect_symbol("(")
            self._expect_symbol(")")
            return SequenceType(())
        item_type = self._parse_item_type()
        occurrence = Occurrence.ONE
        if self._at_symbol("?"):
            self._advance()
            occurrence = Occurrence.OPTIONAL
        elif self._at_symbol("*"):
            self._advance()
            occurrence = Occurrence.STAR
        elif self._at_symbol("+"):
            self._advance()
            occurrence = Occurrence.PLUS
        return SequenceType((item_type,), occurrence)

    def _parse_item_type(self):
        if self.tok.kind != NAME:
            raise self._error(f"expected item type, found {self.tok.value!r}")
        word = self.tok.value
        if word in ("item", "node", "text") and self._peek_is_paren():
            self._advance()
            self._expect_symbol("(")
            self._expect_symbol(")")
            return {"item": AnyItemType(), "node": AnyNodeType(), "text": TextItemType()}[word]
        if word in ("element", "schema-element") and self._peek_is_paren():
            self._advance()
            self._expect_symbol("(")
            name = None
            if self.tok.kind == NAME:
                name = ast.local_name(self._advance().value)
                if self._accept_symbol(","):
                    self._expect_name()  # content type name: ignored (ANYTYPE)
            elif self._accept_symbol("*"):
                name = None
            self._expect_symbol(")")
            return ElementItemType(name)
        if word == "attribute" and self._peek_is_paren():
            self._advance()
            self._expect_symbol("(")
            name = None
            type_name = "xs:anyAtomicType"
            if self.tok.kind == NAME:
                name = ast.local_name(self._advance().value)
                if self._accept_symbol(","):
                    type_name = self._expect_name().value
            self._expect_symbol(")")
            return AttributeItemType(name, type_name)
        # Atomic type name.
        self._advance()
        if not is_known_atomic(word):
            raise ParseError(f"unknown atomic type {word}", self.tok.line, self.tok.column)
        return AtomicItemType(word)

    def _peek_is_paren(self) -> bool:
        saved_pos = self.lexer.char_pos
        saved_tok = self.tok
        self._advance()
        result = self._at_symbol("(")
        self.lexer.seek(saved_tok.pos)
        self.tok = self.lexer.next_token()
        assert self.lexer.char_pos >= saved_pos or True
        return result

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> ast.AstNode:
        first = self.parse_expr_single()
        if not self._at_symbol(","):
            return first
        items = [first]
        while self._accept_symbol(","):
            items.append(self.parse_expr_single())
        return ast.SequenceExpr(items)

    def parse_expr_single(self) -> ast.AstNode:
        if self._at_name("for", "let"):
            return self._parse_flwor()
        if self._at_name("some", "every"):
            return self._parse_quantified()
        if self._at_name("if") and self._peek_is_paren():
            return self._parse_if()
        if self._at_name("typeswitch") and self._peek_is_paren():
            return self._parse_typeswitch()
        return self._parse_or()

    def _parse_typeswitch(self) -> ast.AstNode:
        self._expect_name("typeswitch")
        self._expect_symbol("(")
        operand = self.parse_expr()
        self._expect_symbol(")")
        cases: list[tuple[str | None, SequenceType, ast.AstNode]] = []
        while self._at_name("case"):
            self._advance()
            var = None
            if self._accept_symbol("$"):
                var = ast.local_name(self._expect_name().value)
                self._expect_name("as")
            case_type = self.parse_sequence_type()
            self._expect_name("return")
            cases.append((var, case_type, self.parse_expr_single()))
        if not cases:
            raise self._error("typeswitch requires at least one case")
        self._expect_name("default")
        default_var = None
        if self._accept_symbol("$"):
            default_var = ast.local_name(self._expect_name().value)
        self._expect_name("return")
        default_expr = self.parse_expr_single()
        return ast.TypeswitchExpr(operand, cases, default_var, default_expr)

    def _parse_flwor(self) -> ast.AstNode:
        line = self.tok.line
        clauses: list[ast.Clause] = []
        while self._at_name("for", "let"):
            keyword = self._advance().value
            while True:
                self._expect_symbol("$")
                var = ast.local_name(self._expect_name().value)
                declared = self._parse_optional_type()
                if keyword == "for":
                    pos_var = None
                    if self._accept_name("at"):
                        self._expect_symbol("$")
                        pos_var = ast.local_name(self._expect_name().value)
                    self._expect_name("in")
                    expr = self.parse_expr_single()
                    clauses.append(ast.ForClause(var, expr, pos_var, declared))
                else:
                    self._expect_symbol(":=")
                    expr = self.parse_expr_single()
                    clauses.append(ast.LetClause(var, expr, declared))
                if not self._accept_symbol(","):
                    break
        if self._accept_name("where"):
            clauses.append(ast.WhereClause(self.parse_expr_single()))
        if self._at_name("group"):
            clauses.append(self._parse_group_clause())
        if self._at_name("stable"):
            self._advance()
            self._expect_name("order")
            self._expect_name("by")
            clauses.append(self._parse_order_by())
        elif self._at_name("order"):
            self._advance()
            self._expect_name("by")
            clauses.append(self._parse_order_by())
        self._expect_name("return")
        return_expr = self.parse_expr_single()
        return ast.FLWOR(clauses, return_expr).at(line)

    def _parse_group_clause(self) -> ast.GroupByClause:
        self._expect_name("group")
        grouped: list[tuple[str, str]] = []
        if self._at_symbol("$"):
            while True:
                self._expect_symbol("$")
                source = ast.local_name(self._expect_name().value)
                self._expect_name("as")
                self._expect_symbol("$")
                target = ast.local_name(self._expect_name().value)
                grouped.append((source, target))
                if not self._accept_symbol(","):
                    break
        self._expect_name("by")
        keys: list[tuple[ast.AstNode, str]] = []
        while True:
            key_expr = self.parse_expr_single()
            if self._accept_name("as"):
                self._expect_symbol("$")
                key_var = ast.local_name(self._expect_name().value)
            else:
                key_var = fresh_var("key")
            keys.append((key_expr, key_var))
            if not self._accept_symbol(","):
                break
        return ast.GroupByClause(grouped, keys)

    def _parse_order_by(self) -> ast.OrderByClause:
        specs: list[ast.OrderSpec] = []
        while True:
            key = self.parse_expr_single()
            descending = False
            if self._accept_name("ascending"):
                pass
            elif self._accept_name("descending"):
                descending = True
            empty_greatest = False
            if self._accept_name("empty"):
                if self._accept_name("greatest"):
                    empty_greatest = True
                else:
                    self._expect_name("least")
            specs.append(ast.OrderSpec(key, descending, empty_greatest))
            if not self._accept_symbol(","):
                break
        return ast.OrderByClause(specs)

    def _parse_quantified(self) -> ast.AstNode:
        kind = self._advance().value  # some | every
        bindings: list[tuple[str, ast.AstNode]] = []
        while True:
            self._expect_symbol("$")
            var = ast.local_name(self._expect_name().value)
            self._parse_optional_type()
            self._expect_name("in")
            bindings.append((var, self.parse_expr_single()))
            if not self._accept_symbol(","):
                break
        self._expect_name("satisfies")
        satisfies = self.parse_expr_single()
        return ast.Quantified(kind, bindings, satisfies)

    def _parse_if(self) -> ast.AstNode:
        self._expect_name("if")
        self._expect_symbol("(")
        condition = self.parse_expr()
        self._expect_symbol(")")
        self._expect_name("then")
        then_branch = self.parse_expr_single()
        self._expect_name("else")
        else_branch = self.parse_expr_single()
        return ast.IfExpr(condition, then_branch, else_branch)

    def _parse_or(self) -> ast.AstNode:
        left = self._parse_and()
        while self._at_name("or"):
            self._advance()
            left = ast.OrExpr(left, self._parse_and())
        return left

    def _parse_and(self) -> ast.AstNode:
        left = self._parse_comparison()
        while self._at_name("and"):
            self._advance()
            left = ast.AndExpr(left, self._parse_comparison())
        return left

    def _parse_comparison(self) -> ast.AstNode:
        left = self._parse_range()
        op_key = None
        if self.tok.kind == NAME and self.tok.value in ("eq", "ne", "lt", "le", "gt", "ge"):
            op_key = self.tok.value
        elif self.tok.kind == SYMBOL and self.tok.value in ("=", "!=", "<", "<=", ">", ">="):
            op_key = self.tok.value
        if op_key is None:
            return left
        self._advance()
        op, general = _COMPARISON_OPS[op_key]
        right = self._parse_range()
        return ast.Comparison(op, left, right, general)

    def _parse_range(self) -> ast.AstNode:
        left = self._parse_additive()
        if self._at_name("to"):
            self._advance()
            return ast.RangeTo(left, self._parse_additive())
        return left

    def _parse_additive(self) -> ast.AstNode:
        left = self._parse_multiplicative()
        while self._at_symbol("+", "-"):
            op = self._advance().value
            left = ast.Arithmetic(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.AstNode:
        left = self._parse_typed()
        while self._at_symbol("*") or self._at_name("div", "idiv", "mod"):
            op = self._advance().value
            left = ast.Arithmetic(op, left, self._parse_typed())
        return left

    def _parse_typed(self) -> ast.AstNode:
        expr = self._parse_unary()
        while True:
            if self._at_name("instance"):
                self._advance()
                self._expect_name("of")
                expr = ast.CastExpr("instance", expr, self.parse_sequence_type())
            elif self._at_name("treat"):
                self._advance()
                self._expect_name("as")
                expr = ast.CastExpr("treat", expr, self.parse_sequence_type())
            elif self._at_name("castable"):
                self._advance()
                self._expect_name("as")
                expr = ast.CastExpr("castable", expr, self.parse_sequence_type())
            elif self._at_name("cast"):
                self._advance()
                self._expect_name("as")
                expr = ast.CastExpr("cast", expr, self.parse_sequence_type())
            else:
                return expr

    def _parse_unary(self) -> ast.AstNode:
        if self._at_symbol("-"):
            self._advance()
            return ast.UnaryMinus(self._parse_unary())
        if self._at_symbol("+"):
            self._advance()
            return self._parse_unary()
        return self._parse_path()

    # -- paths ---------------------------------------------------------------

    def _parse_path(self) -> ast.AstNode:
        # Leading '/' (document root paths) are not used in data services;
        # support relative paths and primary-rooted paths only.
        node = self._parse_step_or_primary()
        steps: list[ast.Step] = []
        while self._at_symbol("/", "//"):
            descendant = self._advance().value == "//"
            step = self._parse_step(descendant)
            steps.append(step)
        if steps:
            return ast.PathExpr(node, steps)
        return node

    def _parse_step_or_primary(self) -> ast.AstNode:
        # A bare name / @name / '.' begins a relative path on the context
        # item; everything else is a primary expression.
        if self._at_symbol("@"):
            step = self._parse_step(False)
            return ast.PathExpr(ast.ContextItem(), [step])
        if self._at_symbol("."):
            self._advance()
            return self._add_predicates(ast.ContextItem())
        if self.tok.kind == NAME and self.tok.value in ("element", "attribute") \
                and self._peek_is_name():
            return self._parse_primary()  # computed constructor
        if self.tok.kind == NAME and not self._is_primary_name():
            step = self._parse_step(False)
            return ast.PathExpr(ast.ContextItem(), [step])
        return self._parse_primary()

    def _peek_is_name(self) -> bool:
        saved_tok = self.tok
        self._advance()
        result = self.tok.kind == NAME
        self.lexer.seek(saved_tok.pos)
        self.tok = self.lexer.next_token()
        return result

    def _is_primary_name(self) -> bool:
        """Is the current NAME token the start of a function call or other
        primary expression (rather than a child-axis name test)?"""
        if self.tok.value in ("text", "node") :
            return False
        word = self.tok.value
        if ast.local_name(word) in _RESERVED_FUNCTION_NAMES and ":" not in word:
            return False
        return self._peek_is_paren()

    def _parse_step(self, descendant: bool) -> ast.Step:
        axis = "descendant" if descendant else "child"
        if self._at_symbol("@"):
            self._advance()
            axis = "attribute"
        elif self.tok.kind == NAME and self.tok.value in ("child", "attribute", "descendant", "self"):
            saved = self.tok
            self._advance()
            if self._at_symbol("::"):
                axis = saved.value
                self._advance()
            else:
                self.lexer.seek(saved.pos)
                self.tok = self.lexer.next_token()
        # Node test
        if self._at_symbol("*"):
            self._advance()
            test: ast.NameTest | ast.KindTest = ast.NameTest("*")
        elif self.tok.kind == NAME:
            word = self.tok.value
            if word in ("text", "node") and self._peek_is_paren():
                self._advance()
                self._expect_symbol("(")
                self._expect_symbol(")")
                test = ast.KindTest(word)
            else:
                self._advance()
                test = ast.NameTest(ast.local_name(word))
        else:
            raise self._error(f"expected step, found {self.tok.value!r}")
        step = ast.Step(axis, test)
        step.predicates = self._parse_predicates()
        return step

    def _parse_predicates(self) -> list[ast.AstNode]:
        predicates = []
        while self._at_symbol("["):
            self._advance()
            predicates.append(self.parse_expr())
            self._expect_symbol("]")
        return predicates

    def _add_predicates(self, base: ast.AstNode) -> ast.AstNode:
        predicates = self._parse_predicates()
        if predicates:
            return ast.FilterExpr(base, predicates)
        return base

    # -- primaries -------------------------------------------------------------

    def _parse_primary(self) -> ast.AstNode:
        tok = self.tok
        if tok.kind == STRING:
            self._advance()
            return self._add_predicates(ast.Literal(AtomicValue(tok.value, "xs:string")))
        if tok.kind == INTEGER:
            self._advance()
            return self._add_predicates(ast.Literal(AtomicValue(int(tok.value), "xs:integer")))
        if tok.kind == DECIMAL:
            self._advance()
            return self._add_predicates(ast.Literal(AtomicValue(float(tok.value), "xs:decimal")))
        if tok.kind == DOUBLE:
            self._advance()
            return self._add_predicates(ast.Literal(AtomicValue(float(tok.value), "xs:double")))
        if self._at_symbol("$"):
            self._advance()
            name = ast.local_name(self._expect_name().value)
            return self._add_predicates(ast.VarRef(name))
        if self._at_symbol("("):
            self._advance()
            if self._accept_symbol(")"):
                return self._add_predicates(ast.EmptySequence())
            inner = self.parse_expr()
            self._expect_symbol(")")
            return self._add_predicates(inner)
        if self._at_symbol("<"):
            return self._add_predicates(self._parse_direct_constructor())
        if tok.kind == NAME:
            if tok.value == "element" and not self._peek_is_paren():
                return self._parse_computed_element()
            if tok.value == "attribute" and not self._peek_is_paren():
                return self._parse_computed_attribute()
            if self._peek_is_paren() and ast.local_name(tok.value) not in _RESERVED_FUNCTION_NAMES:
                return self._parse_function_call()
        raise self._error(f"unexpected token {tok.value!r}")

    def _parse_function_call(self) -> ast.AstNode:
        name = self._advance().value
        self._expect_symbol("(")
        args: list[ast.AstNode] = []
        if not self._at_symbol(")"):
            while True:
                args.append(self.parse_expr_single())
                if not self._accept_symbol(","):
                    break
        self._expect_symbol(")")
        return self._add_predicates(ast.FunctionCall(_normalize_fn_name(name), args))

    def _parse_computed_element(self) -> ast.AstNode:
        self._expect_name("element")
        name = ast.local_name(self._expect_name().value)
        self._expect_symbol("{")
        content = [] if self._at_symbol("}") else [self.parse_expr()]
        self._expect_symbol("}")
        return ast.ElementCtor(name, [], content)

    def _parse_computed_attribute(self) -> ast.AstNode:
        self._expect_name("attribute")
        name = ast.local_name(self._expect_name().value)
        self._expect_symbol("{")
        value = ast.Literal(AtomicValue("", "xs:string")) if self._at_symbol("}") \
            else self.parse_expr()
        self._expect_symbol("}")
        return ast.AttributeCtor(name, value)

    # -- direct constructors (character-level scanning) -----------------------

    def _parse_direct_constructor(self) -> ast.AstNode:
        """Parse ``<name ...>...</name>`` starting at the current ``<``.

        The lexer has tokenized the ``<``; we re-scan from its character
        offset.
        """
        start = self.tok.pos
        text = self.lexer.text
        pos = start + 1
        name, pos = self._scan_name(text, pos)
        optional = False
        if pos < len(text) and text[pos] == "?":
            optional = True
            pos += 1
        attributes: list[ast.AttributeCtor] = []
        while True:
            pos = self._skip_ws(text, pos)
            if text.startswith("/>", pos):
                pos += 2
                self._resume(pos)
                return ast.ElementCtor(ast.local_name(name), attributes, [], optional)
            if text.startswith(">", pos):
                pos += 1
                break
            attr, pos = self._scan_attribute(text, pos)
            if attr is not None:
                attributes.append(attr)
        content, pos = self._scan_content(text, pos, name)
        self._resume(pos)
        return ast.ElementCtor(ast.local_name(name), attributes, content, optional)

    def _resume(self, pos: int) -> None:
        self.lexer.seek(pos)
        self.tok = self.lexer.next_token()

    @staticmethod
    def _skip_ws(text: str, pos: int) -> int:
        while pos < len(text) and text[pos].isspace():
            pos += 1
        return pos

    def _scan_name(self, text: str, pos: int) -> tuple[str, int]:
        start = pos
        while pos < len(text) and (text[pos].isalnum() or text[pos] in "_-.:"):
            pos += 1
        if pos == start:
            line, col = self.lexer.line_col(pos)
            raise ParseError("expected element name", line, col)
        return text[start:pos], pos

    def _scan_attribute(self, text: str, pos: int) -> tuple[ast.AttributeCtor | None, int]:
        name, pos = self._scan_name(text, pos)
        optional = False
        if pos < len(text) and text[pos] == "?":
            optional = True
            pos += 1
        pos = self._skip_ws(text, pos)
        if pos >= len(text) or text[pos] != "=":
            line, col = self.lexer.line_col(pos)
            raise ParseError(f"expected '=' after attribute {name}", line, col)
        pos = self._skip_ws(text, pos + 1)
        if pos >= len(text) or text[pos] not in "'\"":
            line, col = self.lexer.line_col(pos)
            raise ParseError("attribute value must be quoted", line, col)
        quote = text[pos]
        pos += 1
        parts: list[ast.AstNode] = []
        buffer: list[str] = []

        def flush() -> None:
            if buffer:
                parts.append(ast.Literal(AtomicValue("".join(buffer), "xs:string")))
                buffer.clear()

        while pos < len(text):
            ch = text[pos]
            if ch == quote:
                if text.startswith(quote * 2, pos):
                    buffer.append(quote)
                    pos += 2
                    continue
                pos += 1
                flush()
                if name == "xmlns" or name.startswith("xmlns:"):
                    return None, pos  # namespace declaration: recorded nowhere
                value = _attribute_value_expr(parts)
                return ast.AttributeCtor(ast.local_name(name), value, optional), pos
            if ch == "{":
                if text.startswith("{{", pos):
                    buffer.append("{")
                    pos += 2
                    continue
                flush()
                expr, pos = self._scan_enclosed(pos)
                parts.append(expr)
                continue
            if ch == "}" and text.startswith("}}", pos):
                buffer.append("}")
                pos += 2
                continue
            if ch == "&":
                literal, pos = _scan_entity(text, pos)
                buffer.append(literal)
                continue
            buffer.append(ch)
            pos += 1
        line, col = self.lexer.line_col(pos)
        raise ParseError("unterminated attribute value", line, col)

    def _scan_enclosed(self, pos: int) -> tuple[ast.AstNode, int]:
        """Parse a ``{ Expr }`` enclosed expression starting at ``{``."""
        self.lexer.seek(pos + 1)
        self.tok = self.lexer.next_token()
        expr = self.parse_expr()
        if not self._at_symbol("}"):
            raise self._error("expected '}' to close enclosed expression")
        return expr, self.tok.pos + 1

    def _scan_content(self, text: str, pos: int, name: str) -> tuple[list[ast.AstNode], int]:
        content: list[ast.AstNode] = []
        buffer: list[str] = []

        def flush(strip_boundary: bool) -> None:
            if not buffer:
                return
            chunk = "".join(buffer)
            buffer.clear()
            if strip_boundary and not chunk.strip():
                return  # boundary whitespace is stripped (default policy)
            # Direct-constructor character content is untyped text.
            content.append(ast.Literal(AtomicValue(chunk, "xs:untypedAtomic")))

        while pos < len(text):
            ch = text[pos]
            if text.startswith("</", pos):
                flush(strip_boundary=True)
                pos += 2
                closing, pos = self._scan_name(text, pos)
                if closing != name:
                    line, col = self.lexer.line_col(pos)
                    raise ParseError(f"mismatched end tag </{closing}> for <{name}>", line, col)
                pos = self._skip_ws(text, pos)
                if pos >= len(text) or text[pos] != ">":
                    line, col = self.lexer.line_col(pos)
                    raise ParseError("expected '>' in end tag", line, col)
                return content, pos + 1
            if ch == "<":
                flush(strip_boundary=True)
                # Nested element: re-enter token mode at this '<'.
                self.lexer.seek(pos)
                self.tok = self.lexer.next_token()
                content.append(self._parse_direct_constructor())
                pos = self.tok.pos  # _resume left the lexer after the element
                continue
            if ch == "{":
                if text.startswith("{{", pos):
                    buffer.append("{")
                    pos += 2
                    continue
                flush(strip_boundary=True)
                expr, pos = self._scan_enclosed(pos)
                content.append(expr)
                continue
            if ch == "}" and text.startswith("}}", pos):
                buffer.append("}")
                pos += 2
                continue
            if ch == "&":
                literal, pos = _scan_entity(text, pos)
                buffer.append(literal)
                continue
            buffer.append(ch)
            pos += 1
        line, col = self.lexer.line_col(pos)
        raise ParseError(f"unterminated element <{name}>", line, col)


def _scan_entity(text: str, pos: int) -> tuple[str, int]:
    end = text.find(";", pos)
    if end < 0:
        raise ParseError("unterminated entity reference")
    body = text[pos + 1 : end]
    if body.startswith("#x") or body.startswith("#X"):
        return chr(int(body[2:], 16)), end + 1
    if body.startswith("#"):
        return chr(int(body[1:])), end + 1
    if body in _ENTITIES:
        return _ENTITIES[body], end + 1
    raise ParseError(f"unknown entity &{body};")


def _attribute_value_expr(parts: list[ast.AstNode]) -> ast.AstNode:
    if not parts:
        return ast.Literal(AtomicValue("", "xs:string"))
    if len(parts) == 1:
        return parts[0]
    return ast.FunctionCall("fn:concat", parts)


def _normalize_fn_name(name: str) -> str:
    """Keep prefixed builtin names (fn:, fn-bea:) as-is; bare names of known
    builtins get the fn: prefix; user function names are reduced to their
    local part (one flat function namespace per compilation in this repro)."""
    if ":" in name:
        prefix, local = name.split(":", 1)
        if prefix in ("fn", "fn-bea", "xs"):
            return name
        return local
    from .functions import is_builtin

    if is_builtin(f"fn:{name}"):
        return f"fn:{name}"
    return name


def parse_module(text: str, mode: str = "runtime") -> ast.Module:
    return Parser(text, mode).parse_module()


def parse_expression(text: str) -> ast.AstNode:
    return Parser(text).parse_main_expression()
