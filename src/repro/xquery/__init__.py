"""XQuery front-end: lexer, parser, normalization, type checking, builtins."""

from . import ast_nodes as ast
from .functions import all_builtins, atomize, builtin, effective_boolean_value, is_builtin
from .lexer import Lexer, Pragma
from .parser import Parser, fresh_var, parse_expression, parse_module

__all__ = [
    "ast",
    "all_builtins",
    "atomize",
    "builtin",
    "effective_boolean_value",
    "is_builtin",
    "Lexer",
    "Pragma",
    "Parser",
    "fresh_var",
    "parse_expression",
    "parse_module",
]
