"""XQuery abstract syntax tree.

The same node classes serve as the compiler's internal expression tree
(paper section 3.3, stage 2): the analysis stages annotate nodes in place
with static types, and the optimizer rewrites trees using the generic
traversal support on :class:`AstNode`.  Compiler-only operators (joins,
SQL queries, typematch...) subclass :class:`AstNode` in
:mod:`repro.compiler.algebra`.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from ..schema.types import SequenceType
from ..xml.items import AtomicValue
from .lexer import Pragma


class AstNode:
    """Base class with generic child traversal and functional rewriting.

    Subclasses declare ``_fields``: attribute names that may hold child
    nodes, lists of child nodes, or lists of tuples containing child nodes.
    """

    _fields: tuple[str, ...] = ()

    def __init__(self):
        self.static_type: Optional[SequenceType] = None
        self.line: Optional[int] = None

    # -- traversal ----------------------------------------------------------

    def children(self) -> Iterator["AstNode"]:
        for field in self._fields:
            value = getattr(self, field)
            yield from _iter_nodes(value)

    def transform_children(self, fn: Callable[["AstNode"], "AstNode"]) -> "AstNode":
        """Return self with each direct child replaced by ``fn(child)``.

        Mutates in place (the compiler owns the tree) and returns self for
        chaining.
        """
        for field in self._fields:
            setattr(self, field, _map_nodes(getattr(self, field), fn))
        return self

    def walk(self) -> Iterator["AstNode"]:
        """Pre-order traversal including self."""
        yield self
        for child in self.children():
            yield from child.walk()

    def at(self, line: Optional[int]) -> "AstNode":
        self.line = line
        return self

    def __repr__(self) -> str:
        name = type(self).__name__
        bits = []
        for field in self._fields:
            bits.append(f"{field}={getattr(self, field)!r}")
        for extra in getattr(self, "_attrs", ()):
            bits.append(f"{extra}={getattr(self, extra)!r}")
        return f"{name}({', '.join(bits)})"


def _iter_nodes(value) -> Iterator[AstNode]:
    if isinstance(value, AstNode):
        yield value
    elif isinstance(value, (list, tuple)):
        for entry in value:
            yield from _iter_nodes(entry)


def _map_nodes(value, fn: Callable[[AstNode], AstNode]):
    if isinstance(value, AstNode):
        return fn(value)
    if isinstance(value, list):
        return [_map_nodes(entry, fn) for entry in value]
    if isinstance(value, tuple):
        return tuple(_map_nodes(entry, fn) for entry in value)
    return value


# ---------------------------------------------------------------------------
# Primary expressions
# ---------------------------------------------------------------------------


class Literal(AstNode):
    _attrs = ("value",)

    def __init__(self, value: AtomicValue):
        super().__init__()
        self.value = value


class EmptySequence(AstNode):
    """The literal ``()``."""


class VarRef(AstNode):
    _attrs = ("name",)

    def __init__(self, name: str):
        super().__init__()
        self.name = name


class ContextItem(AstNode):
    """The ``.`` expression (only valid inside predicates here)."""


class SequenceExpr(AstNode):
    """Comma operator: sequence concatenation."""

    _fields = ("items",)

    def __init__(self, items: list[AstNode]):
        super().__init__()
        self.items = items


class RangeTo(AstNode):
    _fields = ("start", "end")

    def __init__(self, start: AstNode, end: AstNode):
        super().__init__()
        self.start = start
        self.end = end


class Arithmetic(AstNode):
    _fields = ("left", "right")
    _attrs = ("op",)

    def __init__(self, op: str, left: AstNode, right: AstNode):
        super().__init__()
        self.op = op  # + - * div idiv mod
        self.left = left
        self.right = right


class UnaryMinus(AstNode):
    _fields = ("operand",)

    def __init__(self, operand: AstNode):
        super().__init__()
        self.operand = operand


class Comparison(AstNode):
    """Value (`eq`...) or general (`=`...) comparison.

    ``general`` comparisons have existential semantics over sequences.
    """

    _fields = ("left", "right")
    _attrs = ("op", "general")

    def __init__(self, op: str, left: AstNode, right: AstNode, general: bool):
        super().__init__()
        self.op = op  # normalized: eq ne lt le gt ge
        self.left = left
        self.right = right
        self.general = general


class AndExpr(AstNode):
    _fields = ("left", "right")

    def __init__(self, left: AstNode, right: AstNode):
        super().__init__()
        self.left = left
        self.right = right


class OrExpr(AstNode):
    _fields = ("left", "right")

    def __init__(self, left: AstNode, right: AstNode):
        super().__init__()
        self.left = left
        self.right = right


class IfExpr(AstNode):
    _fields = ("condition", "then_branch", "else_branch")

    def __init__(self, condition: AstNode, then_branch: AstNode, else_branch: AstNode):
        super().__init__()
        self.condition = condition
        self.then_branch = then_branch
        self.else_branch = else_branch


class Quantified(AstNode):
    """``some``/``every`` ``$v in expr (, ...) satisfies expr``."""

    _fields = ("bindings", "satisfies")
    _attrs = ("kind",)

    def __init__(self, kind: str, bindings: list[tuple[str, AstNode]], satisfies: AstNode):
        super().__init__()
        self.kind = kind  # "some" | "every"
        self.bindings = bindings
        self.satisfies = satisfies


class FunctionCall(AstNode):
    _fields = ("args",)
    _attrs = ("name",)

    def __init__(self, name: str, args: list[AstNode]):
        super().__init__()
        self.name = name  # normalized lexical name, e.g. "fn:count"
        self.args = args


class CastExpr(AstNode):
    """``cast as`` / ``castable as`` / ``treat as`` / ``instance of``."""

    _fields = ("operand",)
    _attrs = ("kind", "target")

    def __init__(self, kind: str, operand: AstNode, target: SequenceType):
        super().__init__()
        self.kind = kind  # "cast" | "castable" | "treat" | "instance"
        self.operand = operand
        self.target = target


# ---------------------------------------------------------------------------
# Paths
# ---------------------------------------------------------------------------


class NameTest:
    def __init__(self, name: str):
        self.name = name  # local name or "*"

    def __repr__(self) -> str:
        return f"NameTest({self.name})"


class KindTest:
    def __init__(self, kind: str):
        self.kind = kind  # "node" | "text" | "element" | "attribute"

    def __repr__(self) -> str:
        return f"KindTest({self.kind}())"


class Step(AstNode):
    _fields = ("predicates",)
    _attrs = ("axis", "test")

    def __init__(self, axis: str, test, predicates: list[AstNode] | None = None):
        super().__init__()
        self.axis = axis  # "child" | "attribute" | "descendant" | "self"
        self.test = test
        self.predicates = predicates or []


class PathExpr(AstNode):
    """``base/step/step...`` — ``base`` is any expression."""

    _fields = ("base", "steps")

    def __init__(self, base: AstNode, steps: list[Step]):
        super().__init__()
        self.base = base
        self.steps = steps


class FilterExpr(AstNode):
    """A primary expression with predicates: ``expr[pred]...``."""

    _fields = ("base", "predicates")

    def __init__(self, base: AstNode, predicates: list[AstNode]):
        super().__init__()
        self.base = base
        self.predicates = predicates


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------


class AttributeCtor(AstNode):
    """Attribute in a direct constructor; ``optional`` is ALDSP's ``?``."""

    _fields = ("value",)
    _attrs = ("name", "optional")

    def __init__(self, name: str, value: AstNode, optional: bool = False):
        super().__init__()
        self.name = name
        self.value = value
        self.optional = optional


class ElementCtor(AstNode):
    """Direct element constructor; ``optional`` is ALDSP's ``<E?>`` (3.1)."""

    _fields = ("attributes", "content")
    _attrs = ("name", "optional")

    def __init__(
        self,
        name: str,
        attributes: list[AttributeCtor],
        content: list[AstNode],
        optional: bool = False,
    ):
        super().__init__()
        self.name = name
        self.attributes = attributes
        self.content = content
        self.optional = optional


# ---------------------------------------------------------------------------
# FLWGOR
# ---------------------------------------------------------------------------


class Clause(AstNode):
    """Base class of FLWGOR clauses."""


class ForClause(Clause):
    _fields = ("expr",)
    _attrs = ("var", "pos_var")

    def __init__(self, var: str, expr: AstNode, pos_var: str | None = None,
                 declared_type: SequenceType | None = None):
        super().__init__()
        self.var = var
        self.pos_var = pos_var
        self.expr = expr
        self.declared_type = declared_type


class LetClause(Clause):
    _fields = ("expr",)
    _attrs = ("var",)

    def __init__(self, var: str, expr: AstNode, declared_type: SequenceType | None = None):
        super().__init__()
        self.var = var
        self.expr = expr
        self.declared_type = declared_type


class WhereClause(Clause):
    _fields = ("condition",)

    def __init__(self, condition: AstNode):
        super().__init__()
        self.condition = condition


class GroupByClause(Clause):
    """ALDSP's FLWGOR grouping clause (section 3.1).

    ``group $v1 as $v2, ... by expr as $v3, ...`` — after the clause the
    binding tuple contains the ``as`` variables only: each grouped variable
    becomes the sequence of its values within the group, each key variable
    the (single) key value.
    """

    _fields = ("keys",)
    _attrs = ("grouped",)

    def __init__(self, grouped: list[tuple[str, str]], keys: list[tuple[AstNode, str]]):
        super().__init__()
        self.grouped = grouped  # (source var, result var)
        self.keys = keys  # (key expr, result var)

    def children(self) -> Iterator[AstNode]:
        for expr, _var in self.keys:
            yield expr

    def transform_children(self, fn):
        self.keys = [(fn(expr), var) for expr, var in self.keys]
        return self


class OrderSpec(AstNode):
    _fields = ("key",)
    _attrs = ("descending", "empty_greatest")

    def __init__(self, key: AstNode, descending: bool = False, empty_greatest: bool = False):
        super().__init__()
        self.key = key
        self.descending = descending
        self.empty_greatest = empty_greatest


class OrderByClause(Clause):
    _fields = ("specs",)

    def __init__(self, specs: list[OrderSpec]):
        super().__init__()
        self.specs = specs


class FLWOR(AstNode):
    """The extended FLWGOR expression."""

    _fields = ("clauses", "return_expr")

    def __init__(self, clauses: list[Clause], return_expr: AstNode):
        super().__init__()
        self.clauses = clauses
        self.return_expr = return_expr


class TypeswitchExpr(AstNode):
    """``typeswitch (operand) case ($v as)? T return e ... default ($v)?
    return e`` — never pushable (section 4.4), evaluated mid-tier."""

    _fields = ("operand", "default_expr")
    _attrs = ("default_var",)

    def __init__(self, operand: AstNode,
                 cases: list[tuple[Optional[str], SequenceType, AstNode]],
                 default_var: Optional[str], default_expr: AstNode):
        super().__init__()
        self.operand = operand
        self.cases = cases
        self.default_var = default_var
        self.default_expr = default_expr

    def children(self) -> Iterator[AstNode]:
        yield self.operand
        for _var, _st, expr in self.cases:
            yield expr
        yield self.default_expr

    def transform_children(self, fn):
        self.operand = fn(self.operand)
        self.cases = [(var, st, fn(expr)) for var, st, expr in self.cases]
        self.default_expr = fn(self.default_expr)
        return self


class TypeMatch(AstNode):
    """Runtime type check inserted by optimistic static typing (section 4.1).

    Wraps an argument whose static type merely *intersects* the expected
    parameter type; raises :class:`~repro.errors.TypeMatchError` at runtime
    if the value does not match ``target``.
    """

    _fields = ("operand",)
    _attrs = ("target",)

    def __init__(self, operand: AstNode, target: SequenceType):
        super().__init__()
        self.operand = operand
        self.target = target


# ---------------------------------------------------------------------------
# Error recovery (section 4.1)
# ---------------------------------------------------------------------------


class ErrorExpr(AstNode):
    """Placeholder substituted for an erroneous expression in design mode.

    Keeps the offending expression's inputs so the editor can still analyze
    them; evaluating it raises.
    """

    _fields = ("inputs",)
    _attrs = ("message",)

    def __init__(self, message: str, inputs: list[AstNode] | None = None):
        super().__init__()
        self.message = message
        self.inputs = inputs or []


# ---------------------------------------------------------------------------
# Module structure
# ---------------------------------------------------------------------------


class Param:
    def __init__(self, name: str, declared_type: SequenceType | None):
        self.name = name
        self.declared_type = declared_type

    def __repr__(self) -> str:
        return f"Param(${self.name} as {self.declared_type})"


class FunctionDecl:
    """A declared XQuery function (one data-service method, section 2.1)."""

    def __init__(
        self,
        name: str,
        params: list[Param],
        return_type: SequenceType | None,
        body: AstNode | None,
        pragmas: list[Pragma],
        external: bool = False,
    ):
        self.name = name
        self.params = params
        self.return_type = return_type
        self.body = body
        self.pragmas = pragmas
        self.external = external
        #: populated by analysis: inferred type of the body
        self.inferred_type: SequenceType | None = None
        #: analysis errors attached in design mode
        self.errors: list[str] = []

    @property
    def kind(self) -> str:
        """The data-service method kind from the pragma: read/navigate/..."""
        for pragma in self.pragmas:
            if pragma.kind == "function" and "kind" in pragma.attributes:
                return pragma.attributes["kind"]
        return ""

    def arity(self) -> int:
        return len(self.params)

    def __repr__(self) -> str:
        return f"FunctionDecl({self.name}#{self.arity()})"


class VariableDecl:
    def __init__(self, name: str, declared_type: SequenceType | None,
                 value: AstNode | None, external: bool):
        self.name = name
        self.declared_type = declared_type
        self.value = value
        self.external = external


class Module:
    """A parsed XQuery module (a data-service file or an ad hoc query)."""

    def __init__(self):
        self.namespaces: dict[str, str] = {}
        self.schema_imports: list[str] = []
        self.functions: dict[tuple[str, int], FunctionDecl] = {}
        self.variables: dict[str, VariableDecl] = {}
        self.query_body: AstNode | None = None
        self.pragmas: list[Pragma] = []
        #: prolog-level errors recovered from in design mode
        self.errors: list[str] = []

    def declare_function(self, decl: FunctionDecl) -> None:
        self.functions[(decl.name, decl.arity())] = decl

    def function(self, name: str, arity: int) -> FunctionDecl | None:
        return self.functions.get((name, arity))


def local_name(lexical: str) -> str:
    """Strip the prefix from a lexical QName."""
    return lexical.split(":")[-1]
