"""Built-in XQuery function library (``fn:``) plus ALDSP's ``fn-bea:``
extensions (sections 5.4 and 5.6).

Each builtin records:

* an evaluator over materialized argument sequences,
* a static result type (or a callable deriving it from argument types),
* SQL pushdown information consumed by :mod:`repro.sql.pushdown` — the
  paper (section 4.4) enumerates which functions are pushable; non-pushable
  builtins simply have ``sql=None`` and are evaluated mid-tier with their
  results bound as SQL parameters where needed.

The three service-quality functions ``fn-bea:async``, ``fn-bea:fail-over``
and ``fn-bea:timeout`` are *control* functions: their arguments must be
evaluated lazily/concurrently, so they are flagged ``lazy`` and handled by
the evaluator itself (see :mod:`repro.runtime.evaluate`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..errors import DynamicError
from ..schema.types import (
    ITEM_STAR,
    AtomicItemType,
    Occurrence,
    SequenceType,
    atomic,
    is_numeric,
)
from ..xml.items import AtomicValue, Item, Node

Evaluator = Callable[..., list[Item]]


@dataclass
class Builtin:
    name: str
    min_args: int
    max_args: int
    evaluator: Optional[Evaluator]
    result_type: SequenceType | Callable[[list[SequenceType]], SequenceType]
    #: SQL pushdown info: ("func", SQLNAME) | ("agg", SQLNAME) | ("special", tag) | None
    sql: tuple[str, str] | None = None
    lazy: bool = False

    def static_result_type(self, arg_types: list[SequenceType]) -> SequenceType:
        if callable(self.result_type):
            return self.result_type(arg_types)
        return self.result_type


_REGISTRY: dict[str, Builtin] = {}


def register(
    name: str,
    min_args: int,
    max_args: int,
    result_type,
    sql: tuple[str, str] | None = None,
    lazy: bool = False,
):
    def wrap(fn: Evaluator) -> Evaluator:
        _REGISTRY[name] = Builtin(name, min_args, max_args, fn, result_type, sql, lazy)
        return fn

    return wrap


def is_builtin(name: str) -> bool:
    return name in _REGISTRY


def builtin(name: str) -> Builtin:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise DynamicError(f"unknown function {name}") from None


def all_builtins() -> dict[str, Builtin]:
    return dict(_REGISTRY)


# ---------------------------------------------------------------------------
# Value helpers (shared with the runtime)
# ---------------------------------------------------------------------------


def atomize(items: Sequence[Item]) -> list[AtomicValue]:
    """fn:data over a sequence."""
    result: list[AtomicValue] = []
    for item in items:
        result.extend(item.atomize())
    return result


def effective_boolean_value(items: Sequence[Item]) -> bool:
    if not items:
        return False
    first = items[0]
    if isinstance(first, Node):
        return True
    if len(items) > 1:
        raise DynamicError("effective boolean value of multi-item atomic sequence")
    assert isinstance(first, AtomicValue)
    value = first.value
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0 and not (isinstance(value, float) and math.isnan(value))
    if isinstance(value, str):
        return len(value) > 0
    return True


def numeric_value(atom: AtomicValue) -> float | int:
    value = atom.value
    if isinstance(value, bool):
        raise DynamicError("boolean is not numeric")
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            try:
                return float(value)
            except ValueError:
                raise DynamicError(f"cannot treat {value!r} as a number") from None
    raise DynamicError(f"cannot treat {value!r} as a number")


def comparable_value(atom: AtomicValue):
    """Project an atomic value onto a comparable Python value."""
    value = atom.value
    if isinstance(value, str) and atom.type_name == "xs:untypedAtomic":
        return value
    return value


def compare_atomics(op: str, left: AtomicValue, right: AtomicValue) -> bool:
    lv, rv = left.value, right.value
    # untypedAtomic promotes to the other side's type for value comparison.
    if left.type_name == "xs:untypedAtomic" and isinstance(rv, (int, float)) and not isinstance(rv, bool):
        lv = numeric_value(left)
    if right.type_name == "xs:untypedAtomic" and isinstance(lv, (int, float)) and not isinstance(lv, bool):
        rv = numeric_value(right)
    if isinstance(lv, bool) != isinstance(rv, bool):
        raise DynamicError(f"cannot compare {left.type_name} with {right.type_name}")
    if isinstance(lv, str) != isinstance(rv, str):
        raise DynamicError(f"cannot compare {left.type_name} with {right.type_name}")
    if op == "eq":
        return lv == rv
    if op == "ne":
        return lv != rv
    if op == "lt":
        return lv < rv
    if op == "le":
        return lv <= rv
    if op == "gt":
        return lv > rv
    if op == "ge":
        return lv >= rv
    raise DynamicError(f"unknown comparison operator {op}")


def _single_atomic(args: Sequence[Item], name: str, allow_empty: bool = False) -> AtomicValue | None:
    atoms = atomize(args)
    if not atoms:
        if allow_empty:
            return None
        raise DynamicError(f"{name}: empty sequence not allowed")
    if len(atoms) > 1:
        raise DynamicError(f"{name}: sequence of more than one item")
    return atoms[0]


def _string_of(args: Sequence[Item], name: str) -> str:
    atom = _single_atomic(args, name, allow_empty=True)
    return "" if atom is None else atom.string_value()


# ---------------------------------------------------------------------------
# General / sequence functions
# ---------------------------------------------------------------------------


@register("fn:data", 1, 1, ITEM_STAR, sql=("special", "data"))
def _fn_data(arg):
    return list(atomize(arg))


@register("fn:count", 1, 1, atomic("xs:integer"), sql=("agg", "COUNT"))
def _fn_count(arg):
    return [AtomicValue(len(arg), "xs:integer")]


@register("fn:empty", 1, 1, atomic("xs:boolean"), sql=("special", "empty"))
def _fn_empty(arg):
    return [AtomicValue(len(arg) == 0, "xs:boolean")]


@register("fn:exists", 1, 1, atomic("xs:boolean"), sql=("special", "exists"))
def _fn_exists(arg):
    return [AtomicValue(len(arg) > 0, "xs:boolean")]


@register("fn:not", 1, 1, atomic("xs:boolean"), sql=("special", "not"))
def _fn_not(arg):
    return [AtomicValue(not effective_boolean_value(arg), "xs:boolean")]


@register("fn:boolean", 1, 1, atomic("xs:boolean"))
def _fn_boolean(arg):
    return [AtomicValue(effective_boolean_value(arg), "xs:boolean")]


@register("fn:true", 0, 0, atomic("xs:boolean"), sql=("special", "true"))
def _fn_true():
    return [AtomicValue(True, "xs:boolean")]


@register("fn:false", 0, 0, atomic("xs:boolean"), sql=("special", "false"))
def _fn_false():
    return [AtomicValue(False, "xs:boolean")]


def _agg_type(arg_types: list[SequenceType]) -> SequenceType:
    if arg_types and arg_types[0].alternatives:
        alt = arg_types[0].alternatives[0]
        if isinstance(alt, AtomicItemType) and is_numeric(alt.name):
            return SequenceType((alt,), Occurrence.OPTIONAL)
    return SequenceType((AtomicItemType("xs:anyAtomicType"),), Occurrence.OPTIONAL)


@register("fn:sum", 1, 2, _agg_type, sql=("agg", "SUM"))
def _fn_sum(arg, zero=None):
    atoms = atomize(arg)
    if not atoms:
        return list(zero) if zero is not None else [AtomicValue(0, "xs:integer")]
    total = sum(numeric_value(a) for a in atoms)
    type_name = "xs:integer" if isinstance(total, int) else "xs:double"
    return [AtomicValue(total, type_name)]


@register("fn:avg", 1, 1, _agg_type, sql=("agg", "AVG"))
def _fn_avg(arg):
    atoms = atomize(arg)
    if not atoms:
        return []
    return [AtomicValue(sum(numeric_value(a) for a in atoms) / len(atoms), "xs:double")]


@register("fn:min", 1, 1, _agg_type, sql=("agg", "MIN"))
def _fn_min(arg):
    atoms = atomize(arg)
    if not atoms:
        return []
    return [min(atoms, key=comparable_value)]


@register("fn:max", 1, 1, _agg_type, sql=("agg", "MAX"))
def _fn_max(arg):
    atoms = atomize(arg)
    if not atoms:
        return []
    return [max(atoms, key=comparable_value)]


@register("fn:distinct-values", 1, 1, ITEM_STAR, sql=("special", "distinct"))
def _fn_distinct_values(arg):
    seen = set()
    result = []
    for atom in atomize(arg):
        key = (atom.value if not isinstance(atom.value, bool) else (atom.value,),)
        if key not in seen:
            seen.add(key)
            result.append(atom)
    return result


@register("fn:subsequence", 2, 3, ITEM_STAR, sql=("special", "subsequence"))
def _fn_subsequence(arg, start, length=None):
    start_atom = _single_atomic(start, "fn:subsequence")
    begin = int(round(float(numeric_value(start_atom))))
    if length is None:
        return list(arg[max(0, begin - 1):])
    length_atom = _single_atomic(length, "fn:subsequence")
    count = int(round(float(numeric_value(length_atom))))
    lo = max(0, begin - 1)
    hi = max(lo, begin - 1 + count)
    return list(arg[lo:hi])


@register("fn:reverse", 1, 1, ITEM_STAR)
def _fn_reverse(arg):
    return list(reversed(arg))


@register("fn:insert-before", 3, 3, ITEM_STAR)
def _fn_insert_before(target, position, inserts):
    pos_atom = _single_atomic(position, "fn:insert-before")
    index = max(0, int(numeric_value(pos_atom)) - 1)
    return list(target[:index]) + list(inserts) + list(target[index:])


@register("fn:remove", 2, 2, ITEM_STAR)
def _fn_remove(target, position):
    pos_atom = _single_atomic(position, "fn:remove")
    index = int(numeric_value(pos_atom)) - 1
    return [item for i, item in enumerate(target) if i != index]


@register("fn:zero-or-one", 1, 1, ITEM_STAR)
def _fn_zero_or_one(arg):
    if len(arg) > 1:
        raise DynamicError("fn:zero-or-one: more than one item")
    return list(arg)


@register("fn:exactly-one", 1, 1, ITEM_STAR)
def _fn_exactly_one(arg):
    if len(arg) != 1:
        raise DynamicError("fn:exactly-one: not exactly one item")
    return list(arg)


# ---------------------------------------------------------------------------
# Strings
# ---------------------------------------------------------------------------


@register("fn:string", 0, 1, atomic("xs:string"))
def _fn_string(arg=None):
    if arg is None or not arg:
        return [AtomicValue("", "xs:string")]
    if len(arg) > 1:
        raise DynamicError("fn:string: more than one item")
    return [AtomicValue(arg[0].string_value(), "xs:string")]


@register("fn:concat", 2, 99, atomic("xs:string"), sql=("special", "concat"))
def _fn_concat(*args):
    return [AtomicValue("".join(_string_of(a, "fn:concat") for a in args), "xs:string")]


@register("fn:string-join", 2, 2, atomic("xs:string"))
def _fn_string_join(seq, sep):
    separator = _string_of(sep, "fn:string-join")
    return [AtomicValue(separator.join(a.string_value() for a in atomize(seq)), "xs:string")]


@register("fn:string-length", 0, 1, atomic("xs:integer"), sql=("func", "LENGTH"))
def _fn_string_length(arg=None):
    return [AtomicValue(len(_string_of(arg or [], "fn:string-length")), "xs:integer")]


@register("fn:upper-case", 1, 1, atomic("xs:string"), sql=("func", "UPPER"))
def _fn_upper_case(arg):
    return [AtomicValue(_string_of(arg, "fn:upper-case").upper(), "xs:string")]


@register("fn:lower-case", 1, 1, atomic("xs:string"), sql=("func", "LOWER"))
def _fn_lower_case(arg):
    return [AtomicValue(_string_of(arg, "fn:lower-case").lower(), "xs:string")]


@register("fn:contains", 2, 2, atomic("xs:boolean"), sql=("special", "contains"))
def _fn_contains(haystack, needle):
    return [AtomicValue(
        _string_of(needle, "fn:contains") in _string_of(haystack, "fn:contains"),
        "xs:boolean",
    )]


@register("fn:starts-with", 2, 2, atomic("xs:boolean"), sql=("special", "starts-with"))
def _fn_starts_with(haystack, needle):
    return [AtomicValue(
        _string_of(haystack, "fn:starts-with").startswith(_string_of(needle, "fn:starts-with")),
        "xs:boolean",
    )]


@register("fn:ends-with", 2, 2, atomic("xs:boolean"), sql=("special", "ends-with"))
def _fn_ends_with(haystack, needle):
    return [AtomicValue(
        _string_of(haystack, "fn:ends-with").endswith(_string_of(needle, "fn:ends-with")),
        "xs:boolean",
    )]


@register("fn:substring", 2, 3, atomic("xs:string"), sql=("func", "SUBSTR"))
def _fn_substring(source, start, length=None):
    text = _string_of(source, "fn:substring")
    begin = int(round(float(numeric_value(_single_atomic(start, "fn:substring")))))
    lo = max(0, begin - 1)
    if length is None:
        return [AtomicValue(text[lo:], "xs:string")]
    count = int(round(float(numeric_value(_single_atomic(length, "fn:substring")))))
    hi = max(lo, begin - 1 + count)
    return [AtomicValue(text[lo:hi], "xs:string")]


@register("fn:substring-before", 2, 2, atomic("xs:string"))
def _fn_substring_before(source, sep):
    text = _string_of(source, "fn:substring-before")
    needle = _string_of(sep, "fn:substring-before")
    index = text.find(needle) if needle else -1
    return [AtomicValue(text[:index] if index >= 0 else "", "xs:string")]


@register("fn:substring-after", 2, 2, atomic("xs:string"))
def _fn_substring_after(source, sep):
    text = _string_of(source, "fn:substring-after")
    needle = _string_of(sep, "fn:substring-after")
    index = text.find(needle) if needle else -1
    return [AtomicValue(text[index + len(needle):] if index >= 0 else "", "xs:string")]


@register("fn:normalize-space", 0, 1, atomic("xs:string"))
def _fn_normalize_space(arg=None):
    return [AtomicValue(" ".join(_string_of(arg or [], "fn:normalize-space").split()), "xs:string")]


def _xpath_regex(pattern: str, flags: str):
    import re as _re

    compiled_flags = 0
    for flag in flags:
        if flag == "i":
            compiled_flags |= _re.IGNORECASE
        elif flag == "s":
            compiled_flags |= _re.DOTALL
        elif flag == "m":
            compiled_flags |= _re.MULTILINE
        elif flag == "x":
            compiled_flags |= _re.VERBOSE
        else:
            raise DynamicError(f"unsupported regex flag {flag!r}")
    try:
        return _re.compile(pattern, compiled_flags)
    except _re.error as exc:
        raise DynamicError(f"invalid regular expression {pattern!r}: {exc}") from exc


@register("fn:matches", 2, 3, atomic("xs:boolean"))
def _fn_matches(text, pattern, flags=None):
    regex = _xpath_regex(_string_of(pattern, "fn:matches"),
                         _string_of(flags or [], "fn:matches"))
    return [AtomicValue(
        regex.search(_string_of(text, "fn:matches")) is not None, "xs:boolean"
    )]


@register("fn:replace", 3, 4, atomic("xs:string"))
def _fn_replace(text, pattern, replacement, flags=None):
    regex = _xpath_regex(_string_of(pattern, "fn:replace"),
                         _string_of(flags or [], "fn:replace"))
    # XPath uses $1..$9 for group references; translate to \1..\9.
    import re as _re

    repl = _re.sub(r"\$(\d)", r"\\\1", _string_of(replacement, "fn:replace"))
    return [AtomicValue(regex.sub(repl, _string_of(text, "fn:replace")), "xs:string")]


@register("fn:tokenize", 2, 3, SequenceType((AtomicItemType("xs:string"),), Occurrence.STAR))
def _fn_tokenize(text, pattern, flags=None):
    regex = _xpath_regex(_string_of(pattern, "fn:tokenize"),
                         _string_of(flags or [], "fn:tokenize"))
    source = _string_of(text, "fn:tokenize")
    if not source:
        return []
    return [AtomicValue(part, "xs:string") for part in regex.split(source)]


# ---------------------------------------------------------------------------
# Numerics
# ---------------------------------------------------------------------------


def _numeric_unary_type(arg_types: list[SequenceType]) -> SequenceType:
    if arg_types and arg_types[0].alternatives:
        alt = arg_types[0].alternatives[0]
        if isinstance(alt, AtomicItemType) and is_numeric(alt.name):
            return SequenceType((alt,), Occurrence.OPTIONAL)
    return SequenceType((AtomicItemType("xs:double"),), Occurrence.OPTIONAL)


@register("fn:abs", 1, 1, _numeric_unary_type, sql=("func", "ABS"))
def _fn_abs(arg):
    atom = _single_atomic(arg, "fn:abs", allow_empty=True)
    if atom is None:
        return []
    return [AtomicValue(abs(numeric_value(atom)), atom.type_name)]


@register("fn:floor", 1, 1, _numeric_unary_type, sql=("func", "FLOOR"))
def _fn_floor(arg):
    atom = _single_atomic(arg, "fn:floor", allow_empty=True)
    if atom is None:
        return []
    return [AtomicValue(math.floor(numeric_value(atom)), "xs:integer")]


@register("fn:ceiling", 1, 1, _numeric_unary_type, sql=("func", "CEIL"))
def _fn_ceiling(arg):
    atom = _single_atomic(arg, "fn:ceiling", allow_empty=True)
    if atom is None:
        return []
    return [AtomicValue(math.ceil(numeric_value(atom)), "xs:integer")]


@register("fn:round", 1, 1, _numeric_unary_type, sql=("func", "ROUND"))
def _fn_round(arg):
    atom = _single_atomic(arg, "fn:round", allow_empty=True)
    if atom is None:
        return []
    return [AtomicValue(math.floor(numeric_value(atom) + 0.5), "xs:integer")]


@register("fn:number", 0, 1, atomic("xs:double"))
def _fn_number(arg=None):
    atom = _single_atomic(arg or [], "fn:number", allow_empty=True)
    if atom is None:
        return [AtomicValue(float("nan"), "xs:double")]
    try:
        return [AtomicValue(float(numeric_value(atom)), "xs:double")]
    except DynamicError:
        return [AtomicValue(float("nan"), "xs:double")]


# ---------------------------------------------------------------------------
# Context functions (evaluated by the engine against the focus)
# ---------------------------------------------------------------------------

register("fn:position", 0, 0, atomic("xs:integer"), lazy=True)(None)
register("fn:last", 0, 0, atomic("xs:integer"), lazy=True)(None)

# ---------------------------------------------------------------------------
# ALDSP service-quality extensions (handled lazily by the evaluator)
# ---------------------------------------------------------------------------

register("fn-bea:async", 1, 1, ITEM_STAR, lazy=True)(None)
register("fn-bea:fail-over", 2, 2, ITEM_STAR, lazy=True)(None)
register("fn-bea:timeout", 3, 3, ITEM_STAR, lazy=True)(None)
