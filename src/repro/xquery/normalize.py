"""Normalization (query-processing stage 3, section 3.3).

Makes implicit operations explicit so later stages see a uniform tree:

* ALDSP's optional construction ``<E?>{...}</E>`` is expanded into its
  documented equivalent (section 3.1)::

      let $v := content return
      if (fn:exists($v)) then <E>{$v}</E> else ()

  (a ``let`` binding is introduced so the content is evaluated once);
* operands of value comparisons, arithmetic and order-by/group-by keys get
  explicit ``fn:data`` atomization wrappers;
* ``fn:data(fn:data(e))`` collapses.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .parser import fresh_var

_ATOMIC_RESULT_FUNCTIONS = {
    "fn:data", "fn:count", "fn:sum", "fn:avg", "fn:min", "fn:max",
    "fn:string", "fn:concat", "fn:string-join", "fn:string-length",
    "fn:upper-case", "fn:lower-case", "fn:substring", "fn:contains",
    "fn:starts-with", "fn:ends-with", "fn:abs", "fn:floor", "fn:ceiling",
    "fn:round", "fn:number", "fn:not", "fn:boolean", "fn:exists", "fn:empty",
    "fn:true", "fn:false", "fn:distinct-values",
}


def normalize(node: ast.AstNode) -> ast.AstNode:
    """Normalize an expression tree, returning the rewritten tree."""
    node = node.transform_children(normalize)

    if isinstance(node, ast.ElementCtor) and node.optional:
        return _expand_optional_element(node)
    if isinstance(node, ast.Comparison):
        node.left = _atomized(node.left)
        node.right = _atomized(node.right)
        return node
    if isinstance(node, ast.Arithmetic):
        node.left = _atomized(node.left)
        node.right = _atomized(node.right)
        return node
    if isinstance(node, ast.UnaryMinus):
        node.operand = _atomized(node.operand)
        return node
    if isinstance(node, ast.OrderByClause):
        for spec in node.specs:
            spec.key = _atomized(spec.key)
        return node
    if isinstance(node, ast.GroupByClause):
        node.keys = [(_atomized(expr), var) for expr, var in node.keys]
        return node
    if isinstance(node, ast.ElementCtor):
        node.attributes = [_normalize_attribute(a) for a in node.attributes]
        return node
    if isinstance(node, ast.FunctionCall) and node.name == "fn:data":
        inner = node.args[0]
        if _is_atomic_producer(inner):
            return inner
        return node
    return node


def normalize_module(module: ast.Module) -> ast.Module:
    for decl in module.functions.values():
        if decl.body is not None:
            decl.body = normalize(decl.body)
    for var in module.variables.values():
        if var.value is not None:
            var.value = normalize(var.value)
    if module.query_body is not None:
        module.query_body = normalize(module.query_body)
    return module


def _expand_optional_element(ctor: ast.ElementCtor) -> ast.AstNode:
    var = fresh_var("opt")
    content: ast.AstNode
    if not ctor.content:
        content = ast.EmptySequence()
    elif len(ctor.content) == 1:
        content = ctor.content[0]
    else:
        content = ast.SequenceExpr(list(ctor.content))
    plain = ast.ElementCtor(ctor.name, ctor.attributes, [ast.VarRef(var)], optional=False)
    condition = ast.FunctionCall("fn:exists", [ast.VarRef(var)])
    return ast.FLWOR(
        [ast.LetClause(var, content)],
        ast.IfExpr(condition, plain, ast.EmptySequence()),
    )


def _normalize_attribute(attr: ast.AttributeCtor) -> ast.AttributeCtor:
    # Optional attributes keep their flag: the runtime constructor emits the
    # attribute only when its value is non-empty (the documented semantics);
    # unlike elements there is no enclosing expression context to expand
    # into without changing the parent constructor's shape.
    attr.value = _atomized(attr.value)
    return attr


def _atomized(expr: ast.AstNode) -> ast.AstNode:
    if _is_atomic_producer(expr):
        return expr
    return ast.FunctionCall("fn:data", [expr])


def _is_atomic_producer(expr: ast.AstNode) -> bool:
    if isinstance(expr, ast.Literal):
        return True
    if isinstance(expr, (ast.Arithmetic, ast.UnaryMinus, ast.Comparison,
                         ast.AndExpr, ast.OrExpr, ast.Quantified, ast.RangeTo)):
        return True
    if isinstance(expr, ast.FunctionCall):
        return expr.name in _ATOMIC_RESULT_FUNCTIONS or expr.name.startswith("xs:")
    if isinstance(expr, ast.CastExpr):
        return expr.kind in ("cast", "castable", "instance")
    return False
