"""XQuery lexer.

Lexes the XQuery subset used by ALDSP data services (July 2004 working
draft dialect, section 3.1) plus ALDSP's syntactic extensions.  Notable
points:

* XQuery comments ``(: ... :)`` nest and are skipped — except ALDSP
  *pragma comments* ``(::pragma ... ::)`` (section 3.2), which are captured
  and handed to the parser so they can be attached to the next declaration.
* Direct element constructors are not lexed here: the parser switches to
  character-level scanning (via :meth:`Lexer.char_pos` / :meth:`Lexer.seek`)
  when it decides a ``<`` begins a constructor.
* Keywords are context sensitive in XQuery, so the lexer only emits NAME
  tokens; the parser matches keyword spellings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import ParseError

NAME = "name"
STRING = "string"
INTEGER = "integer"
DECIMAL = "decimal"
DOUBLE = "double"
SYMBOL = "symbol"
EOF = "eof"

#: Multi-character symbols first (maximal munch).
_SYMBOLS = [
    ":=", "!=", "<=", ">=", "<<", ">>", "//", "..", "::",
    "(", ")", "[", "]", "{", "}", ",", ";", "=", "<", ">",
    "+", "-", "*", "/", "?", "@", "$", ".", "|",
]

_NCNAME = r"[A-Za-z_][A-Za-z0-9_\-.]*"
_NAME_RE = re.compile(rf"{_NCNAME}(?::{_NCNAME})?")
_NUMBER_RE = re.compile(r"(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?")


@dataclass(frozen=True, slots=True)
class LexToken:
    kind: str
    value: str
    line: int
    column: int
    pos: int  # character offset of the token start

    def __repr__(self) -> str:
        return f"{self.kind}:{self.value!r}@{self.line}:{self.column}"


@dataclass(frozen=True, slots=True)
class Pragma:
    """A captured ``(::pragma ... ::)`` comment."""

    kind: str  # e.g. "function", "xds"
    attributes: dict[str, str]
    raw: str
    line: int


_PRAGMA_ATTR_RE = re.compile(r'([\w.\-:]+)\s*=\s*"([^"]*)"')


class Lexer:
    """On-demand lexer with character-offset seek support."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        #: pragmas collected since the last drain (the parser attaches them
        #: to the next declaration it parses).
        self.pending_pragmas: list[Pragma] = []

    # -- position helpers ---------------------------------------------------

    def line_col(self, pos: int | None = None) -> tuple[int, int]:
        pos = self.pos if pos is None else pos
        line = self.text.count("\n", 0, pos) + 1
        last_nl = self.text.rfind("\n", 0, pos)
        return line, pos - last_nl

    @property
    def char_pos(self) -> int:
        return self.pos

    def seek(self, pos: int) -> None:
        self.pos = pos

    def error(self, message: str) -> ParseError:
        line, col = self.line_col()
        return ParseError(message, line, col)

    # -- scanning -----------------------------------------------------------

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments; capture pragma comments."""
        text = self.text
        while self.pos < len(text):
            ch = text[self.pos]
            if ch.isspace():
                self.pos += 1
                continue
            if text.startswith("(:", self.pos):
                self._consume_comment()
                continue
            return

    def _consume_comment(self) -> None:
        start = self.pos
        depth = 0
        pos = self.pos
        text = self.text
        while pos < len(text):
            if text.startswith("(:", pos):
                depth += 1
                pos += 2
            elif text.startswith(":)", pos):
                depth -= 1
                pos += 2
                if depth == 0:
                    body = text[start + 2 : pos - 2]
                    self.pos = pos
                    if body.startswith(":pragma"):
                        self._capture_pragma(body, start)
                    return
            else:
                pos += 1
        self.pos = pos
        raise self.error("unterminated comment")

    def _capture_pragma(self, body: str, start: int) -> None:
        # body looks like ":pragma function ... :" (trailing ':' from '::)')
        content = body[len(":pragma") :].strip().rstrip(":").strip()
        kind = content.split(None, 1)[0] if content else ""
        attrs = dict(_PRAGMA_ATTR_RE.findall(content))
        line, _ = self.line_col(start)
        self.pending_pragmas.append(Pragma(kind, attrs, content, line))

    def drain_pragmas(self) -> list[Pragma]:
        pragmas, self.pending_pragmas = self.pending_pragmas, []
        return pragmas

    def next_token(self) -> LexToken:
        self._skip_trivia()
        line, col = self.line_col()
        start = self.pos
        text = self.text
        if self.pos >= len(text):
            return LexToken(EOF, "", line, col, start)
        ch = text[self.pos]

        # String literals with doubled-quote escapes.
        if ch in ("'", '"'):
            return self._lex_string(ch, line, col, start)

        # Numbers.
        if ch.isdigit() or (ch == "." and self.pos + 1 < len(text) and text[self.pos + 1].isdigit()):
            match = _NUMBER_RE.match(text, self.pos)
            assert match
            self.pos = match.end()
            literal = match.group()
            if match.group(2):
                return LexToken(DOUBLE, literal, line, col, start)
            if "." in literal:
                return LexToken(DECIMAL, literal, line, col, start)
            return LexToken(INTEGER, literal, line, col, start)

        # Names / QNames.
        match = _NAME_RE.match(text, self.pos)
        if match:
            self.pos = match.end()
            return LexToken(NAME, match.group(), line, col, start)

        # Symbols.
        for symbol in _SYMBOLS:
            if text.startswith(symbol, self.pos):
                self.pos += len(symbol)
                return LexToken(SYMBOL, symbol, line, col, start)

        raise self.error(f"unexpected character {ch!r}")

    def _lex_string(self, quote: str, line: int, col: int, start: int) -> LexToken:
        text = self.text
        pos = self.pos + 1
        parts: list[str] = []
        while pos < len(text):
            ch = text[pos]
            if ch == quote:
                if text.startswith(quote * 2, pos):
                    parts.append(quote)
                    pos += 2
                    continue
                self.pos = pos + 1
                return LexToken(STRING, "".join(parts), line, col, start)
            parts.append(ch)
            pos += 1
        raise self.error("unterminated string literal")
