"""Concurrency primitives and the race-detector hook (A-CONC).

The mid-tier is one server shared by many sessions (section 2): its caches,
statistics and breakers are crossed by every request thread, so each piece
of shared mutable engine state is guarded by a lock and *declared* as such.
This module holds the three primitives that make the discipline checkable
instead of hoped-for:

* :class:`TrackedRLock` — a reentrant lock that reports every acquire and
  release to the active race detector.  With the detector off (the
  default), the report is a :class:`NoopRaceDetector` counter bump — no
  allocation, no tracking — the same unconditional-callsite contract the
  tracer established (O-OBS).
* :func:`guarded_by` — a class decorator declaring which lock guards a
  class's shared mutable attributes.  The static concurrency lint
  (:mod:`repro.analysis.static`) reads the declaration and verifies every
  mutation site lexically holds that lock.
* :class:`SyncCounters` — a mixin giving the stats dataclasses
  (``SourceStats``, ``RuntimeStats``, ``CacheStats``, ``GroupStats``) one
  synchronized :meth:`~SyncCounters.bump` write path.  Raw ``stats.x += 1``
  from outside the owning class is a lint error (``ALDSP-C407``): the
  read-modify-write would race, and did — PR 6 found lost updates on
  exactly these counters.

The active detector is a **process-wide** slot (:data:`RACE`), mirroring
how eraser-style tools instrument a whole process; install one with
``Platform.set_race_detector(True)`` (debug mode only — lockset tracking
captures stacks and is deliberately not cheap).
"""

from __future__ import annotations

import threading


class NoopRaceDetector:
    """Race detection disabled: every hook is a counter bump.

    ``calls`` counts how many times the engine crossed an instrumentation
    point (lock acquire/release, guarded access); paired with the class
    attributes below — no races, no tracked accesses — it makes the
    detector-off contract checkable the way ``NoopTracer.calls`` does for
    tracing.  The counter is deliberately a plain int: it is approximate
    under threads and exists only to prove the callsites are unconditional.
    """

    __slots__ = ("calls",)

    enabled = False
    races: tuple = ()
    guarded_accesses = 0
    lock_acquisitions = 0

    def __init__(self) -> None:
        self.calls = 0

    def on_acquire(self, lock) -> None:
        self.calls += 1

    def on_release(self, lock) -> None:
        self.calls += 1

    def on_access(self, owner, field: str, write: bool = True) -> None:
        self.calls += 1


#: the shared disabled detector (never replaced, only un-installed to)
NOOP_DETECTOR = NoopRaceDetector()


class _DetectorSlot:
    """Holder for the active detector so rebinding is one attribute write."""

    __slots__ = ("detector",)

    def __init__(self) -> None:
        self.detector = NOOP_DETECTOR


#: the process-wide active race detector; hot paths read ``RACE.detector``
RACE = _DetectorSlot()


def set_race_detector(detector) -> object:
    """Install ``detector`` (or :data:`NOOP_DETECTOR`) process-wide and
    return the previously active one (for restore-in-finally)."""
    previous = RACE.detector
    RACE.detector = detector if detector is not None else NOOP_DETECTOR
    return previous


def race_detector():
    """The active detector (a :class:`NoopRaceDetector` unless enabled)."""
    return RACE.detector


class TrackedRLock:
    """A reentrant lock whose acquires/releases the race detector can see.

    The detector is notified *after* a successful acquire and *before* the
    release, so its view of the held-lock set is consistent at every
    guarded-access hook in between.
    """

    __slots__ = ("name", "_lock")

    def __init__(self, name: str = ""):
        self.name = name
        self._lock = threading.RLock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            RACE.detector.on_acquire(self)
        return acquired

    def release(self) -> None:
        RACE.detector.on_release(self)
        self._lock.release()

    def __enter__(self) -> "TrackedRLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"TrackedRLock({self.name!r})"


def guarded_by(lock_attr: str):
    """Class decorator: ``self.<lock_attr>`` guards the class's shared
    mutable attributes.  Runtime effect is only a marker attribute; the
    static lint enforces the declaration (``ALDSP-C401``/``C404``)."""

    def mark(cls):
        cls.__guarded_by__ = lock_attr
        return cls

    return mark


@guarded_by("_lock")
class SyncCounters:
    """Mixin: a tracked lock plus one synchronized counter write path.

    Subclasses (typically dataclasses) call :meth:`_init_lock` from
    ``__init__``/``__post_init__``; every external counter update goes
    through :meth:`bump`, which holds the lock across the read-modify-write
    and reports each field to the race detector.  A misspelled field raises
    ``AttributeError`` — silent new-counter creation would hide typos.
    """

    def _init_lock(self, name: str) -> None:
        self._lock = TrackedRLock(name)

    def bump(self, **deltas) -> None:
        detector = RACE.detector
        with self._lock:
            for field, delta in deltas.items():
                setattr(self, field, getattr(self, field) + delta)
                detector.on_access(self, field, True)
