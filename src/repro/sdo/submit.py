"""The submit engine: atomic propagation of SDO changes (section 6).

"Each data service has a submit method ... the unit of update execution is
a submit call.  In the event that all data sources are relational and can
participate in a two-phase commit (XA) protocol, the entire submit is
executed as an atomic transaction across the affected sources."

An *update override* hook lets user code extend or replace the default
update handling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import ConcurrencyError, SourceError, TransactionError, UpdateError
from ..relational.database import Database
from ..relational.txn import TwoPhaseCommit
from .concurrency import ConcurrencyPolicy
from .dataobject import DataGraph, DataObject
from .decompose import RowUpdate, UpdateDecomposer
from .lineage import LineageMap

#: an update override receives the data object and its row updates and
#: returns True when it fully handled the update (skipping the default)
UpdateOverride = Callable[[DataObject, list[RowUpdate]], bool]


@dataclass
class SubmitResult:
    """What a submit touched."""

    affected_databases: list[str] = field(default_factory=list)
    statements: list[str] = field(default_factory=list)
    rows_updated: int = 0


class SubmitEngine:
    def __init__(
        self,
        databases: dict[str, Database],
        inverse_of: Callable[[str], Optional[str]],
        resolver: Callable[[str, object], object],
        resilience=None,
        tracer=None,
    ):
        self.databases = databases
        self.inverse_of = inverse_of
        self.resolver = resolver
        #: optional ResilienceManager: retry/breaker apply per statement.
        #: Partial-results degradation never applies here — a submit is
        #: atomic, so an exhausted retry aborts (and rolls back) the whole
        #: submit rather than silently skipping a statement.
        self.resilience = resilience
        if tracer is None:
            from ..observability.tracer import NoopTracer

            tracer = NoopTracer()
        self.tracer = tracer

    def submit(
        self,
        graph: DataGraph | DataObject,
        lineage_for: Callable[[DataObject], LineageMap],
        policy: ConcurrencyPolicy | None = None,
        override: UpdateOverride | None = None,
    ) -> SubmitResult:
        with self.tracer.start("sdo.submit") as span:
            result = self._submit(graph, lineage_for, policy, override)
            span.set(statements=len(result.statements),
                     rows=result.rows_updated)
            return result

    def _submit(
        self,
        graph: DataGraph | DataObject,
        lineage_for: Callable[[DataObject], LineageMap],
        policy: ConcurrencyPolicy | None = None,
        override: UpdateOverride | None = None,
    ) -> SubmitResult:
        policy = policy or ConcurrencyPolicy.values_updated()
        objects = graph.changed() if isinstance(graph, DataGraph) else (
            [graph] if graph.is_changed() else []
        )
        result = SubmitResult()
        if not objects:
            return result

        # Decompose every object first — a decomposition failure must not
        # leave a partially-applied submit.
        row_updates: list[tuple[DataObject, list[RowUpdate]]] = []
        for obj in objects:
            lineage = lineage_for(obj)
            decomposer = UpdateDecomposer(lineage, self.inverse_of, self.resolver)
            row_updates.append((obj, decomposer.decompose(obj, policy)))

        xa = TwoPhaseCommit()
        affected: set[str] = set()
        try:
            for obj, updates in row_updates:
                if override is not None and override(obj, updates):
                    continue
                for update in updates:
                    database = self._database(update.database)
                    txn = xa.branch(database)
                    sql_text = self._render(database, update.to_sql())
                    # Route through the statement cache: the rendered DML is
                    # re-parsed (validating the dialect round trip, as the
                    # query path does) at most once per distinct text.
                    prepared = database.statements.prepare(sql_text)
                    try:
                        count = self._execute(database, txn, prepared)
                    except SourceError as exc:
                        # An exhausted source failure aborts the XA branch:
                        # the submit is atomic, so the whole transaction
                        # rolls back (never a partial result).
                        raise TransactionError(
                            f"XA branch {update.database} failed: {exc}"
                        ) from exc
                    result.statements.append(sql_text)
                    database.charge_roundtrip(count, sql_text)
                    if count == 0:
                        raise ConcurrencyError(
                            f"optimistic check failed updating {update.table} "
                            f"(key {update.key}) — row changed since it was read"
                        )
                    if count > 1:
                        raise UpdateError(
                            f"update of {update.table} matched {count} rows"
                        )
                    result.rows_updated += count
                    affected.add(update.database)
            xa.commit()
        except Exception:
            xa.rollback()
            raise
        for obj, _updates in row_updates:
            obj.discard_changes()
        result.affected_databases = sorted(affected)
        return result

    def _execute(self, database: Database, txn, prepared) -> int:
        """One statement, under the database's resilience policy (if any).

        The availability/fault gate raises *before* ``txn.execute`` touches
        any row, so a retried attempt re-runs from a clean slate; only a
        successful attempt mutates the transaction's write set.
        """

        def attempt() -> int:
            database.check_call()
            return txn.execute(prepared.stmt, tables=prepared.tables)

        if self.resilience is None:
            return attempt()
        return self.resilience.call(database.name, attempt,
                                    stats=database.stats)

    def _database(self, name: str) -> Database:
        try:
            return self.databases[name]
        except KeyError:
            raise UpdateError(f"no database registered under {name}") from None

    @staticmethod
    def _render(database: Database, stmt) -> str:
        from ..sql.dialects import SqlRenderer, capabilities_for

        return SqlRenderer(capabilities_for(database.vendor)).render(stmt)
