"""Service Data Objects: change-tracked XML business objects (section 6).

Supports both programming styles the paper mentions: the *untyped* model
(``get("LAST_NAME")`` / ``set("LAST_NAME", v)`` with slash paths) and the
*typed* model (dynamic ``getLAST_NAME()`` / ``setLAST_NAME(v)`` accessors,
mirroring the Java snippet in Figure 5).
"""

from __future__ import annotations

import re

from ..errors import UpdateError
from ..xml.items import AtomicValue, ElementNode, TextNode
from ..xml.qname import QName
from .changelog import Change, ChangeLog

_STEP_RE = re.compile(r"([A-Za-z_][\w.\-]*)(?:\[(\d+)\])?$")


class DataObject:
    """A change-tracked view over one business-object element."""

    def __init__(self, element: ElementNode, service_name: str = ""):
        self._element = element
        self.service_name = service_name
        self._changes: list[Change] = []
        self._original = dict(self._leaf_values(element))

    # -- plumbing ---------------------------------------------------------------

    @property
    def element(self) -> ElementNode:
        return self._element

    @property
    def root_name(self) -> str:
        return self._element.name.local

    @staticmethod
    def _leaf_values(element: ElementNode):
        """All leaf values keyed by [index]-disambiguated paths."""
        yield from DataObject._walk(element, (), element.name.local)

    @staticmethod
    def _walk(element: ElementNode, prefix: tuple[str, ...], label: str):
        path = prefix + (label,)
        child_elements = element.child_elements()
        if not child_elements:
            yield path, _typed_value(element)
            return
        counters: dict[str, int] = {}
        for child in child_elements:
            counters[child.name.local] = counters.get(child.name.local, 0) + 1
        indexed: dict[str, int] = {}
        for child in child_elements:
            name = child.name.local
            if counters[name] > 1:
                indexed[name] = indexed.get(name, 0) + 1
                child_label = f"{name}[{indexed[name]}]"
            else:
                child_label = name
            yield from DataObject._walk(child, path, child_label)

    def _resolve(self, path: str) -> ElementNode:
        """Resolve a slash path (relative to the root element) to a leaf."""
        current = self._element
        for raw_step in path.split("/"):
            match = _STEP_RE.match(raw_step)
            if not match:
                raise UpdateError(f"bad path step {raw_step!r}")
            name, index = match.group(1), match.group(2)
            matches = current.child_elements(QName(name))
            if not matches:
                raise UpdateError(f"{self.root_name}: no element at {path!r}")
            position = int(index) - 1 if index else 0
            if position >= len(matches):
                raise UpdateError(f"{self.root_name}: index out of range in {path!r}")
            current = matches[position]
        return current

    def _full_path(self, path: str) -> tuple[str, ...]:
        return (self.root_name,) + tuple(path.split("/"))

    # -- untyped accessors -----------------------------------------------------------

    def get(self, path: str):
        return _typed_value(self._resolve(path))

    def set(self, path: str, value) -> None:
        leaf = self._resolve(path)
        if leaf.child_elements():
            raise UpdateError(f"{path!r} is not a leaf")
        old = _typed_value(leaf)
        if old == value:
            return
        text = AtomicValue(value).string_value() if not isinstance(value, str) else value
        leaf._children = [TextNode(text)]
        leaf._children[0].parent = leaf
        self._changes.append(Change(self._full_path(path), old, value))

    # -- typed accessors (Figure 5 style) ------------------------------------------------

    def __getattr__(self, name: str):
        if name.startswith("get") and name[3:4].isupper():
            path = name[3:]
            return lambda: self.get(path)
        if name.startswith("set") and name[3:4].isupper():
            path = name[3:]
            return lambda value: self.set(path, value)
        raise AttributeError(name)

    # -- change log -------------------------------------------------------------------------

    def is_changed(self) -> bool:
        return bool(self._changes)

    def change_log(self) -> ChangeLog:
        return ChangeLog(self.root_name, list(self._changes), dict(self._original))

    def discard_changes(self) -> None:
        self._changes.clear()


class DataGraph:
    """A set of data objects submitted together (one submit call is the
    unit of update execution, section 6)."""

    def __init__(self, objects: list[DataObject] | None = None):
        self.objects = list(objects or [])

    def add(self, obj: DataObject) -> None:
        self.objects.append(obj)

    def changed(self) -> list[DataObject]:
        return [obj for obj in self.objects if obj.is_changed()]


def _typed_value(element: ElementNode):
    if element.child_elements():
        raise UpdateError(f"element {element.name.local} is not a leaf")
    text = element.string_value()
    annotation = element.type_annotation
    base = annotation.split(":")[-1]
    try:
        if base in ("integer", "int", "long", "short", "byte"):
            return int(text)
        if base in ("double", "float", "decimal"):
            return float(text)
        if base == "boolean":
            return text.strip() in ("true", "1")
    except ValueError:
        pass
    return text


