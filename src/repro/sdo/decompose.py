"""Update decomposition: change log -> per-source SQL DML (section 6).

Given the lineage map of the data service's lineage-provider function and
a submitted change log, produce the conditioned UPDATE statements per
affected database.  "Unaffected data sources are not involved in the
update, and unchanged portions of affected sources' data are not updated."
Inverse functions are applied to transformed values on the way back in.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import LineageError, UpdateError
from ..sql.ast_nodes import BinOp, ColumnRef, SqlLiteral, Update
from .changelog import Change, ChangeLog
from .concurrency import ConcurrencyMode, ConcurrencyPolicy
from .dataobject import DataObject
from .lineage import LineageEntry, LineageMap, Path

_INDEX_RE = re.compile(r"^(.*?)\[(\d+)\]$")

#: resolver applying a named inverse function to a value (usually the
#: registered Java function, section 4.5)
InverseResolver = Callable[[str, object], object]


@dataclass
class RowUpdate:
    """One conditioned UPDATE against one source row."""

    database: str
    table: str
    assignments: dict[str, object]
    key: dict[str, object]
    conditions: dict[str, object] = field(default_factory=dict)

    def to_sql(self) -> Update:
        where = None
        for column, value in {**self.key, **self.conditions}.items():
            clause = BinOp("=", ColumnRef(None, column), SqlLiteral(value))
            where = clause if where is None else BinOp("AND", where, clause)
        return Update(
            self.table,
            [(column, SqlLiteral(value)) for column, value in self.assignments.items()],
            where,
        )


class UpdateDecomposer:
    def __init__(self, lineage: LineageMap,
                 inverse_of: Callable[[str], Optional[str]],
                 resolver: InverseResolver):
        self.lineage = lineage
        self.inverse_of = inverse_of
        self.resolver = resolver

    def decompose(self, obj: DataObject, policy: ConcurrencyPolicy) -> list[RowUpdate]:
        log = obj.change_log()
        if log.root_name != self.lineage.root_name:
            raise UpdateError(
                f"change log root {log.root_name} does not match lineage root "
                f"{self.lineage.root_name}"
            )
        rows: dict[tuple, RowUpdate] = {}
        for change in log.changes:
            if change.kind != "modify":
                raise UpdateError(f"unsupported change kind {change.kind}")
            self._apply_change(obj, log, change, policy, rows)
        return list(rows.values())

    # -- internals -----------------------------------------------------------------

    def _apply_change(self, obj: DataObject, log: ChangeLog, change: Change,
                      policy: ConcurrencyPolicy, rows: dict[tuple, RowUpdate]) -> None:
        schema_path, indexes = _strip_indexes(change.path)
        entry = self.lineage.entry_for(schema_path)

        stored_new = self._to_stored(entry, change.new)
        stored_old = self._to_stored(entry, change.old)

        key = self._row_key(obj, entry, schema_path, change.path)
        row_id = (entry.database, entry.table, tuple(sorted(key.items())))
        row = rows.get(row_id)
        if row is None:
            row = RowUpdate(entry.database, entry.table, {}, key)
            rows[row_id] = row
            if policy.mode is ConcurrencyMode.VALUES_READ:
                row.conditions.update(
                    self._read_conditions(obj, log, entry, change.path)
                )
            elif policy.mode is ConcurrencyMode.DESIGNATED:
                row.conditions.update(
                    self._designated_conditions(obj, log, policy, entry, change.path)
                )
        row.assignments[entry.column] = stored_new
        if policy.mode is ConcurrencyMode.VALUES_UPDATED:
            row.conditions[entry.column] = stored_old

    def _to_stored(self, entry: LineageEntry, value):
        """Display value -> stored value, through the declared inverse."""
        if entry.transform is None:
            return value
        inverse = self.inverse_of(entry.transform)
        if inverse is None:
            raise LineageError(
                f"column {entry.table}.{entry.column} flows through "
                f"{entry.transform} which has no declared inverse — not updatable"
            )
        return self.resolver(inverse, value)

    def _row_key(self, obj: DataObject, entry: LineageEntry,
                 schema_path: Path, instance_path: Path) -> dict[str, object]:
        if not entry.key_columns:
            raise LineageError(
                f"table {entry.table} has no primary key — updates cannot "
                "identify the affected row"
            )
        key: dict[str, object] = {}
        for column in entry.key_columns:
            key_path = entry.key_paths.get(column)
            if key_path is None:
                raise LineageError(
                    f"primary key column {entry.table}.{column} is not exposed "
                    "by the data service shape — not updatable"
                )
            concrete = _transfer_indexes(instance_path, schema_path, key_path)
            key[column] = obj.get("/".join(concrete[1:]))
        return key

    def _read_conditions(self, obj: DataObject, log: ChangeLog,
                         entry: LineageEntry, instance_path: Path) -> dict[str, object]:
        """VALUES_READ: every column of this table visible in the same row
        instance must still hold its read-time value."""
        conditions: dict[str, object] = {}
        schema_path, _ = _strip_indexes(instance_path)
        for other_schema_path, other in self.lineage.entries.items():
            if (other.database, other.table) != (entry.database, entry.table):
                continue
            concrete = _transfer_indexes(instance_path, schema_path, other_schema_path)
            original = log.original_values.get(concrete)
            if original is None and concrete not in log.original_values:
                continue
            conditions[other.column] = self._to_stored(other, original)
        return conditions

    def _designated_conditions(self, obj: DataObject, log: ChangeLog,
                               policy: ConcurrencyPolicy, entry: LineageEntry,
                               instance_path: Path) -> dict[str, object]:
        conditions: dict[str, object] = {}
        schema_path, _ = _strip_indexes(instance_path)
        for designated in policy.designated_paths:
            designated_path = (self.lineage.root_name,) + tuple(designated.split("/"))
            try:
                designated_entry = self.lineage.entry_for(designated_path)
            except LineageError:
                continue
            if (designated_entry.database, designated_entry.table) != (
                entry.database, entry.table
            ):
                continue
            concrete = _transfer_indexes(instance_path, schema_path, designated_path)
            original = log.original_values.get(concrete)
            if original is not None or concrete in log.original_values:
                conditions[designated_entry.column] = self._to_stored(
                    designated_entry, original
                )
        return conditions


def _strip_indexes(path: Path) -> tuple[Path, dict[int, str]]:
    """``(A, B[2], C)`` -> (``(A, B, C)``, {1: "[2]"})."""
    schema: list[str] = []
    indexes: dict[int, str] = {}
    for position, step in enumerate(path):
        match = _INDEX_RE.match(step)
        if match:
            schema.append(match.group(1))
            indexes[position] = f"[{match.group(2)}]"
        else:
            schema.append(step)
    return tuple(schema), indexes


def _transfer_indexes(instance_path: Path, schema_path: Path, target: Path) -> Path:
    """Re-apply the row indexes of ``instance_path`` onto the shared prefix
    of ``target`` (so the key of *this* ORDER row is read, not the first)."""
    _, indexes = _strip_indexes(instance_path)
    concrete: list[str] = []
    for position, step in enumerate(target):
        if position < len(schema_path) - 1 and position < len(instance_path) and \
                schema_path[position] == step and position in indexes:
            concrete.append(step + indexes[position])
        else:
            concrete.append(step)
    return tuple(concrete)
