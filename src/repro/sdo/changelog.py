"""SDO change logs (section 6).

"When a changed SDO is sent back to ALDSP, what is sent back is the new
XML data plus a serialized 'change log' identifying the portions of the
XML data that were changed and what their previous values were."
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Change:
    """One changed leaf: path from the object's root element, old and new
    values.  ``kind`` distinguishes modify / insert / delete of the leaf."""

    path: tuple[str, ...]
    old: object
    new: object
    kind: str = "modify"  # "modify" | "insert" | "delete"


@dataclass
class ChangeLog:
    """The serialized change log shipped with a submit."""

    root_name: str
    changes: list[Change] = field(default_factory=list)
    #: values of every leaf as originally read (for optimistic concurrency
    #: policy "all values read must still match")
    original_values: dict[tuple[str, ...], object] = field(default_factory=dict)

    def is_empty(self) -> bool:
        return not self.changes

    def changed_paths(self) -> list[tuple[str, ...]]:
        return [change.path for change in self.changes]

    def serialize(self) -> list[dict]:
        """The wire form of the change log."""
        return [
            {
                "path": "/".join(change.path),
                "old": change.old,
                "new": change.new,
                "kind": change.kind,
            }
            for change in self.changes
        ]

    @staticmethod
    def deserialize(root_name: str, entries: list[dict],
                    original_values: dict | None = None) -> "ChangeLog":
        changes = [
            Change(tuple(e["path"].split("/")), e.get("old"), e.get("new"),
                   e.get("kind", "modify"))
            for e in entries
        ]
        return ChangeLog(root_name, changes, dict(original_values or {}))
