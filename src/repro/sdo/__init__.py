"""Service Data Objects and update automation (section 6)."""

from .changelog import Change, ChangeLog
from .concurrency import ConcurrencyMode, ConcurrencyPolicy
from .dataobject import DataGraph, DataObject
from .decompose import RowUpdate, UpdateDecomposer
from .lineage import LineageAnalyzer, LineageEntry, LineageMap
from .submit import SubmitEngine, SubmitResult

__all__ = [
    "Change",
    "ChangeLog",
    "ConcurrencyMode",
    "ConcurrencyPolicy",
    "DataGraph",
    "DataObject",
    "RowUpdate",
    "UpdateDecomposer",
    "LineageAnalyzer",
    "LineageEntry",
    "LineageMap",
    "SubmitEngine",
    "SubmitResult",
]
