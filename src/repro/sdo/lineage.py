"""Automatic lineage computation (section 6).

"Change propagation requires ALDSP to identify where changed data
originated ... ALDSP performs automatic computation of the lineage for a
data service from the query body of the data service function designated
... as its lineage provider.  Primary key information, query predicates,
and query result shapes are used together to determine which data in which
sources are affected by a given update.  Also, ALDSP includes inverse
functions in its lineage analysis, enabling updates to transformed data
when inverses are provided."

The analyzer walks the *optimized, unfolded* body of the lineage-provider
function (the same rewrite machinery as the optimizer, before SQL
pushdown) and maps each leaf path of the result shape to a source
(database, table, column), recording the table's primary key and where in
the result shape the key columns can be read back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..compiler.algebra import SourceCall, TableMeta
from ..compiler.inverse import InverseRegistry
from ..errors import LineageError
from ..sql.pushdown import unwrap_data
from ..xquery import ast_nodes as ast

Path = tuple[str, ...]


@dataclass
class LineageEntry:
    """Origin of one leaf path of the result shape."""

    database: str
    table: str
    column: str
    #: primary key columns of the source table
    key_columns: tuple[str, ...]
    #: result-shape path exposing each key column (None if not exposed)
    key_paths: dict[str, Optional[Path]] = field(default_factory=dict)
    #: forward transformation applied on the way out (e.g. ``int2date``);
    #: its declared inverse must be applied on the way back in
    transform: Optional[str] = None


@dataclass
class LineageMap:
    root_name: str
    entries: dict[Path, LineageEntry] = field(default_factory=dict)

    def entry_for(self, schema_path: Path) -> LineageEntry:
        try:
            return self.entries[schema_path]
        except KeyError:
            raise LineageError(
                f"no lineage for path {'/'.join(schema_path)} — not updatable"
            ) from None

    def tables(self) -> set[tuple[str, str]]:
        return {(e.database, e.table) for e in self.entries.values()}


class LineageAnalyzer:
    def __init__(self, inverses: InverseRegistry | None = None):
        self.inverses = inverses or InverseRegistry()

    def analyze(self, body: ast.AstNode) -> LineageMap:
        """Compute the lineage map from an optimized function body."""
        lineage = _Collector(self.inverses)
        root = lineage.top(body)
        result = LineageMap(root)
        result.entries = lineage.entries
        _fill_key_paths(result)
        return result


class _Collector:
    def __init__(self, inverses: InverseRegistry):
        self.inverses = inverses
        self.entries: dict[Path, LineageEntry] = {}

    def top(self, body: ast.AstNode) -> str:
        row_vars: dict[str, TableMeta] = {}
        expr = body
        while isinstance(expr, ast.FLWOR):
            next_expr = expr.return_expr
            for clause in expr.clauses:
                if isinstance(clause, ast.ForClause):
                    meta = _table_of(clause.expr)
                    if meta is not None:
                        row_vars[clause.var] = meta
                elif isinstance(clause, ast.LetClause):
                    meta = _table_of(clause.expr)
                    if meta is not None:
                        row_vars[clause.var] = meta
            expr = next_expr
        # Whole-row providers (``return $row``) map the row element itself:
        # every column under (element_name, column).
        if isinstance(expr, ast.VarRef) and expr.name in row_vars:
            meta = row_vars[expr.name]
            for column, _xs in meta.columns:
                self._register((meta.element_name, column), meta, column, None)
            return meta.element_name
        if not isinstance(expr, ast.ElementCtor):
            raise LineageError("lineage provider must return a constructed element")
        self._element(expr, (), row_vars)
        return expr.name

    def _element(self, ctor: ast.ElementCtor, prefix: Path,
                 row_vars: dict[str, TableMeta]) -> None:
        path = prefix + (ctor.name,)
        for part in ctor.content:
            self._content(part, path, row_vars)

    def _content(self, part: ast.AstNode, path: Path,
                 row_vars: dict[str, TableMeta]) -> None:
        while isinstance(part, ast.TypeMatch):
            part = part.operand
        # Atomized content (fn:data, transforms over it) produces *text*
        # inside the enclosing constructor — the parent's leaf rule already
        # mapped it; only element-producing expressions are handled here.
        if isinstance(part, (ast.FunctionCall, SourceCall)) and not (
            isinstance(part, SourceCall) and part.kind == "table"
        ):
            return
        if isinstance(part, ast.ElementCtor):
            self._element(part, path, row_vars)
            # A leaf constructor whose single content expression is a
            # column access maps the constructed leaf to that column.
            inner_path = path + (part.name,)
            if len(part.content) == 1 and inner_path not in self.entries:
                self._leaf(part.content[0], inner_path, row_vars)
            return
        if isinstance(part, ast.SequenceExpr):
            for item in part.items:
                self._content(item, path, row_vars)
            return
        if isinstance(part, ast.FLWOR):
            inner_vars = dict(row_vars)
            expr: ast.AstNode = part
            while isinstance(expr, ast.FLWOR):
                for clause in expr.clauses:
                    if isinstance(clause, (ast.ForClause, ast.LetClause)):
                        meta = _table_of(clause.expr)
                        if meta is not None:
                            inner_vars[clause.var] = meta
                expr = expr.return_expr
            self._content(expr, path, inner_vars)
            return
        if isinstance(part, ast.VarRef) and part.name in row_vars:
            meta = row_vars[part.name]
            row_path = path + (meta.element_name,)
            for column, _xs in meta.columns:
                self._register(row_path + (column,), meta, column, None)
            return
        # Column-valued paths in content position: $var/COL.
        access = _column_access(part, row_vars)
        if access is not None:
            meta, column = access
            self._register(path + (column,), meta, column, None)

    def _leaf(self, expr: ast.AstNode, path: Path,
              row_vars: dict[str, TableMeta]) -> None:
        """Map the content of a leaf constructor to its source column."""
        expr = _unwrap(expr)
        transform = None
        if isinstance(expr, (ast.FunctionCall, SourceCall)) and len(expr.args) == 1:
            if self.inverses.inverse_of(expr.name) is not None:
                transform = expr.name
                expr = _unwrap(expr.args[0])
        access = _column_access(expr, row_vars)
        if access is None:
            return
        meta, column = access
        self._register(path, meta, column, transform)

    def _register(self, path: Path, meta: TableMeta, column: str,
                  transform: Optional[str]) -> None:
        self.entries[path] = LineageEntry(
            meta.database, meta.table, column, tuple(meta.primary_key),
            transform=transform,
        )


def _fill_key_paths(lineage: LineageMap) -> None:
    """For each entry, locate result paths that expose the key columns of
    its table *within the same row scope* (longest shared prefix)."""
    for path, entry in lineage.entries.items():
        for key_column in entry.key_columns:
            best: Optional[Path] = None
            best_shared = -1
            for other_path, other in lineage.entries.items():
                if (
                    other.table == entry.table
                    and other.database == entry.database
                    and other.column == key_column
                    and other.transform is None
                ):
                    shared = _shared_prefix(path, other_path)
                    if shared > best_shared:
                        best, best_shared = other_path, shared
            entry.key_paths[key_column] = best


def _shared_prefix(a: Path, b: Path) -> int:
    count = 0
    for x, y in zip(a, b):
        if x != y:
            break
        count += 1
    return count


def _unwrap(node: ast.AstNode) -> ast.AstNode:
    while isinstance(node, ast.TypeMatch):
        node = node.operand
    return unwrap_data(node)


def _table_of(expr: ast.AstNode) -> Optional[TableMeta]:
    if isinstance(expr, SourceCall) and expr.kind == "table":
        return expr.table_meta
    if isinstance(expr, ast.FLWOR):
        # e.g. a let over a filtered scan
        for clause in expr.clauses:
            if isinstance(clause, ast.ForClause):
                return _table_of(clause.expr)
    if isinstance(expr, ast.FilterExpr):
        return _table_of(expr.base)
    return None


def _column_access(expr: ast.AstNode, row_vars: dict[str, TableMeta]):
    expr = _unwrap(expr)
    if not isinstance(expr, ast.PathExpr) or not isinstance(expr.base, ast.VarRef):
        return None
    if expr.base.name not in row_vars or len(expr.steps) != 1:
        return None
    step = expr.steps[0]
    if step.axis != "child" or not isinstance(step.test, ast.NameTest):
        return None
    meta = row_vars[expr.base.name]
    if meta.column_type(step.test.name) is None:
        return None
    return meta, step.test.name
