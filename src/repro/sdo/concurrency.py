"""Optimistic concurrency policies (section 6).

"ALDSP supports optimistic concurrency options that the data service
designer can choose from ... Choices include requiring all values read to
still be the same (at update time) as their original (read time) values,
requiring all values updated to still be the same, or requiring a
designated subset of the data (e.g., a timestamp element or attribute) to
still be the same.  ALDSP uses this in the relational case to condition
the SQL update queries that it generates."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ConcurrencyMode(enum.Enum):
    #: every value read must still match its read-time value
    VALUES_READ = "values-read"
    #: only the values being updated must still match their old values
    VALUES_UPDATED = "values-updated"
    #: a designated subset (e.g. a timestamp element) must still match
    DESIGNATED = "designated"
    #: no conditioning beyond the primary key (last writer wins)
    NONE = "none"


@dataclass
class ConcurrencyPolicy:
    mode: ConcurrencyMode = ConcurrencyMode.VALUES_UPDATED
    #: for DESIGNATED: slash paths (relative to the object root) of the
    #: designated elements, e.g. ["TS"] or ["ORDERS/ORDER/VERSION"]
    designated_paths: list[str] = field(default_factory=list)

    @staticmethod
    def values_read() -> "ConcurrencyPolicy":
        return ConcurrencyPolicy(ConcurrencyMode.VALUES_READ)

    @staticmethod
    def values_updated() -> "ConcurrencyPolicy":
        return ConcurrencyPolicy(ConcurrencyMode.VALUES_UPDATED)

    @staticmethod
    def designated(*paths: str) -> "ConcurrencyPolicy":
        return ConcurrencyPolicy(ConcurrencyMode.DESIGNATED, list(paths))

    @staticmethod
    def none() -> "ConcurrencyPolicy":
        return ConcurrencyPolicy(ConcurrencyMode.NONE)
