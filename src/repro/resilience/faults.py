"""Scripted, deterministic fault injection (section 5.6 / R-RESIL).

A :class:`FaultInjector` attaches to any :class:`~repro.relational.database.Database`
or :class:`~repro.sources.adaptor.Adaptor` and executes a *fault plan*: an
ordered script of rules consulted once per source call.  Rules can fail the
first N calls, fail with a seeded probability, add latency spikes, or drop
the connection mid-result (the rows already shipped are charged to the
clock and then discarded).

Determinism is the whole point: every probabilistic rule draws exactly one
random number per call from the injector's seeded RNG — in rule order,
whether or not the rule fires — so the same seed under the virtual clock
replays the identical fault sequence, byte for byte.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

from ..clock import Clock
from ..errors import SourceError


@dataclass
class _Rule:
    """One scripted behaviour; ``kind`` selects the interpretation."""

    kind: str  # "fail_first" | "fail_probability" | "latency_spike" | "drop"
    #: fail_first: fail calls 1..n / drop: keep the first n rows
    n: int = 0
    #: fail_probability / latency_spike / drop: per-call firing probability
    probability: float | None = None
    #: latency charged when the rule fires (spike size, or failure cost)
    latency_ms: float = 0.0
    #: latency_spike: fire on every Nth call instead of probabilistically
    every: int | None = None


class FaultInjector:
    """A scripted fault plan for one source.

    Attach with ``injector.attach(database_or_adaptor)`` (or assign to the
    target's ``faults`` attribute).  The source's invocation path calls
    :meth:`on_call` once per call — which may charge latency and/or raise
    :class:`SourceError` — and :meth:`on_result` on the fetched rows/items,
    which may truncate them and report a mid-result connection drop.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)
        self._rules: list[_Rule] = []
        self._lock = threading.Lock()
        #: calls seen so far (the fault script's notion of time)
        self.calls = 0
        self.injected_failures = 0
        self.injected_spikes = 0
        self.injected_drops = 0
        #: drop rule armed by the current call, applied by on_result
        self._pending_drop: _Rule | None = None

    # -- scripting (each returns self, so plans chain) -----------------------

    def fail_first(self, n: int, latency_ms: float = 0.0) -> "FaultInjector":
        """Fail the first ``n`` calls, charging ``latency_ms`` per failure."""
        self._rules.append(_Rule("fail_first", n=n, latency_ms=latency_ms))
        return self

    def fail_with_probability(self, p: float,
                              latency_ms: float = 0.0) -> "FaultInjector":
        """Fail each call with seeded probability ``p``."""
        self._rules.append(_Rule("fail_probability", probability=p,
                                 latency_ms=latency_ms))
        return self

    def latency_spike(self, ms: float, every: int | None = None,
                      probability: float | None = None) -> "FaultInjector":
        """Charge an extra ``ms`` on every ``every``-th call, or with seeded
        ``probability`` (exactly one of the two must be given)."""
        if (every is None) == (probability is None):
            raise ValueError("latency_spike takes either every= or probability=")
        self._rules.append(_Rule("latency_spike", latency_ms=ms, every=every,
                                 probability=probability))
        return self

    def drop_mid_result(self, keep_rows: int,
                        probability: float | None = None) -> "FaultInjector":
        """Drop the connection after shipping ``keep_rows`` rows: the call
        charges for the shipped prefix, then fails.  Fires always, or with
        seeded ``probability``."""
        self._rules.append(_Rule("drop", n=keep_rows, probability=probability))
        return self

    def attach(self, target) -> "FaultInjector":
        """Install this plan on a Database or Adaptor (its ``faults`` slot)."""
        target.faults = self
        return self

    # -- runtime hooks -------------------------------------------------------

    def on_call(self, source: str, clock: Clock) -> None:
        """Consult the plan for one call: charge spikes, arm drops, and
        raise :class:`SourceError` if a failure rule fires."""
        with self._lock:
            self.calls += 1
            call_number = self.calls
            failure: _Rule | None = None
            spike_ms = 0.0
            self._pending_drop = None
            for rule in self._rules:
                # Draw first, decide second: RNG consumption must not depend
                # on whether earlier rules fired (determinism).
                draw = self.rng.random() if rule.probability is not None else None
                if rule.kind == "fail_first":
                    fired = call_number <= rule.n
                elif rule.kind == "fail_probability":
                    fired = draw is not None and draw < rule.probability
                elif rule.kind == "latency_spike":
                    if rule.every is not None:
                        fired = call_number % rule.every == 0
                    else:
                        fired = draw is not None and draw < rule.probability
                    if fired:
                        spike_ms += rule.latency_ms
                        self.injected_spikes += 1
                    continue
                else:  # drop
                    fired = draw is None or draw < rule.probability
                    if fired and self._pending_drop is None:
                        self._pending_drop = rule
                    continue
                if fired and failure is None:
                    failure = rule
        if spike_ms:
            clock.charge_ms(spike_ms)
        if failure is not None:
            if failure.latency_ms:
                clock.charge_ms(failure.latency_ms)
            with self._lock:
                self.injected_failures += 1
                self._pending_drop = None
            raise SourceError(
                f"{source}: injected fault (call #{call_number})"
            )

    def on_result(self, source: str, rows: list) -> tuple[list, SourceError | None]:
        """Apply an armed mid-result drop: returns the (possibly truncated)
        rows and the error to raise *after* charging for the shipped prefix,
        or ``None`` when the call completes normally."""
        with self._lock:
            drop = self._pending_drop
            self._pending_drop = None
            if drop is None or len(rows) <= drop.n:
                return rows, None
            self.injected_drops += 1
            calls = self.calls
        return rows[:drop.n], SourceError(
            f"{source}: connection dropped mid-result after "
            f"{drop.n} of {len(rows)} rows (call #{calls})"
        )

    # -- observability -------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "seed": self.seed,
            "calls": self.calls,
            "failures": self.injected_failures,
            "spikes": self.injected_spikes,
            "drops": self.injected_drops,
        }
