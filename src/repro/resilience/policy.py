"""Per-source QoS policies: retry with backoff, circuit breaking, timeouts.

Section 5.6 of the paper treats source failure as an expression-level
concern (``fn-bea:fail-over`` / ``fn-bea:timeout``); this module makes it a
*configuration* concern: a :class:`SourcePolicy` applies retry/backoff, a
circuit breaker and a per-attempt time budget to every invocation of a
named source without editing query text.

All waiting is charged to the platform clock, and backoff jitter draws
from a seeded RNG, so resilience behaviour is exactly reproducible under
the virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import Clock
from ..concurrency import TrackedRLock, guarded_by
from ..errors import CircuitOpenError


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget for one source.

    Retries apply only to :class:`~repro.errors.SourceError` — programming
    errors propagate immediately — and never to
    :class:`~repro.errors.CircuitOpenError` (retrying a deliberately-shed
    call would defeat the breaker).  Attempt ``i``'s failure waits
    ``backoff_ms * multiplier**(i-1)``, stretched by up to ``jitter``
    (a fraction, drawn from the guard's seeded RNG) before attempt ``i+1``.
    """

    max_attempts: int = 3
    backoff_ms: float = 10.0
    multiplier: float = 2.0
    jitter: float = 0.0
    seed: int = 0

    def delay_ms(self, failures: int, rng) -> float:
        """Backoff charged after the ``failures``-th failed attempt."""
        delay = self.backoff_ms * (self.multiplier ** (failures - 1))
        if self.jitter:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


@dataclass(frozen=True)
class CircuitBreakerConfig:
    """Breaker tuning: trip open after ``failure_threshold`` consecutive
    failures; after ``cooldown_ms`` of fast-failing, let one probe through
    (half-open) — its outcome closes or re-opens the circuit."""

    failure_threshold: int = 5
    cooldown_ms: float = 1000.0


@dataclass(frozen=True)
class SourcePolicy:
    """Everything :meth:`Platform.set_source_policy` configures per source."""

    retry: RetryPolicy | None = None
    breaker: CircuitBreakerConfig | None = None
    #: per-attempt time budget; overruns raise SourceTimeoutError (retryable)
    timeout_ms: float | None = None

    def describe(self) -> dict:
        return {
            "retry": None if self.retry is None else {
                "max_attempts": self.retry.max_attempts,
                "backoff_ms": self.retry.backoff_ms,
                "multiplier": self.retry.multiplier,
                "jitter": self.retry.jitter,
            },
            "breaker": None if self.breaker is None else {
                "failure_threshold": self.breaker.failure_threshold,
                "cooldown_ms": self.breaker.cooldown_ms,
            },
            "timeout_ms": self.timeout_ms,
        }


@guarded_by("_lock")
class CircuitBreaker:
    """Closed -> open -> half-open state machine for one source.

    An open circuit sheds load *without a roundtrip*: :meth:`before_call`
    raises :class:`CircuitOpenError` at zero simulated cost, which is the
    fast-fail economics the R-RESIL benchmark measures.  Transitions are
    recorded (time, from, to) for tests and ``source_health()``.

    Thread-safety (A-CONC): the state machine has its own lock — callers
    (``SourceGuard``) already serialize decisions, but the breaker must
    stay consistent even when probed directly (``breaker_state()``).
    """

    def __init__(self, config: CircuitBreakerConfig, clock: Clock):
        self.config = config
        self.clock = clock
        self._lock = TrackedRLock("CircuitBreaker")
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at_ms: float | None = None
        self.transitions: list[tuple[float, str, str]] = []

    def _move(self, to: str) -> None:  # caller-holds: _lock
        self.transitions.append((self.clock.now_ms(), self.state, to))
        self.state = to
        if to == "open":
            self.opened_at_ms = self.clock.now_ms()

    def before_call(self, source: str) -> None:
        with self._lock:
            if self.state == "open":
                assert self.opened_at_ms is not None
                if self.clock.now_ms() - self.opened_at_ms >= self.config.cooldown_ms:
                    self._move("half-open")  # cooled down: admit one probe
                else:
                    raise CircuitOpenError(
                        f"circuit breaker for source {source} is open"
                    )

    def record_success(self) -> None:
        with self._lock:
            self.consecutive_failures = 0
            if self.state == "half-open":
                self._move("closed")

    def record_failure(self) -> None:
        with self._lock:
            self.consecutive_failures += 1
            if self.state == "half-open":
                self._move("open")  # probe failed: back to shedding
            elif (self.state == "closed"
                  and self.consecutive_failures >= self.config.failure_threshold):
                self._move("open")
