"""The resilience manager: retry/breaker wiring and partial-result mode.

One :class:`ResilienceManager` lives on each
:class:`~repro.runtime.context.DynamicContext` and fronts **every** source
invocation path — pushed-SQL regions, PP-k block fetches, middleware table
scans, functional adaptors (web service / stored procedure / file / Java),
and SDO submit.  With no policy configured it is a pass-through (plus an
attempt counter), so behaviour is bit-for-bit what it was before the
resilience layer existed.

With :meth:`set_policy` / a default policy, each source gets a
:class:`SourceGuard` that applies the circuit breaker, per-attempt timeout
and retry/backoff — all waiting charged to the platform clock, all jitter
seeded, so chaos runs replay deterministically under the virtual clock.

*Partial-results mode* (:attr:`partial_results`) turns a source failure
that survives the guard into graceful degradation: the caller gets an
empty sequence and a :class:`DegradationRecord` is collected on the query
(``Platform.last_degradations``) instead of the whole federated plan
aborting (section 5.6's middleware-keeps-answering story).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..clock import Clock, VirtualClock
from ..concurrency import TrackedRLock, guarded_by
from ..errors import CircuitOpenError, SourceError, SourceTimeoutError
from ..observability.tracer import NoopTracer
from .policy import CircuitBreaker, SourcePolicy


@dataclass
class DegradationRecord:
    """One absorbed source failure in a partial-results query."""

    source: str
    error: str
    attempts: int
    elapsed_ms: float

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "error": self.error,
            "attempts": self.attempts,
            "elapsed_ms": round(self.elapsed_ms, 3),
        }


@guarded_by("_lock")
class SourceGuard:
    """Per-source runtime state: breaker, retry RNG, counters.

    Thread-safety (A-CONC): breaker decisions run under ``_lock``;
    counter updates go through the stats object's synchronized ``bump``."""

    def __init__(self, name: str, policy: SourcePolicy, clock: Clock, stats,
                 tracer=None):
        self.name = name
        self.policy = policy
        self.clock = clock
        self.stats = stats
        self.tracer = tracer if tracer is not None else NoopTracer()
        self.rng = random.Random(policy.retry.seed if policy.retry else 0)
        self.breaker = (CircuitBreaker(policy.breaker, clock)
                        if policy.breaker else None)
        self._lock = TrackedRLock("SourceGuard")

    def call(self, thunk: Callable[[], object]):
        retry = self.policy.retry
        max_attempts = retry.max_attempts if retry is not None else 1
        start = self.clock.now_ms()
        attempts = 0
        while True:
            with self._lock:
                if self.breaker is not None:
                    try:
                        self.breaker.before_call(self.name)  # CircuitOpenError
                    except CircuitOpenError:
                        self.tracer.instant("breaker.rejected", self.name)
                        raise
            attempts += 1
            if self.stats is not None:
                self.stats.bump(attempts=1)
            try:
                with self.tracer.start("source.attempt", self.name,
                                       attempt=attempts):
                    result = self._attempt(thunk)
            except CircuitOpenError:
                raise  # shed inside the attempt: not a source failure
            except SourceError as exc:
                with self._lock:
                    if self.stats is not None:
                        self.stats.bump(failures=1)
                    if self.breaker is not None:
                        was_open = self.breaker.state == "open"
                        self.breaker.record_failure()
                        if self.breaker.state == "open" and not was_open \
                                and self.stats is not None:
                            self.stats.bump(breaker_trips=1)
                if attempts >= max_attempts:
                    # Annotate for DegradationRecord construction upstream.
                    exc.resilience_attempts = attempts
                    exc.resilience_elapsed_ms = self.clock.now_ms() - start
                    raise
                if self.stats is not None:
                    self.stats.bump(retries=1)
                self.clock.charge_ms(retry.delay_ms(attempts, self.rng))
            else:
                with self._lock:
                    if self.breaker is not None:
                        self.breaker.record_success()
                return result

    def _attempt(self, thunk: Callable[[], object]):
        """One attempt under the policy's time budget.

        Virtual clock: the attempt runs in a clock branch; an overrun
        charges exactly ``timeout_ms`` and raises
        :class:`SourceTimeoutError` (the system abandons the attempt at the
        budget, per section 5.6).  Wall clock: the overrun is detected
        after the fact — real time cannot be recalled — and still raises,
        so retry/degradation semantics match across modes.
        """
        limit = self.policy.timeout_ms
        if limit is None:
            return thunk()
        if isinstance(self.clock, VirtualClock):
            self.clock.begin_branch()
            try:
                result = thunk()
                failed = None
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                failed = exc
            elapsed = self.clock.end_branch()
            if failed is not None:
                self.clock.charge_ms(min(elapsed, limit))
                raise failed
            if elapsed > limit:
                self.clock.charge_ms(limit)
                raise SourceTimeoutError(
                    f"source {self.name} exceeded its {limit:g}ms budget "
                    f"(needed {elapsed:g}ms)"
                )
            self.clock.charge_ms(elapsed)
            return result
        start = self.clock.now_ms()
        result = thunk()
        elapsed = self.clock.now_ms() - start
        if elapsed > limit:
            raise SourceTimeoutError(
                f"source {self.name} exceeded its {limit:g}ms budget "
                f"(needed {elapsed:g}ms)"
            )
        return result


@guarded_by("_lock")
class ResilienceManager:
    """Source policies, guards and degradation records for one server.

    Thread-safety (A-CONC): ``_lock`` guards the policy/guard/stats maps
    and the degradation list; counters land on each source's synchronized
    :class:`~repro.relational.database.SourceStats`."""

    #: policy key applying to every source without an explicit policy
    DEFAULT = "*"

    def __init__(self, clock: Clock):
        self.clock = clock
        self.partial_results = False
        self._policies: dict[str, SourcePolicy] = {}
        self._guards: dict[str, SourceGuard] = {}
        self._stats: dict[str, object] = {}
        self._lock = TrackedRLock("ResilienceManager")
        #: records absorbed during the current query (partial-results mode)
        self.degradations: list[DegradationRecord] = []
        #: query tracer, propagated to every guard (DynamicContext.set_tracer)
        self.tracer = NoopTracer()

    # -- configuration -------------------------------------------------------

    def set_policy(self, name: str, policy: SourcePolicy | None) -> None:
        """Install (or, with ``None``, remove) a source's policy.  ``"*"``
        sets the default for sources without their own."""
        with self._lock:
            if policy is None:
                self._policies.pop(name, None)
            else:
                self._policies[name] = policy
            if name == self.DEFAULT:
                self._guards.clear()  # defaults changed under every source
            else:
                self._guards.pop(name, None)

    def policy_for(self, name: str) -> SourcePolicy | None:
        return self._policies.get(name) or self._policies.get(self.DEFAULT)

    def register_stats(self, name: str, stats) -> None:
        """Bind the SourceStats object resilience counters land on."""
        with self._lock:
            self._stats[name] = stats

    # -- invocation path -----------------------------------------------------

    def call(self, name: str, thunk: Callable[[], object], stats=None):
        """Run one source invocation under the source's policy (if any)."""
        if stats is not None and self._stats.get(name) is not stats:
            self.register_stats(name, stats)
        guard = self._guard(name)
        if guard is None:
            bound = stats if stats is not None else self._stats.get(name)
            if bound is not None:
                bound.bump(attempts=1)
            return thunk()
        return guard.call(thunk)

    def _guard(self, name: str) -> SourceGuard | None:
        with self._lock:
            guard = self._guards.get(name)
            if guard is None:
                policy = self.policy_for(name)
                if policy is None:
                    return None
                guard = SourceGuard(name, policy, self.clock,
                                    self._stats.get(name), tracer=self.tracer)
                self._guards[name] = guard
            elif guard.stats is None and name in self._stats:
                guard.stats = self._stats[name]
            guard.tracer = self.tracer  # follow tracer swaps (profile runs)
            return guard

    # -- graceful degradation ------------------------------------------------

    def begin_query(self) -> None:
        with self._lock:
            self.degradations = []

    def absorb(self, source: str, exc: SourceError) -> bool:
        """In partial-results mode, record the failure and report True (the
        caller substitutes an empty sequence); otherwise False (re-raise)."""
        if not self.partial_results:
            return False
        record = DegradationRecord(
            source=source,
            error=str(exc),
            attempts=getattr(exc, "resilience_attempts", 1),
            elapsed_ms=getattr(exc, "resilience_elapsed_ms", 0.0),
        )
        with self._lock:
            self.degradations.append(record)
            stats = self._stats.get(source)
        if stats is not None:
            stats.bump(degraded=1)
        return True

    # -- observability -------------------------------------------------------

    def breaker_state(self, name: str) -> str | None:
        guard = self._guards.get(name)
        if guard is None or guard.breaker is None:
            return None
        return guard.breaker.state

    def breaker_transitions(self, name: str) -> list[tuple[float, str, str]]:
        guard = self._guards.get(name)
        if guard is None or guard.breaker is None:
            return []
        return list(guard.breaker.transitions)

    def health(self, name: str) -> dict:
        """The resilience-side health fields for one source."""
        policy = self.policy_for(name)
        return {
            "breaker": self.breaker_state(name),
            "breaker_transitions": len(self.breaker_transitions(name)),
            "policy": None if policy is None else policy.describe(),
        }

    def reset_stats(self) -> None:
        """Clear degradation records (breaker state is live and survives)."""
        with self._lock:
            self.degradations = []
