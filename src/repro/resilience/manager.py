"""The resilience manager: retry/breaker wiring and partial-result mode.

One :class:`ResilienceManager` lives on each
:class:`~repro.runtime.context.DynamicContext` and fronts **every** source
invocation path — pushed-SQL regions, PP-k block fetches, middleware table
scans, functional adaptors (web service / stored procedure / file / Java),
and SDO submit.  With no policy configured it is a pass-through (plus an
attempt counter), so behaviour is bit-for-bit what it was before the
resilience layer existed.

With :meth:`set_policy` / a default policy, each source gets a
:class:`SourceGuard` that applies the circuit breaker, per-attempt timeout
and retry/backoff — all waiting charged to the platform clock, all jitter
seeded, so chaos runs replay deterministically under the virtual clock.

*Partial-results mode* (:attr:`partial_results`) turns a source failure
that survives the guard into graceful degradation: the caller gets an
empty sequence and a :class:`DegradationRecord` is collected on the query
(``Platform.last_degradations``) instead of the whole federated plan
aborting (section 5.6's middleware-keeps-answering story).
"""

from __future__ import annotations

import contextvars
import random
from dataclasses import dataclass
from typing import Callable

from ..clock import Clock, VirtualClock
from ..concurrency import TrackedRLock, guarded_by
from ..errors import (
    CircuitOpenError,
    DeadlineExceededError,
    SourceError,
    SourceTimeoutError,
)
from ..observability.tracer import NoopTracer
from .policy import CircuitBreaker, SourcePolicy


@dataclass
class DegradationRecord:
    """One absorbed source failure in a partial-results query."""

    source: str
    error: str
    attempts: int
    elapsed_ms: float

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "error": self.error,
            "attempts": self.attempts,
            "elapsed_ms": round(self.elapsed_ms, 3),
        }


@guarded_by("_lock")
class SourceGuard:
    """Per-source runtime state: breaker, retry RNG, counters.

    Thread-safety (A-CONC): breaker decisions run under ``_lock``;
    counter updates go through the stats object's synchronized ``bump``."""

    def __init__(self, name: str, policy: SourcePolicy, clock: Clock, stats,
                 tracer=None):
        self.name = name
        self.policy = policy
        self.clock = clock
        self.stats = stats
        self.tracer = tracer if tracer is not None else NoopTracer()
        self.rng = random.Random(policy.retry.seed if policy.retry else 0)
        self.breaker = (CircuitBreaker(policy.breaker, clock)
                        if policy.breaker else None)
        self._lock = TrackedRLock("SourceGuard")

    def call(self, thunk: Callable[[], object], deadline=None):
        """Run ``thunk`` under the policy.  ``deadline`` is the owning
        :class:`ResilienceManager` (or None): each attempt and each retry
        backoff is checked against the calling request's remaining budget,
        so a doomed query stops consuming source roundtrips (R-SERVE)."""
        retry = self.policy.retry
        max_attempts = retry.max_attempts if retry is not None else 1
        start = self.clock.now_ms()
        attempts = 0
        while True:
            if deadline is not None:
                deadline.check_deadline(self.name)
            with self._lock:
                if self.breaker is not None:
                    try:
                        self.breaker.before_call(self.name)  # CircuitOpenError
                    except CircuitOpenError:
                        self.tracer.instant("breaker.rejected", self.name)
                        raise
            attempts += 1
            if self.stats is not None:
                self.stats.bump(attempts=1)
            try:
                with self.tracer.start("source.attempt", self.name,
                                       attempt=attempts):
                    result = self._attempt(thunk, deadline)
            except CircuitOpenError:
                raise  # shed inside the attempt: not a source failure
            except SourceError as exc:
                with self._lock:
                    if self.stats is not None:
                        self.stats.bump(failures=1)
                    if self.breaker is not None:
                        was_open = self.breaker.state == "open"
                        self.breaker.record_failure()
                        if self.breaker.state == "open" and not was_open \
                                and self.stats is not None:
                            self.stats.bump(breaker_trips=1)
                if attempts >= max_attempts:
                    # Annotate for DegradationRecord construction upstream.
                    exc.resilience_attempts = attempts
                    exc.resilience_elapsed_ms = self.clock.now_ms() - start
                    raise
                delay = retry.delay_ms(attempts, self.rng)
                if deadline is not None:
                    remaining = deadline.remaining_ms()
                    if remaining is not None and delay >= remaining:
                        # The backoff alone exhausts the budget: don't
                        # sleep into a deadline we already know we'll miss.
                        raise DeadlineExceededError(
                            f"request deadline passed during retry backoff "
                            f"for source {self.name} "
                            f"(attempt {attempts}/{max_attempts})"
                        ) from exc
                if self.stats is not None:
                    self.stats.bump(retries=1)
                self.clock.charge_ms(delay)
            else:
                with self._lock:
                    if self.breaker is not None:
                        self.breaker.record_success()
                return result

    def _attempt(self, thunk: Callable[[], object], deadline=None):
        """One attempt under the policy's time budget.

        Virtual clock: the attempt runs in a clock branch; an overrun
        charges exactly ``timeout_ms`` and raises
        :class:`SourceTimeoutError` (the system abandons the attempt at the
        budget, per section 5.6).  Wall clock: the overrun is detected
        after the fact — real time cannot be recalled — and still raises,
        so retry/degradation semantics match across modes.

        The request deadline caps the per-attempt budget: an attempt never
        gets more time than the whole request has left.
        """
        limit = self.policy.timeout_ms
        deadline_capped = False
        if deadline is not None:
            remaining = deadline.remaining_ms()
            if remaining is not None and (limit is None or remaining < limit):
                limit = remaining
                deadline_capped = True
        if limit is None:
            return thunk()
        if isinstance(self.clock, VirtualClock):
            self.clock.begin_branch()
            try:
                result = thunk()
                failed = None
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                failed = exc
            elapsed = self.clock.end_branch()
            if failed is not None:
                self.clock.charge_ms(min(elapsed, limit))
                raise failed
            if elapsed > limit:
                self.clock.charge_ms(limit)
                raise self._overrun(limit, elapsed, deadline_capped)
            self.clock.charge_ms(elapsed)
            return result
        start = self.clock.now_ms()
        result = thunk()
        elapsed = self.clock.now_ms() - start
        if elapsed > limit:
            raise self._overrun(limit, elapsed, deadline_capped)
        return result

    def _overrun(self, limit: float, elapsed: float, deadline_capped: bool):
        """The error for a blown attempt budget.  A policy-timeout overrun
        is a retryable/absorbable :class:`SourceTimeoutError`; a
        request-deadline overrun is terminal — retrying or degrading a
        request that is already past its deadline only burns roundtrips."""
        if deadline_capped:
            return DeadlineExceededError(
                f"source {self.name} overran the request's remaining "
                f"{limit:g}ms budget (needed {elapsed:g}ms)"
            )
        return SourceTimeoutError(
            f"source {self.name} exceeded its {limit:g}ms budget "
            f"(needed {elapsed:g}ms)"
        )


@guarded_by("_lock")
class ResilienceManager:
    """Source policies, guards and degradation records for one server.

    Thread-safety (A-CONC): ``_lock`` guards the policy/guard/stats maps
    and the degradation list; counters land on each source's synchronized
    :class:`~repro.relational.database.SourceStats`."""

    #: policy key applying to every source without an explicit policy
    DEFAULT = "*"

    def __init__(self, clock: Clock):
        self.clock = clock
        self.partial_results = False
        self._policies: dict[str, SourcePolicy] = {}
        self._guards: dict[str, SourceGuard] = {}
        self._stats: dict[str, object] = {}
        self._lock = TrackedRLock("ResilienceManager")
        #: records absorbed during the current *request* (partial-results
        #: mode) — a ContextVar so concurrent requests on one shared
        #: manager each see only their own degradations; async branch
        #: threads inherit the submitting request's list (the executor
        #: copies the caller's context, and the list object is shared)
        self._degradations: contextvars.ContextVar = contextvars.ContextVar(
            "repro.degradations", default=None
        )
        #: the calling request's absolute deadline in clock-ms (R-SERVE) —
        #: a ContextVar for the same per-request isolation, flowing into
        #: every attempt budget and retry decision below
        self._deadline: contextvars.ContextVar = contextvars.ContextVar(
            "repro.deadline", default=None
        )
        #: query tracer, propagated to every guard (DynamicContext.set_tracer)
        self.tracer = NoopTracer()

    # -- per-request state ----------------------------------------------------

    @property
    def degradations(self) -> list[DegradationRecord]:
        """Degradation records of the calling request's context."""
        records = self._degradations.get()
        return records if records is not None else []

    def set_deadline(self, at_ms: float | None):
        """Install the calling request's absolute deadline (clock-ms);
        returns a token for :meth:`reset_deadline`.  ``None`` clears it."""
        return self._deadline.set(at_ms)

    def reset_deadline(self, token) -> None:
        self._deadline.reset(token)

    def deadline_ms(self) -> float | None:
        """The calling request's absolute deadline, if one is set."""
        return self._deadline.get()

    def remaining_ms(self) -> float | None:
        """Clock-ms left before the calling request's deadline."""
        at_ms = self._deadline.get()
        if at_ms is None:
            return None
        return at_ms - self.clock.now_ms()

    def check_deadline(self, source: str) -> None:
        """Raise :class:`DeadlineExceededError` if the request's deadline
        has already passed — *before* spending a source roundtrip on it."""
        remaining = self.remaining_ms()
        if remaining is not None and remaining <= 0:
            raise DeadlineExceededError(
                f"request deadline passed before invoking source {source} "
                f"({-remaining:g}ms over budget)"
            )

    # -- configuration -------------------------------------------------------

    def set_policy(self, name: str, policy: SourcePolicy | None) -> None:
        """Install (or, with ``None``, remove) a source's policy.  ``"*"``
        sets the default for sources without their own."""
        with self._lock:
            if policy is None:
                self._policies.pop(name, None)
            else:
                self._policies[name] = policy
            if name == self.DEFAULT:
                self._guards.clear()  # defaults changed under every source
            else:
                self._guards.pop(name, None)

    def policy_for(self, name: str) -> SourcePolicy | None:
        return self._policies.get(name) or self._policies.get(self.DEFAULT)

    def register_stats(self, name: str, stats) -> None:
        """Bind the SourceStats object resilience counters land on."""
        with self._lock:
            self._stats[name] = stats

    # -- invocation path -----------------------------------------------------

    def call(self, name: str, thunk: Callable[[], object], stats=None):
        """Run one source invocation under the source's policy (if any)
        and the calling request's deadline (if one is set)."""
        self.check_deadline(name)
        if stats is not None and self._stats.get(name) is not stats:
            self.register_stats(name, stats)
        guard = self._guard(name)
        if guard is None:
            bound = stats if stats is not None else self._stats.get(name)
            if bound is not None:
                bound.bump(attempts=1)
            return thunk()
        return guard.call(thunk, deadline=self)

    def _guard(self, name: str) -> SourceGuard | None:
        with self._lock:
            guard = self._guards.get(name)
            if guard is None:
                policy = self.policy_for(name)
                if policy is None:
                    return None
                guard = SourceGuard(name, policy, self.clock,
                                    self._stats.get(name), tracer=self.tracer)
                self._guards[name] = guard
            elif guard.stats is None and name in self._stats:
                guard.stats = self._stats[name]
            guard.tracer = self.tracer  # follow tracer swaps (profile runs)
            return guard

    # -- graceful degradation ------------------------------------------------

    def begin_query(self) -> None:
        """Start a fresh degradation list for the calling request's
        context (other in-flight requests keep their own lists)."""
        self._degradations.set([])

    def absorb(self, source: str, exc: SourceError) -> bool:
        """In partial-results mode, record the failure and report True (the
        caller substitutes an empty sequence); otherwise False (re-raise).
        Deadline overruns are never absorbed: a request past its budget
        must stop, not degrade and keep consuming roundtrips."""
        if not self.partial_results or isinstance(exc, DeadlineExceededError):
            return False
        record = DegradationRecord(
            source=source,
            error=str(exc),
            attempts=getattr(exc, "resilience_attempts", 1),
            elapsed_ms=getattr(exc, "resilience_elapsed_ms", 0.0),
        )
        records = self._degradations.get()
        if records is None:
            records = []
            self._degradations.set(records)
        with self._lock:
            # The list is per-request, but a request's async branches may
            # absorb concurrently — the manager lock covers the append.
            records.append(record)
            stats = self._stats.get(source)
        if stats is not None:
            stats.bump(degraded=1)
        return True

    # -- observability -------------------------------------------------------

    def breaker_state(self, name: str) -> str | None:
        guard = self._guards.get(name)
        if guard is None or guard.breaker is None:
            return None
        return guard.breaker.state

    def breaker_transitions(self, name: str) -> list[tuple[float, str, str]]:
        guard = self._guards.get(name)
        if guard is None or guard.breaker is None:
            return []
        return list(guard.breaker.transitions)

    def health(self, name: str) -> dict:
        """The resilience-side health fields for one source."""
        policy = self.policy_for(name)
        return {
            "breaker": self.breaker_state(name),
            "breaker_transitions": len(self.breaker_transitions(name)),
            "policy": None if policy is None else policy.describe(),
        }

    def reset_stats(self) -> None:
        """Clear the calling context's degradation records (breaker state
        is live and survives)."""
        self._degradations.set([])
