"""Source resilience layer (section 5.6 / DESIGN.md R-RESIL).

Scripted fault injection, retry/backoff, circuit breakers, per-source
timeouts, and partial-results degradation for the federated runtime.
"""

from .faults import FaultInjector
from .manager import DegradationRecord, ResilienceManager, SourceGuard
from .policy import CircuitBreaker, CircuitBreakerConfig, RetryPolicy, SourcePolicy

__all__ = [
    "FaultInjector",
    "DegradationRecord",
    "ResilienceManager",
    "SourceGuard",
    "CircuitBreaker",
    "CircuitBreakerConfig",
    "RetryPolicy",
    "SourcePolicy",
]
