"""Custom Java-function sources (section 5.3).

"For custom Java functions, data is translated to/from standard Java
primitive types and classes, and array support is included."  Here the
registered functions are Python callables; values cross the boundary as
native Python scalars (or lists of them — the "array support"), and the
results are re-typed into atomic values.

Java functions are also what inverse-function support registers
(section 4.5): ``int2date`` / ``date2int`` in the paper's example.
"""

from __future__ import annotations

from typing import Callable

from ..clock import Clock
from ..errors import SourceError
from ..xml.items import AtomicValue, Item
from .adaptor import Adaptor

_XS_BY_PYTHON = {bool: "xs:boolean", int: "xs:integer", float: "xs:double", str: "xs:string"}


def to_python(arg: list[Item]):
    """XQuery sequence -> Java(Python) value: scalar, None, or list."""
    atoms: list[AtomicValue] = []
    for item in arg:
        atoms.extend(item.atomize())
    if not atoms:
        return None
    if len(atoms) == 1:
        return atoms[0].value
    return [atom.value for atom in atoms]


def from_python(value) -> list[Item]:
    """Java(Python) value -> XQuery sequence."""
    if value is None:
        return []
    if isinstance(value, (list, tuple)):
        return [atom for entry in value for atom in from_python(entry)]
    if isinstance(value, AtomicValue):
        return [value]
    xs_type = _XS_BY_PYTHON.get(type(value))
    if xs_type is None:
        raise SourceError(f"cannot map Java value of type {type(value).__name__}")
    return [AtomicValue(value, xs_type)]


class JavaFunctionAdaptor(Adaptor):
    def __init__(self, name: str, fn: Callable, clock: Clock | None = None,
                 latency_ms: float = 0.0):
        super().__init__(name, clock)
        self.fn = fn
        self.latency_ms = latency_ms

    def translate_parameters(self, args: list[list[Item]]) -> list[object]:
        return [to_python(arg) for arg in args]

    def call(self, connection: object, params: list[object]) -> object:
        if self.latency_ms:
            self.clock.charge_ms(self.latency_ms)
        return self.fn(*params)

    def translate_result(self, result: object) -> list[Item]:
        return from_python(result)
