"""Non-queryable file sources: XML documents and delimited (CSV) files.

"For files, XML schemas are required at file registration time, and are
used to validate the data for typed processing" (section 5.3).  These
sources are *non-queryable*: ALDSP reads the full content and all
filtering happens in the middleware.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from ..clock import Clock
from ..errors import SourceError
from ..schema.builder import validate
from ..schema.types import ComplexContent, ElementItemType, SimpleContent
from ..xml.items import ElementNode, Item, TextNode
from ..xml.parser import parse_document
from ..xml.qname import QName
from .adaptor import Adaptor


class XMLFileAdaptor(Adaptor):
    """Serves the row/record elements of an XML file, validated against the
    registration-time schema."""

    def __init__(self, name: str, path: str | Path, record_shape: ElementItemType,
                 clock: Clock | None = None, latency_ms: float = 2.0):
        super().__init__(name, clock)
        self.path = Path(path)
        self.record_shape = record_shape
        self.latency_ms = latency_ms

    def call(self, connection: object, params: list[object]) -> object:
        self.clock.charge_ms(self.latency_ms)
        try:
            text = self.path.read_text()
        except OSError as exc:
            raise SourceError(f"cannot read {self.path}: {exc}") from exc
        return parse_document(text)

    def translate_result(self, result: object) -> list[Item]:
        document = result
        root = document.root_element()  # type: ignore[union-attr]
        records = [c for c in root.children() if isinstance(c, ElementNode)]
        if not records and self.record_shape.name == root.name.local:
            records = [root]
        for record in records:
            validate(record, self.record_shape)
        return list(records)


class CSVFileAdaptor(Adaptor):
    """Serves the rows of a delimited file as typed row elements.

    The record shape must be flat (simple-content leaves only); column
    order follows the shape's particle order, header row optional.
    """

    def __init__(self, name: str, path: str | Path, record_shape: ElementItemType,
                 delimiter: str = ",", has_header: bool = True,
                 clock: Clock | None = None, latency_ms: float = 2.0):
        super().__init__(name, clock)
        self.path = Path(path)
        self.record_shape = record_shape
        self.delimiter = delimiter
        self.has_header = has_header
        self.latency_ms = latency_ms
        self._fields = self._field_spec(record_shape)

    @staticmethod
    def _field_spec(shape: ElementItemType) -> list[tuple[str, str]]:
        if not isinstance(shape.content, ComplexContent):
            raise SourceError("CSV record shape must have complex content")
        fields = []
        for particle in shape.content.particles:
            item_type = particle.item_type
            if not isinstance(item_type, ElementItemType) or not isinstance(
                item_type.content, SimpleContent
            ):
                raise SourceError("CSV record shape must be flat")
            assert item_type.name is not None
            fields.append((item_type.name, item_type.content.type_name))
        return fields

    def call(self, connection: object, params: list[object]) -> object:
        self.clock.charge_ms(self.latency_ms)
        try:
            text = self.path.read_text()
        except OSError as exc:
            raise SourceError(f"cannot read {self.path}: {exc}") from exc
        return text

    def translate_result(self, result: object) -> list[Item]:
        reader = csv.reader(io.StringIO(str(result)), delimiter=self.delimiter)
        rows = list(reader)
        if self.has_header and rows:
            rows = rows[1:]
        items: list[Item] = []
        record_name = self.record_shape.name or "RECORD"
        for row in rows:
            if not row:
                continue
            if len(row) != len(self._fields):
                raise SourceError(
                    f"{self.name}: row has {len(row)} fields, expected {len(self._fields)}"
                )
            element = ElementNode(QName(record_name))
            for (field_name, _xs_type), raw in zip(self._fields, row):
                if raw == "":
                    continue  # missing value -> missing element (ragged data)
                child = ElementNode(QName(field_name))
                child.add_child(TextNode(raw))
                element.add_child(child)
            validate(element, self.record_shape)
            items.append(element)
        return items
