"""Data-source adaptor framework (sections 2.2, 5.3)."""

from .adaptor import Adaptor
from .files import CSVFileAdaptor, XMLFileAdaptor
from .javafunc import JavaFunctionAdaptor, from_python, to_python
from .storedproc import StoredProcedureAdaptor
from .webservice import WebServiceAdaptor, WebServiceDescriptor, WebServiceOperation

__all__ = [
    "Adaptor",
    "CSVFileAdaptor",
    "XMLFileAdaptor",
    "JavaFunctionAdaptor",
    "StoredProcedureAdaptor",
    "from_python",
    "to_python",
    "WebServiceAdaptor",
    "WebServiceDescriptor",
    "WebServiceOperation",
]
