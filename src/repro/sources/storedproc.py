"""Stored-procedure sources (sections 2.2, 5.3).

Stored procedures are *functional* sources: ALDSP can only call them with
parameters, and they may return complex results.  In the simulation a
procedure is a Python callable executed inside its database (it may run
SQL through the engine); its row results are XML-ified exactly like table
rows, and the call is charged one roundtrip.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..clock import Clock
from ..errors import SourceError
from ..relational.database import Database
from ..xml.items import AtomicValue, ElementNode, Item, TextNode
from ..xml.qname import QName
from .adaptor import Adaptor
from .javafunc import to_python


class StoredProcedureAdaptor(Adaptor):
    """Runtime adaptor for one stored procedure.

    ``procedure`` receives the database followed by the (Python-typed)
    parameters and returns a list of row dicts; ``columns`` gives the
    (name, xs:type) XML-ification of the result rows.
    """

    def __init__(
        self,
        database: Database,
        name: str,
        procedure: Callable,
        columns: Sequence[tuple[str, str]],
        row_element: str | None = None,
        clock: Clock | None = None,
    ):
        super().__init__(f"{database.name}.{name}", clock or database.clock)
        self.database = database
        self.procedure = procedure
        self.columns = list(columns)
        self.row_element = row_element or name.upper()

    def translate_parameters(self, args: list[list[Item]]) -> list[object]:
        return [to_python(arg) for arg in args]

    def call(self, connection: object, params: list[object]) -> object:
        self.database.check_call()
        rows = self.procedure(self.database, *params)
        if not isinstance(rows, list):
            raise SourceError(f"{self.name}: procedure must return a list of rows")
        self.database.charge_roundtrip(len(rows), f"CALL {self.name}")
        return rows

    def translate_result(self, result: object) -> list[Item]:
        items: list[Item] = []
        for row in result:  # type: ignore[union-attr]
            if not isinstance(row, dict):
                raise SourceError(f"{self.name}: rows must be dicts")
            element = ElementNode(QName(self.row_element))
            for column, xs_type in self.columns:
                value = row.get(column)
                if value is None:
                    continue  # NULL -> missing element (section 4.4)
                child = ElementNode(QName(column), type_annotation=xs_type)
                child.add_child(TextNode(AtomicValue(value, xs_type).string_value()))
                element.add_child(child)
            items.append(element)
        return items
