"""Adaptor framework base (sections 2.2 and 5.3).

Every data-source invocation follows the same five steps:

1. establish a connection to the physical data source,
2. translate parameters from the XML token stream to the source's model,
3. invoke the data source,
4. translate the result into (typed) XML token-stream form,
5. release the physical connection.

Adaptors have a design-time side (introspecting metadata into physical
data services — :mod:`repro.services.introspect`) and this runtime side.
"""

from __future__ import annotations

from ..clock import Clock, VirtualClock
from ..errors import SourceError
from ..relational.database import SourceStats
from ..xml.items import Item
from ..xml.tokens import Token, items_to_tokens, tokens_to_items


class Adaptor:
    """Base runtime adaptor.

    Subclasses implement the source-model hooks; ``invoke`` runs the
    five-step protocol.  ``available`` and ``extra_latency_ms`` support the
    failure/slowness injection that the failover machinery (section 5.6)
    is tested against; ``faults`` accepts a scripted
    :class:`~repro.resilience.FaultInjector` plan (R-RESIL).
    """

    def __init__(self, name: str, clock: Clock | None = None):
        self.name = name
        self.clock = clock or VirtualClock()
        self.available = True
        self.extra_latency_ms = 0.0
        #: what step 1 costs against an unavailable source before it raises
        self.connect_timeout_ms = 10.0
        self.invocations = 0
        self.stats = SourceStats()
        #: optional scripted fault plan (repro.resilience.FaultInjector)
        self.faults = None

    # -- protocol hooks ---------------------------------------------------------

    def connect(self) -> object:
        """Step 1; returns an opaque connection handle."""
        return object()

    def translate_parameters(self, args: list[list[Item]]) -> list[object]:
        """Step 2: token stream -> source data model (default: items)."""
        return [list(arg) for arg in args]

    def call(self, connection: object, params: list[object]) -> object:
        """Step 3: actually invoke the source."""
        raise NotImplementedError

    def translate_result(self, result: object) -> list[Item]:
        """Step 4: source result -> typed XML items."""
        raise NotImplementedError

    def close(self, connection: object) -> None:
        """Step 5."""

    # -- entry point -----------------------------------------------------------------

    def invoke(self, args: list[list[Item]]) -> list[Item]:
        if not self.available:
            # A failed connect is never free: charge the connect timeout
            # before raising so failover economics stay realistic (R-RESIL).
            if self.connect_timeout_ms:
                self.clock.charge_ms(self.connect_timeout_ms)
            raise SourceError(f"source {self.name} is unavailable")
        if self.faults is not None:
            self.faults.on_call(self.name, self.clock)
        self.invocations += 1
        if self.extra_latency_ms:
            self.clock.charge_ms(self.extra_latency_ms)
        connection = self.connect()
        try:
            params = self.translate_parameters(args)
            raw = self.call(connection, params)
            items = self.translate_result(raw)
        finally:
            self.close(connection)
        if self.faults is not None:
            items, dropped = self.faults.on_result(self.name, items)
            if dropped is not None:
                raise dropped
        # Round-trip through the typed token stream: this is the form in
        # which data enters the ALDSP runtime (section 5.1).
        tokens: list[Token] = list(items_to_tokens(items))
        return tokens_to_items(tokens)
