"""Simulated Web-service sources (the functional-source category).

Stands in for the paper's document-style and rpc/encoded SOAP services
(e.g. the credit-rating service of the running example).  An operation is
described WSDL-style — input/output element shapes plus a handler — and
results are schema-validated to produce typed token streams, exactly the
adaptor behaviour of section 5.3.  Latency and availability are injectable
for the async/failover/cache experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..clock import Clock
from ..errors import SourceError
from ..schema.builder import validate
from ..schema.types import ElementItemType
from ..xml.items import AtomicValue, ElementNode, Item
from .adaptor import Adaptor


@dataclass
class WebServiceOperation:
    """One WSDL operation.

    ``handler`` receives the input element (document style) or the list of
    atomic parameter values (rpc style) and returns the output element(s).
    """

    name: str
    input_shape: ElementItemType | None
    output_shape: ElementItemType
    handler: Callable
    style: str = "document"  # "document" | "rpc"
    latency_ms: float = 20.0
    #: rpc/encoded style: declared parameter types (defaults to the
    #: handler's positional arity with xs:anyAtomicType)
    rpc_param_types: "list[str] | None" = None


@dataclass
class WebServiceDescriptor:
    """A WSDL-like description of one service endpoint."""

    name: str
    operations: list[WebServiceOperation] = field(default_factory=list)

    def operation(self, name: str) -> WebServiceOperation:
        for op in self.operations:
            if op.name == name:
                return op
        raise SourceError(f"service {self.name} has no operation {name}")


class WebServiceAdaptor(Adaptor):
    """Runtime adaptor for one operation of a simulated Web service."""

    def __init__(self, descriptor: WebServiceDescriptor,
                 operation: WebServiceOperation, clock: Clock | None = None):
        super().__init__(f"{descriptor.name}.{operation.name}", clock)
        self.descriptor = descriptor
        self.operation = operation

    def translate_parameters(self, args: list[list[Item]]) -> list[object]:
        op = self.operation
        if op.style == "document":
            if len(args) != 1 or len(args[0]) != 1 or not isinstance(args[0][0], ElementNode):
                raise SourceError(
                    f"{self.name}: document-style operation takes one element"
                )
            doc = args[0][0]
            if op.input_shape is not None:
                validate(doc, op.input_shape)
            return [doc]
        # rpc/encoded: atomic parameter values
        values = []
        for arg in args:
            atoms: list[AtomicValue] = []
            for item in arg:
                atoms.extend(item.atomize())
            if len(atoms) != 1:
                raise SourceError(f"{self.name}: rpc parameter must be a single value")
            values.append(atoms[0].value)
        return values

    def call(self, connection: object, params: list[object]) -> object:
        from ..errors import ReproError

        self.clock.charge_ms(self.operation.latency_ms)
        try:
            if self.operation.style == "document":
                return self.operation.handler(params[0])
            return self.operation.handler(*params)
        except ReproError:
            raise
        except Exception as exc:
            # A fault inside the remote service is a *source* failure:
            # fn-bea:fail-over must be able to catch it (section 5.6).
            raise SourceError(f"{self.name}: service fault: {exc}") from exc

    def translate_result(self, result: object) -> list[Item]:
        items: Sequence[Item]
        if isinstance(result, ElementNode):
            items = [result]
        elif isinstance(result, (list, tuple)):
            items = list(result)
        elif isinstance(result, AtomicValue):
            items = [result]
        else:
            raise SourceError(f"{self.name}: handler returned {type(result).__name__}")
        # Validate against the declared output shape -> typed token stream.
        for item in items:
            if isinstance(item, ElementNode):
                validate(item, self.operation.output_shape)
        return list(items)
