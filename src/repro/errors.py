"""Exception hierarchy for the ALDSP reproduction.

The compiler distinguishes *static* errors (raised or collected during the
analysis phase, per section 4.1 of the paper) from *dynamic* errors (raised
during plan execution).  Source adaptors raise :class:`SourceError` so that
the ``fn-bea:fail-over`` / ``fn-bea:timeout`` machinery (section 5.6) can
catch exactly the failures that represent an unavailable or failing data
source without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class XMLError(ReproError):
    """Malformed XML text or an invalid XML data-model operation."""


class SchemaError(ReproError):
    """Invalid schema definition or schema-validation failure."""


class StaticError(ReproError):
    """An error detected during query analysis (parse/normalize/typecheck).

    Carries an optional source location so the design-time editor mode can
    report every error it recovered from.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        super().__init__(message)
        self.message = message
        self.line = line
        self.column = column

    def __str__(self) -> str:
        if self.line is not None:
            return f"{self.message} (at line {self.line}, column {self.column})"
        return self.message


class ParseError(StaticError):
    """Syntax error found while lexing or parsing XQuery."""


class TypeError_(StaticError):
    """Static type error (ALDSP's optimistic rule still rejects empty
    intersections between argument and parameter types)."""


class PlanVerificationError(StaticError):
    """The plan verifier (:mod:`repro.compiler.verify`) found error-severity
    diagnostics in a compiled plan.  ``report`` holds the full
    :class:`~repro.diagnostics.DiagnosticReport` for programmatic access."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None, report=None):
        super().__init__(message, line, column)
        self.report = report


class DynamicError(ReproError):
    """An error raised while executing a compiled query plan."""


class TypeMatchError(DynamicError):
    """The runtime ``typematch`` operator (section 4.1) found a value whose
    dynamic type does not match the required static type."""


class SourceError(DynamicError):
    """A data-source access failed (connection refused, service fault...).

    ``fn-bea:fail-over`` catches this class (and only this class)."""


class SourceTimeoutError(SourceError):
    """A data-source access exceeded its allotted time budget."""


class CircuitOpenError(SourceError):
    """A source invocation was rejected because its circuit breaker is open
    (section 5.6 / R-RESIL).  Subclassing :class:`SourceError` keeps
    ``fn-bea:fail-over`` and partial-results degradation composable with
    breaker fast-fails; retry policies never retry it."""


class DeadlineExceededError(DynamicError):
    """The request's deadline passed while the query was executing
    (R-SERVE).  Deliberately *not* a :class:`SourceError`: retries never
    retry it and partial-results mode never absorbs it — a doomed query
    must stop consuming source roundtrips, not degrade and keep going."""


class PlatformClosedError(ReproError):
    """An operation was submitted to a :class:`~repro.services.platform.
    Platform` after :meth:`~repro.services.platform.Platform.close`.
    ``close()`` itself is idempotent; only *new* work fails."""


class AdmissionError(ReproError):
    """A request was shed by the serving layer's admission controller
    (R-SERVE) — a structured, retry-after-bearing rejection rather than a
    timeout.  ``reason`` is one of ``"quota"`` (the tenant's token bucket
    is empty), ``"overload"`` (the server's queue is at its hard limit) or
    ``"cost"`` (load shedding: only cheap keyed lookups are admitted while
    the server is saturated)."""

    def __init__(self, message: str, tenant: str, reason: str,
                 retry_after_ms: float = 0.0, state: str = "open"):
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason
        self.retry_after_ms = retry_after_ms
        self.state = state

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "reason": self.reason,
            "retry_after_ms": round(self.retry_after_ms, 3),
            "state": self.state,
        }


class ObservabilityError(ReproError):
    """An observability-plane operation was refused (O-CONT) — e.g.
    enabling tracing or profiling on a platform where tracing has been
    administratively disallowed.  ``code`` is the stable diagnostic code
    (registered in :data:`~repro.diagnostics.CODE_REGISTRY`) and is part
    of the message, so CLI surfaces report it without a traceback."""

    def __init__(self, message: str, code: str = "ALDSP-E501"):
        super().__init__(f"{code}: {message}")
        self.code = code


class SQLError(ReproError):
    """Raised by the simulated relational engine for bad SQL or constraint
    violations."""


class TransactionError(SQLError):
    """Transaction could not commit (XA vote failed, conflict...)."""


class ConcurrencyError(TransactionError):
    """Optimistic-concurrency check failed during update submission
    (section 6): the conditioned UPDATE matched no rows."""


class SecurityError(ReproError):
    """Access-control violation: caller may not invoke a data-service
    function (section 7)."""


class UpdateError(ReproError):
    """A change log could not be decomposed or propagated (section 6)."""


class LineageError(UpdateError):
    """Lineage analysis could not determine the origin of updated data."""
